"""Shared helper for the per-exhibit benchmarks.

Each benchmark runs one registered experiment in its fast profile exactly
once (simulation experiments are seconds-long; statistical repetition is
what the multi-seed paper profile is for) and attaches the resulting table
to the benchmark record as ``extra_info`` so `pytest-benchmark`'s JSON
output carries the reproduced numbers alongside the timing.
"""

from __future__ import annotations

from repro.experiments.registry import get

__all__ = ["run_exhibit"]


def run_exhibit(benchmark, experiment_id: str, seed: int = 1):
    """Benchmark one exhibit and return its ResultTable."""
    experiment = get(experiment_id)
    table = benchmark.pedantic(
        lambda: experiment.run(seed=seed, fast=True), rounds=1, iterations=1
    )
    benchmark.extra_info["exhibit"] = experiment.paper_exhibit
    benchmark.extra_info["description"] = experiment.description
    benchmark.extra_info["rows"] = [
        {k: (round(v, 3) if isinstance(v, float) else v) for k, v in row.items()}
        for row in table.rows
    ]
    benchmark.extra_info["notes"] = table.notes
    assert table.rows, f"experiment {experiment_id} produced no rows"
    return table
