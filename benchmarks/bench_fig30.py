"""Benchmark regenerating the paper's Fig. 30: wider band: 18 MHz, 7 channels."""

from _util import run_exhibit


def test_fig30(benchmark):
    table = run_exhibit(benchmark, "fig30")
    print()
    print(table.to_text())
