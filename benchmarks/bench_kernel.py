"""Micro-benchmarks for the simulation substrate itself.

These are classic performance benchmarks (unlike the exhibit benches,
which wrap whole experiments): event-queue throughput, medium fan-out and
a saturated two-link simulation — the knobs that dominate experiment wall
time.
"""

from repro.mac.cca import FixedCcaThreshold
from repro.mac.mac import Mac
from repro.net.traffic import SaturatedSource
from repro.phy.fading import NoFading
from repro.phy.frame import Frame
from repro.phy.medium import Medium
from repro.phy.propagation import FixedRssMatrix
from repro.phy.radio import Radio
from repro.sim.rng import RngStreams
from repro.sim.simulator import Simulator


def test_event_queue_throughput(benchmark):
    """Schedule-and-run 50k self-rescheduling events."""

    def run():
        sim = Simulator()
        count = [0]

        def tick():
            count[0] += 1
            if count[0] < 50_000:
                sim.schedule(1e-5, tick)

        sim.schedule(0.0, tick)
        sim.run_until_idle()
        return count[0]

    assert benchmark(run) == 50_000


def test_medium_fanout(benchmark):
    """One transmitter fanning frames out to 30 receivers."""
    sim = Simulator()
    rng = RngStreams(1)
    medium = Medium(
        sim, FixedRssMatrix(default_loss_db=50.0), fading=NoFading(), rng=rng
    )
    tx = Radio(sim, medium, "tx", (0, 0), 2460.0, 0.0, rng=rng)
    receivers = [
        Radio(sim, medium, f"rx{i}", (1 + i, 0), 2460.0, 0.0, rng=rng)
        for i in range(30)
    ]

    def run():
        for _ in range(100):
            frame = Frame("tx", None, 60)
            tx.transmit(frame, lambda t: None)
            sim.run(sim.now + frame.airtime_s + 1e-6)
        return receivers[0].sim.now

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_cca_probe_incremental(benchmark):
    """The O(1) sensing-path probe with 20 active signals."""
    from repro.perf.bench import _cca_rig

    rx = _cca_rig(n_signals=20)

    def run():
        acc = 0.0
        for _ in range(10_000):
            acc += rx.sensed_power_mw()
        return acc

    assert benchmark(run) > 0.0


def test_cca_probe_brute_force(benchmark):
    """The pre-optimisation full re-summation, for the speedup headline."""
    from repro.perf.bench import _cca_rig, brute_force_sensed_power_mw

    rx = _cca_rig(n_signals=20)

    def run():
        acc = 0.0
        for _ in range(10_000):
            acc += brute_force_sensed_power_mw(rx)
        return acc

    assert benchmark(run) > 0.0


def test_medium_fanout_with_culling(benchmark):
    """Fan-out over a mostly-inaudible population: the LinkGainCache culls
    270 of 300 receivers, so cost tracks the 30 audible ones."""
    sim = Simulator()
    rng = RngStreams(1)
    matrix = FixedRssMatrix(default_loss_db=160.0)  # default: far below floor
    for i in range(30):
        matrix.set_loss((0, 0), (1 + i, 0), 50.0)
    medium = Medium(sim, matrix, fading=NoFading(), rng=rng)
    tx = Radio(sim, medium, "tx", (0, 0), 2460.0, 0.0, rng=rng)
    for i in range(300):
        Radio(sim, medium, f"rx{i}", (1 + i, 0), 2460.0, 0.0, rng=rng)

    def run():
        for _ in range(100):
            frame = Frame("tx", None, 60)
            tx.transmit(frame, lambda t: None)
            sim.run(sim.now + frame.airtime_s + 1e-6)
        return sim.now

    benchmark.pedantic(run, rounds=1, iterations=1)


def test_event_cancel_churn(benchmark):
    """Push/cancel-90% batches: exercises lazy-cancellation compaction."""
    from repro.sim.events import EventQueue

    def run():
        queue = EventQueue()
        for batch in range(200):
            events = [queue.push(batch + i * 1e-6, lambda: None)
                      for i in range(100)]
            for event in events[10:]:
                queue.cancel(event)
        popped = 0
        while queue:
            queue.pop()
            popped += 1
        return popped

    assert benchmark(run) == 200 * 10


def test_saturated_two_link_simulation(benchmark):
    """One simulated second of two saturated CSMA links."""

    def run():
        sim = Simulator()
        rng = RngStreams(2)
        medium = Medium(
            sim, FixedRssMatrix(default_loss_db=50.0), fading=NoFading(), rng=rng
        )
        macs = {}
        for i, name in enumerate(("a.s", "a.r", "b.s", "b.r")):
            radio = Radio(sim, medium, name, (i, 0), 2460.0, 0.0, rng=rng)
            macs[name] = Mac(
                sim, radio, rng.stream(f"mac.{name}"),
                cca_policy=FixedCcaThreshold(-77.0),
            )

        class _Shim:
            def __init__(self, mac):
                self.mac = mac
                self.name = mac.name
                self.sim = mac.sim

        SaturatedSource(_Shim(macs["a.s"]), "a.r").start()
        SaturatedSource(_Shim(macs["b.s"]), "b.r").start()
        sim.run(1.0)
        return macs["a.r"].stats.delivered + macs["b.r"].stats.delivered

    delivered = benchmark.pedantic(run, rounds=1, iterations=1)
    assert delivered > 100
