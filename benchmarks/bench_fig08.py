"""Benchmark regenerating the paper's Fig. 8: link throughput vs CCA threshold (with co-channel)."""

from _util import run_exhibit


def test_fig08(benchmark):
    table = run_exhibit(benchmark, "fig08")
    print()
    print(table.to_text())
