"""Benchmark regenerating the paper's Fig. 20: N0 throughput vs its transmit power."""

from _util import run_exhibit


def test_fig20(benchmark):
    table = run_exhibit(benchmark, "fig20")
    print()
    print(table.to_text())
