"""Benchmark regenerating the paper's Fig. 4: collided-packet receive rate vs CFD."""

from _util import run_exhibit


def test_fig04(benchmark):
    table = run_exhibit(benchmark, "fig04")
    print()
    print(table.to_text())
