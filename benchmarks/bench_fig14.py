"""Benchmark regenerating the paper's Fig. 14: N0 throughput with DCN only on N0."""

from _util import run_exhibit


def test_fig14(benchmark):
    table = run_exhibit(benchmark, "fig14")
    print()
    print(table.to_text())
