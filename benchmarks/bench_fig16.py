"""Benchmark regenerating the paper's Fig. 16: per-network throughput, CFD=2 MHz, DCN on all."""

from _util import run_exhibit


def test_fig16(benchmark):
    table = run_exhibit(benchmark, "fig16")
    print()
    print(table.to_text())
