"""Benchmarks for the ablation experiments beyond the paper's exhibits."""

from _util import run_exhibit


def test_ablation_margin(benchmark):
    print()
    print(run_exhibit(benchmark, "ablation_margin").to_text())


def test_ablation_tu(benchmark):
    print()
    print(run_exhibit(benchmark, "ablation_tu").to_text())


def test_ablation_ti(benchmark):
    print()
    print(run_exhibit(benchmark, "ablation_ti").to_text())


def test_ablation_oracle(benchmark):
    print()
    print(run_exhibit(benchmark, "ablation_oracle").to_text())


def test_ablation_mode2(benchmark):
    print()
    print(run_exhibit(benchmark, "ablation_mode2").to_text())


def test_ablation_energy(benchmark):
    print()
    print(run_exhibit(benchmark, "ablation_energy").to_text())


def test_ablation_orthogonal(benchmark):
    print()
    print(run_exhibit(benchmark, "ablation_orthogonal").to_text())
