"""Benchmark regenerating the paper's Fig. 29: error-bit CDF of CRC-failed packets."""

from _util import run_exhibit


def test_fig29(benchmark):
    table = run_exhibit(benchmark, "fig29")
    print()
    print(table.to_text())
