"""Benchmark regenerating the paper's Fig. 6: link throughput vs CCA threshold (no co-channel)."""

from _util import run_exhibit


def test_fig06(benchmark):
    table = run_exhibit(benchmark, "fig06")
    print()
    print(table.to_text())
