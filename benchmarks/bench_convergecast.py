"""Benchmark regenerating the convergecast exhibit: multi-hop delay/delivery."""

from _util import run_exhibit


def test_convergecast(benchmark):
    table = run_exhibit(benchmark, "convergecast")
    print()
    print(table.to_text())
