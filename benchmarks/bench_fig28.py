"""Benchmark regenerating the paper's Fig. 28: packet recovery under severe interference."""

from _util import run_exhibit


def test_fig28(benchmark):
    table = run_exhibit(benchmark, "fig28")
    print()
    print(table.to_text())
