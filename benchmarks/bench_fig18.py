"""Benchmark regenerating the paper's Fig. 18: overall throughput, CFD 2 vs 3 MHz, DCN on all."""

from _util import run_exhibit


def test_fig18(benchmark):
    table = run_exhibit(benchmark, "fig18")
    print()
    print(table.to_text())
