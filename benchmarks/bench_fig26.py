"""Benchmark regenerating the paper's Fig. 26: Case II: networks separated into clusters."""

from _util import run_exhibit


def test_fig26(benchmark):
    table = run_exhibit(benchmark, "fig26")
    print()
    print(table.to_text())
