"""Benchmark regenerating the paper's Fig. 15: other networks' throughput with DCN only on N0."""

from _util import run_exhibit


def test_fig15(benchmark):
    table = run_exhibit(benchmark, "fig15")
    print()
    print(table.to_text())
