"""Benchmark regenerating the paper's Fig. 1: bandwidth throughput vs CFD over a 12 MHz band."""

from _util import run_exhibit


def test_fig01(benchmark):
    table = run_exhibit(benchmark, "fig01")
    print()
    print(table.to_text())
