"""Benchmark regenerating the paper's Fig. 2: 802.11b vs 802.15.4 channel-separation contrast."""

from _util import run_exhibit


def test_fig02(benchmark):
    table = run_exhibit(benchmark, "fig02")
    print()
    print(table.to_text())
