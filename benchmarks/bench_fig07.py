"""Benchmark regenerating the paper's Fig. 7: overall throughput vs CCA threshold (no co-channel)."""

from _util import run_exhibit


def test_fig07(benchmark):
    table = run_exhibit(benchmark, "fig07")
    print()
    print(table.to_text())
