"""Make the benchmarks directory importable as scripts (for _util)."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
