"""Benchmark regenerating the paper's Fig. 21: other networks' throughput vs N0 transmit power."""

from _util import run_exhibit


def test_fig21(benchmark):
    table = run_exhibit(benchmark, "fig21")
    print()
    print(table.to_text())
