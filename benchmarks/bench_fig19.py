"""Benchmark regenerating the paper's Fig. 19: ZigBee design vs DCN design on the 15 MHz band."""

from _util import run_exhibit


def test_fig19(benchmark):
    table = run_exhibit(benchmark, "fig19")
    print()
    print(table.to_text())
