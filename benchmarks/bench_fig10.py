"""Benchmark regenerating the paper's Fig. 10: link PRR vs tx power under a relaxed threshold."""

from _util import run_exhibit


def test_fig10(benchmark):
    table = run_exhibit(benchmark, "fig10")
    print()
    print(table.to_text())
