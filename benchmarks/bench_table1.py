"""Benchmark regenerating the paper's Table I: fairness across the six DCN networks."""

from _util import run_exhibit


def test_table1(benchmark):
    table = run_exhibit(benchmark, "table1")
    print()
    print(table.to_text())
