"""Micro-bench: telemetry cost on a representative exhibit run.

Three regimes of the same fixed-seed fig04 fast run:

- **disabled** — no ObsSession: the guard-only path (`sim.obs is None`
  checks) every ordinary run pays;
- **event-driven** — spans + counters, no gauge sampler (the campaign
  ``obs=True`` profile);
- **sampled** — full instrumentation including the periodic gauge
  sampler (the ``repro obs`` CLI profile).

A companion (non-benchmark) test asserts the acceptance criterion that
matters more than speed: all three regimes produce **byte-identical**
result tables at a fixed seed — telemetry is strictly passive.

Run with ``pytest benchmarks/bench_obs.py --benchmark-only -s``.
The CI regression gate for the disabled path lives in the kernel suite
(``obs_off_mini_run`` in BENCH_kernel.json, 25% tolerance); the numbers
here are informational.
"""

from __future__ import annotations

import json

from repro.experiments.registry import get
from repro.obs.runtime import ObsSession

EXHIBIT = "fig04"
SEED = 1


def _run_plain():
    return get(EXHIBIT).run(seed=SEED, fast=True)


def _run_observed(sample_interval_s):
    with ObsSession(sample_interval_s=sample_interval_s) as session:
        table = get(EXHIBIT).run(seed=SEED, fast=True)
    return table, session


def test_obs_disabled(benchmark):
    table = benchmark.pedantic(_run_plain, rounds=1, iterations=1)
    assert table.rows


def test_obs_event_driven(benchmark):
    table, session = benchmark.pedantic(
        lambda: _run_observed(None), rounds=1, iterations=1
    )
    assert table.rows
    snap = session.snapshot()
    benchmark.extra_info["spans"] = snap["spans"]
    benchmark.extra_info["runs"] = snap["runs"]


def test_obs_sampled(benchmark):
    table, session = benchmark.pedantic(
        lambda: _run_observed(0.01), rounds=1, iterations=1
    )
    assert table.rows
    snap = session.snapshot()
    benchmark.extra_info["spans"] = snap["spans"]
    benchmark.extra_info["samples"] = sum(
        r.samples_taken for r in session.recorders
    )


def test_fixed_seed_results_byte_identical_across_regimes():
    """Telemetry must never perturb results (the acceptance criterion)."""
    plain = _run_plain().to_json()
    event_driven = _run_observed(None)[0].to_json()
    sampled = _run_observed(0.01)[0].to_json()
    assert plain == event_driven == sampled
    json.loads(plain)  # sanity: comparable serialised form
