"""Benchmark regenerating the paper's Fig. 9: link throughput vs CCA threshold per tx power."""

from _util import run_exhibit


def test_fig09(benchmark):
    table = run_exhibit(benchmark, "fig09")
    print()
    print(table.to_text())
