"""Benchmark regenerating the paper's Fig. 27: Case III: random topology over a large region."""

from _util import run_exhibit


def test_fig27(benchmark):
    table = run_exhibit(benchmark, "fig27")
    print()
    print(table.to_text())
