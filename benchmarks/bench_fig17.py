"""Benchmark regenerating the paper's Fig. 17: per-network throughput, CFD=3 MHz, DCN on all."""

from _util import run_exhibit


def test_fig17(benchmark):
    table = run_exhibit(benchmark, "fig17")
    print()
    print(table.to_text())
