"""Micro-bench: campaign server round trips vs the one-shot engine.

Benchmarks the service layer's overhead on top of the same jobs:

- **submit_wait_cold** — HTTP submit + poll to done, empty cache;
- **submit_wait_warm** — identical resubmission, every job a cache hit
  (this is the regime a long-running server actually lives in);
- **events_stream** — full NDJSON progress stream for a warm campaign.

The server runs in-process (thread workers, ephemeral port) with a
synthetic runner, so the numbers isolate queue/journal/HTTP overhead
from kernel time.  Run with
``pytest benchmarks/bench_server.py --benchmark-only -s``.
"""

from __future__ import annotations

import random
import threading

from repro.campaign.client import CampaignClient
from repro.campaign.server import CampaignServer, ServerConfig
from repro.experiments.results import ResultTable

IDS = ["alpha", "beta"]
SEEDS = [1, 2, 3]


def runner(spec):
    rng = random.Random(f"{spec.exhibit_id}:{spec.seed}")
    table = ResultTable(f"synthetic {spec.exhibit_id}")
    for x in range(50):
        table.add_row(x=x, y=rng.random())
    return table


class ServerHarness:
    def __init__(self, tmp_path):
        config = ServerConfig(
            port=0, jobs=0,
            state_dir=str(tmp_path / "state"),
            cache_dir=str(tmp_path / "cache"),
        )
        self.server = CampaignServer(config, runner=runner, known_ids=IDS)
        self.thread = threading.Thread(target=self.server.run, daemon=True)
        self.thread.start()
        assert self.server.ready.wait(15)
        self.client = CampaignClient(
            f"http://127.0.0.1:{self.server.port}"
        )

    def submit_and_wait(self):
        doc = self.client.submit(ids=IDS, seeds=SEEDS)
        return self.client.wait(doc["id"], poll_s=0.01, timeout_s=60)

    def close(self):
        self.server.request_shutdown()
        self.thread.join(15)


def test_server_submit_wait_cold(benchmark, tmp_path):
    harness = ServerHarness(tmp_path)
    try:
        final = benchmark.pedantic(
            harness.submit_and_wait, rounds=1, iterations=1
        )
        assert final["completed"] == len(IDS) * len(SEEDS)
        benchmark.extra_info["cache_hits"] = final["cache_hits"]
    finally:
        harness.close()


def test_server_submit_wait_warm(benchmark, tmp_path):
    harness = ServerHarness(tmp_path)
    try:
        harness.submit_and_wait()  # populate the cache
        final = benchmark.pedantic(
            harness.submit_and_wait, rounds=3, iterations=1
        )
        assert final["cache_hits"] == len(IDS) * len(SEEDS)
        benchmark.extra_info["cache_hits"] = final["cache_hits"]
    finally:
        harness.close()


def test_server_events_stream(benchmark, tmp_path):
    harness = ServerHarness(tmp_path)
    try:
        cid = harness.client.submit(ids=IDS, seeds=SEEDS)["id"]
        harness.client.wait(cid, poll_s=0.01, timeout_s=60)
        events = benchmark.pedantic(
            lambda: list(harness.client.stream_events(cid)),
            rounds=3, iterations=1,
        )
        assert events[-1]["event"] == "done"
        benchmark.extra_info["events"] = len(events)
    finally:
        harness.close()
