"""Micro-bench: campaign server round trips vs the one-shot engine.

Benchmarks the service layer's overhead on top of the same jobs:

- **submit_wait_cold** — HTTP submit + poll to done, empty cache;
- **submit_wait_warm** — identical resubmission, every job a cache hit
  (this is the regime a long-running server actually lives in);
- **events_stream** — full NDJSON progress stream for a warm campaign;
- **metrics_scrape** — one ``GET /metrics`` render + parse round trip on
  a populated registry;
- **obs_submit_overhead** — the obs-on submit path (worker snapshots +
  trace export + merge) guarded to stay within noise of obs-off.

The server runs in-process (thread workers, ephemeral port) with a
synthetic runner, so the numbers isolate queue/journal/HTTP overhead
from kernel time.  Run with
``pytest benchmarks/bench_server.py --benchmark-only -s``.
"""

from __future__ import annotations

import random
import threading
import time

from repro.campaign.client import CampaignClient
from repro.campaign.server import CampaignServer, ServerConfig
from repro.experiments.results import ResultTable

IDS = ["alpha", "beta"]
SEEDS = [1, 2, 3]


def runner(spec):
    rng = random.Random(f"{spec.exhibit_id}:{spec.seed}")
    table = ResultTable(f"synthetic {spec.exhibit_id}")
    for x in range(50):
        table.add_row(x=x, y=rng.random())
    return table


class ServerHarness:
    def __init__(self, tmp_path):
        config = ServerConfig(
            port=0, jobs=0,
            state_dir=str(tmp_path / "state"),
            cache_dir=str(tmp_path / "cache"),
        )
        self.server = CampaignServer(config, runner=runner, known_ids=IDS)
        self.thread = threading.Thread(target=self.server.run, daemon=True)
        self.thread.start()
        assert self.server.ready.wait(15)
        self.client = CampaignClient(
            f"http://127.0.0.1:{self.server.port}"
        )

    def submit_and_wait(self, seeds=SEEDS, obs=False):
        doc = self.client.submit(ids=IDS, seeds=seeds, obs=obs)
        return self.client.wait(doc["id"], poll_s=0.01, timeout_s=60)

    def close(self):
        self.server.request_shutdown()
        self.thread.join(15)


def test_server_submit_wait_cold(benchmark, tmp_path):
    harness = ServerHarness(tmp_path)
    try:
        final = benchmark.pedantic(
            harness.submit_and_wait, rounds=1, iterations=1
        )
        assert final["completed"] == len(IDS) * len(SEEDS)
        benchmark.extra_info["cache_hits"] = final["cache_hits"]
    finally:
        harness.close()


def test_server_submit_wait_warm(benchmark, tmp_path):
    harness = ServerHarness(tmp_path)
    try:
        harness.submit_and_wait()  # populate the cache
        final = benchmark.pedantic(
            harness.submit_and_wait, rounds=3, iterations=1
        )
        assert final["cache_hits"] == len(IDS) * len(SEEDS)
        benchmark.extra_info["cache_hits"] = final["cache_hits"]
    finally:
        harness.close()


def test_server_events_stream(benchmark, tmp_path):
    harness = ServerHarness(tmp_path)
    try:
        cid = harness.client.submit(ids=IDS, seeds=SEEDS)["id"]
        harness.client.wait(cid, poll_s=0.01, timeout_s=60)
        events = benchmark.pedantic(
            lambda: list(harness.client.stream_events(cid)),
            rounds=3, iterations=1,
        )
        assert events[-1]["event"] == "done"
        benchmark.extra_info["events"] = len(events)
    finally:
        harness.close()


def test_server_metrics_scrape(benchmark, tmp_path):
    """One ``GET /metrics`` render on a registry populated by real jobs
    (histograms, per-exhibit labels, merged worker series)."""
    harness = ServerHarness(tmp_path)
    try:
        harness.submit_and_wait(obs=True)
        text = benchmark.pedantic(
            harness.client.metrics_text, rounds=20, iterations=1
        )
        benchmark.extra_info["bytes"] = len(text)
        benchmark.extra_info["series"] = len(harness.client.metrics())
        # A scrape is an HTTP round trip + a text render over a few dozen
        # metrics: anything beyond 250ms means the render went quadratic.
        # (Timed by hand so the guard also holds under --benchmark-disable,
        # where benchmark.stats is None.)
        start = time.perf_counter()
        harness.client.metrics_text()
        assert time.perf_counter() - start < 0.25
    finally:
        harness.close()


def test_server_obs_submit_within_noise_of_obs_off(benchmark, tmp_path):
    """Guard: telemetry-on submissions (worker snapshot + trace export +
    server-side merge) must stay within noise of telemetry-off ones.

    Both arms execute fresh (uncached) jobs through the same worker
    path; the generous 3x bound tolerates scheduler noise on shared CI
    boxes while still catching an accidental per-job sampling sweep or
    quadratic merge.
    """
    harness = ServerHarness(tmp_path)
    try:
        harness.submit_and_wait()  # warm the code paths / allocator
        rounds = 3
        seed = [100]

        def fresh_seeds():
            seed[0] += len(SEEDS)
            return list(range(seed[0], seed[0] + len(SEEDS)))

        def timed(obs):
            start = time.perf_counter()
            final = harness.submit_and_wait(seeds=fresh_seeds(), obs=obs)
            assert final["cache_hits"] == 0
            return time.perf_counter() - start

        off = min(timed(obs=False) for _ in range(rounds))
        on_times = []

        def one_obs_round():
            on_times.append(timed(obs=True))

        benchmark.pedantic(one_obs_round, rounds=rounds, iterations=1)
        on = min(on_times)
        benchmark.extra_info["obs_off_s"] = round(off, 6)
        benchmark.extra_info["obs_on_s"] = round(on, 6)
        benchmark.extra_info["ratio"] = round(on / off, 3) if off else None
        assert on <= off * 3.0 + 0.05, (
            f"obs-on submit path {on:.4f}s vs obs-off {off:.4f}s"
        )
    finally:
        harness.close()
