"""Benchmark regenerating the paper's Fig. 25: Case I: all networks in one interfering region."""

from _util import run_exhibit


def test_fig25(benchmark):
    table = run_exhibit(benchmark, "fig25")
    print()
    print(table.to_text())
