"""Micro-bench: sequential vs parallel vs warm-cache campaign execution.

Benchmarks the three regimes of report generation over a small exhibit
subset (the full registry takes minutes; the engine overheads being
measured are identical):

- **sequential** — ``jobs=1``, no cache (the historical behaviour);
- **parallel** — ``jobs=4`` process-pool execution, no cache;
- **warm cache** — every job served from ``.repro-cache`` entries.

Run with ``pytest benchmarks/bench_campaign.py --benchmark-only -s``.
"""

from __future__ import annotations

from repro.campaign import CampaignSpec, ResultCache, run_campaign

#: Small but non-trivial workload: 2 exhibits x 2 seeds.
IDS = ["fig04", "fig29"]
SEEDS = [1, 2]


def _spec() -> CampaignSpec:
    return CampaignSpec.make(ids=IDS, seeds=SEEDS, fast=True)


def _attach(benchmark, result) -> None:
    benchmark.extra_info["jobs_ok"] = result.stats.completed
    benchmark.extra_info["cache_hits"] = result.stats.cache_hits
    benchmark.extra_info["cache_misses"] = result.stats.cache_misses
    assert result.ok, f"campaign failed: {[str(f.spec) for f in result.failures()]}"


def test_campaign_sequential(benchmark):
    result = benchmark.pedantic(
        lambda: run_campaign(_spec(), jobs=1, cache=False),
        rounds=1, iterations=1,
    )
    _attach(benchmark, result)


def test_campaign_parallel(benchmark):
    result = benchmark.pedantic(
        lambda: run_campaign(_spec(), jobs=4, cache=False),
        rounds=1, iterations=1,
    )
    _attach(benchmark, result)


def test_campaign_warm_cache(benchmark, tmp_path):
    cache = ResultCache(tmp_path / "cache")
    cold = run_campaign(_spec(), jobs=4, cache=cache)  # populate
    assert cold.ok
    result = benchmark.pedantic(
        lambda: run_campaign(_spec(), jobs=1, cache=cache),
        rounds=1, iterations=1,
    )
    _attach(benchmark, result)
    assert result.stats.cache_hits == len(IDS) * len(SEEDS)
