#!/usr/bin/env python3
"""Packet-recovery study: when is PPR-style recovery worth its overhead?

Section VII-A of the paper observes that under severe inter-channel
interference most CRC-failed packets carry few error bits and proposes
integrating a partial-packet-recovery scheme.  This example quantifies the
trade-off across link powers: packets recovered versus the extra airtime a
PPR-like scheme would charge — the input an "online dynamic recovery"
controller (the paper's future work) would need.

Run:  python examples/packet_recovery_study.py
"""

from repro.core.recovery import PacketRecovery, RecoveryConfig
from repro.experiments.metrics import snapshot_deployment
from repro.experiments.scenarios import section_iv_rig
from repro.mac.cca import FixedCcaThreshold

LINK_POWERS_DBM = (0.0, -11.0, -22.0, -33.0)
RELAXED_THRESHOLD_DBM = -50.0


def study(power_dbm: float, seed: int = 5, duration_s: float = 8.0):
    deployment = section_iv_rig(
        seed=seed,
        link_cca_policy=FixedCcaThreshold(RELAXED_THRESHOLD_DBM),
        link_power_dbm=power_dbm,
    )
    recovery = PacketRecovery(RecoveryConfig(max_error_fraction=0.10,
                                             overhead_fraction=0.15))
    receiver = deployment.node("probe.r0")
    measuring = {"on": False}

    def observe(rec):
        if measuring["on"] and rec.frame.source == "probe.s0":
            recovery.record(rec)

    receiver.radio.add_frame_listener(observe)
    deployment.start_traffic()
    sim = deployment.sim
    sim.run(1.0)
    baseline = snapshot_deployment(deployment)
    measuring["on"] = True
    sim.run(sim.now + duration_s)
    sent = (
        deployment.node("probe.s0").mac.stats.since(baseline["probe.s0"]).sent
        / duration_s
    )
    return sent, recovery


def main() -> None:
    print("link power sweep under 0 dBm neighbouring-channel interference\n")
    header = (
        f"{'power':>7} {'sent/s':>8} {'clean/s':>8} {'recov/s':>8} "
        f"{'unrec/s':>8} {'rescued':>8} {'overhead':>9}"
    )
    print(header)
    for power in LINK_POWERS_DBM:
        sent, recovery = study(power)
        stats = recovery.stats
        duration = 8.0
        print(
            f"{power:>6.0f}  {sent:>8.1f} {stats.crc_ok / duration:>8.1f} "
            f"{stats.recovered / duration:>8.1f} "
            f"{stats.unrecoverable / duration:>8.1f} "
            f"{100 * stats.recovery_ratio:>7.1f}% "
            f"{1000 * stats.overhead_airtime_s / duration:>7.2f}ms/s"
        )
    print(
        "\nReading: at healthy powers recovery has nothing to do; at -22 dBm"
        "\nit rescues most failures for a small airtime surcharge; at -33 dBm"
        "\nfailures are too corrupted to rescue — exactly the regime split an"
        "\nonline recovery controller should learn."
    )


if __name__ == "__main__":
    main()
