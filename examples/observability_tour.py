#!/usr/bin/env python3
"""Tour of the `repro.obs` telemetry layer on one DCN run.

Builds the three-network rig with DCN on the middle network, observes it
with a full recorder (spans + gauge sampling + a streaming JSONL sink),
and then walks through everything the run left behind:

1. live per-node / per-channel metric tables (`repro.obs.summary`),
2. counter totals and backoff quantiles from the registry,
3. the DCN threshold trajectory as an event-driven time series,
4. a JSONL record stream (the `repro obs export` format), and
5. a Chrome trace_event timeline you can drop into
   https://ui.perfetto.dev to see TX/RX/backoff/CCA lanes per node.

Telemetry is strictly passive: re-running without the recorder yields
byte-identical results (that guarantee is asserted in the test suite
and `benchmarks/bench_obs.py`).

Run:  python examples/observability_tour.py
"""

import json
import tempfile
from pathlib import Path

from repro.core.adjustor import AdjustorConfig
from repro.experiments.runner import run_deployment
from repro.experiments.scenarios import dcn_only_on, evaluation_testbed
from repro.obs import JsonlSink, Observability, run_manifest, write_trace
from repro.obs.summary import channel_table, node_table
from repro.phy.spectrum import ChannelPlan


def main() -> None:
    out_dir = Path(tempfile.mkdtemp(prefix="repro-obs-"))
    jsonl_path = out_dir / "run.jsonl"
    trace_path = out_dir / "timeline.json"

    # -- 1. run the rig under a fully-armed recorder --------------------
    sink = JsonlSink(jsonl_path)
    sink.emit(run_manifest(exhibit="observability_tour", seed=21))
    recorder = Observability(sample_interval_s=0.05, sink=sink)

    plan = ChannelPlan.explicit([2462.0, 2459.0, 2465.0], cfd_mhz=3.0)
    config = AdjustorConfig(t_init_s=1.0, t_update_s=3.0)
    deployment = evaluation_testbed(
        plan, seed=21,
        policy_factory=dcn_only_on(["N0"], config=config),
        obs=recorder,
    )
    result = run_deployment(deployment, duration_s=12.0, warmup_s=0.0)
    recorder.finalize()
    sink.close()

    # -- 2. metric tables (what `repro obs summary` prints) -------------
    print(node_table(recorder).to_text("{:.4g}"))
    print()
    print(channel_table(recorder).to_text("{:.4g}"))

    # -- 3. registry internals: counters and backoff quantiles ----------
    print("\nspan log:", len(recorder.spans), "spans",
          f"({len(recorder.spans.of_kind('tx'))} tx,",
          f"{len(recorder.spans.of_kind('cca'))} cca)")
    for hist in recorder.registry.histograms("mac.backoff_s"):
        node = dict(hist.labels)["node"]
        if not node.endswith(".s0"):
            continue
        print(f"  {node} backoff: n={hist.count}  "
              f"p50={hist.p50 * 1e3:.2f} ms  p95={hist.p95 * 1e3:.2f} ms")

    # -- 4. the DCN threshold trajectory, event-driven ------------------
    print("\nDCN threshold trajectory (N0 senders):")
    for series in recorder.registry.series("adjustor.threshold_dbm"):
        node = dict(series.labels)["node"]
        if not node.startswith("N0."):
            continue
        steps = list(series.points)
        print(f"  {node}: {len(steps) - 1} adjustments, "
              f"{steps[0][1]:.1f} -> {steps[-1][1]:.2f} dBm")

    # -- 5. exports ------------------------------------------------------
    events = write_trace(
        trace_path, [recorder],
        metadata=run_manifest(exhibit="observability_tour", seed=21),
    )
    kinds = {}
    with open(jsonl_path, encoding="utf-8") as handle:
        for line in handle:
            kind = json.loads(line)["kind"]
            kinds[kind] = kinds.get(kind, 0) + 1
    print(f"\nJSONL export: {jsonl_path}")
    print("  records by kind:", dict(sorted(kinds.items())))
    print(f"timeline export: {trace_path} ({events} trace events)")
    print("  open it at https://ui.perfetto.dev")

    print(f"\nN0 throughput with DCN: "
          f"{result.network('N0').throughput_pps:.1f} pkt/s "
          f"(telemetry changed nothing about that number)")


if __name__ == "__main__":
    main()
