#!/usr/bin/env python3
"""Quickstart: the paper's headline result in ~30 lines.

Builds the 15 MHz evaluation testbed twice —

1. the default ZigBee design: 4 channels at 5 MHz spacing, fixed -77 dBm
   CCA threshold;
2. the paper's DCN design: 6 non-orthogonal channels at 3 MHz spacing,
   every node running the dynamic CCA-threshold adjustor —

runs both under saturated traffic and prints per-network and overall
throughput.  Expect DCN to win by roughly 40-60 % (the paper reports 58 %).

Run:  python examples/quickstart.py
"""

from repro.experiments.runner import run_deployment
from repro.experiments.scenarios import (
    dcn_policy_factory,
    evaluation_plan,
    evaluation_testbed,
)


def main() -> None:
    seed = 42
    duration_s = 5.0

    print("Building the ZigBee design: 4 channels @ 5 MHz, fixed CCA...")
    zigbee = run_deployment(
        evaluation_testbed(evaluation_plan(cfd_mhz=5.0), seed=seed), duration_s
    )

    print("Building the DCN design: 6 channels @ 3 MHz, dynamic CCA...")
    dcn = run_deployment(
        evaluation_testbed(
            evaluation_plan(cfd_mhz=3.0),
            seed=seed,
            policy_factory=dcn_policy_factory(),
        ),
        duration_s,
    )

    print()
    print(f"{'design':<16} {'network':<8} {'channel':>9} {'pkt/s':>8}")
    for name, result in (("ZigBee", zigbee), ("DCN", dcn)):
        for m in sorted(result.networks, key=lambda m: m.channel_mhz):
            print(
                f"{name:<16} {m.label:<8} {m.channel_mhz:>7.0f}MHz "
                f"{m.throughput_pps:>8.1f}"
            )
    print()
    gain = 100.0 * (dcn.overall_throughput_pps / zigbee.overall_throughput_pps - 1.0)
    print(f"ZigBee overall: {zigbee.overall_throughput_pps:7.1f} pkt/s")
    print(f"DCN overall:    {dcn.overall_throughput_pps:7.1f} pkt/s")
    print(f"improvement:    +{gain:.1f}%  (paper: ~58%)")


if __name__ == "__main__":
    main()
