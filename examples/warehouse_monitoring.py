#!/usr/bin/env python3
"""Warehouse monitoring: a Case-II-style deployment with per-zone networks.

Scenario: a warehouse has six monitoring zones (cold storage, loading dock,
aisles A-D).  Each zone runs its own sensor network on its own channel; the
zones are physically separated but close enough that channels leak into one
another.  Spectrum is scarce — only 15 MHz is available — so the operator
must choose between 4 orthogonal-ish channels (two zones must share!) or 6
non-orthogonal channels at 3 MHz spacing.

This example builds both options, measures per-zone throughput and checks
zone-to-zone fairness.  It exercises: explicit channel plans, the clustered
topology generator, per-network CCA policy assignment, and run metrics.

Run:  python examples/warehouse_monitoring.py
"""

from repro.experiments.metrics import jain_fairness
from repro.experiments.runner import run_deployment
from repro.net.deployment import Deployment
from repro.net.topology import random_power, separated_clusters_topology
from repro.core.dcn import DcnCcaPolicy
from repro.mac.cca import FixedCcaThreshold
from repro.phy.spectrum import ChannelPlan, EVALUATION_BAND
from repro.sim.rng import RngStreams

ZONES = ["cold-storage", "loading-dock", "aisle-A", "aisle-B", "aisle-C", "aisle-D"]


def build(cfd_mhz: float, use_dcn: bool, seed: int) -> Deployment:
    plan = ChannelPlan.inclusive(EVALUATION_BAND, cfd_mhz)
    rng = RngStreams(seed).stream("topology")
    specs = separated_clusters_topology(
        plan,
        rng,
        cluster_spacing_m=4.0,       # zones a few metres apart
        cluster_radius_m=1.0,
        link_distance_m=1.5,
        power=random_power(-10.0, 0.0),  # per-node power dispersion
    )

    def policy(_label: str, _node: str):
        return DcnCcaPolicy() if use_dcn else FixedCcaThreshold(-77.0)

    return Deployment(specs, seed=seed, policy_factory=policy)


def main() -> None:
    seed = 7
    duration_s = 5.0

    print("Option A: 4 channels @ 5 MHz (two zones must share a channel)")
    option_a = run_deployment(build(5.0, use_dcn=False, seed=seed), duration_s)

    print("Option B: 6 channels @ 3 MHz + DCN (every zone gets a channel)")
    option_b = run_deployment(build(3.0, use_dcn=True, seed=seed), duration_s)

    print()
    print(f"{'zone':<14} {'option A pkt/s':>15} {'option B pkt/s':>15}")
    b_by_label = {m.label: m for m in option_b.networks}
    for index, zone in enumerate(ZONES):
        label = f"N{index}"
        a = option_a.network(label).throughput_pps if index < 4 else float("nan")
        b = b_by_label[label].throughput_pps
        a_text = f"{a:15.1f}" if index < 4 else "   (no channel)"
        print(f"{zone:<14} {a_text} {b:15.1f}")

    print()
    print(f"option A overall: {option_a.overall_throughput_pps:7.1f} pkt/s over 4 channels")
    print(f"option B overall: {option_b.overall_throughput_pps:7.1f} pkt/s over 6 channels")
    fairness = jain_fairness([m.throughput_pps for m in option_b.networks])
    print(f"option B zone fairness (Jain): {fairness:.3f}")
    gain = 100.0 * (
        option_b.overall_throughput_pps / option_a.overall_throughput_pps - 1.0
    )
    print(f"capacity gain from non-orthogonal design: +{gain:.1f}%")


if __name__ == "__main__":
    main()
