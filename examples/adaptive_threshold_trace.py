#!/usr/bin/env python3
"""Watch DCN's CCA-Adjustor at work: the threshold trajectory of one node.

Builds a three-network deployment where the middle network runs DCN and
observes the run with a `repro.obs` recorder.  The adjustor publishes
every threshold step to the event-driven ``adjustor.threshold_dbm`` time
series, so the trajectory comes straight out of the telemetry registry —
no poking at policy internals — annotated with the phase transitions
(initializing -> Eq. 2 -> Case I / Case II updates), plus an ASCII strip
chart.  This is the paper's Fig. 12 made observable.

For the full telemetry walkthrough (tables, JSONL, Perfetto timeline)
see examples/observability_tour.py.

Run:  python examples/adaptive_threshold_trace.py
"""

from repro.core.adjustor import AdjustorConfig
from repro.experiments.runner import run_deployment
from repro.experiments.scenarios import dcn_only_on, evaluation_testbed
from repro.obs import Observability
from repro.phy.spectrum import ChannelPlan


def strip_chart(history, t_end, width=72, lo=-90.0, hi=-40.0):
    """Render the threshold trajectory as one text line per step change."""
    lines = []
    for (time, value), nxt in zip(history, history[1:] + [(t_end, None)]):
        span = max(0.0, min(nxt[0], t_end) - time)
        position = int((value - lo) / (hi - lo) * width)
        position = max(0, min(width - 1, position))
        bar = " " * position + "#"
        lines.append(
            f"  t={time:6.2f}s for {span:5.2f}s  {value:7.2f} dBm |{bar}"
        )
    return "\n".join(lines)


def main() -> None:
    recorder = Observability()  # event-driven only: no gauge sampler needed
    plan = ChannelPlan.explicit([2462.0, 2459.0, 2465.0], cfd_mhz=3.0)
    config = AdjustorConfig(t_init_s=1.0, t_update_s=3.0)
    deployment = evaluation_testbed(
        plan, seed=21,
        policy_factory=dcn_only_on(["N0"], config=config),
        obs=recorder,
    )
    duration_s = 12.0
    result = run_deployment(deployment, duration_s, warmup_s=0.0)
    recorder.finalize()

    sender_names = {node.name for node in deployment.network("N0").senders()}
    for series in recorder.registry.series("adjustor.threshold_dbm"):
        name = dict(series.labels)["node"]
        if name not in sender_names:
            continue
        history = list(series.points)
        print(f"\n=== {name} ===")
        print(f"initial (conservative default): {history[0][1]:.1f} dBm")
        eq2 = [h for h in history if abs(h[0] - config.t_init_s) < 0.05]
        if eq2:
            print(f"Eq. 2 at end of initializing phase -> {eq2[0][1]:.2f} dBm")
        print(f"{len(history) - 1} adjustments over {duration_s:.0f} s:")
        print(strip_chart(history, duration_s))

    print()
    print(f"N0 throughput with DCN: {result.network('N0').throughput_pps:.1f} pkt/s")
    others = sum(m.throughput_pps for m in result.except_network("N0"))
    print(f"other networks (fixed CCA): {others:.1f} pkt/s")


if __name__ == "__main__":
    main()
