#!/usr/bin/env python3
"""Deployment doctor: diagnose a non-orthogonal deployment before running it.

Static analyses over mean path loss answer, in seconds, the questions that
otherwise need a long simulation: are the links healthy? who silences whom
through the CCA? which interferer can corrupt which link?  Then the same
deployment is run with DCN and re-diagnosed, showing the blocking pairs
disappear as the adjustors settle.

Run:  python examples/deployment_doctor.py
"""

from repro.experiments.analysis import (
    blocking_report,
    interference_margin_report,
    link_budget_report,
    threshold_report,
)
from repro.experiments.runner import run_deployment
from repro.experiments.scenarios import (
    dcn_policy_factory,
    five_network_plan,
    standard_testbed,
)


def main() -> None:
    seed = 9
    plan = five_network_plan(3.0)

    print("### Before: fixed -77 dBm CCA ###\n")
    fixed = standard_testbed(plan, seed=seed)
    print(link_budget_report(fixed).to_text("{:.1f}"))
    print()
    print(blocking_report(fixed).to_text("{:.1f}"))
    print()
    print(interference_margin_report(fixed).to_text("{:.1f}"))

    print("\n### After: DCN, post warm-up ###\n")
    dcn = standard_testbed(plan, seed=seed, policy_factory=dcn_policy_factory())
    result = run_deployment(dcn, duration_s=2.0)
    print(threshold_report(dcn).to_text("{:.1f}"))
    print()
    print(blocking_report(dcn).to_text("{:.1f}"))
    print()
    print(f"measured overall throughput with DCN: "
          f"{result.overall_throughput_pps:.0f} pkt/s")


if __name__ == "__main__":
    main()
