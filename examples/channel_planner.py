#!/usr/bin/env python3
"""Channel planner: pick a CFD for a given spectrum band.

Given a band (width in MHz) and a deployment style, sweep candidate channel
frequency distances, simulate each plan under saturated traffic (with DCN
on every node) and report the measured capacity — reproducing the paper's
CFD-selection methodology (Section VI-A) as a reusable tool.

Run:  python examples/channel_planner.py [band_mhz]
"""

import sys

from repro.experiments.runner import run_deployment
from repro.experiments.scenarios import dcn_policy_factory
from repro.net.deployment import Deployment
from repro.net.topology import fixed_power, one_region_topology
from repro.phy.spectrum import Band, ChannelPlan
from repro.sim.rng import RngStreams

CANDIDATE_CFDS_MHZ = (5.0, 4.0, 3.0, 2.0)

#: Discount per-channel capacity by delivery quality: a plan that floods
#: the band with barely-working channels should not beat one whose
#: channels actually deliver (the paper's CFD=2 MHz lesson).
MIN_ACCEPTABLE_PRR = 0.8


def evaluate(band: Band, cfd_mhz: float, seed: int, duration_s: float):
    plan = ChannelPlan.inclusive(band, cfd_mhz)
    rng = RngStreams(seed).stream("topology")
    specs = one_region_topology(
        plan, rng, region_radius_m=3.5, link_distance_m=1.5,
        power=fixed_power(0.0),
    )
    deployment = Deployment(
        specs, seed=seed, policy_factory=dcn_policy_factory()
    )
    result = run_deployment(deployment, duration_s)
    return plan, result


def main() -> None:
    band_width = float(sys.argv[1]) if len(sys.argv) > 1 else 15.0
    band = Band(2458.0, 2458.0 + band_width)
    seed = 11
    duration_s = 4.0

    print(f"Planning a {band.width_mhz:.0f} MHz band "
          f"({band.low_mhz:.0f}-{band.high_mhz:.0f} MHz), DCN on all nodes\n")
    print(
        f"{'CFD':>5} {'channels':>9} {'overall pkt/s':>14} "
        f"{'per-channel':>12} {'worst PRR':>10}"
    )
    best = None
    for cfd in CANDIDATE_CFDS_MHZ:
        plan, result = evaluate(band, cfd, seed, duration_s)
        overall = result.overall_throughput_pps
        worst_prr = min(m.prr for m in result.networks)
        print(
            f"{cfd:>4.0f}M {plan.num_channels:>9} {overall:>14.1f} "
            f"{overall / plan.num_channels:>12.1f} {worst_prr:>10.2f}"
        )
        acceptable = worst_prr >= MIN_ACCEPTABLE_PRR
        if acceptable and (best is None or overall > best[1]):
            best = (cfd, overall)
    assert best is not None
    print(f"\nrecommended CFD: {best[0]:.0f} MHz "
          f"({best[1]:.0f} pkt/s with every channel's PRR >= "
          f"{MIN_ACCEPTABLE_PRR})")
    print("(the paper selects 3 MHz for 15 MHz of spectrum)")


if __name__ == "__main__":
    main()
