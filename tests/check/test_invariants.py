"""Unit tests for the runtime invariant layer, including fault injection.

A correctness layer that has never caught anything is indistinguishable
from one that cannot — every invariant here is exercised twice: once on
healthy state (passes) and once on deliberately corrupted state (raises
:class:`InvariantViolation` with a useful report).
"""

import math
from types import SimpleNamespace

import pytest

from repro.check.faults import (
    corrupt_bit_counter,
    corrupt_sense_accumulator,
    negate_sense_accumulator,
)
from repro.check.invariants import (
    CheckConfig,
    InvariantChecker,
    InvariantViolation,
    checks_enabled_by_env,
)
from repro.phy.fading import NoFading
from repro.phy.frame import Frame
from repro.phy.medium import Medium
from repro.phy.propagation import FixedRssMatrix
from repro.phy.radio import Radio
from repro.sim.events import EventQueue
from repro.sim.rng import RngStreams
from repro.sim.simulator import Simulator


# ----------------------------------------------------------------------
# Config / env-flag plumbing.


def test_config_validation():
    with pytest.raises(ValueError):
        CheckConfig(resample_every=0)
    with pytest.raises(ValueError):
        CheckConfig(drift_rtol=0.0)
    with pytest.raises(ValueError):
        CheckConfig(queue_audit_every=0)


@pytest.mark.parametrize("value,expected", [
    ("1", True), ("true", True), ("yes", True), ("on", True), ("2", True),
    ("", False), ("0", False), ("false", False), ("no", False),
    ("off", False), ("  ", False), ("FALSE", False),
])
def test_env_flag_parsing(monkeypatch, value, expected):
    monkeypatch.setenv("REPRO_CHECKS", value)
    assert checks_enabled_by_env() is expected


def test_env_flag_unset_means_disabled(monkeypatch):
    monkeypatch.delenv("REPRO_CHECKS", raising=False)
    assert not checks_enabled_by_env()


def test_simulator_checks_argument(monkeypatch):
    monkeypatch.delenv("REPRO_CHECKS", raising=False)
    assert Simulator().checks is None
    assert Simulator(checks=False).checks is None
    assert isinstance(Simulator(checks=True).checks, InvariantChecker)
    checker = InvariantChecker()
    assert Simulator(checks=checker).checks is checker


def test_env_flag_arms_default_checker(monkeypatch):
    monkeypatch.setenv("REPRO_CHECKS", "1")
    assert isinstance(Simulator().checks, InvariantChecker)
    # An explicit False still wins over the environment.
    assert Simulator(checks=False).checks is None


# ----------------------------------------------------------------------
# Kernel hooks.


def test_event_monotonicity_pass_and_fail():
    checker = InvariantChecker()
    event = SimpleNamespace(time=1.0)
    checker.on_event(event, now=1.0)  # same instant: fine
    checker.on_event(SimpleNamespace(time=2.0), now=1.5)  # future: fine
    with pytest.raises(InvariantViolation, match="monotonicity"):
        checker.on_event(SimpleNamespace(time=0.5), now=1.0)


def test_queue_audit_detects_live_counter_drift():
    checker = InvariantChecker(CheckConfig(queue_audit_every=1))
    queue = EventQueue()
    queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    checker.on_event(SimpleNamespace(time=0.0), now=0.0, queue=queue)
    assert checker.counters["queue_audits"] == 1
    queue._live += 1  # simulate a counter-maintenance bug
    with pytest.raises(InvariantViolation, match="live counter"):
        checker.on_event(SimpleNamespace(time=0.0), now=0.0, queue=queue)


def test_checked_run_loop_audits_real_simulation():
    checker = InvariantChecker(CheckConfig(queue_audit_every=2))
    sim = Simulator(checks=checker)
    fired = []
    for i in range(10):
        sim.schedule(0.1 * (i + 1), lambda i=i: fired.append(i))
    sim.run(2.0)
    assert fired == list(range(10))
    assert checker.counters["events"] >= 10
    assert checker.counters["queue_audits"] >= 1


# ----------------------------------------------------------------------
# Accumulator invariants against a live two-radio medium.


def _two_radio_world():
    sim = Simulator()
    rng = RngStreams(7)
    matrix = FixedRssMatrix(default_loss_db=50.0)
    medium = Medium(sim, matrix, fading=NoFading(), rng=rng)
    a = Radio(sim, medium, "a", (0, 0), 2460.0, 0.0, rng=rng)
    b = Radio(sim, medium, "b", (1, 0), 2460.0, 0.0, rng=rng)
    return sim, medium, a, b


def test_resample_passes_on_healthy_accumulator():
    sim, medium, a, b = _two_radio_world()
    frame = Frame(source="a", destination="b", payload_bytes=20)
    medium.begin_transmission(a, frame, 2460.0, 0.0, lambda t: None)
    checker = InvariantChecker()
    checker.resample_radio(b)  # live signal present: sums must agree
    sim.run_until_idle()
    checker.resample_radio(b)  # signal gone: back to the noise floor
    assert checker.counters["accumulator_resamples"] == 2


def test_corrupted_accumulator_caught_with_divergence_report():
    """Acceptance: a deliberately corrupted accumulator is caught and the
    error names the radio, the drift and the first-divergence point."""
    sim, medium, a, b = _two_radio_world()
    frame = Frame(source="a", destination="b", payload_bytes=20)
    medium.begin_transmission(a, frame, 2460.0, 0.0, lambda t: None)
    corrupt_sense_accumulator(b, extra_mw=1e-6)
    checker = InvariantChecker()
    with pytest.raises(InvariantViolation) as excinfo:
        checker.resample_radio(b)
    message = str(excinfo.value)
    assert "'b'" in message and "drift" in message
    assert "first divergence" in message


def test_corruption_caught_mid_run_by_periodic_resample():
    """The periodic resample (not just an explicit call) must catch the
    drift as the simulation keeps running.

    The corruption is injected *between* two overlapping transmissions:
    signal removal rebuilds the sum exactly (erasing any drift), so the
    next incremental *add* is the update that must trip the resample.
    """
    checker = InvariantChecker(CheckConfig(resample_every=1))
    sim, medium, a, b = _two_radio_world()
    rng = RngStreams(8)
    c = Radio(sim, medium, "c", (2, 0), 2460.0, 0.0, rng=rng)
    sim.checks = checker

    def _tx(source):
        frame = Frame(source=source.name, destination="b", payload_bytes=20)
        medium.begin_transmission(source, frame, 2460.0, 0.0, lambda t: None)

    # A 20-byte frame lasts ~1.25 ms: corrupt and start the second
    # transmission while the first is still on the air.
    sim.schedule(0.0100, lambda: _tx(a))
    sim.schedule(0.0105, lambda: corrupt_sense_accumulator(b, 1e-6))
    sim.schedule(0.0108, lambda: _tx(c))  # overlapping add -> resample
    with pytest.raises(InvariantViolation, match="drift"):
        sim.run(1.0)


def test_negative_accumulator_caught():
    sim, medium, a, b = _two_radio_world()
    frame = Frame(source="a", destination="b", payload_bytes=20)
    medium.begin_transmission(a, frame, 2460.0, 0.0, lambda t: None)
    negate_sense_accumulator(b)
    checker = InvariantChecker()
    with pytest.raises(InvariantViolation, match="negative"):
        checker.on_accumulator_update(b)


# ----------------------------------------------------------------------
# Bit conservation.


def _fake_reception(total_bits, errored_bits, airtime_s, rate=250_000):
    reception = SimpleNamespace(
        bit_rate_bps=rate,
        radio=SimpleNamespace(name="rx"),
    )
    outcome = SimpleNamespace(
        frame=SimpleNamespace(frame_id=42),
        total_bits=total_bits,
        errored_bits=errored_bits,
        start_time=0.0,
        end_time=airtime_s,
    )
    return reception, outcome


def test_bit_conservation_pass():
    checker = InvariantChecker()
    # 0.00352 s at 250 kbps = 880 bits exactly.
    reception, outcome = _fake_reception(880, 3, 0.00352)
    checker.on_frame_complete(reception, outcome)
    assert checker.counters["frames"] == 1


def test_bit_conservation_violation_caught():
    checker = InvariantChecker()
    reception, outcome = _fake_reception(879, 0, 0.00352)
    with pytest.raises(InvariantViolation, match="bit conservation"):
        checker.on_frame_complete(reception, outcome)


def test_errored_bits_out_of_range_caught():
    checker = InvariantChecker()
    reception, outcome = _fake_reception(880, 881, 0.00352)
    with pytest.raises(InvariantViolation, match="out of range"):
        checker.on_frame_complete(reception, outcome)


def test_corrupt_bit_counter_caught_in_live_reception():
    """End-to-end: skewing a live reception's sampled-bit counter must be
    caught when the frame finalises under an armed simulator."""
    checker = InvariantChecker()
    sim, medium, a, b = _two_radio_world()
    sim.checks = checker

    def _tx():
        frame = Frame(source="a", destination="b", payload_bytes=20)
        medium.begin_transmission(a, frame, 2460.0, 0.0, lambda t: None)

    def _corrupt():
        assert b.current_reception is not None, \
            "radio should be locked on a frame"
        # Larger than the frame's bit length: the frame-timeline
        # accounting clamps small skews back to the cumulative count,
        # so only an overshoot survives to finalisation.
        corrupt_bit_counter(b.current_reception, 10_000)

    # Corrupt while the ~1.25 ms frame is still on the air.
    sim.schedule(0.0100, _tx)
    sim.schedule(0.0105, _corrupt)
    with pytest.raises(InvariantViolation, match="bit conservation"):
        sim.run(1.0)


# ----------------------------------------------------------------------
# CCA-threshold sanity.


def _fake_adjustor(margin_db=0.0, now=1.0):
    return SimpleNamespace(
        sim=SimpleNamespace(now=now),
        config=SimpleNamespace(margin_db=margin_db),
    )


def test_threshold_nan_and_inf_caught():
    checker = InvariantChecker()
    adjustor = _fake_adjustor()
    with pytest.raises(InvariantViolation, match="non-finite"):
        checker.on_adjustor_threshold(adjustor, float("nan"))
    with pytest.raises(InvariantViolation, match="non-finite"):
        checker.on_adjustor_threshold(adjustor, -math.inf)


def test_threshold_above_strongest_rssi_caught():
    checker = InvariantChecker()
    adjustor = _fake_adjustor(margin_db=2.0)
    checker.on_adjustor_rssi(adjustor, -60.0)
    checker.on_adjustor_rssi(adjustor, -50.0)  # strongest seen
    checker.on_adjustor_threshold(adjustor, -52.0)  # == ceiling: fine
    checker.on_adjustor_threshold(adjustor, -70.0)  # below: fine
    with pytest.raises(InvariantViolation, match="sanity"):
        checker.on_adjustor_threshold(adjustor, -40.0)


def test_threshold_unchecked_without_observations():
    """Before any co-channel packet there is no ceiling to enforce."""
    checker = InvariantChecker()
    checker.on_adjustor_threshold(_fake_adjustor(), -10.0)  # no raise


def test_live_adjustor_feeds_checker_hooks():
    checker = InvariantChecker()
    sim = Simulator(checks=checker)
    from repro.core.adjustor import AdjustorConfig, CcaAdjustor

    adjustor = CcaAdjustor(sim, AdjustorConfig())
    adjustor.observe_rssi(-55.0)
    adjustor.finish_initialization()
    assert checker.counters["thresholds"] == 1
    assert checker._max_rssi[id(adjustor)] == -55.0


def test_summary_reports_counts():
    checker = InvariantChecker()
    checker.on_event(SimpleNamespace(time=1.0), now=0.5)
    text = checker.summary()
    assert "invariants ok" in text and "1 events" in text
