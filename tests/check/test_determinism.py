"""Determinism-checker tests."""

import pytest

from repro.check.determinism import (
    DeterminismReport,
    _first_difference,
    check_determinism,
)


def test_first_difference_points_at_byte():
    text = _first_difference("abcdef", "abcXef")
    assert "byte 3" in text
    assert "abc" in text


def test_first_difference_length_mismatch():
    text = _first_difference("abc", "abcdef")
    assert "byte 3" in text


def test_report_describe_mentions_legs():
    report = DeterminismReport("figX", 1, True, 2)
    assert report.ok
    text = report.describe()
    assert "replay" in text and "jobs 1 vs 2" in text


def test_report_failures_flip_ok():
    report = DeterminismReport("figX", 1, True, 2, replay_ok=False)
    assert not report.ok


@pytest.mark.slow
def test_check_determinism_on_real_exhibit():
    """Acceptance: fixed-seed fig29 is byte-identical on replay and
    across --jobs 1 / --jobs 2 campaign execution."""
    report = check_determinism("fig29", seed=1, fast=True, jobs=2)
    assert report.ok, report.describe()
    assert report.json_bytes > 0
    assert "byte-identical" in report.describe()


def test_unknown_exhibit_raises_key_error():
    with pytest.raises(KeyError):
        check_determinism("nope")
