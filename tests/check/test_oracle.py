"""Differential-oracle tests: trace comparison and end-to-end diffs."""

from types import SimpleNamespace

import pytest

from repro.check.oracle import (
    DiffReport,
    TraceDivergence,
    _compare_traces,
    diff_exhibit,
    run_traced,
)
from repro.sim.trace import TraceRecord


def _trace(records):
    return SimpleNamespace(records=records)


def rec(time, kind, **fields):
    return TraceRecord(time, kind, fields)


# ----------------------------------------------------------------------
# Pure comparison logic.


def test_identical_traces_compare_clean():
    records = [rec(0.1, "tx_start", frame=1), rec(0.2, "tx_end", frame=1)]
    compared, divergence = _compare_traces([_trace(records)],
                                           [_trace(list(records))])
    assert compared == 2 and divergence is None


def test_first_divergence_reported_with_context():
    fast = [rec(0.1, "a", x=1), rec(0.2, "b", x=2), rec(0.3, "c", x=3)]
    ref = [rec(0.1, "a", x=1), rec(0.2, "b", x=2), rec(0.3, "c", x=99)]
    compared, divergence = _compare_traces([_trace(fast)], [_trace(ref)])
    assert compared == 3
    assert divergence.deployment_index == 0
    assert divergence.record_index == 2
    assert "x=3" in divergence.fast_record
    assert "x=99" in divergence.reference_record
    # Context shows the records leading up to the divergence.
    text = divergence.describe()
    assert "first divergence" in text
    assert "x=2" in text  # preceding record included as context


def test_length_mismatch_is_divergence():
    fast = [rec(0.1, "a", x=1), rec(0.2, "b", x=2)]
    ref = [rec(0.1, "a", x=1)]
    _, divergence = _compare_traces([_trace(fast)], [_trace(ref)])
    assert divergence is not None
    assert divergence.record_index == 1
    assert divergence.reference_record is None  # reference trace ended


def test_divergence_in_second_deployment_indexed_correctly():
    same = [rec(0.1, "a", x=1)]
    fast2 = [rec(0.5, "b", y=1)]
    ref2 = [rec(0.5, "b", y=2)]
    _, divergence = _compare_traces(
        [_trace(same), _trace(fast2)], [_trace(list(same)), _trace(ref2)]
    )
    assert divergence.deployment_index == 1
    assert divergence.record_index == 0


def test_field_order_does_not_matter():
    fast = [TraceRecord(0.1, "a", {"x": 1, "y": 2})]
    ref = [TraceRecord(0.1, "a", {"y": 2, "x": 1})]
    _, divergence = _compare_traces([_trace(fast)], [_trace(ref)])
    assert divergence is None


def test_report_ok_and_describe():
    report = DiffReport("figX", 1, True, deployments=2, records_compared=10)
    assert report.ok
    assert "figX" in report.describe()
    report.divergence = TraceDivergence(0, 3, "f", "r")
    assert not report.ok


# ----------------------------------------------------------------------
# End-to-end on a real (cheap) exhibit.


def test_run_traced_collects_deployment_traces():
    table, traces = run_traced("fig29", seed=1, fast=True)
    assert table.rows
    assert traces, "fig29 builds at least one deployment"
    assert all(t.records for t in traces)


@pytest.mark.slow
def test_diff_exhibit_fast_vs_reference_identical():
    """Acceptance: the PR-2 fast path is trace-identical to brute force."""
    report = diff_exhibit("fig29", seed=1, fast=True)
    assert report.ok, report.describe()
    assert report.records_compared > 100
    assert "invariants ok" in report.invariant_summaries[0]
    text = report.describe()
    assert "trace-identical" in text


def test_unknown_exhibit_raises_key_error():
    with pytest.raises(KeyError):
        diff_exhibit("nope")
