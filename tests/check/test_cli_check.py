"""CLI surface of ``python -m repro check``."""

import pytest

from repro.__main__ import main


def test_check_diff_unknown_exhibit(capsys):
    assert main(["check", "diff", "fig999"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_check_determinism_unknown_exhibit(capsys):
    assert main(["check", "determinism", "fig999"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


@pytest.mark.slow
def test_check_diff_cli_on_fast_exhibit(capsys):
    assert main(["check", "diff", "fig29", "--fast"]) == 0
    out = capsys.readouterr().out
    assert "trace-identical" in out
    assert "invariants ok" in out


@pytest.mark.slow
def test_check_determinism_cli_on_fast_exhibit(capsys):
    assert main(["check", "determinism", "fig29", "--fast",
                 "--jobs", "2"]) == 0
    out = capsys.readouterr().out
    assert "byte-identical" in out


@pytest.mark.slow
def test_check_diff_cli_band_sharding(capsys):
    """The --band-sharding flag gates the sharded fast leg against the
    plain scalar reference leg."""
    assert main(["check", "diff", "fig29", "--fast", "--band-sharding"]) == 0
    out = capsys.readouterr().out
    assert "trace-identical" in out
