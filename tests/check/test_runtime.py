"""CheckSession plumbing: ambient activation and Deployment wiring."""

import pytest

from repro.check.invariants import InvariantChecker
from repro.check.runtime import CheckSession, active_session
from repro.net.deployment import Deployment
from repro.net.topology import fixed_power, one_region_topology
from repro.phy.spectrum import EVALUATION_BAND, ChannelPlan
from repro.sim.rng import RngStreams


def make_specs(seed=1, cfd=5.0):
    plan = ChannelPlan.inclusive(EVALUATION_BAND, cfd)
    rng = RngStreams(seed).stream("topology")
    return one_region_topology(plan, rng, power=fixed_power(0.0))


def test_no_session_by_default():
    assert active_session() is None


def test_session_lifecycle():
    session = CheckSession()
    with session:
        assert active_session() is session
    assert active_session() is None


def test_sessions_do_not_nest():
    with CheckSession():
        with pytest.raises(RuntimeError, match="nest"):
            CheckSession().__enter__()
    assert active_session() is None


def test_session_cleared_on_exception():
    with pytest.raises(ValueError):
        with CheckSession():
            raise ValueError("boom")
    assert active_session() is None


def test_deployment_outside_session_untouched():
    deployment = Deployment(make_specs(), seed=1)
    assert deployment.sim.trace.enabled is False  # default disabled trace
    assert deployment.sim.checks is None
    assert deployment.medium.reference_accumulators is False
    assert deployment.medium._gain_cache is not None


def test_deployment_inside_session_captures_trace():
    session = CheckSession()
    with session:
        deployment = Deployment(make_specs(), seed=1)
    assert len(session.traces) == 1
    assert session.traces[0] is deployment.sim.trace
    assert deployment.sim.trace.enabled


def test_reference_session_switches_medium_paths():
    with CheckSession(reference=True) as session:
        deployment = Deployment(make_specs(), seed=1)
    assert deployment.medium.reference_accumulators is True
    assert deployment.medium._gain_cache is None  # link cache disabled
    with CheckSession(reference=False):
        fast = Deployment(make_specs(), seed=1)
    assert fast.medium.reference_accumulators is False
    assert fast.medium._gain_cache is not None


def test_session_checker_armed_on_simulator():
    checker = InvariantChecker()
    with CheckSession(checker=checker):
        deployment = Deployment(make_specs(), seed=1)
    assert deployment.sim.checks is checker


def test_explicit_link_cache_wins_over_session():
    with CheckSession(reference=True):
        deployment = Deployment(make_specs(), seed=1, link_cache=True)
    # The caller's explicit choice beats the session's reference flag
    # for the fan-out path; the accumulators still follow the session.
    assert deployment.medium._gain_cache is not None
    assert deployment.medium.reference_accumulators is True


def test_capture_traces_false_leaves_trace_alone():
    with CheckSession(capture_traces=False) as session:
        deployment = Deployment(make_specs(), seed=1)
    assert session.traces == []
    assert deployment.sim.trace.enabled is False
