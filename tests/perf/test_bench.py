"""Tests for the kernel benchmark suite and its CI regression gate."""

import copy
import json

import pytest

from repro.perf.bench import (
    BEFORE_OPTIMISATION,
    calibrate,
    check_against_baseline,
    load_baseline,
    run_bench_suite,
    write_baseline,
)

QUICK_BENCHES = {
    "event_queue",
    "event_cancel_churn",
    "medium_fanout",
    "fanout_1k",
    "cca_probe",
    "cca_probe_brute",
    "obs_off_mini_run",
    "obs_on_mini_run",
    "routing_mini_run",
}


@pytest.fixture(scope="module")
def quick_doc():
    """One quick suite run shared by every test in this module."""
    return run_bench_suite(quick=True, verbose=False)


def test_suite_document_structure(quick_doc):
    assert quick_doc["schema"] == 1
    assert quick_doc["quick"] is True
    assert quick_doc["calibration_s"] > 0.0
    assert set(quick_doc["benches"]) == QUICK_BENCHES  # fig19 skipped in quick
    for name, result in quick_doc["benches"].items():
        assert result["wall_s"] > 0.0, name
        assert result["n"] > 0, name
        assert result["per_op_us"] == pytest.approx(
            result["wall_s"] / result["n"] * 1e6
        )
    assert quick_doc["before"] == BEFORE_OPTIMISATION


def test_cca_probe_speedup_meets_acceptance_floor(quick_doc):
    """ISSUE acceptance: the incremental sensing-path probe must be at
    least 5x faster than the brute-force re-summation it replaced."""
    assert quick_doc["derived"]["cca_probe_speedup"] >= 5.0


def test_obs_guard_cost_is_benchmarked(quick_doc):
    """Both telemetry regimes are measured; the derived ratio relates
    the fully-instrumented run to the guard-only (disabled) run."""
    off = quick_doc["benches"]["obs_off_mini_run"]
    on = quick_doc["benches"]["obs_on_mini_run"]
    ratio = quick_doc["derived"]["obs_enabled_overhead_ratio"]
    assert ratio == pytest.approx(on["per_op_us"] / off["per_op_us"])
    assert ratio > 0.0


def test_baseline_roundtrip(tmp_path, quick_doc):
    path = tmp_path / "BENCH_kernel.json"
    write_baseline(quick_doc, str(path))
    loaded = load_baseline(str(path))
    assert loaded["benches"].keys() == quick_doc["benches"].keys()
    assert loaded["calibration_s"] == quick_doc["calibration_s"]
    # The file is committed, so keep it diff-friendly.
    text = path.read_text()
    assert text.endswith("\n")
    assert json.loads(text) == loaded


def test_check_against_own_baseline_passes(quick_doc):
    assert check_against_baseline(quick_doc, quick_doc, verbose=False)


def test_check_detects_regression(quick_doc):
    baseline = copy.deepcopy(quick_doc)
    for result in baseline["benches"].values():
        result["per_op_us"] /= 2.0  # pretend the past was twice as fast
    assert not check_against_baseline(quick_doc, baseline, verbose=False)


def test_check_tolerance_allows_bounded_drift(quick_doc):
    baseline = copy.deepcopy(quick_doc)
    for result in baseline["benches"].values():
        result["per_op_us"] /= 1.10  # +10% drift, inside the 25% gate
    assert check_against_baseline(quick_doc, baseline, tolerance=0.25,
                                  verbose=False)
    assert not check_against_baseline(quick_doc, baseline, tolerance=0.05,
                                      verbose=False)


def test_check_normalises_by_machine_calibration(quick_doc):
    """A slower machine (larger calibration time) must not flag a
    regression: per-op times are scaled by the calibration ratio."""
    baseline = copy.deepcopy(quick_doc)
    # Baseline machine was 3x faster than us at plain Python, and its
    # benches were 3x faster too: after normalisation that is a wash.
    baseline["calibration_s"] = quick_doc["calibration_s"] / 3.0
    for result in baseline["benches"].values():
        result["per_op_us"] /= 3.0
    assert check_against_baseline(quick_doc, baseline, verbose=False)


def test_check_skips_unknown_benchmarks(quick_doc):
    baseline = copy.deepcopy(quick_doc)
    baseline["benches"]["retired_bench"] = {"per_op_us": 1e-9, "wall_s": 1.0,
                                            "n": 1}
    assert check_against_baseline(quick_doc, baseline, verbose=False)


def test_calibration_is_positive_and_repeatable():
    a = calibrate(rounds=1)
    b = calibrate(rounds=1)
    assert a > 0.0 and b > 0.0
    assert max(a, b) / min(a, b) < 10.0  # same machine, same ballpark


def test_committed_baseline_is_loadable_and_current():
    """The repository ships a BENCH_kernel.json the CI gate compares
    against; it must parse and cover the quick-suite benchmarks."""
    from pathlib import Path

    path = Path(__file__).resolve().parents[2] / "BENCH_kernel.json"
    baseline = load_baseline(str(path))
    assert QUICK_BENCHES <= set(baseline["benches"])
    assert baseline["calibration_s"] > 0.0


def test_only_selects_named_benches():
    doc = run_bench_suite(quick=True, verbose=False, only=["event_queue"])
    assert set(doc["benches"]) == {"event_queue"}
    # Derived metrics needing absent benches are simply omitted.
    assert "cca_probe_speedup" not in doc["derived"]


def test_only_can_select_heavy_benches_in_quick_mode():
    """Heavy tiers (mini_run_50k_smoke) are reachable via ``only`` even
    under the quick profile, which otherwise skips them."""
    from repro.perf.bench import run_bench_suite as suite

    # Don't actually run the 50k scene here — just verify the name
    # resolves (unknown names raise before any bench executes).
    with pytest.raises(KeyError):
        suite(quick=True, verbose=False, only=["mini_run_50k_smoke", "nope"])


def test_only_unknown_bench_raises_keyerror():
    with pytest.raises(KeyError, match="unknown bench"):
        run_bench_suite(quick=True, verbose=False, only=["no_such_bench"])


def test_document_carries_generation_stamp(quick_doc):
    assert quick_doc["before_note"]
    # ISO-8601 UTC, e.g. 2026-08-08T12:34:56Z
    import re

    assert re.fullmatch(
        r"\d{4}-\d{2}-\d{2}T\d{2}:\d{2}:\d{2}Z", quick_doc["generated_at"]
    )


def test_compare_against_baseline_reports_deltas(quick_doc):
    from repro.perf.bench import compare_against_baseline

    baseline = copy.deepcopy(quick_doc)
    for result in baseline["benches"].values():
        result["per_op_us"] *= 2.0  # past was twice as slow
    deltas = compare_against_baseline(quick_doc, baseline, verbose=False)
    assert set(deltas) == set(quick_doc["benches"])
    for delta in deltas.values():
        assert delta == pytest.approx(-0.5)


def test_compare_normalises_by_machine_calibration(quick_doc):
    from repro.perf.bench import compare_against_baseline

    baseline = copy.deepcopy(quick_doc)
    baseline["calibration_s"] = quick_doc["calibration_s"] / 2.0
    for result in baseline["benches"].values():
        result["per_op_us"] /= 2.0
    deltas = compare_against_baseline(quick_doc, baseline, verbose=False)
    for delta in deltas.values():
        assert delta == pytest.approx(0.0)


def test_write_baseline_folds_previous_measurement(tmp_path, quick_doc):
    """Each regeneration records the previous per-bench measurement in a
    ``baseline`` field, fixing the stale-''before'' problem."""
    path = tmp_path / "BENCH_kernel.json"
    first = copy.deepcopy(quick_doc)
    write_baseline(first, str(path))
    on_disk = load_baseline(str(path))
    for bench in on_disk["benches"].values():
        assert bench["measured_at"] == first["generated_at"]
        assert "baseline" not in bench  # no history on first write

    second = copy.deepcopy(quick_doc)
    second["generated_at"] = "2099-01-01T00:00:00Z"
    for result in second["benches"].values():
        result["per_op_us"] *= 1.5
    write_baseline(second, str(path))
    on_disk = load_baseline(str(path))
    for name, bench in on_disk["benches"].items():
        assert bench["measured_at"] == "2099-01-01T00:00:00Z"
        rolled = bench["baseline"]
        assert rolled["per_op_us"] == pytest.approx(
            quick_doc["benches"][name]["per_op_us"]
        )
        assert rolled["measured_at"] == first["generated_at"]
        assert rolled["calibration_s"] == first["calibration_s"]
