"""Tests for ``repro perf profile`` and the perf CLI plumbing."""

import pstats

import pytest

from repro.__main__ import main
from repro.perf import profile_exhibit


def test_profile_exhibit_returns_hotspot_table():
    report = profile_exhibit("fig29", seed=1, fast=True, top=5)
    assert "function calls" in report
    assert "cumtime" in report  # pstats header
    # The hotspots are the repro package's own code, not the harness.
    assert "repro" in report


def test_profile_exhibit_dumps_raw_stats(tmp_path):
    out = tmp_path / "fig29.pstats"
    profile_exhibit("fig29", fast=True, top=3, out=str(out))
    stats = pstats.Stats(str(out))  # parses -> it is a valid pstats dump
    assert stats.total_calls > 0


def test_profile_exhibit_rejects_bad_sort():
    with pytest.raises(ValueError, match="sort"):
        profile_exhibit("fig29", sort="wallclock")


def test_profile_exhibit_unknown_exhibit_raises_keyerror():
    with pytest.raises(KeyError):
        profile_exhibit("fig999")


# ----------------------------------------------------------------------
# CLI plumbing
# ----------------------------------------------------------------------
def test_cli_perf_profile_unknown_exhibit_exits_2(capsys):
    assert main(["perf", "profile", "fig999"]) == 2
    assert "fig999" in capsys.readouterr().err


def test_cli_perf_profile_smoke(capsys):
    assert main(["perf", "profile", "fig29", "--fast", "--top", "3"]) == 0
    assert "function calls" in capsys.readouterr().out


def test_cli_perf_bench_missing_baseline_exits_2(tmp_path, capsys):
    code = main([
        "perf", "bench", "--quick",
        "--check", str(tmp_path / "nope.json"),
    ])
    assert code == 2
    assert "not found" in capsys.readouterr().err


@pytest.mark.slow
def test_cli_perf_bench_check_against_fresh_baseline(tmp_path, capsys):
    """Write a quick baseline, then gate a second run against it.

    The generous ``--tolerance`` is deliberate: this asserts the CLI
    plumbing (write -> load -> compare -> exit code), not machine speed —
    the test box may be under arbitrary load from parallel test workers.
    """
    out = tmp_path / "baseline.json"
    assert main(["perf", "bench", "--quick", "--out", str(out)]) == 0
    assert out.exists()
    assert main([
        "perf", "bench", "--quick", "--check", str(out),
        "--tolerance", "5.0",
    ]) == 0
    assert "within tolerance" in capsys.readouterr().out


def test_profile_scene_returns_hotspot_table():
    from repro.perf import profile_scene

    report = profile_scene(64, sim_s=0.002, top=5)
    assert "function calls" in report


def test_cli_perf_profile_scene_smoke(capsys):
    assert main(["perf", "profile", "--scene", "64", "--sim-s", "0.002"]) == 0
    assert "function calls" in capsys.readouterr().out


def test_cli_perf_profile_needs_exactly_one_target(capsys):
    assert main(["perf", "profile"]) == 2
    assert "--scene" in capsys.readouterr().err
    assert main(["perf", "profile", "fig29", "--scene", "64"]) == 2
