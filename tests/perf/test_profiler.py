"""Tests for ``repro perf profile`` and the perf CLI plumbing."""

import pstats

import pytest

from repro.__main__ import main
from repro.perf import profile_exhibit


def test_profile_exhibit_returns_hotspot_table():
    report = profile_exhibit("fig29", seed=1, fast=True, top=5)
    assert "function calls" in report
    assert "cumtime" in report  # pstats header
    # The hotspots are the repro package's own code, not the harness.
    assert "repro" in report


def test_profile_exhibit_dumps_raw_stats(tmp_path):
    out = tmp_path / "fig29.pstats"
    profile_exhibit("fig29", fast=True, top=3, out=str(out))
    stats = pstats.Stats(str(out))  # parses -> it is a valid pstats dump
    assert stats.total_calls > 0


def test_profile_exhibit_rejects_bad_sort():
    with pytest.raises(ValueError, match="sort"):
        profile_exhibit("fig29", sort="wallclock")


def test_profile_exhibit_unknown_exhibit_raises_keyerror():
    with pytest.raises(KeyError):
        profile_exhibit("fig999")


# ----------------------------------------------------------------------
# CLI plumbing
# ----------------------------------------------------------------------
def test_cli_perf_profile_unknown_exhibit_exits_2(capsys):
    assert main(["perf", "profile", "fig999"]) == 2
    assert "fig999" in capsys.readouterr().err


def test_cli_perf_profile_smoke(capsys):
    assert main(["perf", "profile", "fig29", "--fast", "--top", "3"]) == 0
    assert "function calls" in capsys.readouterr().out


def test_cli_perf_bench_missing_baseline_exits_2(tmp_path, capsys):
    code = main([
        "perf", "bench", "--quick",
        "--check", str(tmp_path / "nope.json"),
    ])
    assert code == 2
    assert "not found" in capsys.readouterr().err


@pytest.mark.slow
def test_cli_perf_bench_check_against_fresh_baseline(tmp_path, capsys):
    """Write a quick baseline, then gate a second run against it.

    The generous ``--tolerance`` is deliberate: this asserts the CLI
    plumbing (write -> load -> compare -> exit code), not machine speed —
    the test box may be under arbitrary load from parallel test workers.
    """
    out = tmp_path / "baseline.json"
    assert main(["perf", "bench", "--quick", "--out", str(out)]) == 0
    assert out.exists()
    assert main([
        "perf", "bench", "--quick", "--check", str(out),
        "--tolerance", "5.0",
    ]) == 0
    assert "within tolerance" in capsys.readouterr().out


def test_profile_scene_returns_hotspot_table():
    from repro.perf import profile_scene

    report = profile_scene(64, sim_s=0.002, top=5)
    assert "function calls" in report


def test_cli_perf_profile_scene_smoke(capsys):
    assert main(["perf", "profile", "--scene", "64", "--sim-s", "0.002"]) == 0
    assert "function calls" in capsys.readouterr().out


def test_cli_perf_profile_needs_exactly_one_target(capsys):
    assert main(["perf", "profile"]) == 2
    assert "--scene" in capsys.readouterr().err
    assert main(["perf", "profile", "fig29", "--scene", "64"]) == 2


# ----------------------------------------------------------------------
# Structured (--json) snapshots
# ----------------------------------------------------------------------
def test_profile_exhibit_writes_json_snapshot(tmp_path):
    import json

    out = tmp_path / "fig29.json"
    profile_exhibit("fig29", fast=True, top=4, json_out=str(out))
    snapshot = json.loads(out.read_text())
    assert snapshot["schema"] == 1
    assert snapshot["sort"] == "tottime"
    assert snapshot["total_calls"] > 0
    assert snapshot["total_time_s"] > 0.0
    assert 0 < len(snapshot["functions"]) <= 4
    # Records are sorted by the chosen key, descending.
    costs = [f["tottime_s"] for f in snapshot["functions"]]
    assert costs == sorted(costs, reverse=True)
    for record in snapshot["functions"]:
        assert "(" in record["function"]
        assert record["ncalls"] >= 1


def test_profile_json_respects_sort_key(tmp_path):
    import json

    out = tmp_path / "cum.json"
    profile_exhibit("fig29", fast=True, top=6, sort="cumtime",
                    json_out=str(out))
    snapshot = json.loads(out.read_text())
    assert snapshot["sort"] == "cumtime"
    costs = [f["cumtime_s"] for f in snapshot["functions"]]
    assert costs == sorted(costs, reverse=True)


def test_cli_perf_profile_json_smoke(tmp_path, capsys):
    import json

    out = tmp_path / "scene.json"
    assert main([
        "perf", "profile", "--scene", "64", "--sim-s", "0.002",
        "--json", str(out),
    ]) == 0
    assert json.loads(out.read_text())["functions"]
    assert "function calls" in capsys.readouterr().out


# ----------------------------------------------------------------------
# Bench CLI: --only and --compare
# ----------------------------------------------------------------------
def test_cli_perf_bench_only_unknown_exits_2(capsys):
    assert main(["perf", "bench", "--only", "no_such_bench"]) == 2
    assert "no_such_bench" in capsys.readouterr().err


def test_cli_perf_bench_compare_missing_baseline_exits_2(tmp_path, capsys):
    code = main([
        "perf", "bench", "--quick", "--only", "event_queue",
        "--compare", str(tmp_path / "nope.json"),
    ])
    assert code == 2
    assert "not found" in capsys.readouterr().err


def test_cli_perf_bench_only_with_compare(tmp_path, capsys):
    """--only restricts the suite; --compare prints per-bench deltas
    against a previous document without gating the exit code."""
    out = tmp_path / "base.json"
    assert main([
        "perf", "bench", "--only", "event_queue", "--out", str(out),
    ]) == 0
    capsys.readouterr()
    assert main([
        "perf", "bench", "--only", "event_queue", "--compare", str(out),
        "--out", str(tmp_path / "second.json"),
    ]) == 0
    printed = capsys.readouterr().out
    assert "per-bench deltas" in printed
    assert "event_queue" in printed
    assert "%" in printed
