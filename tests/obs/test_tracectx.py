"""Trace propagation: context round trips, span recording, and the
merged per-campaign Chrome trace document (Perfetto structure)."""

import json

from repro.obs.tracectx import (
    SpanRecorder,
    TraceContext,
    campaign_trace,
    export_sim_spans,
)
from tests.obs.rig import run_rig

from repro.obs.recorder import Observability


def test_trace_context_round_trip():
    ctx = TraceContext("c0001-abc").child("fig04@s2")
    assert ctx.campaign_id == "c0001-abc" and ctx.job_id == "fig04@s2"
    assert TraceContext.from_dict(ctx.to_dict()) == ctx
    assert TraceContext.from_dict({}) == TraceContext("", "")


def test_span_recorder_records_and_bounds():
    recorder = SpanRecorder(max_spans=2)
    recorder.add("submit", 1.0, 2.0)
    with recorder.span("execute", job="a@s1", attempt=1):
        pass
    recorder.add("overflow", 3.0, 4.0)
    assert len(recorder) == 2
    assert recorder.dropped == 1
    assert recorder.spans[0] == {"name": "submit", "job": "", "t0": 1.0,
                                 "t1": 2.0}
    execute = recorder.for_job("a@s1")[0]
    assert execute["name"] == "execute"
    assert execute["args"] == {"attempt": 1}
    assert execute["t1"] >= execute["t0"]


def _server_spans():
    return [
        {"name": "submit", "job": "", "t0": 100.0, "t1": 100.001},
        {"name": "queue_wait", "job": "a@s1", "t0": 100.001, "t1": 100.002},
        {"name": "execute", "job": "a@s1", "t0": 100.002, "t1": 100.502},
    ]


def _job_traces():
    return {
        "a@s1": {
            "campaign": "c0001", "job": "a@s1",
            "wall": [{"name": "execute", "t0": 100.010, "t1": 100.500}],
            "sim": [
                {"kind": "tx", "node": "N0.s0", "t0": 0.0, "t1": 0.004,
                 "run": 0, "args": {"frame": 1}},
                {"kind": "rx", "node": "N0.r0", "t0": 0.0, "t1": 0.004,
                 "run": 0},
            ],
        },
    }


def test_campaign_trace_structure_loads_like_perfetto():
    doc = campaign_trace("c0001", _server_spans(), _job_traces())
    # Must be a JSON-serialisable trace_event document.
    json.dumps(doc)
    assert doc["displayTimeUnit"] == "ms"
    assert doc["metadata"]["campaign"] == "c0001"
    events = doc["traceEvents"]
    assert all(e["ph"] in ("X", "M") for e in events)
    # Server track: pid 0 with a process_name and per-job thread lanes.
    metas = [e for e in events if e["ph"] == "M"]
    names = {(e["pid"], e["tid"], e["name"]): e["args"]["name"]
             for e in metas}
    assert names[(0, 0, "process_name")] == "server: campaign c0001"
    assert names[(0, 1, "thread_name")] == "a@s1"
    assert names[(1, 0, "process_name")] == "worker: a@s1"
    # Duration events: µs timestamps relative to the earliest wall t0.
    durations = [e for e in events if e["ph"] == "X"]
    submit = next(e for e in durations if e["name"] == "submit")
    assert submit["pid"] == 0 and submit["tid"] == 0
    assert submit["ts"] == 0.0
    assert submit["dur"] == (100.001 - 100.0) * 1e6
    execute = next(e for e in durations
                   if e["name"] == "execute" and e["pid"] == 0)
    assert execute["tid"] == 1
    assert execute["ts"] == (100.002 - 100.0) * 1e6
    # Sim spans land offset to the job's wall execute start (100.010).
    tx = next(e for e in durations if e["name"] == "tx")
    assert tx["pid"] == 1 and tx["cat"] == "sim"
    assert tx["ts"] == (100.010 - 100.0) * 1e6
    assert tx["dur"] == 0.004 * 1e6
    assert tx["args"] == {"frame": 1}
    # All timestamps non-negative (Perfetto renders negatives off-screen).
    assert all(e["ts"] >= 0 for e in durations)


def test_campaign_trace_empty_inputs():
    doc = campaign_trace("c0", [], {})
    assert doc["traceEvents"][0]["ph"] == "M"
    assert all(e["ph"] == "M" for e in doc["traceEvents"])
    json.dumps(doc)


def test_export_sim_spans_from_real_recorder():
    obs = Observability(sample_interval_s=None)
    run_rig(seed=1, obs=obs, run_s=0.02)
    export = export_sim_spans([obs])
    assert export["sim_dropped"] == 0
    assert len(export["sim"]) == len(obs.spans)
    assert export["sim"], "the rig should record spans"
    first = export["sim"][0]
    assert set(first) >= {"kind", "node", "run", "t0", "t1"}
    assert first["run"] == 0
    json.dumps(export)


def test_export_sim_spans_caps_and_keeps_newest():
    obs = Observability(sample_interval_s=None)
    run_rig(seed=1, obs=obs, run_s=0.02)
    total = len(obs.spans)
    assert total > 5
    export = export_sim_spans([obs], max_spans=5)
    assert len(export["sim"]) == 5
    assert export["sim_dropped"] == total - 5
    # Newest retained: the export's last span is the recorder's last span.
    last = list(obs.spans)[-1]
    assert export["sim"][-1]["t1"] == last.end
