"""Prometheus exposition: render → parse → validate round trips, plus
the worker-snapshot merge the campaign server uses."""

import math

import pytest

from repro.obs.exposition import (
    merge_worker_snapshot,
    parse_metric_key,
    parse_prometheus,
    render_prometheus,
    sanitize_metric_name,
    validate_prometheus,
)
from repro.obs.metrics import MetricsRegistry, metric_key


def populated_registry():
    registry = MetricsRegistry()
    registry.counter("server.jobs.completed").inc(5)
    registry.counter("tx.frames", channel=2412.0, node="N0.s0").inc(17)
    registry.gauge("server.uptime_s", lambda: 42.25)
    hist = registry.histogram("server.job.elapsed_s", exhibit="fig04")
    for value in (0.1, 0.2, 0.3, 0.4):
        hist.observe(value)
    registry.timeseries("adjustor.threshold_dbm", node="N0.s0").append(
        0.01, -77.0)
    return registry


def test_render_parse_round_trip():
    text = render_prometheus(populated_registry())
    samples = parse_prometheus(text)
    by_name = {}
    for name, labels, value in samples:
        by_name.setdefault(name, []).append((labels, value))
    assert by_name["server_jobs_completed"] == [({}, 5.0)]
    assert by_name["tx_frames"] == [
        ({"channel": "2412.0", "node": "N0.s0"}, 17.0)]
    assert by_name["server_uptime_s"] == [({}, 42.25)]
    assert by_name["adjustor_threshold_dbm"] == [({"node": "N0.s0"}, -77.0)]
    # Histogram renders as a summary: quantiles + _sum/_count.
    quantiles = {
        labels["quantile"]: value
        for labels, value in by_name["server_job_elapsed_s"]
    }
    assert quantiles == {"0.5": 0.2, "0.95": 0.4, "0.99": 0.4}
    assert by_name["server_job_elapsed_s_sum"][0][1] == pytest.approx(1.0)
    assert by_name["server_job_elapsed_s_count"][0][1] == 4.0


def test_validator_accepts_rendered_output():
    text = render_prometheus(populated_registry())
    # The acceptance-criteria validator: every sample typed, label names
    # legal, no duplicate TYPE lines.
    assert validate_prometheus(text) == len(parse_prometheus(text))


def test_validator_rejects_malformed_text():
    with pytest.raises(ValueError):
        parse_prometheus("9bad_name 1\n")
    with pytest.raises(ValueError):
        parse_prometheus('metric{unterminated="x 1\n')
    with pytest.raises(ValueError):
        validate_prometheus("untyped_sample 1\n")  # no # TYPE family
    with pytest.raises(ValueError):
        validate_prometheus(
            "# TYPE a counter\n# TYPE a counter\na 1\n")  # duplicate TYPE
    with pytest.raises(ValueError):
        validate_prometheus("# TYPE a flavour\na 1\n")  # bad type word


def test_label_value_escaping_round_trips():
    registry = MetricsRegistry()
    tricky = 'quo"te\\slash\nnewline'
    registry.counter("c", label=tricky).inc(1)
    text = render_prometheus(registry)
    ((name, labels, value),) = parse_prometheus(text)
    assert name == "c" and value == 1.0
    assert labels["label"] == tricky
    assert validate_prometheus(text) == 1


def test_non_finite_values_render_and_parse():
    registry = MetricsRegistry()
    registry.gauge("g.inf", lambda: float("inf"))
    registry.gauge("g.ninf", lambda: float("-inf"))
    registry.gauge("g.nan", lambda: float("nan"))
    samples = {n: v for n, _l, v in parse_prometheus(
        render_prometheus(registry))}
    assert samples["g_inf"] == float("inf")
    assert samples["g_ninf"] == float("-inf")
    assert math.isnan(samples["g_nan"])


def test_sanitize_metric_name():
    assert sanitize_metric_name("server.jobs.in_flight") == \
        "server_jobs_in_flight"
    assert sanitize_metric_name("2fast") == "_2fast"
    assert sanitize_metric_name("a-b c") == "a_b_c"
    assert sanitize_metric_name("") == "_"


def test_parse_metric_key_inverts_metric_key():
    labels = (("channel", "2412.0"), ("node", "N0.s0"))
    key = metric_key("tx.frames", labels)
    assert parse_metric_key(key) == ("tx.frames", dict(labels))
    assert parse_metric_key("bare") == ("bare", {})


def test_merge_worker_snapshot_counters_and_histograms():
    registry = MetricsRegistry()
    snapshot = {
        "counters": {"tx.frames{channel=2412.0}": 7.0, "rx.delivered": 3.0},
        "histograms": {
            # dBm summary: negative total — must merge without tripping
            # the monotonic-counter guard.
            "rx.rssi_dbm": {"count": 4, "mean": -70.0},
            "mac.backoff_s": {"count": 2, "total": 0.5, "mean": 0.25},
        },
    }
    merge_worker_snapshot(registry, snapshot)
    merge_worker_snapshot(registry, snapshot)  # second job: sums add
    counters = {
        metric_key(c.name, c.labels): c.value for c in registry.counters()
    }
    assert counters["worker.tx.frames{channel=2412.0}"] == 14.0
    assert counters["worker.rx.delivered"] == 6.0
    assert counters["worker.mac.backoff_s.count"] == 4.0
    assert counters["worker.mac.backoff_s.sum"] == pytest.approx(1.0)
    # total reconstructed from mean * count when absent
    assert counters["worker.rx.rssi_dbm.sum"] == pytest.approx(-560.0)
    text = render_prometheus(registry)
    assert validate_prometheus(text) > 0
    assert "worker_rx_rssi_dbm_sum -560" in text


def test_empty_registry_renders_empty():
    assert render_prometheus(MetricsRegistry()) == ""
    assert validate_prometheus("") == 0
