"""Unit tests for the bounded span log."""

from repro.obs.spans import Span, SpanLog


def _span(kind="tx", node="n0", start=0.0, end=1.0, **args):
    return Span(kind, node, start, end, args or None)


def test_span_duration_and_args():
    span = _span(start=0.25, end=0.75, frame=7)
    assert span.duration == 0.5
    assert span.args == {"frame": 7}
    assert _span().args == {}


def test_spanlog_records_and_filters():
    log = SpanLog()
    log.record(_span("tx", "a"))
    log.record(_span("rx", "b"))
    log.record(_span("tx", "b"))
    assert len(log) == 3
    assert [s.node for s in log.of_kind("tx")] == ["a", "b"]
    assert [s.kind for s in log.for_node("b")] == ["rx", "tx"]
    assert log.nodes() == ["a", "b"]


def test_spanlog_bounded_drops_oldest_and_counts():
    log = SpanLog(max_spans=2)
    log.record(_span(node="a"))
    log.record(_span(node="b"))
    assert log.dropped == 0
    log.record(_span(node="c"))
    assert log.dropped == 1
    assert [s.node for s in log] == ["b", "c"]
    # filters see only what's retained
    assert log.nodes() == ["b", "c"]
