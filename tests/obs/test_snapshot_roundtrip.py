"""Metrics-snapshot round trips: a standalone ``registry_snapshot``
(what the server keeps) and the worker → parent leg through pickled
pool payloads, including the awkward shapes — non-string label values,
empty histograms, gauges read at snapshot time.

The probe runner lives at module level (``tests`` is a package) so it
stays picklable into pool workers.
"""

import json
import pickle

import pytest

from repro.campaign.executor import execute_payload, run_campaign
from repro.campaign.jobs import JobSpec
from repro.experiments.results import ResultTable
from repro.obs.exposition import (
    merge_worker_snapshot,
    render_prometheus,
    validate_prometheus,
)
from repro.obs.metrics import MetricsRegistry, metric_key, registry_snapshot
from repro.obs.runtime import active_obs_session


# ----------------------------------------------------------------------
# Picklable probe runner.


def probe_runner(spec):
    """Record awkward metric shapes into the ambient obs session."""
    session = active_obs_session()
    assert session is not None, "obs=True must install a session"
    obs = session.make_observability()
    # Non-string label values: frequencies and node objects are common.
    obs.registry.counter("probe.frames", channel=2412.0,
                         node="N0.s0").inc(3)
    obs.registry.counter("probe.plain").inc(spec.seed)
    # A histogram that is declared but never observed.
    obs.registry.histogram("probe.empty")
    # A dBm histogram: negative values, negative total.
    rssi = obs.registry.histogram("probe.rssi_dbm")
    for value in (-70.0, -75.0, -80.0):
        rssi.observe(value)
    table = ResultTable(f"probe {spec.exhibit_id}")
    table.add_row(x=0, y=float(spec.seed))
    return table


# ----------------------------------------------------------------------
# Standalone registry_snapshot (the server-side shape).


def test_registry_snapshot_reads_gauges_live():
    registry = MetricsRegistry()
    depth = {"value": 0.0}
    registry.gauge("queue.depth", lambda: depth["value"])
    registry.counter("jobs.completed").inc(2)
    depth["value"] = 5.0
    snap = registry_snapshot(registry)
    # Gauges are read at snapshot time, not at registration.
    assert snap["gauges"]["queue.depth"] == 5.0
    assert snap["counters"]["jobs.completed"] == 2.0
    json.dumps(snap)


def test_registry_snapshot_empty_histogram_has_no_quantiles():
    registry = MetricsRegistry()
    registry.histogram("h.empty")
    snap = registry_snapshot(registry)
    summary = snap["histograms"]["h.empty"]
    assert summary["count"] == 0
    assert summary["p50"] is None and summary["p95"] is None
    assert summary["min"] is None and summary["max"] is None
    # And it merges as a no-op rather than exploding.
    target = MetricsRegistry()
    merge_worker_snapshot(target, snap)
    counters = {
        metric_key(c.name, c.labels): c.value for c in target.counters()
    }
    assert counters.get("worker.h.empty.count", 0.0) == 0.0


def test_registry_snapshot_non_string_labels_survive_exposition():
    registry = MetricsRegistry()
    registry.counter("tx.frames", channel=2412.0, run=3).inc(1)
    snap = registry_snapshot(registry)
    (key,) = snap["counters"]
    target = MetricsRegistry()
    merge_worker_snapshot(target, snap)
    text = render_prometheus(target)
    assert validate_prometheus(text) == 1
    assert 'channel="2412.0"' in text


# ----------------------------------------------------------------------
# Worker → parent round trip through real pool payloads.


def _specs():
    return [JobSpec.make("a", seed=1), JobSpec.make("b", seed=2)]


def _merge_outcomes(result):
    registry = MetricsRegistry()
    for outcome in result.outcomes.values():
        assert outcome.ok
        assert outcome.metrics is not None
        merge_worker_snapshot(registry, outcome.metrics)
    return {
        metric_key(c.name, c.labels): c.value for c in registry.counters()
    }


def test_snapshot_round_trip_through_pool_workers():
    result = run_campaign(_specs(), jobs=2, cache=False,
                          runner=probe_runner, obs=True)
    assert result.ok
    counters = _merge_outcomes(result)
    assert counters["worker.probe.frames{channel=2412.0,node=N0.s0}"] == 6.0
    assert counters["worker.probe.plain"] == 3.0  # seeds 1 + 2
    # dBm sums merge despite being negative.
    assert counters["worker.probe.rssi_dbm.sum"] == pytest.approx(-450.0)
    assert counters["worker.probe.rssi_dbm.count"] == 6.0
    # Empty histogram contributes a zero count and no sum surprises.
    assert counters.get("worker.probe.empty.count", 0.0) == 0.0


def test_snapshot_round_trip_inline_matches_pool():
    inline = _merge_outcomes(run_campaign(
        _specs(), jobs=1, cache=False, runner=probe_runner, obs=True))
    pooled = _merge_outcomes(run_campaign(
        _specs(), jobs=2, cache=False, runner=probe_runner, obs=True))
    assert inline == pooled


def test_execute_payload_snapshot_is_picklable_and_json_safe():
    payload = {
        "spec": JobSpec.make("a", seed=1).to_dict(),
        "timeout_s": None,
        "obs": True,
        "trace": {"campaign": "c0", "job": "a@s1"},
    }
    result = execute_payload(payload, probe_runner)
    assert result["ok"]
    # The exact bytes a pool ships back: picklable and JSON-clean.
    pickle.loads(pickle.dumps(result))
    json.dumps(result)
    metrics = result["metrics"]
    assert metrics["counters"]["probe.frames{channel=2412.0,node=N0.s0}"] == 3.0
    assert metrics["histograms"]["probe.empty"]["count"] == 0
    assert "p50" not in metrics["histograms"]["probe.empty"]
    assert metrics["histograms"]["probe.rssi_dbm"]["p50"] == -75.0
    trace = result["trace"]
    assert trace["campaign"] == "c0" and trace["job"] == "a@s1"
    assert trace["wall"][0]["name"] == "execute"
    assert trace["sim_dropped"] == 0
