"""Campaign integration: obs snapshots ride on outcomes and the cache."""

from repro.campaign.cache import ResultCache
from repro.campaign.executor import run_campaign
from repro.campaign.jobs import JobSpec
from repro.experiments.results import ResultTable
from repro.obs.sinks import SCHEMA_VERSION

from .rig import run_rig


def rig_runner(spec):
    deployment = run_rig(seed=spec.seed, run_s=0.05)
    table = ResultTable(f"rig seed={spec.seed}")
    table.add_row(seed=spec.seed,
                  sent=deployment.node("N0.s0").mac.stats.sent)
    return table


def test_obs_campaign_attaches_metrics(tmp_path):
    result = run_campaign(
        [JobSpec.make("rig", seed=1)], cache=False, runner=rig_runner,
        obs=True,
    )
    outcome = result.outcome("rig", 1)
    assert outcome.ok
    snap = outcome.metrics
    assert snap is not None
    assert snap["schema"] == SCHEMA_VERSION
    assert snap["runs"] == 1 and snap["spans"] > 0
    assert any(key.startswith("tx.frames{") for key in snap["counters"])


def test_obs_disabled_leaves_metrics_none(tmp_path):
    result = run_campaign(
        [JobSpec.make("rig", seed=1)], cache=False, runner=rig_runner,
    )
    assert result.outcome("rig", 1).metrics is None


def test_obs_metrics_round_trip_through_cache(tmp_path):
    cache = ResultCache(tmp_path / "cache", version="1")
    jobs = [JobSpec.make("rig", seed=1)]
    first = run_campaign(jobs, cache=cache, runner=rig_runner, obs=True)
    snap = first.outcome("rig", 1).metrics
    assert snap is not None

    # warm re-run: the cached entry supplies both table and snapshot
    second = run_campaign(jobs, cache=cache, runner=rig_runner, obs=True)
    outcome = second.outcome("rig", 1)
    assert outcome.from_cache
    assert outcome.metrics == snap


def test_obs_result_unchanged_by_telemetry(tmp_path):
    """A job's table is byte-identical with and without ``obs=True``."""
    jobs = [JobSpec.make("rig", seed=3)]
    plain = run_campaign(jobs, cache=False, runner=rig_runner)
    observed = run_campaign(jobs, cache=False, runner=rig_runner, obs=True)
    assert (plain.outcome("rig", 3).table.to_dict()
            == observed.outcome("rig", 3).table.to_dict())
