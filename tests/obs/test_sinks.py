"""Tests for telemetry sinks, the run manifest and JSONL parsing."""

import json
import math

import pytest

import repro
from repro.obs.sinks import (
    SCHEMA_VERSION,
    JsonlSink,
    MemorySink,
    _sanitize,
    read_jsonl,
    run_manifest,
)


# ----------------------------------------------------------------------
# Sanitisation


def test_sanitize_replaces_non_finite_floats():
    record = {
        "v": float("inf"),
        "nested": {"w": float("nan"), "ok": 1.5},
        "seq": [float("-inf"), 2.0],
        "s": "text",
    }
    clean = _sanitize(record)
    assert clean == {"v": None, "nested": {"w": None, "ok": 1.5},
                     "seq": [None, 2.0], "s": "text"}
    json.dumps(clean)  # must be strictly JSON-safe


# ----------------------------------------------------------------------
# MemorySink


def test_memory_sink_bounded_and_filterable():
    sink = MemorySink(max_records=2)
    sink.emit({"kind": "a", "i": 0})
    sink.emit({"kind": "b", "i": 1})
    sink.emit({"kind": "b", "i": 2})
    assert sink.dropped == 1
    assert [r["i"] for r in sink.records] == [1, 2]
    assert [r["i"] for r in sink.of_kind("b")] == [1, 2]
    assert sink.of_kind("a") == []


# ----------------------------------------------------------------------
# JsonlSink


def test_jsonl_sink_round_trip(tmp_path):
    path = tmp_path / "run.jsonl"
    with JsonlSink(path) as sink:
        sink.emit({"kind": "span", "t0": 0.0, "t1": 1.0})
        sink.emit({"kind": "point", "v": float("inf")})
        assert sink.emitted == 2
    records = read_jsonl(path)
    assert len(records) == 2
    assert records[1]["v"] is None  # sanitised on write
    # compact one-record-per-line framing
    lines = path.read_text().strip().splitlines()
    assert len(lines) == 2 and ": " not in lines[0]


def test_jsonl_sink_closed_raises(tmp_path):
    sink = JsonlSink(tmp_path / "x.jsonl")
    sink.close()
    sink.close()  # idempotent
    with pytest.raises(ValueError, match="closed"):
        sink.emit({"kind": "span"})


def test_read_jsonl_kind_last_and_malformed(tmp_path):
    path = tmp_path / "run.jsonl"
    lines = [json.dumps({"kind": "span", "i": i}) for i in range(4)]
    lines.insert(2, "{not json")  # a live file may end mid-line
    lines.append(json.dumps({"kind": "counter", "i": 99}))
    path.write_text("\n".join(lines) + "\n")
    assert len(read_jsonl(path)) == 5
    spans = read_jsonl(path, kind="span")
    assert [r["i"] for r in spans] == [0, 1, 2, 3]
    assert [r["i"] for r in read_jsonl(path, last=2, kind="span")] == [2, 3]
    assert read_jsonl(path, last=0) == []  # not the whole file ([-0:] wart)
    assert read_jsonl(path, last=-2) == []


# ----------------------------------------------------------------------
# Manifest


def test_run_manifest_names_schema_and_version():
    manifest = run_manifest(exhibit="fig04", seed=3, profile="fast",
                            jobs=2)
    assert manifest["kind"] == "manifest"
    assert manifest["schema"] == SCHEMA_VERSION
    assert manifest["repro_version"] == repro.__version__
    assert manifest["exhibit"] == "fig04"
    assert manifest["seed"] == 3
    assert manifest["profile"] == "fast"
    assert manifest["jobs"] == 2  # extra kwargs ride along
    assert "wall_time" in manifest
    json.dumps(manifest)  # git may be None; still JSON-safe


def test_run_manifest_optional_fields_omitted():
    manifest = run_manifest()
    assert "exhibit" not in manifest
    assert "seed" not in manifest
    assert "profile" not in manifest
