"""Tests for telemetry sinks, the run manifest and JSONL parsing."""

import json
import math

import pytest

import repro
import repro.obs.sinks as sinks_mod
from repro.obs.sinks import (
    SCHEMA_VERSION,
    JsonlSink,
    MemorySink,
    RotatingJsonlSink,
    _sanitize,
    read_jsonl,
    run_manifest,
)


# ----------------------------------------------------------------------
# Sanitisation


def test_sanitize_replaces_non_finite_floats():
    record = {
        "v": float("inf"),
        "nested": {"w": float("nan"), "ok": 1.5},
        "seq": [float("-inf"), 2.0],
        "s": "text",
    }
    clean = _sanitize(record)
    assert clean == {"v": None, "nested": {"w": None, "ok": 1.5},
                     "seq": [None, 2.0], "s": "text"}
    json.dumps(clean)  # must be strictly JSON-safe


# ----------------------------------------------------------------------
# MemorySink


def test_memory_sink_bounded_and_filterable():
    sink = MemorySink(max_records=2)
    sink.emit({"kind": "a", "i": 0})
    sink.emit({"kind": "b", "i": 1})
    sink.emit({"kind": "b", "i": 2})
    assert sink.dropped == 1
    assert [r["i"] for r in sink.records] == [1, 2]
    assert [r["i"] for r in sink.of_kind("b")] == [1, 2]
    assert sink.of_kind("a") == []


# ----------------------------------------------------------------------
# JsonlSink


def test_jsonl_sink_round_trip(tmp_path):
    path = tmp_path / "run.jsonl"
    with JsonlSink(path) as sink:
        sink.emit({"kind": "span", "t0": 0.0, "t1": 1.0})
        sink.emit({"kind": "point", "v": float("inf")})
        assert sink.emitted == 2
    records = read_jsonl(path)
    assert len(records) == 2
    assert records[1]["v"] is None  # sanitised on write
    # compact one-record-per-line framing
    lines = path.read_text().strip().splitlines()
    assert len(lines) == 2 and ": " not in lines[0]


def test_jsonl_sink_closed_raises(tmp_path):
    sink = JsonlSink(tmp_path / "x.jsonl")
    sink.close()
    sink.close()  # idempotent
    with pytest.raises(ValueError, match="closed"):
        sink.emit({"kind": "span"})


def test_read_jsonl_kind_last_and_malformed(tmp_path):
    path = tmp_path / "run.jsonl"
    lines = [json.dumps({"kind": "span", "i": i}) for i in range(4)]
    lines.insert(2, "{not json")  # a live file may end mid-line
    lines.append(json.dumps({"kind": "counter", "i": 99}))
    path.write_text("\n".join(lines) + "\n")
    assert len(read_jsonl(path)) == 5
    spans = read_jsonl(path, kind="span")
    assert [r["i"] for r in spans] == [0, 1, 2, 3]
    assert [r["i"] for r in read_jsonl(path, last=2, kind="span")] == [2, 3]
    assert read_jsonl(path, last=0) == []  # not the whole file ([-0:] wart)
    assert read_jsonl(path, last=-2) == []


# ----------------------------------------------------------------------
# RotatingJsonlSink


MANIFEST = {"kind": "manifest", "schema": SCHEMA_VERSION, "role": "test"}


def _emit_n(sink, n, start=0):
    for i in range(start, start + n):
        sink.emit({"kind": "event", "i": i})


def test_rotating_sink_rotates_chain_and_remanifests(tmp_path):
    path = tmp_path / "events.jsonl"
    # Each record is ~22 bytes; cap at 2 records per file.
    with RotatingJsonlSink(path, max_bytes=60, backups=2,
                           manifest=dict(MANIFEST)) as sink:
        _emit_n(sink, 7)
        assert sink.emitted == 7
        assert sink.rotations >= 2
    # The active file and every backup start with their own manifest.
    chain = [path, path.with_name("events.jsonl.1"),
             path.with_name("events.jsonl.2")]
    for file in chain:
        assert file.exists(), file
        records = read_jsonl(file)
        assert records[0]["kind"] == "manifest"
        assert records[0]["role"] == "test"
    # Oldest beyond `backups` is dropped, never .3.
    assert not path.with_name("events.jsonl.3").exists()
    # The chain retains the *newest* contiguous suffix of the stream
    # (oldest records age out, none duplicated, none reordered).
    indexes = sorted(
        r["i"] for file in chain for r in read_jsonl(file, kind="event"))
    assert indexes == list(range(7 - len(indexes), 7))
    assert read_jsonl(path, kind="event")[-1]["i"] == 6


def test_rotating_sink_appends_on_reopen(tmp_path):
    path = tmp_path / "events.jsonl"
    with RotatingJsonlSink(path, max_bytes=10_000,
                           manifest=dict(MANIFEST)) as sink:
        _emit_n(sink, 2)
    # A restarted server resumes the same file: no second manifest, the
    # old records survive.
    with RotatingJsonlSink(path, max_bytes=10_000,
                           manifest=dict(MANIFEST)) as sink:
        _emit_n(sink, 2, start=2)
    records = read_jsonl(path)
    assert [r["kind"] for r in records].count("manifest") == 1
    assert [r["i"] for r in read_jsonl(path, kind="event")] == [0, 1, 2, 3]


def test_rotating_sink_zero_backups_truncates(tmp_path):
    path = tmp_path / "events.jsonl"
    with RotatingJsonlSink(path, max_bytes=30, backups=0) as sink:
        _emit_n(sink, 5)
        assert sink.rotations > 0
    assert not path.with_name("events.jsonl.1").exists()


def test_rotating_sink_closed_raises(tmp_path):
    sink = RotatingJsonlSink(tmp_path / "e.jsonl")
    sink.close()
    sink.close()  # idempotent
    with pytest.raises(ValueError, match="closed"):
        sink.emit({"kind": "event"})


# ----------------------------------------------------------------------
# Manifest


def test_run_manifest_names_schema_and_version():
    manifest = run_manifest(exhibit="fig04", seed=3, profile="fast",
                            jobs=2)
    assert manifest["kind"] == "manifest"
    assert manifest["schema"] == SCHEMA_VERSION
    assert manifest["repro_version"] == repro.__version__
    assert manifest["exhibit"] == "fig04"
    assert manifest["seed"] == 3
    assert manifest["profile"] == "fast"
    assert manifest["jobs"] == 2  # extra kwargs ride along
    assert "wall_time" in manifest
    json.dumps(manifest)  # git may be None; still JSON-safe


def test_run_manifest_optional_fields_omitted():
    manifest = run_manifest()
    assert "exhibit" not in manifest
    assert "seed" not in manifest
    assert "profile" not in manifest


def test_git_describe_tolerates_missing_binary(monkeypatch):
    def no_git(*args, **kwargs):
        raise FileNotFoundError("git")

    monkeypatch.setattr(sinks_mod.subprocess, "run", no_git)
    assert sinks_mod._git_describe() is None
    manifest = run_manifest(exhibit="fig04")
    assert manifest["git"] is None
    json.dumps(manifest)


def test_git_describe_tolerates_non_repo_checkout(monkeypatch):
    class Failed:
        returncode = 128
        stdout = ""
        stderr = "fatal: not a git repository"

    monkeypatch.setattr(sinks_mod.subprocess, "run",
                        lambda *a, **kw: Failed())
    assert sinks_mod._git_describe() is None
    assert run_manifest()["git"] is None


def test_git_describe_tolerates_empty_output(monkeypatch):
    class Empty:
        returncode = 0
        stdout = "\n"
        stderr = ""

    monkeypatch.setattr(sinks_mod.subprocess, "run",
                        lambda *a, **kw: Empty())
    assert sinks_mod._git_describe() is None
