"""Tests for the per-simulator Observability recorder."""

import pytest

from repro.obs.recorder import Observability
from repro.obs.sinks import MemorySink
from repro.sim.simulator import Simulator


def test_bind_is_single_use():
    recorder = Observability(sample_interval_s=None)
    Simulator(obs=recorder)
    with pytest.raises(ValueError, match="exactly one simulator"):
        Simulator(obs=recorder)


def test_invalid_sample_interval_rejected():
    with pytest.raises(ValueError):
        Observability(sample_interval_s=0.0)
    with pytest.raises(ValueError):
        Observability(sample_interval_s=-1.0)


def test_sampler_terminates_with_run_until_idle():
    recorder = Observability(sample_interval_s=0.01)
    sim = Simulator(obs=recorder)
    sim.schedule(0.035, lambda: None)
    sim.run_until_idle()  # must not spin forever on the sampler re-arming
    assert recorder.samples_taken >= 3
    assert sim.pending_events <= 1  # at most the final, never-rearmed tick


def test_sampler_disabled_schedules_nothing():
    recorder = Observability(sample_interval_s=None)
    sim = Simulator(obs=recorder)
    assert sim.pending_events == 0
    sim.run_until_idle()
    assert recorder.samples_taken == 0


def test_sampler_mirrors_gauge_points_to_sink():
    sink = MemorySink()
    recorder = Observability(sample_interval_s=0.01, sink=sink)
    sim = Simulator(obs=recorder)
    recorder.registry.gauge("depth", lambda: 4.0, node="n0")
    sim.schedule(0.025, lambda: None)
    sim.run_until_idle()
    points = sink.of_kind("point")
    depth = [p for p in points if p["name"] == "depth"]
    assert depth
    assert depth[0]["v"] == 4.0
    assert depth[0]["labels"] == {"node": "n0"}
    # The recorder also registers scheduler-health gauges at bind time.
    assert any(p["name"] == "event_queue.live" for p in points)
    assert any(p["name"] == "event_queue.compactions" for p in points)


def test_span_hooks_record_and_stream():
    sink = MemorySink()
    recorder = Observability(sample_interval_s=None, sink=sink, run_id=3)
    Simulator(obs=recorder)
    recorder.on_tx("n0", 0.0, 0.004, frame_id=7)
    recorder.on_rx("n1", 0.0, 0.004, frame_id=7, crc_ok=True, rssi_dbm=-60.0)
    recorder.on_rx_abort("n1", 0.01, 0.012)
    assert [s.kind for s in recorder.spans] == ["tx", "rx", "rx"]
    assert recorder.spans.of_kind("tx")[0].args == {"frame": 7}
    aborted = recorder.spans.of_kind("rx")[1]
    assert aborted.args == {"aborted": True}
    rssi = next(recorder.registry.histograms("rx.rssi_dbm"))
    assert rssi.count == 1 and rssi.min == -60.0
    streamed = sink.of_kind("span")
    assert len(streamed) == 3 and all(r["run"] == 3 for r in streamed)


def test_on_cca_records_backoff_then_cca():
    recorder = Observability(sample_interval_s=None)
    Simulator(obs=recorder)
    recorder.on_cca("n0", backoff_start=1.0, backoff_s=0.002,
                    cca_s=0.000128, busy=True)
    backoff, cca = list(recorder.spans)
    assert (backoff.kind, cca.kind) == ("backoff", "cca")
    assert backoff.end == cca.start == 1.002
    assert cca.args == {"busy": True}
    hist = next(recorder.registry.histograms("mac.backoff_s"))
    assert hist.count == 1
    busy = next(recorder.registry.counters("mac.cca_busy"))
    assert busy.value == 1.0


def test_on_transmission_fills_channel_and_node_counters():
    recorder = Observability(sample_interval_s=None)
    Simulator(obs=recorder)
    recorder.on_transmission("n0", 2460.0, 0.004)
    recorder.on_transmission("n0", 2460.0, 0.004)
    by_channel = next(recorder.registry.counters("tx.frames"))
    assert by_channel.value == 2.0
    airtime = next(recorder.registry.counters("node.tx.airtime_s"))
    assert airtime.value == pytest.approx(0.008)


def test_finalize_freezes_window_and_flushes_counters():
    sink = MemorySink()
    recorder = Observability(sample_interval_s=None, sink=sink)
    sim = Simulator(obs=recorder)
    recorder.on_transmission("n0", 2460.0, 0.004)
    sim.schedule(0.5, lambda: None)
    sim.run_until_idle()
    assert recorder.duration_s == 0.5  # live window tracks the clock
    recorder.finalize()
    assert recorder.end_time == 0.5
    counters = sink.of_kind("counter")
    assert {c["name"] for c in counters} >= {"tx.frames", "node.tx.frames"}


def test_on_threshold_is_event_driven_series():
    sink = MemorySink()
    recorder = Observability(sample_interval_s=None, sink=sink)
    sim = Simulator(obs=recorder)
    sim.schedule(0.1, lambda: recorder.on_threshold("n0", -75.0))
    sim.run_until_idle()
    series = next(recorder.registry.series("adjustor.threshold_dbm"))
    assert list(series.points) == [(0.1, -75.0)]
    point = sink.of_kind("point")[0]
    assert point["t"] == 0.1 and point["v"] == -75.0
