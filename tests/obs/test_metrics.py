"""Unit + property tests for the metric primitives and registry."""

import pytest
from hypothesis import given, strategies as st

from repro.obs.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    TimeSeries,
    _freeze_labels,
)


# ----------------------------------------------------------------------
# Counter


def test_counter_accumulates_and_rejects_decrease():
    counter = Counter("tx.frames", ())
    counter.inc()
    counter.inc(2.5)
    assert counter.value == 3.5
    with pytest.raises(ValueError, match="cannot decrease"):
        counter.inc(-1.0)


# ----------------------------------------------------------------------
# Histogram


def test_histogram_empty_quantiles_are_none():
    hist = Histogram("h", ())
    assert hist.count == 0
    assert hist.p50 is None and hist.p95 is None and hist.p99 is None
    assert hist.min is None and hist.max is None
    assert hist.mean == 0.0


def test_histogram_basic_stats():
    hist = Histogram("h", ())
    for value in [1.0, 2.0, 3.0, 4.0]:
        hist.observe(value)
    assert hist.count == 4
    assert hist.min == 1.0 and hist.max == 4.0
    assert hist.mean == 2.5
    assert hist.p50 == 2.0  # nearest-rank: ceil(0.5*4) = rank 2
    assert hist.quantile(1.0) == 4.0


def test_histogram_quantile_domain():
    hist = Histogram("h", ())
    hist.observe(1.0)
    with pytest.raises(ValueError):
        hist.quantile(0.0)
    with pytest.raises(ValueError):
        hist.quantile(1.5)


def test_histogram_caps_samples_but_counts_exactly():
    hist = Histogram("h", (), max_samples=10)
    for i in range(25):
        hist.observe(float(i))
    assert hist.count == 25
    assert len(hist._samples) == 10
    assert hist.max == 24.0  # min/max track every observation


@given(st.lists(st.floats(allow_nan=False, allow_infinity=False,
                          width=32), min_size=1, max_size=200))
def test_histogram_quantiles_are_ordered_and_bounded(values):
    """p50 <= p95 <= p99, all within [min, max] (satellite property)."""
    hist = Histogram("h", ())
    for value in values:
        hist.observe(value)
    p50, p95, p99 = hist.p50, hist.p95, hist.p99
    assert hist.min <= p50 <= p95 <= p99 <= hist.max
    # every quantile is an actually-observed value (nearest-rank)
    assert p50 in values and p95 in values and p99 in values


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1,
                max_size=100),
       st.floats(min_value=0.001, max_value=1.0))
def test_histogram_quantile_matches_nearest_rank_definition(values, q):
    hist = Histogram("h", ())
    for value in values:
        hist.observe(value)
    result = hist.quantile(q)
    ordered = sorted(values)
    # nearest-rank: smallest value with cumulative share >= q
    at_least = sum(1 for v in ordered if v <= result)
    assert at_least / len(ordered) >= q or result == ordered[0]
    # ...and the next-smaller stored value would not satisfy q
    index = ordered.index(result)
    if index > 0:
        assert index / len(ordered) < q


# ----------------------------------------------------------------------
# TimeSeries


def test_timeseries_bounded_keeps_most_recent():
    series = TimeSeries("s", (), max_points=3)
    for i in range(5):
        series.append(float(i), float(i) * 10)
    assert len(series) == 3
    assert list(series.points) == [(2.0, 20.0), (3.0, 30.0), (4.0, 40.0)]
    assert series.last() == (4.0, 40.0)


def test_timeseries_empty_last_is_none():
    assert TimeSeries("s", ()).last() is None


# ----------------------------------------------------------------------
# Registry


def test_registry_get_or_create_is_idempotent():
    registry = MetricsRegistry()
    a = registry.counter("tx.frames", channel=2460.0)
    b = registry.counter("tx.frames", channel=2460.0)
    assert a is b
    assert registry.counter("tx.frames", channel=2465.0) is not a
    # same name, different kind -> distinct metric objects
    registry.histogram("tx.frames")
    assert len(registry) == 3


def test_registry_label_order_does_not_matter():
    registry = MetricsRegistry()
    a = registry.counter("c", node="n0", channel=2460.0)
    b = registry.counter("c", channel=2460.0, node="n0")
    assert a is b
    assert a.labels == _freeze_labels({"node": "n0", "channel": 2460.0})


def test_registry_of_kind_filters():
    registry = MetricsRegistry()
    registry.counter("a")
    registry.counter("b")
    registry.histogram("a")
    assert len(list(registry.counters())) == 2
    assert len(list(registry.counters("a"))) == 1
    assert len(list(registry.histograms())) == 1


def test_gauge_sampling_feeds_paired_series():
    registry = MetricsRegistry()
    state = {"v": 1.0}
    registry.gauge("depth", lambda: state["v"], node="n0")
    sampled = registry.sample_gauges(0.5)
    state["v"] = 2.0
    registry.sample_gauges(1.0)
    assert len(sampled) == 1
    series = next(registry.series("depth"))
    assert list(series.points) == [(0.5, 1.0), (1.0, 2.0)]


def test_gauge_registration_idempotent():
    registry = MetricsRegistry()
    a = registry.gauge("g", lambda: 0.0, node="n0")
    b = registry.gauge("g", lambda: 1.0, node="n0")
    assert a is b  # first registration wins
    assert len(registry.sample_gauges(0.0)) == 1


def test_registry_bounds_propagate():
    registry = MetricsRegistry(max_points=2, max_hist_samples=3)
    series = registry.timeseries("s")
    for i in range(5):
        series.append(float(i), 0.0)
    assert len(series) == 2
    hist = registry.histogram("h")
    for i in range(5):
        hist.observe(float(i))
    assert len(hist._samples) == 3 and hist.count == 5
