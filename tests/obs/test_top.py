"""The live dashboard: MetricView lookups, pure-frame rendering, and the
polling loop against stubbed endpoints."""

import io

import pytest

import repro.obs.top as top
from repro.obs.exposition import parse_prometheus
from repro.obs.top import MetricView, render_dashboard, run_top

SCRAPE = """\
# TYPE server_uptime_s gauge
server_uptime_s 125.5
# TYPE server_jobs_in_flight gauge
server_jobs_in_flight 3
# TYPE server_queue_depth gauge
server_queue_depth 7
# TYPE server_campaigns_running gauge
server_campaigns_running 1
# TYPE server_jobs_completed counter
server_jobs_completed 40
# TYPE server_jobs_failed counter
server_jobs_failed 2
# TYPE campaign_cache_hits counter
campaign_cache_hits 30
# TYPE campaign_cache_misses counter
campaign_cache_misses 10
# TYPE server_job_elapsed_s summary
server_job_elapsed_s{exhibit="fig04",quantile="0.5"} 0.2
server_job_elapsed_s{exhibit="fig04",quantile="0.95"} 0.4
server_job_elapsed_s_sum{exhibit="fig04"} 2.4
server_job_elapsed_s_count{exhibit="fig04"} 10
"""


def view_of(text=SCRAPE):
    return MetricView(parse_prometheus(text))


def test_metric_view_lookups():
    view = view_of()
    assert view.value("server_uptime_s") == 125.5
    assert view.value("absent") is None
    assert view.value("absent", default=0.0) == 0.0
    assert view.total("server_jobs_completed") == 40.0
    assert view.by_label("server_job_elapsed_s_count", "exhibit") == {
        "fig04": 10.0}
    assert view.value("server_job_elapsed_s", exhibit="fig04",
                      quantile="0.95") == 0.4


def test_render_dashboard_contents():
    frame = render_dashboard("http://h:1", view_of())
    assert "repro obs top — http://h:1" in frame
    assert "jobs in flight" in frame and "3" in frame
    assert "queue depth" in frame
    assert "40 / 2" in frame  # done / failed
    assert "75.0%" in frame  # 30 hits / 40 lookups
    assert "fig04" in frame
    assert "warming up" in frame  # no previous poll yet
    assert frame.endswith("\n")


def test_render_dashboard_throughput_from_delta():
    prev_text = SCRAPE.replace("server_jobs_completed 40",
                               "server_jobs_completed 30")
    frame = render_dashboard("u", view_of(), prev=view_of(prev_text),
                             interval_s=2.0)
    assert "5.00 jobs/s" in frame


def test_render_dashboard_events_and_campaigns():
    frame = render_dashboard(
        "u", view_of(),
        events=[{"event": "job", "exhibit_id": "fig04", "seed": 3,
                 "elapsed_s": 0.25, "from_cache": True}],
        campaigns=[{"id": "c0001-abcd", "state": "running",
                    "done": 1, "total": 4, "completed": 1, "failed": 0}],
    )
    assert "campaign c0001-abcd" in frame
    assert "done 1/4" in frame
    assert "fig04@s3" in frame
    assert "[cache]" in frame


def test_run_top_once_with_stubbed_endpoints(monkeypatch):
    def fake_fetch_text(url, timeout_s=10.0):
        assert url.endswith("/metrics")
        return SCRAPE

    def fake_fetch_json(url, timeout_s=10.0):
        assert url.endswith("/campaigns")
        return {"campaigns": [
            {"id": "c1", "state": "running", "done": 1, "total": 2,
             "completed": 1, "failed": 0}]}

    def fake_fetch_events(url, timeout_s=1.0, max_lines=500):
        assert url.endswith("/campaigns/c1/events")
        return [{"event": "job", "exhibit_id": "alpha", "seed": 1,
                 "elapsed_s": 0.1}]

    monkeypatch.setattr(top, "fetch_text", fake_fetch_text)
    monkeypatch.setattr(top, "fetch_json", fake_fetch_json)
    monkeypatch.setattr(top, "fetch_events", fake_fetch_events)
    out = io.StringIO()
    assert run_top("http://stub", once=True, stream=out) == 0
    frame = out.getvalue()
    assert "jobs in flight" in frame
    assert "campaign c1" in frame
    assert top.CLEAR not in frame  # --once is scriptable: no ANSI clear


def test_run_top_unreachable_server_exits_2():
    out = io.StringIO()
    # Port 9 (discard) on localhost: connection refused immediately.
    assert run_top("http://127.0.0.1:9", once=True, stream=out) == 2
    assert "cannot reach" in out.getvalue()


def test_run_top_max_frames_clears_between_polls(monkeypatch):
    monkeypatch.setattr(top, "fetch_text", lambda url, timeout_s=10.0: SCRAPE)
    monkeypatch.setattr(top, "fetch_json",
                        lambda url, timeout_s=10.0: {"campaigns": []})
    monkeypatch.setattr(top.time, "sleep", lambda s: None)
    out = io.StringIO()
    assert run_top("http://stub", interval_s=0.01, stream=out,
                   max_frames=2) == 0
    assert out.getvalue().count(top.CLEAR) == 2


def test_formatting_helpers():
    assert top._fmt_duration(None) == "-"
    assert top._fmt_duration(5e-7) == "0us"
    assert top._fmt_duration(0.0015) == "1.5ms"
    assert top._fmt_duration(12.0) == "12.0s"
    assert top._fmt_duration(600.0) == "10.0m"
    assert top._fmt_duration(8000.0) == "2.2h"
    assert top._fmt_bytes(512) == "512B"
    assert top._fmt_bytes(2048) == "2.0KiB"
    assert top._bar(0.5, 10) == "#####....."
    assert top._bar(2.0, 4) == "####"
    assert top._bar(-1.0, 4) == "...."
