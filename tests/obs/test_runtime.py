"""Tests for ambient ObsSession: deployment pick-up, snapshots,
and the byte-identical-results guarantee."""

import pytest

from repro.obs.runtime import ObsSession, active_obs_session
from repro.obs.recorder import Observability

from .rig import build_rig, run_rig


def test_sessions_do_not_nest_and_clear_on_exit():
    assert active_obs_session() is None
    with ObsSession(sample_interval_s=None) as session:
        assert active_obs_session() is session
        with pytest.raises(RuntimeError, match="do not nest"):
            ObsSession(sample_interval_s=None).__enter__()
        assert active_obs_session() is session  # failed enter left it intact
    assert active_obs_session() is None


def test_session_clears_even_on_exception():
    with pytest.raises(RuntimeError, match="boom"):
        with ObsSession(sample_interval_s=None):
            raise RuntimeError("boom")
    assert active_obs_session() is None


def test_deployment_picks_up_ambient_session():
    with ObsSession(sample_interval_s=None) as session:
        first = build_rig()
        second = build_rig()
    assert len(session.recorders) == 2
    assert first.sim.obs is session.recorders[0]
    assert second.sim.obs is session.recorders[1]
    assert [r.run_id for r in session.recorders] == [0, 1]
    # exit finalised every recorder
    assert all(r.end_time is not None for r in session.recorders)


def test_explicit_obs_argument_wins_over_session():
    explicit = Observability(sample_interval_s=None)
    with ObsSession(sample_interval_s=None) as session:
        deployment = build_rig(obs=explicit)
    assert deployment.sim.obs is explicit
    assert session.recorders == []


def test_no_session_no_recorder():
    assert build_rig().sim.obs is None


def test_snapshot_aggregates_across_recorders():
    with ObsSession(sample_interval_s=None) as session:
        run_rig(seed=1)
        run_rig(seed=2)
    snap = session.snapshot()
    assert snap["runs"] == 2
    assert snap["spans"] > 0
    assert snap["sim_time_s"] == pytest.approx(0.1)  # two 0.05 s windows
    # per-recorder counters summed under flat keys
    key = "tx.frames{channel=2460.0}"
    assert snap["counters"][key] == (
        _frames_of(session.recorders[0]) + _frames_of(session.recorders[1])
    )
    assert snap["counters"][key] > 0
    # histogram summaries carry ordered quantiles
    hist = snap["histograms"]["mac.backoff_s{node=N0.s0}"]
    assert hist["count"] > 0
    assert hist["min"] <= hist["p50"] <= hist["p95"] <= hist["p99"] <= hist["max"]


def _frames_of(recorder):
    return next(recorder.registry.counters("tx.frames")).value


def test_snapshot_is_json_safe():
    import json

    with ObsSession(sample_interval_s=None) as session:
        run_rig()
    json.dumps(session.snapshot())


def test_observability_leaves_results_byte_identical():
    """The core guarantee: enabling telemetry cannot change results."""
    from repro.mac.stats import MacStats  # noqa: F401  (import sanity)

    def fingerprint(deployment):
        return [
            (name, node.mac.stats.sent, node.mac.stats.delivered,
             node.mac.stats.crc_failures)
            for name, node in sorted(deployment.nodes.items())
        ]

    plain = run_rig(seed=7, run_s=0.2)
    with ObsSession(sample_interval_s=0.01) as session:
        observed = run_rig(seed=7, run_s=0.2)
    assert fingerprint(plain) == fingerprint(observed)
    assert len(session.recorders) == 1
    assert len(session.recorders[0].spans) > 0
