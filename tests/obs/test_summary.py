"""Per-node / per-channel summary tables on the tiny rig."""

import math

from repro.obs.recorder import Observability
from repro.obs.summary import channel_table, node_table, summary_tables
from repro.sim.simulator import Simulator

from .rig import run_rig


def observed_recorder(dcn=False):
    recorder = Observability(sample_interval_s=0.01)
    run_rig(seed=1, obs=recorder, run_s=0.05, dcn=dcn)
    recorder.finalize()
    return recorder


def test_node_table_one_row_per_mac():
    recorder = observed_recorder()
    table = node_table(recorder)
    rows = {row["node"]: row for row in table.rows}
    assert set(rows) == {"N0.s0", "N0.r0"}
    sender = rows["N0.s0"]
    assert sender["ch"] == 2460.0
    assert sender["sent"] > 0
    assert sender["delivered"] >= 0
    assert sender["backoff_p50_ms"] is not None
    assert sender["backoff_p50_ms"] <= sender["backoff_p95_ms"]
    assert 0.0 < sender["airtime_pct"] <= 100.0
    assert sender["thresh_dbm"] == -77.0  # fixed ZigBee default
    receiver = rows["N0.r0"]
    assert receiver["sent"] == 0
    assert receiver["airtime_pct"] == 0.0


def test_node_table_dcn_uses_trajectory_value():
    recorder = observed_recorder(dcn=True)
    table = node_table(recorder)
    sender = next(r for r in table.rows if r["node"] == "N0.s0")
    series = {tuple(dict(s.labels).items()): s
              for s in recorder.registry.series("adjustor.threshold_dbm")}
    expected = series[(("node", "N0.s0"),)].last()[1]
    assert sender["thresh_dbm"] == expected
    assert math.isfinite(sender["thresh_dbm"])


def test_node_table_infinite_threshold_sanitised():
    recorder = Observability(sample_interval_s=None)
    run_rig(seed=1, obs=recorder, run_s=0.01)
    recorder.finalize()
    # simulate a DisabledCca-style policy reporting +inf
    recorder.macs[0].cca_policy.threshold_dbm = lambda: float("inf")
    table = node_table(recorder)
    row = next(r for r in table.rows if r["node"] == recorder.macs[0].name)
    assert row["thresh_dbm"] is None


def test_channel_table_utilization_consistent():
    recorder = observed_recorder()
    table = channel_table(recorder)
    assert len(table.rows) == 1
    row = table.rows[0]
    assert row["channel_mhz"] == 2460.0
    assert row["frames"] > 0
    expected = 100.0 * row["airtime_s"] / recorder.duration_s
    assert abs(row["utilization_pct"] - expected) < 1e-9
    assert any("2 radios" in note for note in table.notes)


def test_summary_tables_suffix_only_when_multiple():
    recorder = observed_recorder()
    single = summary_tables([recorder], exhibit="x")
    assert [t.title for t in single] == [
        "x: per-node metrics", "x: per-channel metrics",
    ]
    other = Observability(sample_interval_s=None, run_id=1)
    Simulator(obs=other)
    double = summary_tables([recorder, other])
    assert double[0].title == "per-node metrics — run 0"
    assert double[2].title == "per-node metrics — run 1"


def test_node_table_notes_dropped_spans():
    recorder = Observability(sample_interval_s=None, max_spans=5)
    run_rig(seed=1, obs=recorder, run_s=0.05)
    recorder.finalize()
    assert recorder.spans.dropped > 0
    table = node_table(recorder)
    assert any("spans dropped" in note for note in table.notes)
