"""``python -m repro obs ...`` end-to-end on a tiny dummy exhibit."""

import json

import pytest

import repro.__main__ as cli
from repro.experiments import registry as registry_module
from repro.experiments.registry import Experiment
from repro.experiments.results import ResultTable

from .rig import run_rig


def _tiny_exhibit(seed=1, fast=True, **params):
    deployment = run_rig(seed=seed, run_s=0.05)
    table = ResultTable("tiny")
    table.add_row(seed=seed,
                  sent=deployment.node("N0.s0").mac.stats.sent)
    return table


def _no_deployment(seed=1, fast=True, **params):
    return ResultTable("empty")


@pytest.fixture
def tiny_registry(monkeypatch):
    registry = {
        "tiny": Experiment("tiny", "Fig. T", "tiny rig", _tiny_exhibit),
        "empty": Experiment("empty", "Fig. E", "no deployments",
                            _no_deployment),
    }
    monkeypatch.setattr(registry_module, "REGISTRY", registry)
    monkeypatch.setattr(cli, "REGISTRY", registry)
    return registry


def test_obs_summary_prints_tables(tiny_registry, capsys):
    rc = cli.main(["obs", "summary", "tiny", "--fast"])
    assert rc == 0
    out = capsys.readouterr().out
    assert "per-node metrics" in out
    assert "per-channel metrics" in out
    assert "N0.s0" in out and "2460" in out
    assert "tiny: 1 run(s)," in out


def test_obs_summary_unknown_exhibit(tiny_registry, capsys):
    rc = cli.main(["obs", "summary", "zzz"])
    assert rc == 2
    assert "zzz" in capsys.readouterr().err


def test_obs_summary_no_deployments(tiny_registry, capsys):
    rc = cli.main(["obs", "summary", "empty"])
    assert rc == 1
    assert "no deployments" in capsys.readouterr().err


def test_obs_timeline_writes_valid_trace(tiny_registry, tmp_path, capsys):
    out_path = tmp_path / "timeline.json"
    rc = cli.main(["obs", "timeline", "tiny", "-o", str(out_path),
                   "--seed", "2", "--fast"])
    assert rc == 0
    assert "perfetto" in capsys.readouterr().out
    document = json.loads(out_path.read_text())
    events = document["traceEvents"]
    assert events and {e["ph"] for e in events} >= {"M", "X"}
    manifest = document["metadata"]
    assert manifest["exhibit"] == "tiny"
    assert manifest["seed"] == 2
    assert manifest["profile"] == "fast"


def test_obs_export_then_tail(tiny_registry, tmp_path, capsys):
    out_path = tmp_path / "run.jsonl"
    rc = cli.main(["obs", "export", "tiny", "-o", str(out_path)])
    assert rc == 0
    capsys.readouterr()

    rc = cli.main(["obs", "tail", str(out_path), "-n", "3"])
    assert rc == 0
    lines = capsys.readouterr().out.strip().splitlines()
    assert len(lines) == 3
    for line in lines:
        json.loads(line)

    rc = cli.main(["obs", "tail", str(out_path), "--kind", "manifest"])
    assert rc == 0
    (manifest_line,) = capsys.readouterr().out.strip().splitlines()
    manifest = json.loads(manifest_line)
    assert manifest["kind"] == "manifest" and manifest["exhibit"] == "tiny"


def test_obs_tail_missing_file(tiny_registry, tmp_path, capsys):
    rc = cli.main(["obs", "tail", str(tmp_path / "nope.jsonl")])
    assert rc == 2
    assert "cannot read" in capsys.readouterr().err


def test_obs_tail_rejects_non_positive_n(tiny_registry, tmp_path, capsys):
    """-n 0 must not dump the whole file (the records[-0:] slice wart)."""
    path = tmp_path / "run.jsonl"
    path.write_text('{"kind":"span"}\n{"kind":"span"}\n')
    for bad in ("0", "-3"):
        rc = cli.main(["obs", "tail", str(path), "-n", bad])
        assert rc == 2
        captured = capsys.readouterr()
        assert captured.out == ""
        assert "-n must be >= 1" in captured.err


def test_obs_export_stream_covers_all_kinds(tiny_registry, tmp_path, capsys):
    out_path = tmp_path / "run.jsonl"
    rc = cli.main(["obs", "export", "tiny", "-o", str(out_path)])
    assert rc == 0
    kinds = {json.loads(line)["kind"]
             for line in out_path.read_text().splitlines()}
    assert kinds >= {"manifest", "span", "point", "counter"}
