"""A tiny deterministic 2-node rig shared by the obs tests.

One network, one saturated link, fixed node positions (no topology RNG)
— the smallest world that exercises every instrumented layer: medium
fan-out, CSMA backoff/CCA, radio TX/RX, and (optionally) the DCN
adjustor's threshold trajectory.
"""

from repro.core.dcn import DcnCcaPolicy
from repro.net.deployment import Deployment
from repro.net.topology import LinkSpec, NetworkSpec, NodeSpec

__all__ = ["TWO_NODE_SPEC", "build_rig", "run_rig"]

TWO_NODE_SPEC = NetworkSpec(
    label="N0",
    channel_mhz=2460.0,
    nodes=(
        NodeSpec("N0.s0", (0.0, 0.0), 0.0),
        NodeSpec("N0.r0", (1.5, 0.0), 0.0),
    ),
    links=(LinkSpec("N0.s0", "N0.r0"),),
)


def build_rig(seed=1, obs=None, dcn=False):
    policy_factory = (lambda _label, _node: DcnCcaPolicy()) if dcn else None
    return Deployment(
        [TWO_NODE_SPEC], seed=seed, policy_factory=policy_factory, obs=obs
    )


def run_rig(seed=1, obs=None, run_s=0.05, dcn=False):
    deployment = build_rig(seed=seed, obs=obs, dcn=dcn)
    deployment.start_traffic()
    deployment.sim.run(run_s)
    return deployment
