"""Regenerate the golden trace_event export (deliberate changes only)::

    PYTHONPATH=src python tests/obs/regen_golden.py
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from obs.test_timeline import GOLDEN, golden_text  # noqa: E402

if __name__ == "__main__":
    GOLDEN.write_text(golden_text())
    print(f"wrote {GOLDEN}")
