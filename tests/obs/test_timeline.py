"""Chrome trace_event export: structure checks and a golden-file test.

The golden file pins the exact export of a tiny fixed-seed 2-node run
(fig04-style: one saturated link on one channel).  Any change to span
instrumentation, event ordering or the export format shows up as a
readable JSON diff.  Regenerate deliberately with::

    PYTHONPATH=src python tests/obs/regen_golden.py
"""

import json
import math
from pathlib import Path

from repro.obs.recorder import Observability
from repro.obs.timeline import trace_events, write_trace
from repro.sim.simulator import Simulator

from .rig import run_rig

GOLDEN = Path(__file__).with_name("golden_timeline.json")


def golden_document():
    """The deterministic document the golden file pins (no manifest —
    manifests carry wall time)."""
    from repro.phy.frame import reset_frame_ids

    reset_frame_ids()  # span args carry frame ids (process-global counter)
    recorder = Observability(sample_interval_s=0.01)
    run_rig(seed=1, obs=recorder, run_s=0.02, dcn=True)
    recorder.finalize()
    return trace_events([recorder])


def golden_text():
    return json.dumps(golden_document(), indent=1, sort_keys=True) + "\n"


def test_golden_timeline_export():
    assert GOLDEN.is_file(), (
        "golden file missing — run tests/obs/regen_golden.py"
    )
    assert golden_text() == GOLDEN.read_text()


def test_trace_document_structure():
    document = golden_document()
    events = document["traceEvents"]
    assert document["displayTimeUnit"] == "ms"
    assert "metadata" not in document
    phases = {e["ph"] for e in events}
    assert phases == {"M", "C", "X"}
    # one process per recorder, one named thread lane per node
    process_names = [e for e in events
                     if e["ph"] == "M" and e["name"] == "process_name"]
    assert [e["args"]["name"] for e in process_names] == ["run 0"]
    thread_names = [e["args"]["name"] for e in events
                    if e["ph"] == "M" and e["name"] == "thread_name"]
    assert thread_names == ["N0.r0 @ 2460 MHz", "N0.s0 @ 2460 MHz"]
    # span events reference declared threads; times are microseconds
    tids = {e["tid"] for e in events if e["ph"] == "M" and e["tid"] != 0}
    for event in events:
        if event["ph"] == "X":
            assert event["tid"] in tids
            assert 0.0 <= event["ts"] <= 0.02 * 1e6
            assert event["dur"] >= 0.0
    # counter tracks exist for sampled gauges and the DCN trajectory
    counter_tracks = {e["name"] for e in events if e["ph"] == "C"}
    assert "queue_depth N0.s0" in counter_tracks
    assert "adjustor.threshold_dbm N0.s0" in counter_tracks
    assert all(math.isfinite(e["args"]["value"]) for e in events
               if e["ph"] == "C")


def test_metadata_attached_when_given():
    recorder = Observability(sample_interval_s=None)
    Simulator(obs=recorder)
    document = trace_events([recorder], metadata={"exhibit": "x"})
    assert document["metadata"] == {"exhibit": "x"}


def test_multiple_recorders_get_distinct_pids():
    recorders = []
    for run_id in range(2):
        recorder = Observability(sample_interval_s=None, run_id=run_id)
        Simulator(obs=recorder)
        recorder.on_tx(f"n{run_id}", 0.0, 0.001, frame_id=run_id)
        recorders.append(recorder)
    events = trace_events(recorders)["traceEvents"]
    assert {e["pid"] for e in events} == {0, 1}
    names = [e["args"]["name"] for e in events
             if e["ph"] == "M" and e["name"] == "process_name"]
    assert names == ["run 0", "run 1"]


def test_non_finite_counter_points_skipped():
    recorder = Observability(sample_interval_s=None)
    Simulator(obs=recorder)
    series = recorder.registry.timeseries("thresh", node="n0")
    series.append(0.0, float("inf"))
    series.append(0.1, -70.0)
    events = trace_events([recorder])["traceEvents"]
    counters = [e for e in events if e["ph"] == "C"]
    assert len(counters) == 1 and counters[0]["args"]["value"] == -70.0


def test_write_trace_round_trips(tmp_path):
    recorder = Observability(sample_interval_s=None)
    Simulator(obs=recorder)
    recorder.on_tx("n0", 0.0, 0.004, frame_id=1)
    path = tmp_path / "trace.json"
    count = write_trace(path, [recorder], metadata={"exhibit": "t"})
    document = json.loads(path.read_text())
    assert len(document["traceEvents"]) == count
    assert document["metadata"] == {"exhibit": "t"}
