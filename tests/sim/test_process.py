"""Unit tests for generator-based processes."""

import pytest

from repro.sim.process import Process, ProcessError, Sleep
from repro.sim.simulator import Simulator


def test_process_runs_steps_at_yielded_delays():
    sim = Simulator()
    ticks = []

    def body():
        while True:
            ticks.append(sim.now)
            yield 0.5

    Process(sim, body(), name="ticker").start()
    sim.run(2.2)
    assert ticks == pytest.approx([0.0, 0.5, 1.0, 1.5, 2.0])


def test_sleep_object_supported():
    sim = Simulator()
    ticks = []

    def body():
        yield Sleep(1.0)
        ticks.append(sim.now)

    Process(sim, body()).start()
    sim.run(2.0)
    assert ticks == [1.0]


def test_process_finishes_when_generator_returns():
    sim = Simulator()

    def body():
        yield 0.1
        yield 0.1

    process = Process(sim, body()).start()
    sim.run(1.0)
    assert not process.alive


def test_stop_cancels_future_steps():
    sim = Simulator()
    ticks = []

    def body():
        while True:
            ticks.append(sim.now)
            yield 0.5

    process = Process(sim, body()).start()
    sim.schedule(0.7, process.stop)
    sim.run(3.0)
    assert ticks == [0.0, 0.5]
    assert not process.alive


def test_start_delay():
    sim = Simulator()
    ticks = []

    def body():
        ticks.append(sim.now)
        yield 1.0

    Process(sim, body()).start(delay=0.25)
    sim.run(0.5)
    assert ticks == [0.25]


def test_double_start_rejected():
    sim = Simulator()
    process = Process(sim, iter(()))
    process.start()
    with pytest.raises(ProcessError):
        process.start()


def test_bad_yield_value_raises():
    sim = Simulator()

    def body():
        yield "not a delay"

    Process(sim, body()).start()
    with pytest.raises(ProcessError):
        sim.run(1.0)


def test_negative_sleep_raises():
    sim = Simulator()

    def body():
        yield -0.5

    Process(sim, body()).start()
    with pytest.raises(ProcessError):
        sim.run(1.0)
