"""Unit tests for trace recording."""

from repro.sim.simulator import Simulator
from repro.sim.trace import Trace


def test_disabled_trace_records_nothing():
    trace = Trace(enabled=False)
    trace.emit("tx", node="a")
    assert trace.count("tx") == 0
    assert trace.records == []


def test_emit_records_fields_and_counts():
    trace = Trace()
    trace.emit("tx", node="a")
    trace.emit("tx", node="b")
    trace.emit("rx", node="a")
    assert trace.count("tx") == 2
    assert trace.count("rx") == 1
    assert [r.fields["node"] for r in trace.of_kind("tx")] == ["a", "b"]


def test_counters_without_records():
    trace = Trace(keep_records=False)
    trace.emit("tx")
    assert trace.count("tx") == 1
    assert trace.records == []


def test_clock_binding():
    sim = Simulator()
    trace = Trace()
    trace.bind_clock(lambda: sim.now)
    sim.schedule(1.5, lambda: trace.emit("tick"))
    sim.run(2.0)
    assert trace.last("tick").time == 1.5


def test_last_returns_most_recent():
    trace = Trace()
    trace.emit("x", v=1)
    trace.emit("x", v=2)
    assert trace.last("x").fields["v"] == 2
    assert trace.last("missing") is None


def test_clear_resets_everything():
    trace = Trace()
    trace.emit("x")
    trace.clear()
    assert trace.count("x") == 0
    assert trace.records == []


def test_record_str_renders():
    trace = Trace()
    trace.emit("tx", node="a", power=0)
    text = str(trace.records[0])
    assert "tx" in text and "node=a" in text
