"""Unit tests for trace recording."""

from repro.sim.simulator import Simulator
from repro.sim.trace import Trace


def test_disabled_trace_records_nothing():
    trace = Trace(enabled=False)
    trace.emit("tx", node="a")
    assert trace.count("tx") == 0
    assert trace.records == []


def test_emit_records_fields_and_counts():
    trace = Trace()
    trace.emit("tx", node="a")
    trace.emit("tx", node="b")
    trace.emit("rx", node="a")
    assert trace.count("tx") == 2
    assert trace.count("rx") == 1
    assert [r.fields["node"] for r in trace.of_kind("tx")] == ["a", "b"]


def test_counters_without_records():
    trace = Trace(keep_records=False)
    trace.emit("tx")
    assert trace.count("tx") == 1
    assert trace.records == []


def test_clock_binding():
    sim = Simulator()
    trace = Trace()
    trace.bind_clock(lambda: sim.now)
    sim.schedule(1.5, lambda: trace.emit("tick"))
    sim.run(2.0)
    assert trace.last("tick").time == 1.5


def test_last_returns_most_recent():
    trace = Trace()
    trace.emit("x", v=1)
    trace.emit("x", v=2)
    assert trace.last("x").fields["v"] == 2
    assert trace.last("missing") is None


def test_clear_resets_everything():
    trace = Trace()
    trace.emit("x")
    trace.clear()
    assert trace.count("x") == 0
    assert trace.records == []


def test_record_str_renders():
    trace = Trace()
    trace.emit("tx", node="a", power=0)
    text = str(trace.records[0])
    assert "tx" in text and "node=a" in text


# ----------------------------------------------------------------------
# Ring-buffer mode (max_records)


def test_max_records_must_be_positive():
    import pytest

    with pytest.raises(ValueError, match="max_records"):
        Trace(max_records=0)
    with pytest.raises(ValueError, match="max_records"):
        Trace(max_records=-5)


def test_ring_buffer_drops_oldest_and_counts():
    trace = Trace(max_records=3)
    for i in range(5):
        trace.emit("tx", i=i)
    assert trace.records_dropped == 2
    assert [r.fields["i"] for r in trace.records] == [2, 3, 4]
    # counters are exact regardless of eviction
    assert trace.count("tx") == 5


def test_ring_buffer_of_kind_and_last_across_wraparound():
    trace = Trace(max_records=4)
    for i in range(6):
        trace.emit("tx" if i % 2 == 0 else "rx", i=i)
    # retained window is i = 2..5
    assert [r.fields["i"] for r in trace.of_kind("tx")] == [2, 4]
    assert trace.last("rx").fields["i"] == 5
    assert trace.last("tx").fields["i"] == 4


def test_ring_buffer_clear_resets_drop_counter():
    trace = Trace(max_records=1)
    trace.emit("x")
    trace.emit("x")
    assert trace.records_dropped == 1
    trace.clear()
    assert trace.records_dropped == 0
    assert len(trace.records) == 0
    trace.emit("x")
    assert [r.kind for r in trace.records] == ["x"]


def test_unbounded_default_never_drops():
    trace = Trace()
    for _ in range(100):
        trace.emit("x")
    assert trace.records_dropped == 0
    assert len(trace.records) == 100
