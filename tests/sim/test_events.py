"""Unit tests for the event queue."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.events import EventQueue


def test_pop_orders_by_time():
    queue = EventQueue()
    fired = []
    queue.push(2.0, lambda: fired.append("b"))
    queue.push(1.0, lambda: fired.append("a"))
    queue.push(3.0, lambda: fired.append("c"))
    while queue:
        queue.pop().callback()
    assert fired == ["a", "b", "c"]


def test_same_time_orders_by_priority_then_fifo():
    queue = EventQueue()
    fired = []
    queue.push(1.0, lambda: fired.append("low-prio-second"), priority=1)
    queue.push(1.0, lambda: fired.append("first"), priority=0)
    queue.push(1.0, lambda: fired.append("second"), priority=0)
    while queue:
        queue.pop().callback()
    assert fired == ["first", "second", "low-prio-second"]


def test_cancel_skips_event():
    queue = EventQueue()
    fired = []
    keep = queue.push(1.0, lambda: fired.append("keep"))
    drop = queue.push(0.5, lambda: fired.append("drop"))
    queue.cancel(drop)
    assert len(queue) == 1
    while queue:
        queue.pop().callback()
    assert fired == ["keep"]
    assert keep.time == 1.0


def test_double_cancel_is_noop():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None)
    queue.cancel(event)
    queue.cancel(event)
    assert len(queue) == 0


def test_pop_empty_raises():
    queue = EventQueue()
    with pytest.raises(IndexError):
        queue.pop()


def test_peek_time_skips_cancelled_head():
    queue = EventQueue()
    first = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    queue.cancel(first)
    assert queue.peek_time() == 2.0


def test_peek_time_empty_returns_none():
    assert EventQueue().peek_time() is None


def test_clear_empties_queue():
    queue = EventQueue()
    queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    queue.clear()
    assert len(queue) == 0
    assert not queue


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=200))
def test_pop_sequence_is_sorted(times):
    queue = EventQueue()
    for t in times:
        queue.push(t, lambda: None)
    popped = []
    while queue:
        popped.append(queue.pop().time)
    assert popped == sorted(popped)
    assert len(popped) == len(times)


def test_compaction_shrinks_heap_when_mostly_cancelled():
    """Heavy cancellation must not bloat the heap: once more than half of a
    non-trivial heap is dead it is compacted in place."""
    queue = EventQueue()
    events = [queue.push(float(i % 97), lambda: None) for i in range(1000)]
    for event in events[100:]:
        queue.cancel(event)
    assert len(queue) == 100
    # Compaction keeps the dead fraction bounded: the heap never holds more
    # than ~2x the live events (it would hold all 1000 without compaction).
    assert len(queue._heap) <= 2 * len(queue) + EventQueue.COMPACT_MIN_SIZE


def test_compaction_preserves_pop_order():
    queue = EventQueue()
    live_times = []
    events = []
    for i in range(500):
        t = (i * 37) % 101 + (i % 3) * 0.25
        events.append((t, queue.push(float(t), lambda: None)))
    for index, (t, event) in enumerate(events):
        if index % 5:  # cancel 80%: triggers compaction several times
            queue.cancel(event)
        else:
            live_times.append(t)
    popped = []
    while queue:
        popped.append(queue.pop().time)
    assert popped == sorted(live_times)


def test_small_heaps_are_never_compacted():
    queue = EventQueue()
    events = [queue.push(float(i), lambda: None) for i in range(10)]
    for event in events[1:]:
        queue.cancel(event)
    # Below COMPACT_MIN_SIZE the dead entries are left for lazy pop-skip.
    assert len(queue._heap) == 10
    assert len(queue) == 1


def test_pop_due_returns_events_up_to_horizon():
    queue = EventQueue()
    queue.push(1.0, lambda: "a")
    queue.push(2.0, lambda: "b")
    queue.push(3.0, lambda: "c")
    assert queue.pop_due(2.5).time == 1.0
    assert queue.pop_due(2.5).time == 2.0
    assert queue.pop_due(2.5) is None  # t=3 is beyond the horizon...
    assert len(queue) == 1  # ...and stays queued
    assert queue.pop_due(3.0).time == 3.0
    assert queue.pop_due(10.0) is None  # empty queue


def test_pop_due_skips_cancelled_head():
    queue = EventQueue()
    dead = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    queue.cancel(dead)
    event = queue.pop_due(5.0)
    assert event.time == 2.0
    assert queue.pop_due(5.0) is None


def test_pop_due_respects_priority_and_fifo():
    queue = EventQueue()
    queue.push(1.0, lambda: None, priority=1, tag="late")
    queue.push(1.0, lambda: None, priority=0, tag="first")
    queue.push(1.0, lambda: None, priority=0, tag="second")
    assert [queue.pop_due(1.0).tag for _ in range(3)] == [
        "first", "second", "late",
    ]


@given(
    st.lists(
        st.tuples(st.floats(min_value=0.0, max_value=100.0), st.booleans()),
        min_size=1,
        max_size=100,
    )
)
def test_cancellation_never_loses_live_events(entries):
    queue = EventQueue()
    live = 0
    for t, cancel in entries:
        event = queue.push(t, lambda: None)
        if cancel:
            queue.cancel(event)
        else:
            live += 1
    assert len(queue) == live
    popped = 0
    while queue:
        queue.pop()
        popped += 1
    assert popped == live


# ----------------------------------------------------------------------
# Band shards (DESIGN.md §15)
# ----------------------------------------------------------------------
def test_shard_pop_order_matches_single_heap():
    plain = EventQueue()
    sharded = EventQueue()
    shards = [sharded.add_shard() for _ in range(3)]
    entries = [(0.5, 0), (0.5, 0), (0.1, 1), (0.9, 0), (0.1, 0), (0.5, 2)]
    for index, (t, prio) in enumerate(entries):
        plain.push(t, lambda: None, priority=prio, tag=index)
        shard = shards[index % len(shards)] if index % 2 else None
        sharded.push(t, lambda: None, priority=prio, tag=index, shard=shard)
    order_plain = [plain.pop().tag for _ in range(len(entries))]
    order_sharded = [sharded.pop().tag for _ in range(len(entries))]
    assert order_sharded == order_plain


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=100.0),
            st.integers(min_value=0, max_value=3),
            st.integers(min_value=-1, max_value=3),
            st.booleans(),
        ),
        min_size=1,
        max_size=150,
    )
)
def test_shard_assignment_never_changes_dispatch_order(entries):
    """Property: any shard assignment pops the exact single-heap sequence.

    The sequence counter is global, so ``(time, priority, seq)`` is a
    total order independent of heap placement; cancellation of the same
    subset must also behave identically.
    """
    plain = EventQueue()
    sharded = EventQueue(compact_min_size=4)  # compact aggressively too
    shards = [sharded.add_shard() for _ in range(4)]
    plain_events, sharded_events = [], []
    for index, (t, prio, shard_pick, _cancel) in enumerate(entries):
        plain_events.append(plain.push(t, lambda: None, priority=prio, tag=index))
        shard = None if shard_pick < 0 else shards[shard_pick]
        sharded_events.append(
            sharded.push(t, lambda: None, priority=prio, tag=index, shard=shard)
        )
    for (_, _, _, cancel), pe, se in zip(entries, plain_events, sharded_events):
        if cancel:
            plain.cancel(pe)
            sharded.cancel(se)
    assert len(sharded) == len(plain)
    order_plain = [plain.pop().tag for _ in range(len(plain))]
    order_sharded = [sharded.pop().tag for _ in range(len(sharded))]
    assert order_sharded == order_plain
    assert not sharded and not plain


def test_peek_time_sees_earliest_shard_head():
    queue = EventQueue()
    shard = queue.add_shard()
    queue.push(5.0, lambda: None)
    queue.push(1.0, lambda: None, shard=shard)
    assert queue.peek_time() == 1.0
    assert queue.pop().time == 1.0
    assert queue.peek_time() == 5.0


def test_pop_due_honours_horizon_across_shards():
    queue = EventQueue()
    shard = queue.add_shard()
    queue.push(2.0, lambda: None, tag="main")
    queue.push(1.0, lambda: None, tag="band", shard=shard)
    queue.push(3.0, lambda: None, tag="late", shard=shard)
    assert queue.pop_due(2.5).tag == "band"
    assert queue.pop_due(2.5).tag == "main"
    assert queue.pop_due(2.5) is None
    assert queue.pop_due(3.0).tag == "late"


def test_clear_keeps_shard_registrations():
    queue = EventQueue()
    shard = queue.add_shard()
    queue.push(1.0, lambda: None, shard=shard)
    queue.clear()
    assert queue.num_shards == 1
    assert len(queue) == 0
    queue.push(1.0, lambda: None, shard=shard)  # must not IndexError
    assert queue.pop().shard == shard


# ----------------------------------------------------------------------
# Compaction configuration and bookkeeping
# ----------------------------------------------------------------------
def test_compaction_threshold_is_configurable():
    eager = EventQueue(compact_min_size=0, compact_dead_fraction=0.1)
    events = [eager.push(float(i), lambda: None) for i in range(20)]
    for event in events[10:]:
        eager.cancel(event)
    assert eager.compactions > 0
    # The heap may keep a sub-threshold tail of dead entries, but eager
    # compaction keeps it close to the live count (10) — far below the
    # 20 entries an uncompacted heap would hold.
    assert len(eager) == 10
    assert len(eager._heap) <= 12

    lazy = EventQueue(compact_min_size=1000)
    events = [lazy.push(float(i), lambda: None) for i in range(20)]
    for event in events[1:]:
        lazy.cancel(event)
    assert lazy.compactions == 0
    assert len(lazy._heap) == 20 and len(lazy) == 1


def test_invalid_compaction_config_rejected():
    with pytest.raises(ValueError):
        EventQueue(compact_min_size=-1)
    with pytest.raises(ValueError):
        EventQueue(compact_dead_fraction=0.0)
    with pytest.raises(ValueError):
        EventQueue(compact_dead_fraction=1.5)


def test_live_and_scan_live_agree():
    queue = EventQueue(compact_min_size=4)
    shard = queue.add_shard()
    events = []
    for i in range(50):
        events.append(
            queue.push(float(i), lambda: None,
                       shard=shard if i % 2 else None)
        )
    for event in events[::3]:
        queue.cancel(event)
    assert queue.live == len(queue) == queue.scan_live()


def test_cancel_after_fire_is_noop():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None)
    assert queue.pop() is event
    queue.cancel(event)  # fired events must not decrement live again
    assert len(queue) == 0
    assert not event.cancelled


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=50.0),
            st.sampled_from(["keep", "cancel", "cancel_after_fire"]),
        ),
        min_size=1,
        max_size=120,
    ),
    st.integers(min_value=0, max_value=16),
)
def test_cancel_after_fire_with_compaction_property(entries, compact_min):
    """Cancel-after-fire interplay with compaction (Event._fired guard).

    Pops mark events ``_fired``; a later ``cancel`` on them must neither
    corrupt the live counter nor trigger a compaction that drops pending
    events — even with an aggressive compaction threshold.
    """
    queue = EventQueue(compact_min_size=compact_min,
                       compact_dead_fraction=0.25)
    events = [queue.push(t, lambda: None, tag=fate) for t, fate in entries]
    cancelled = 0
    for event, (_, fate) in zip(events, entries):
        if fate == "cancel":
            queue.cancel(event)
            cancelled += 1
    fired = []
    for event, (_, fate) in zip(events, entries):
        if fate == "cancel_after_fire":
            popped = queue.pop()  # earliest live event, not necessarily this one
            fired.append(popped)
            queue.cancel(popped)
            assert popped._fired and not popped.cancelled
    expected_live = len(entries) - cancelled - len(fired)
    assert len(queue) == expected_live == queue.scan_live()
    drained = []
    while queue:
        drained.append(queue.pop())
    assert len(drained) == expected_live
    drain_keys = [(e.time, e.priority, e.seq) for e in drained]
    assert drain_keys == sorted(drain_keys)
