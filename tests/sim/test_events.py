"""Unit tests for the event queue."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.events import EventQueue


def test_pop_orders_by_time():
    queue = EventQueue()
    fired = []
    queue.push(2.0, lambda: fired.append("b"))
    queue.push(1.0, lambda: fired.append("a"))
    queue.push(3.0, lambda: fired.append("c"))
    while queue:
        queue.pop().callback()
    assert fired == ["a", "b", "c"]


def test_same_time_orders_by_priority_then_fifo():
    queue = EventQueue()
    fired = []
    queue.push(1.0, lambda: fired.append("low-prio-second"), priority=1)
    queue.push(1.0, lambda: fired.append("first"), priority=0)
    queue.push(1.0, lambda: fired.append("second"), priority=0)
    while queue:
        queue.pop().callback()
    assert fired == ["first", "second", "low-prio-second"]


def test_cancel_skips_event():
    queue = EventQueue()
    fired = []
    keep = queue.push(1.0, lambda: fired.append("keep"))
    drop = queue.push(0.5, lambda: fired.append("drop"))
    queue.cancel(drop)
    assert len(queue) == 1
    while queue:
        queue.pop().callback()
    assert fired == ["keep"]
    assert keep.time == 1.0


def test_double_cancel_is_noop():
    queue = EventQueue()
    event = queue.push(1.0, lambda: None)
    queue.cancel(event)
    queue.cancel(event)
    assert len(queue) == 0


def test_pop_empty_raises():
    queue = EventQueue()
    with pytest.raises(IndexError):
        queue.pop()


def test_peek_time_skips_cancelled_head():
    queue = EventQueue()
    first = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    queue.cancel(first)
    assert queue.peek_time() == 2.0


def test_peek_time_empty_returns_none():
    assert EventQueue().peek_time() is None


def test_clear_empties_queue():
    queue = EventQueue()
    queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    queue.clear()
    assert len(queue) == 0
    assert not queue


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=200))
def test_pop_sequence_is_sorted(times):
    queue = EventQueue()
    for t in times:
        queue.push(t, lambda: None)
    popped = []
    while queue:
        popped.append(queue.pop().time)
    assert popped == sorted(popped)
    assert len(popped) == len(times)


def test_compaction_shrinks_heap_when_mostly_cancelled():
    """Heavy cancellation must not bloat the heap: once more than half of a
    non-trivial heap is dead it is compacted in place."""
    queue = EventQueue()
    events = [queue.push(float(i % 97), lambda: None) for i in range(1000)]
    for event in events[100:]:
        queue.cancel(event)
    assert len(queue) == 100
    # Compaction keeps the dead fraction bounded: the heap never holds more
    # than ~2x the live events (it would hold all 1000 without compaction).
    assert len(queue._heap) <= 2 * len(queue) + EventQueue.COMPACT_MIN_SIZE


def test_compaction_preserves_pop_order():
    queue = EventQueue()
    live_times = []
    events = []
    for i in range(500):
        t = (i * 37) % 101 + (i % 3) * 0.25
        events.append((t, queue.push(float(t), lambda: None)))
    for index, (t, event) in enumerate(events):
        if index % 5:  # cancel 80%: triggers compaction several times
            queue.cancel(event)
        else:
            live_times.append(t)
    popped = []
    while queue:
        popped.append(queue.pop().time)
    assert popped == sorted(live_times)


def test_small_heaps_are_never_compacted():
    queue = EventQueue()
    events = [queue.push(float(i), lambda: None) for i in range(10)]
    for event in events[1:]:
        queue.cancel(event)
    # Below COMPACT_MIN_SIZE the dead entries are left for lazy pop-skip.
    assert len(queue._heap) == 10
    assert len(queue) == 1


def test_pop_due_returns_events_up_to_horizon():
    queue = EventQueue()
    queue.push(1.0, lambda: "a")
    queue.push(2.0, lambda: "b")
    queue.push(3.0, lambda: "c")
    assert queue.pop_due(2.5).time == 1.0
    assert queue.pop_due(2.5).time == 2.0
    assert queue.pop_due(2.5) is None  # t=3 is beyond the horizon...
    assert len(queue) == 1  # ...and stays queued
    assert queue.pop_due(3.0).time == 3.0
    assert queue.pop_due(10.0) is None  # empty queue


def test_pop_due_skips_cancelled_head():
    queue = EventQueue()
    dead = queue.push(1.0, lambda: None)
    queue.push(2.0, lambda: None)
    queue.cancel(dead)
    event = queue.pop_due(5.0)
    assert event.time == 2.0
    assert queue.pop_due(5.0) is None


def test_pop_due_respects_priority_and_fifo():
    queue = EventQueue()
    queue.push(1.0, lambda: None, priority=1, tag="late")
    queue.push(1.0, lambda: None, priority=0, tag="first")
    queue.push(1.0, lambda: None, priority=0, tag="second")
    assert [queue.pop_due(1.0).tag for _ in range(3)] == [
        "first", "second", "late",
    ]


@given(
    st.lists(
        st.tuples(st.floats(min_value=0.0, max_value=100.0), st.booleans()),
        min_size=1,
        max_size=100,
    )
)
def test_cancellation_never_loses_live_events(entries):
    queue = EventQueue()
    live = 0
    for t, cancel in entries:
        event = queue.push(t, lambda: None)
        if cancel:
            queue.cancel(event)
        else:
            live += 1
    assert len(queue) == live
    popped = 0
    while queue:
        queue.pop()
        popped += 1
    assert popped == live
