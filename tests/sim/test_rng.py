"""Unit tests for named RNG streams."""

import pytest

from repro.sim.rng import RngStreams


def test_same_name_same_object():
    streams = RngStreams(42)
    assert streams.stream("a") is streams.stream("a")


def test_streams_reproducible_across_instances():
    a = RngStreams(42).stream("backoff").random(10).tolist()
    b = RngStreams(42).stream("backoff").random(10).tolist()
    assert a == b


def test_different_names_independent():
    streams = RngStreams(42)
    a = streams.stream("a").random(10).tolist()
    b = streams.stream("b").random(10).tolist()
    assert a != b


def test_different_seeds_differ():
    a = RngStreams(1).stream("x").random(10).tolist()
    b = RngStreams(2).stream("x").random(10).tolist()
    assert a != b


def test_creation_order_does_not_matter():
    first = RngStreams(7)
    first.stream("alpha")
    alpha_then_beta = first.stream("beta").random(5).tolist()

    second = RngStreams(7)
    beta_only = second.stream("beta").random(5).tolist()
    assert alpha_then_beta == beta_only


def test_fork_changes_streams():
    base = RngStreams(3)
    forked = base.fork(1)
    assert base.stream("x").random(5).tolist() != forked.stream("x").random(5).tolist()


def test_fork_reproducible():
    a = RngStreams(3).fork(5).stream("x").random(5).tolist()
    b = RngStreams(3).fork(5).stream("x").random(5).tolist()
    assert a == b


def test_non_int_seed_rejected():
    with pytest.raises(TypeError):
        RngStreams("seed")  # type: ignore[arg-type]


def test_stream_many_matches_stream():
    streams = RngStreams(42)
    names = [f"fading.tx{i}.rx{j}" for i in range(4) for j in range(4)]
    scalar = [RngStreams(42).stream(n).random(8).tolist() for n in names]
    batch = [g.random(8).tolist() for g in streams.stream_many(names)]
    assert batch == scalar


def test_stream_many_shares_cache_with_stream():
    streams = RngStreams(7)
    first = streams.stream("fading.a.b")
    (batched,) = streams.stream_many(["fading.a.b"])
    assert batched is first
    (again,) = streams.stream_many(["fading.c.d"])
    assert streams.stream("fading.c.d") is again


def test_stream_many_empty_is_noop():
    assert RngStreams(1).stream_many([]) == []


try:
    from hypothesis import given, settings, strategies as st
except ImportError:  # pragma: no cover
    given = None

if given is not None:
    @given(
        st.integers(min_value=0, max_value=2**200 + 999),
        st.lists(st.integers(min_value=0, max_value=2**16),
                 min_size=1, max_size=8, unique=True),
    )
    @settings(max_examples=40, deadline=None)
    def test_stream_many_bit_identical_property(root, keys):
        """The vectorised SeedSequence replica must match numpy bit-for-bit
        for arbitrary root entropy (including > 2**128) and spawn keys."""
        names = [f"s{k}" for k in keys]
        scalar = [
            RngStreams(root).stream(n).standard_normal(4).tolist()
            for n in names
        ]
        batch = [
            g.standard_normal(4).tolist()
            for g in RngStreams(root).stream_many(names)
        ]
        assert batch == scalar
