"""Unit tests for named RNG streams."""

import pytest

from repro.sim.rng import RngStreams


def test_same_name_same_object():
    streams = RngStreams(42)
    assert streams.stream("a") is streams.stream("a")


def test_streams_reproducible_across_instances():
    a = RngStreams(42).stream("backoff").random(10).tolist()
    b = RngStreams(42).stream("backoff").random(10).tolist()
    assert a == b


def test_different_names_independent():
    streams = RngStreams(42)
    a = streams.stream("a").random(10).tolist()
    b = streams.stream("b").random(10).tolist()
    assert a != b


def test_different_seeds_differ():
    a = RngStreams(1).stream("x").random(10).tolist()
    b = RngStreams(2).stream("x").random(10).tolist()
    assert a != b


def test_creation_order_does_not_matter():
    first = RngStreams(7)
    first.stream("alpha")
    alpha_then_beta = first.stream("beta").random(5).tolist()

    second = RngStreams(7)
    beta_only = second.stream("beta").random(5).tolist()
    assert alpha_then_beta == beta_only


def test_fork_changes_streams():
    base = RngStreams(3)
    forked = base.fork(1)
    assert base.stream("x").random(5).tolist() != forked.stream("x").random(5).tolist()


def test_fork_reproducible():
    a = RngStreams(3).fork(5).stream("x").random(5).tolist()
    b = RngStreams(3).fork(5).stream("x").random(5).tolist()
    assert a == b


def test_non_int_seed_rejected():
    with pytest.raises(TypeError):
        RngStreams("seed")  # type: ignore[arg-type]
