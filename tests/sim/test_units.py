"""Unit tests and properties for power-unit conversions."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.sim.units import (
    ZERO_POWER_DBM,
    db_to_linear,
    dbm_to_mw,
    linear_to_db,
    mw_to_dbm,
    sum_powers_dbm,
)


def test_known_conversions():
    assert dbm_to_mw(0.0) == pytest.approx(1.0)
    assert dbm_to_mw(10.0) == pytest.approx(10.0)
    assert dbm_to_mw(-30.0) == pytest.approx(0.001)
    assert mw_to_dbm(1.0) == pytest.approx(0.0)
    assert mw_to_dbm(100.0) == pytest.approx(20.0)


def test_zero_power_maps_to_floor():
    assert mw_to_dbm(0.0) == ZERO_POWER_DBM
    assert mw_to_dbm(-1e-9) == ZERO_POWER_DBM


def test_linear_to_db_rejects_nonpositive():
    with pytest.raises(ValueError):
        linear_to_db(0.0)
    with pytest.raises(ValueError):
        linear_to_db(-1.0)


def test_db_linear_identities():
    assert db_to_linear(3.0) == pytest.approx(1.9953, rel=1e-3)
    assert linear_to_db(2.0) == pytest.approx(3.0103, rel=1e-3)


def test_sum_powers_doubling_adds_3db():
    total = sum_powers_dbm([-50.0, -50.0])
    assert total == pytest.approx(-50.0 + 10 * math.log10(2), abs=1e-9)


def test_sum_powers_dominated_by_strongest():
    total = sum_powers_dbm([-40.0, -90.0])
    assert total == pytest.approx(-40.0, abs=0.01)


def test_sum_powers_empty_is_floor():
    assert sum_powers_dbm([]) == ZERO_POWER_DBM


@given(st.floats(min_value=-150.0, max_value=50.0))
def test_roundtrip_dbm(dbm):
    assert mw_to_dbm(dbm_to_mw(dbm)) == pytest.approx(dbm, abs=1e-9)


@given(
    st.lists(st.floats(min_value=-120.0, max_value=10.0), min_size=1, max_size=10)
)
def test_sum_at_least_max(levels):
    total = sum_powers_dbm(levels)
    assert total >= max(levels) - 1e-9


@given(
    st.lists(st.floats(min_value=-120.0, max_value=10.0), min_size=1, max_size=10)
)
def test_sum_bounded_by_max_plus_10log_n(levels):
    total = sum_powers_dbm(levels)
    bound = max(levels) + 10 * math.log10(len(levels))
    assert total <= bound + 1e-9
