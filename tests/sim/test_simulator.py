"""Unit tests for the Simulator kernel."""

import pytest

from repro.sim.simulator import SimulationError, Simulator


def test_clock_starts_at_zero():
    assert Simulator().now == 0.0


def test_run_advances_clock_to_until():
    sim = Simulator()
    sim.run(5.0)
    assert sim.now == 5.0


def test_events_fire_in_order_and_see_correct_now():
    sim = Simulator()
    seen = []
    sim.schedule(2.0, lambda: seen.append(sim.now))
    sim.schedule(1.0, lambda: seen.append(sim.now))
    sim.run(3.0)
    assert seen == [1.0, 2.0]


def test_events_beyond_until_do_not_fire():
    sim = Simulator()
    fired = []
    sim.schedule(10.0, lambda: fired.append("late"))
    sim.run(5.0)
    assert fired == []
    assert sim.pending_events == 1
    sim.run(15.0)
    assert fired == ["late"]


def test_events_scheduled_during_run_fire_same_run():
    sim = Simulator()
    fired = []

    def chain():
        fired.append(sim.now)
        if sim.now < 0.5:
            sim.schedule(0.1, chain)

    sim.schedule(0.1, chain)
    sim.run(1.0)
    # Self-rescheduling chain: fires every 0.1 s until now >= 0.5 (float
    # accumulation makes the exact count 5-7).
    assert 5 <= len(fired) <= 7
    assert fired[0] == pytest.approx(0.1)
    assert fired == sorted(fired)


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_at_past_rejected():
    sim = Simulator()
    sim.run(5.0)
    with pytest.raises(SimulationError):
        sim.schedule_at(4.0, lambda: None)


def test_run_into_past_rejected():
    sim = Simulator()
    sim.run(5.0)
    with pytest.raises(SimulationError):
        sim.run(1.0)


def test_cancel_pending_event():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, lambda: fired.append("x"))
    sim.cancel(event)
    sim.run(2.0)
    assert fired == []


def test_run_until_idle_drains_queue():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(2.0, lambda: fired.append(2))
    sim.run_until_idle()
    assert fired == [1, 2]
    assert sim.now == 2.0


def test_run_until_idle_respects_max_time():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append(1))
    sim.schedule(10.0, lambda: fired.append(2))
    sim.run_until_idle(max_time=5.0)
    assert fired == [1]
    assert sim.pending_events == 1


def test_not_reentrant():
    sim = Simulator()
    errors = []

    def reenter():
        try:
            sim.run(10.0)
        except SimulationError as exc:
            errors.append(exc)

    sim.schedule(1.0, reenter)
    sim.run(2.0)
    assert len(errors) == 1
