"""Public-API surface tests: every documented export must resolve."""

import importlib

import pytest

import repro


def test_top_level_exposes_all_subpackages():
    for name in ("sim", "phy", "mac", "core", "net", "dot11", "experiments",
                 "campaign", "perf"):
        assert hasattr(repro, name)
    assert repro.__version__


PACKAGES = [
    "repro.sim",
    "repro.phy",
    "repro.mac",
    "repro.core",
    "repro.net",
    "repro.dot11",
    "repro.experiments",
    "repro.campaign",
    "repro.perf",
]


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_resolve(package):
    module = importlib.import_module(package)
    assert module.__all__, f"{package} exports nothing"
    for name in module.__all__:
        assert hasattr(module, name), f"{package}.{name} missing"


#: Type aliases re-exported for annotation convenience — no docstring of
#: their own (typing constructs).
TYPE_ALIASES = {"Position", "PolicyFactory", "PowerAssignment"}


@pytest.mark.parametrize("package", PACKAGES)
def test_all_exports_are_documented(package):
    """Every exported class/function carries a docstring."""
    module = importlib.import_module(package)
    for name in module.__all__:
        if name in TYPE_ALIASES:
            continue
        obj = getattr(module, name)
        if callable(obj) or isinstance(obj, type):
            assert obj.__doc__, f"{package}.{name} lacks a docstring"


def test_key_user_journey_imports():
    """The imports README shows must work exactly as written."""
    from repro.experiments.runner import run_deployment  # noqa: F401
    from repro.experiments.scenarios import (  # noqa: F401
        dcn_policy_factory,
        evaluation_plan,
        evaluation_testbed,
    )
    from repro.experiments.registry import get  # noqa: F401
    from repro.core import DcnCcaPolicy  # noqa: F401
