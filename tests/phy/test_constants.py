"""Tests for 802.15.4 / CC2420 constants and helpers (pure functions)."""

import pytest

from repro.phy.constants import (
    BIT_RATE_BPS,
    CC2420_PA_LEVELS,
    CCA_DURATION_S,
    CHANNEL_SPACING_MHZ,
    DEFAULT_CCA_THRESHOLD_DBM,
    NOISE_FLOOR_DBM,
    RX_SENSITIVITY_DBM,
    SYMBOL_PERIOD_S,
    TURNAROUND_TIME_S,
    UNIT_BACKOFF_PERIOD_S,
    channel_center_mhz,
    pa_level_for_power,
)


def test_standard_timing_values():
    assert SYMBOL_PERIOD_S == pytest.approx(16e-6)
    assert UNIT_BACKOFF_PERIOD_S == pytest.approx(320e-6)
    assert CCA_DURATION_S == pytest.approx(128e-6)
    assert TURNAROUND_TIME_S == pytest.approx(192e-6)
    assert BIT_RATE_BPS == 250_000


def test_paper_critical_radio_constants():
    """The constants the paper's argument hinges on."""
    assert DEFAULT_CCA_THRESHOLD_DBM == -77.0  # "fixed at -77dBm"
    assert CHANNEL_SPACING_MHZ == 5.0  # ZigBee default CFD
    assert RX_SENSITIVITY_DBM == -94.0
    assert RX_SENSITIVITY_DBM - NOISE_FLOOR_DBM == pytest.approx(6.0)


def test_channel_grid():
    assert channel_center_mhz(11) == 2405.0
    assert channel_center_mhz(26) == 2480.0
    assert channel_center_mhz(20) - channel_center_mhz(19) == 5.0
    with pytest.raises(ValueError):
        channel_center_mhz(10)
    with pytest.raises(ValueError):
        channel_center_mhz(27)


def test_pa_level_selection():
    assert pa_level_for_power(0.0) == 31
    assert pa_level_for_power(-25.0) == 3
    # Requesting -4 dBm: the smallest level delivering at least that is -3.
    assert CC2420_PA_LEVELS[pa_level_for_power(-4.0)] == -3.0
    with pytest.raises(ValueError):
        pa_level_for_power(5.0)


def test_pa_levels_monotone():
    levels = sorted(CC2420_PA_LEVELS)
    powers = [CC2420_PA_LEVELS[level] for level in levels]
    assert powers == sorted(powers)
