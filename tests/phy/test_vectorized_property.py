"""Property tests for the vectorized (batched) phy kernels.

Three layers of guarantees, in decreasing strictness:

1. **Bit-identical batch kernels** — mask leakage and fading draws use
   only exact float ops (or replay the exact same RNG stream), so the
   batched results must equal the scalar results with ``==``.
2. **Guard-banded batch kernels** — batched path loss goes through numpy
   SIMD transcendentals that may differ from libm by a few ulp; the
   contract is "within ``PRESELECT_GUARD_DB``" (it is only ever used to
   *preselect*, never to commit a value).
3. **Identical traces** — whole-scene runs through the vectorized medium
   (and, on spectrally separated scenes, the band-sharded medium) must
   deliver exactly the same frames with the same float-exact outcomes as
   the scalar kernels.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.phy.fading import LogNormalFading, NoFading
from repro.phy.frame import Frame
from repro.phy.mask import PiecewiseLinearMask
from repro.phy.medium import Medium
from repro.phy.propagation import (
    FixedRssMatrix,
    FreeSpacePathLoss,
    LogDistancePathLoss,
)
from repro.phy.radio import Radio
from repro.phy.vectorized import PRESELECT_GUARD_DB, VectorizedLinkCache
from repro.sim.rng import RngStreams
from repro.sim.simulator import Simulator

finite = st.floats(
    min_value=-500.0, max_value=500.0, allow_nan=False, allow_infinity=False
)
positions = st.lists(st.tuples(finite, finite), min_size=1, max_size=40)


# ----------------------------------------------------------------------
# 1. Batched path loss: within the preselection guard of the scalar path
# ----------------------------------------------------------------------
@given(
    rx=positions,
    tx=st.tuples(finite, finite),
    power=st.floats(min_value=-25.0, max_value=5.0, allow_nan=False),
    model_kind=st.sampled_from(["free_space", "log_distance"]),
)
@settings(max_examples=60, deadline=None)
def test_batched_path_loss_within_preselection_guard(rx, tx, power, model_kind):
    model = (
        FreeSpacePathLoss() if model_kind == "free_space" else LogDistancePathLoss()
    )
    batch = model.received_power_dbm_batch(power, tx, np.asarray(rx, dtype=float))
    for i, pos in enumerate(rx):
        scalar = model.received_power_dbm(power, tx, pos)
        # The guard band is 1e-6 dB; SIMD-vs-libm disagreement must sit
        # orders of magnitude below it for the preselection to be safe.
        assert abs(batch[i] - scalar) <= 1e-9 * max(1.0, abs(scalar))
        assert abs(batch[i] - scalar) < PRESELECT_GUARD_DB


@given(
    rx=positions,
    tx=st.tuples(finite, finite),
    power=st.floats(min_value=-25.0, max_value=5.0, allow_nan=False),
)
@settings(max_examples=30, deadline=None)
def test_batched_fixed_matrix_is_bit_identical(rx, tx, power):
    """The matrix model does exact dict lookups: batch must be ``==``."""
    model = FixedRssMatrix(default_loss_db=120.0)
    for i, pos in enumerate(rx):
        if i % 2 == 0:
            model.set_loss(tx, pos, 40.0 + i)
    batch = model.received_power_dbm_batch(power, tx, np.asarray(rx, dtype=float))
    for i, pos in enumerate(rx):
        assert batch[i] == model.received_power_dbm(power, tx, pos)


# ----------------------------------------------------------------------
# 2. Batched mask leakage: bit-identical
# ----------------------------------------------------------------------
mask_points = st.lists(
    st.floats(min_value=0.01, max_value=50.0, allow_nan=False),
    min_size=1,
    max_size=7,
    unique=True,
).map(lambda fs: [0.0] + sorted(fs))


@given(
    freqs=mask_points,
    steps=st.lists(
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        min_size=8,
        max_size=8,
    ),
    offsets=st.lists(
        st.floats(min_value=-120.0, max_value=120.0, allow_nan=False),
        min_size=1,
        max_size=50,
    ),
)
@settings(max_examples=60, deadline=None)
def test_batched_mask_leakage_is_bit_identical(freqs, steps, offsets):
    attens = []
    level = 0.0
    for i in range(len(freqs)):
        level += steps[i]
        attens.append(level)
    mask = PiecewiseLinearMask(
        list(zip(freqs, attens)), max_db=attens[-1] + 15.0
    )
    batch = mask.leakage_db_batch(np.asarray(offsets, dtype=float))
    for i, offset in enumerate(offsets):
        assert batch[i] == mask.leakage_db(offset)


# ----------------------------------------------------------------------
# 3. Batched fading draws: bit-identical stream replay
# ----------------------------------------------------------------------
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_streams=st.integers(min_value=1, max_value=24),
    rounds=st.integers(min_value=1, max_value=4),
)
@settings(max_examples=40, deadline=None)
def test_sample_db_many_is_bit_identical_to_scalar_loop(seed, n_streams, rounds):
    """Two fresh models over identically seeded per-link streams: the
    batched draw must replay the scalar per-stream sequence exactly."""
    scalar_model = LogNormalFading(sigma_db=4.0, clip_db=12.0)
    batch_model = LogNormalFading(sigma_db=4.0, clip_db=12.0)
    names = [f"fading.tx.rx{i}" for i in range(n_streams)]
    scalar_streams = [RngStreams(seed).stream(name) for name in names]
    batch_streams = [RngStreams(seed).stream(name) for name in names]
    for _ in range(rounds):
        scalar = [scalar_model.sample_db(rng) for rng in scalar_streams]
        batched = batch_model.sample_db_many(batch_streams)
        assert batched == scalar


def test_no_fading_sample_db_many_is_zeros():
    streams = [RngStreams(0).stream(f"s{i}") for i in range(5)]
    assert NoFading().sample_db_many(streams) == [0.0] * 5


# ----------------------------------------------------------------------
# 4. Whole-scene trace identity: vectorized vs scalar cache
# ----------------------------------------------------------------------
def _delivery_run(
    seed,
    *,
    vectorized,
    band_sharding=False,
    cross_band=False,
    sharded_scheduler=None,
):
    """Two co-channel transmit chains plus receivers; with ``cross_band``
    a second network sits 75 MHz away, pre-mask audible (so signals *are*
    delivered across bands without sharding) but sub-floor post-mask (so
    sharding drops the cross links).  Returns every delivered frame as a
    float-exact outcome tuple."""
    sim = Simulator()
    rng = RngStreams(seed)
    matrix = FixedRssMatrix(default_loss_db=200.0)
    positions = {
        "a_tx": (0.0, 0.0),
        "a_rx1": (1.0, 0.0),
        "a_rx2": (2.0, 0.0),
        "b_tx": (10.0, 0.0),
        "b_rx": (11.0, 0.0),
    }
    channels = {name: 2405.0 for name in positions}
    if cross_band:
        channels["b_tx"] = channels["b_rx"] = 2480.0
    # Strong in-network links (high SINR, BER 0); cross-network mean RSS
    # -80 dBm: audible pre-mask (floor -115, clip 12) yet dropped by the
    # shard condition (-80 + 12 - 60 dB mask < -115).
    for tx in ("a_tx", "b_tx"):
        for rx in positions:
            if rx == tx:
                continue
            same = rx.startswith(tx[0])
            matrix.set_loss(
                positions[tx], positions[rx], 45.0 if same else 80.0
            )
    medium = Medium(
        sim,
        matrix,
        fading=LogNormalFading(sigma_db=4.0, clip_db=12.0),
        rng=rng,
        delivery_floor_dbm=-115.0,
        link_cache=True,
        vectorized=vectorized,
        band_sharding=band_sharding,
        sharded_scheduler=sharded_scheduler,
    )
    radios = {
        name: Radio(sim, medium, name, positions[name], channels[name], 0.0, rng=rng)
        for name in positions
    }
    events = []
    for name in ("a_rx1", "a_rx2", "b_rx"):
        def listener(outcome, _name=name):
            events.append(
                (
                    _name,
                    outcome.frame.source,
                    outcome.rssi_dbm,
                    outcome.crc_ok,
                    outcome.errored_bits,
                    outcome.total_bits,
                )
            )
        radios[name].add_frame_listener(listener)

    def chain(radio, remaining):
        if remaining == 0:
            return
        frame = Frame(radio.name, None, 40)
        radio.transmit(
            frame,
            lambda t: sim.schedule(1e-4, lambda: chain(radio, remaining - 1)),
        )

    sim.schedule(0.0, lambda: chain(radios["a_tx"], 10))
    sim.schedule(1.7e-3, lambda: chain(radios["b_tx"], 10))
    sim.run_until_idle()
    assert any(name == "a_rx1" for name, *_ in events)
    assert any(name == "b_rx" for name, *_ in events)
    return events


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=8, deadline=None)
def test_vectorized_cache_trace_identical_to_scalar_cache(seed):
    assert _delivery_run(seed, vectorized=True) == _delivery_run(
        seed, vectorized=False
    )


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=8, deadline=None)
def test_band_sharding_trace_identical_on_separated_bands(seed):
    """Cross-shard leakage below the delivery floor ⇒ identical traces.

    The cross-band links *are* audible pre-mask (signals cross without
    sharding, perturbing only sub-floor accumulator bits), and every
    in-network link runs at BER-0 SINR, so dropping them cannot change
    any delivered outcome."""
    sharded = _delivery_run(
        seed, vectorized=True, band_sharding=True, cross_band=True
    )
    plain = _delivery_run(
        seed, vectorized=True, band_sharding=False, cross_band=True
    )
    assert sharded == plain


# ----------------------------------------------------------------------
# 5. Shard-condition unit properties
# ----------------------------------------------------------------------
def _shard_rig(cross_band):
    sim = Simulator()
    rng = RngStreams(3)
    matrix = FixedRssMatrix(default_loss_db=80.0)
    medium = Medium(
        sim,
        matrix,
        fading=LogNormalFading(sigma_db=4.0, clip_db=12.0),
        rng=rng,
        delivery_floor_dbm=-115.0,
        band_sharding=True,
    )
    tx = Radio(sim, medium, "tx", (0.0, 0.0), 2405.0, 0.0, rng=rng)
    peers = [
        Radio(
            sim,
            medium,
            f"rx{i}",
            (float(i + 1), 0.0),
            2480.0 if cross_band else 2405.0,
            0.0,
            rng=rng,
        )
        for i in range(4)
    ]
    return medium, tx, peers


def test_sharding_never_drops_co_channel_links():
    medium, tx, peers = _shard_rig(cross_band=False)
    cache = medium._vec_cache
    assert isinstance(cache, VectorizedLinkCache)
    radios, _, _ = cache.sharded_fanout_lists(tx, 0.0, tx.channel_mhz)
    assert set(radios) == set(peers)  # zero leakage: all kept


def test_sharding_drops_sub_floor_cross_band_links():
    medium, tx, peers = _shard_rig(cross_band=True)
    cache = medium._vec_cache
    full, _, _ = cache.fanout_lists(tx, 0.0)
    assert set(full) == set(peers)  # audible pre-mask (-80 + 12 >= -115)
    sharded, _, _ = cache.sharded_fanout_lists(tx, 0.0, tx.channel_mhz)
    assert sharded == []  # -80 + 12 - 60 < -115: the whole band drops


def test_band_sharding_requires_vectorized():
    import pytest

    sim = Simulator()
    with pytest.raises(ValueError):
        Medium(
            sim,
            FixedRssMatrix(),
            rng=RngStreams(1),
            vectorized=False,
            band_sharding=True,
        )


# ----------------------------------------------------------------------
# 6. Sharded scheduler + batched receiver accumulators (DESIGN.md §15)
# ----------------------------------------------------------------------
@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=8, deadline=None)
def test_sharded_scheduler_trace_identical_to_unsharded(seed):
    """Scheduler sharding + the batched delivery loop vs the PR-6
    vectorized path with a single heap: bit-identical outcomes."""
    sharded = _delivery_run(seed, vectorized=True, sharded_scheduler=True)
    plain = _delivery_run(seed, vectorized=True, sharded_scheduler=False)
    assert sharded == plain


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=8, deadline=None)
def test_sharded_scheduler_trace_identical_to_scalar_reference(seed):
    """The full fast stack (sharded scheduler, batched accumulators,
    vectorized cache) against the brute-force scalar kernels."""
    fast = _delivery_run(seed, vectorized=True, sharded_scheduler=True)
    reference = _delivery_run(seed, vectorized=False)
    assert fast == reference


def test_sharded_scheduler_requires_vectorized():
    import pytest

    sim = Simulator()
    with pytest.raises(ValueError):
        Medium(
            sim,
            FixedRssMatrix(),
            rng=RngStreams(1),
            vectorized=False,
            sharded_scheduler=True,
        )


def test_sharded_scheduler_registers_band_shards():
    sim = Simulator()
    rng = RngStreams(5)
    medium = Medium(
        sim,
        FixedRssMatrix(default_loss_db=60.0),
        rng=rng,
        vectorized=True,
        sharded_scheduler=True,
    )
    radios = [
        Radio(sim, medium, f"n{i}", (float(i), 0.0),
              2405.0 + 5.0 * (i % 3), 0.0, rng=rng)
        for i in range(6)
    ]
    # One shard per distinct band, shared by that band's radios.
    assert sim.event_queue.num_shards == 3
    by_band = {}
    for radio in radios:
        by_band.setdefault(radio.channel_mhz, set()).add(radio.event_shard)
    assert all(len(s) == 1 for s in by_band.values())
    assert len({next(iter(s)) for s in by_band.values()}) == 3


def test_fading_buffer_growth_is_bit_identical_across_paths():
    """Adaptive buffer growth (8 -> 32 -> 128 draws) interleaving the
    scalar and batched entry points must replay the exact stream."""
    fading = LogNormalFading(sigma_db=4.0, clip_db=12.0)
    rng = RngStreams(11).stream("fading.a.b")
    reference = RngStreams(11).stream("fading.a.b")
    drawn = []
    for round_index in range(40):
        if round_index % 2:
            drawn.extend(fading.sample_db_many([rng, rng, rng]))
        else:
            drawn.extend(fading.sample_db(rng) for _ in range(3))
    # 120 draws cross both growth boundaries (8, then 32, then 128).
    expected = []
    while len(expected) < len(drawn):
        value = reference.normal(0.0, 4.0)
        expected.append(min(max(value, -12.0), 12.0))
    assert drawn == expected
