"""Unit tests and properties for path-loss models."""

import pytest
from hypothesis import given, strategies as st

from repro.phy.propagation import (
    FixedRssMatrix,
    FreeSpacePathLoss,
    LogDistancePathLoss,
    distance,
)


def test_distance():
    assert distance((0, 0), (3, 4)) == pytest.approx(5.0)


def test_log_distance_reference_point():
    model = LogDistancePathLoss(exponent=3.0, reference_loss_db=40.2)
    rss = model.received_power_dbm(0.0, (0, 0), (1, 0))
    assert rss == pytest.approx(-40.2)


def test_log_distance_slope():
    model = LogDistancePathLoss(exponent=3.0, reference_loss_db=40.0)
    at_1m = model.received_power_dbm(0.0, (0, 0), (1, 0))
    at_10m = model.received_power_dbm(0.0, (0, 0), (10, 0))
    assert at_1m - at_10m == pytest.approx(30.0)


def test_free_space_slope_is_20db_per_decade():
    model = FreeSpacePathLoss()
    at_1m = model.received_power_dbm(0.0, (0, 0), (1, 0))
    at_10m = model.received_power_dbm(0.0, (0, 0), (10, 0))
    assert at_1m - at_10m == pytest.approx(20.0)


def test_min_distance_clamps():
    model = LogDistancePathLoss(min_distance_m=0.1)
    at_zero = model.received_power_dbm(0.0, (0, 0), (0, 0))
    at_clamp = model.received_power_dbm(0.0, (0, 0), (0.1, 0))
    assert at_zero == pytest.approx(at_clamp)


def test_distance_for_rss_inverts_model():
    model = LogDistancePathLoss()
    d = model.distance_for_rss(0.0, -55.0)
    rss = model.received_power_dbm(0.0, (0, 0), (d, 0))
    assert rss == pytest.approx(-55.0, abs=1e-9)


def test_tx_power_shifts_rss_linearly():
    model = LogDistancePathLoss()
    base = model.received_power_dbm(0.0, (0, 0), (3, 0))
    hot = model.received_power_dbm(10.0, (0, 0), (3, 0))
    assert hot - base == pytest.approx(10.0)


def test_fixed_rss_matrix():
    matrix = FixedRssMatrix(default_loss_db=100.0)
    matrix.set_loss((0, 0), (1, 0), 50.0)
    assert matrix.received_power_dbm(0.0, (0, 0), (1, 0)) == pytest.approx(-50.0)
    assert matrix.received_power_dbm(0.0, (1, 0), (0, 0)) == pytest.approx(-100.0)
    matrix.set_symmetric_loss((2, 0), (3, 0), 60.0)
    assert matrix.received_power_dbm(0.0, (2, 0), (3, 0)) == pytest.approx(-60.0)
    assert matrix.received_power_dbm(0.0, (3, 0), (2, 0)) == pytest.approx(-60.0)


@given(
    st.floats(min_value=0.2, max_value=100.0),
    st.floats(min_value=0.2, max_value=100.0),
)
def test_rss_monotone_in_distance(d1, d2):
    model = LogDistancePathLoss()
    rss1 = model.received_power_dbm(0.0, (0, 0), (d1, 0))
    rss2 = model.received_power_dbm(0.0, (0, 0), (d2, 0))
    if d1 < d2:
        assert rss1 >= rss2
    elif d1 > d2:
        assert rss1 <= rss2
