"""Tests for the programmatic calibration utilities."""

import pytest

from repro.phy.calibration import fit_leakage_points, measure_cprr
from repro.phy.mask import CC2420_LEAKAGE_POINTS, PiecewiseLinearMask, default_mask


def test_measure_cprr_with_default_mask_matches_anchor():
    cprr = measure_cprr(3.0, default_mask(), seed=2, duration_s=5.0)
    assert 0.92 <= cprr <= 1.0


def test_measure_cprr_monotone_in_attenuation():
    weak = PiecewiseLinearMask([(0.0, 0.0), (3.0, 6.0)], max_db=60.0)
    strong = PiecewiseLinearMask([(0.0, 0.0), (3.0, 30.0)], max_db=60.0)
    low = measure_cprr(3.0, weak, seed=2, duration_s=4.0)
    high = measure_cprr(3.0, strong, seed=2, duration_s=4.0)
    assert high > low


def test_fit_requires_existing_anchor():
    with pytest.raises(ValueError):
        fit_leakage_points({2.5: 0.9}, CC2420_LEAKAGE_POINTS)


def test_fit_moves_anchor_toward_target():
    # Start with far too little attenuation at 3 MHz and ask for ~97%.
    start = [(0.0, 0.0), (3.0, 5.0), (9.0, 48.0)]
    fitted = fit_leakage_points(
        {3.0: 0.97},
        start,
        tolerance=0.05,
        max_iterations=4,
        duration_s=3.0,
        seed=2,
    )
    fitted_3mhz = dict(fitted)[3.0]
    assert fitted_3mhz > 5.0  # pushed up toward the calibrated ~18 dB
    # curve stays monotone
    values = [a for _, a in fitted]
    assert values == sorted(values)
