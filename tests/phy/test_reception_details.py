"""Focused tests for reception segmentation and determinism."""

import pytest

from repro.phy.fading import NoFading
from repro.phy.frame import Frame
from repro.phy.medium import Medium
from repro.phy.propagation import FixedRssMatrix
from repro.phy.radio import Radio
from repro.sim.rng import RngStreams
from repro.sim.simulator import Simulator


def build(losses, channels, seed=1):
    sim = Simulator()
    rng = RngStreams(seed)
    matrix = FixedRssMatrix(default_loss_db=200.0)
    positions = {name: (i, 0) for i, name in enumerate(channels)}
    for (tx, rx), loss in losses.items():
        matrix.set_loss(positions[tx], positions[rx], loss)
    medium = Medium(sim, matrix, fading=NoFading(), rng=rng)
    radios = {
        name: Radio(sim, medium, name, positions[name], ch, 0.0, rng=rng)
        for name, ch in channels.items()
    }
    return sim, radios


def test_partial_overlap_corrupts_only_mid_frame():
    """An interferer overlapping only part of the frame corrupts the
    overlapped segment; errored bits stay well below total bits."""
    sim, radios = build(
        {("a", "r"): 45.0, ("i", "r"): 43.0},
        {"a": 2460.0, "i": 2460.5, "r": 2460.0},
    )
    outcomes = []
    radios["r"].add_frame_listener(outcomes.append)
    frame = Frame("a", "r", 100)  # ~3.8 ms airtime
    radios["a"].transmit(frame, lambda tx: None)
    # interferer only covers the last ~20% of the frame
    sim.schedule(
        0.8 * frame.airtime_s,
        lambda: radios["i"].transmit(Frame("i", None, 100), lambda tx: None),
    )
    sim.run(1.0)
    assert len(outcomes) == 1
    outcome = outcomes[0]
    assert not outcome.crc_ok
    # damage confined to roughly the overlapped fifth of the frame
    assert 0 < outcome.errored_bits < 0.45 * outcome.total_bits


def test_error_fraction_grows_with_overlap():
    def run(overlap_fraction):
        sim, radios = build(
            {("a", "r"): 45.0, ("i", "r"): 43.0},
            {"a": 2460.0, "i": 2460.5, "r": 2460.0},
            seed=3,
        )
        outcomes = []
        radios["r"].add_frame_listener(outcomes.append)
        frame = Frame("a", "r", 100)
        radios["a"].transmit(frame, lambda tx: None)
        sim.schedule(
            (1.0 - overlap_fraction) * frame.airtime_s,
            lambda: radios["i"].transmit(Frame("i", None, 100), lambda tx: None),
        )
        sim.run(1.0)
        return outcomes[0].error_fraction

    small = run(0.1)
    large = run(0.7)
    assert large > small


def test_reception_deterministic_for_seed():
    def run(seed):
        sim, radios = build(
            {("a", "r"): 45.0, ("i", "r"): 45.0},
            {"a": 2460.0, "i": 2461.0, "r": 2460.0},
            seed=seed,
        )
        outcomes = []
        radios["r"].add_frame_listener(outcomes.append)
        radios["a"].transmit(Frame("a", "r", 100), lambda tx: None)
        sim.schedule(
            0.001, lambda: radios["i"].transmit(Frame("i", None, 100), lambda tx: None)
        )
        sim.run(1.0)
        return outcomes[0].errored_bits

    assert run(7) == run(7)


def test_back_to_back_frames_both_received():
    """End-before-start ordering at identical timestamps: the second frame
    must be locked cleanly after the first ends."""
    sim, radios = build(
        {("a", "r"): 45.0},
        {"a": 2460.0, "r": 2460.0},
    )
    outcomes = []
    radios["r"].add_frame_listener(outcomes.append)
    first = Frame("a", "r", 60)

    def send_second(_tx):
        radios["a"].transmit(Frame("a", "r", 60), lambda tx: None)

    radios["a"].transmit(first, send_second)
    sim.run(1.0)
    assert len(outcomes) == 2
    assert all(o.crc_ok for o in outcomes)


def test_noise_only_reception_is_clean():
    sim, radios = build(
        {("a", "r"): 50.0},
        {"a": 2460.0, "r": 2460.0},
    )
    outcomes = []
    radios["r"].add_frame_listener(outcomes.append)
    radios["a"].transmit(Frame("a", "r", 113), lambda tx: None)  # max payload
    sim.run(1.0)
    assert outcomes[0].crc_ok
    assert outcomes[0].errored_bits == 0
    assert outcomes[0].total_bits == pytest.approx(
        outcomes[0].frame.total_bits, abs=8
    )


def test_weak_signal_near_sensitivity_sees_noise_errors():
    """At -93 dBm (SNR 7 dB) long frames occasionally take bit errors."""
    failures = 0
    for seed in range(10):
        sim, radios = build(
            {("a", "r"): 93.0},
            {"a": 2460.0, "r": 2460.0},
            seed=seed,
        )
        outcomes = []
        radios["r"].add_frame_listener(outcomes.append)
        radios["a"].transmit(Frame("a", "r", 113), lambda tx: None)
        sim.run(1.0)
        assert len(outcomes) == 1
        if not outcomes[0].crc_ok:
            failures += 1
    # BER(7 dB) * ~1000 bits -> a small but non-trivial failure rate;
    # mostly we just require the run not to be degenerate either way.
    assert failures < 10
