"""Integration tests for Medium + Radio + Reception.

These use :class:`FixedRssMatrix` so every link budget is exact, and
``NoFading`` so outcomes are deterministic.
"""

import pytest

from repro.phy.errors import FrameReception
from repro.phy.fading import NoFading
from repro.phy.frame import Frame
from repro.phy.mask import default_mask
from repro.phy.medium import Medium
from repro.phy.propagation import FixedRssMatrix
from repro.phy.radio import Radio, RadioConfig, RadioState
from repro.sim.rng import RngStreams
from repro.sim.simulator import Simulator


def make_world(loss_entries, positions, channels, power_dbm=0.0):
    """Build a small deterministic world.

    loss_entries: {(tx_name, rx_name): loss_db}
    positions: {name: (x, y)}  (positions only matter as matrix keys)
    channels: {name: mhz}
    """
    sim = Simulator()
    matrix = FixedRssMatrix(default_loss_db=200.0)
    for (tx, rx), loss in loss_entries.items():
        matrix.set_loss(positions[tx], positions[rx], loss)
    medium = Medium(sim, matrix, fading=NoFading(), rng=RngStreams(1))
    radios = {}
    for name, pos in positions.items():
        radios[name] = Radio(
            sim=sim,
            medium=medium,
            name=name,
            position=pos,
            channel_mhz=channels[name],
            tx_power_dbm=power_dbm,
        )
    return sim, medium, radios


def collect(radio):
    outcomes = []
    radio.add_frame_listener(outcomes.append)
    return outcomes


def test_clean_co_channel_delivery():
    sim, _, radios = make_world(
        {("a", "b"): 50.0},
        {"a": (0, 0), "b": (1, 0)},
        {"a": 2460.0, "b": 2460.0},
    )
    received = collect(radios["b"])
    frame = Frame("a", "b", 60)
    radios["a"].transmit(frame, lambda tx: None)
    sim.run(1.0)
    assert len(received) == 1
    assert received[0].crc_ok
    assert received[0].rssi_dbm == pytest.approx(-50.0)
    assert received[0].frame is frame


def test_signal_below_sensitivity_not_locked():
    sim, _, radios = make_world(
        {("a", "b"): 96.0},  # -96 dBm < -94 sensitivity
        {"a": (0, 0), "b": (1, 0)},
        {"a": 2460.0, "b": 2460.0},
    )
    received = collect(radios["b"])
    radios["a"].transmit(Frame("a", "b", 60), lambda tx: None)
    sim.run(1.0)
    assert received == []


def test_off_channel_frame_never_locked():
    """The 802.15.4-defining behaviour: a strong 3 MHz-offset signal is
    interference, never a receivable frame."""
    sim, _, radios = make_world(
        {("a", "b"): 40.0},
        {"a": (0, 0), "b": (1, 0)},
        {"a": 2463.0, "b": 2460.0},
    )
    received = collect(radios["b"])
    radios["a"].transmit(Frame("a", "b", 60), lambda tx: None)
    sim.run(1.0)
    assert received == []


def test_equal_power_co_channel_collision_corrupts():
    sim, _, radios = make_world(
        {("a", "r"): 50.0, ("b", "r"): 50.0, ("a", "b"): 60.0, ("b", "a"): 60.0},
        {"a": (0, 0), "b": (2, 0), "r": (1, 0)},
        {"a": 2460.0, "b": 2460.0, "r": 2460.0},
    )
    outcomes = collect(radios["r"])
    radios["a"].transmit(Frame("a", "r", 60), lambda tx: None)
    # b starts mid-frame of a.
    sim.schedule(0.001, lambda: radios["b"].transmit(Frame("b", "r", 60), lambda tx: None))
    sim.run(1.0)
    assert len(outcomes) == 1  # locked onto a's frame only
    assert not outcomes[0].crc_ok
    assert outcomes[0].errored_bits > 0


def test_strong_capture_survives_weak_interferer():
    sim, _, radios = make_world(
        {("a", "r"): 40.0, ("b", "r"): 70.0},
        {"a": (0, 0), "b": (2, 0), "r": (1, 0)},
        {"a": 2460.0, "b": 2460.0, "r": 2460.0},
    )
    outcomes = collect(radios["r"])
    radios["a"].transmit(Frame("a", "r", 60), lambda tx: None)
    sim.schedule(0.0005, lambda: radios["b"].transmit(Frame("b", "r", 60), lambda tx: None))
    sim.run(1.0)
    locked_a = [o for o in outcomes if o.frame.source == "a"]
    assert len(locked_a) == 1
    assert locked_a[0].crc_ok  # 30 dB SIR


def test_inter_channel_interference_tolerable_at_3mhz():
    """Fig. 6's premise: a 3 MHz-offset interferer at comparable power does
    not corrupt the co-channel frame."""
    sim, _, radios = make_world(
        {("a", "r"): 45.0, ("i", "r"): 48.0},
        {"a": (0, 0), "i": (2, 0), "r": (1, 0)},
        {"a": 2460.0, "i": 2463.0, "r": 2460.0},
    )
    outcomes = collect(radios["r"])
    radios["a"].transmit(Frame("a", "r", 60), lambda tx: None)
    sim.schedule(0.0005, lambda: radios["i"].transmit(Frame("i", None, 60), lambda tx: None))
    sim.run(1.0)
    assert len(outcomes) == 1
    assert outcomes[0].crc_ok


def test_co_channel_interference_at_1mhz_corrupts():
    """Same geometry but only 1 MHz away: leakage ~2 dB -> SINR ~5 dB."""
    sim, _, radios = make_world(
        {("a", "r"): 45.0, ("i", "r"): 43.0},
        {"a": (0, 0), "i": (2, 0), "r": (1, 0)},
        {"a": 2460.0, "i": 2461.0, "r": 2460.0},
    )
    outcomes = collect(radios["r"])
    radios["a"].transmit(Frame("a", "r", 60), lambda tx: None)
    sim.schedule(0.0005, lambda: radios["i"].transmit(Frame("i", None, 60), lambda tx: None))
    sim.run(1.0)
    assert len(outcomes) == 1
    assert not outcomes[0].crc_ok


def test_half_duplex_transmitter_misses_frames():
    sim, _, radios = make_world(
        {("a", "b"): 50.0, ("b", "a"): 50.0},
        {"a": (0, 0), "b": (1, 0)},
        {"a": 2460.0, "b": 2460.0},
    )
    received_by_a = collect(radios["a"])
    # both transmit simultaneously: neither receives.
    radios["a"].transmit(Frame("a", "b", 60), lambda tx: None)
    radios["b"].transmit(Frame("b", "a", 60), lambda tx: None)
    sim.run(1.0)
    assert received_by_a == []


def test_transmit_aborts_ongoing_reception():
    sim, _, radios = make_world(
        {("a", "b"): 50.0},
        {"a": (0, 0), "b": (1, 0)},
        {"a": 2460.0, "b": 2460.0},
    )
    received = collect(radios["b"])
    radios["a"].transmit(Frame("a", "b", 60), lambda tx: None)
    sim.schedule(0.001, lambda: radios["b"].transmit(Frame("b", None, 10), lambda tx: None))
    sim.run(1.0)
    assert received == []
    assert radios["b"].state is RadioState.IDLE


def test_cca_and_sensing():
    sim, _, radios = make_world(
        {("a", "b"): 50.0},
        {"a": (0, 0), "b": (1, 0)},
        {"a": 2460.0, "b": 2460.0},
    )
    sensed = {}

    def measure():
        sensed["during"] = radios["b"].sense_power_dbm()
        sensed["busy_at_default"] = radios["b"].cca_busy(-77.0)
        sensed["idle_at_minus40"] = not radios["b"].cca_busy(-40.0)

    radios["a"].transmit(Frame("a", None, 60), lambda tx: None)
    sim.schedule(0.001, measure)
    sim.run(1.0)
    assert sensed["during"] == pytest.approx(-50.0, abs=0.1)
    assert sensed["busy_at_default"]
    assert sensed["idle_at_minus40"]
    # after the frame, only noise remains
    assert radios["b"].sense_power_dbm() == pytest.approx(-100.0, abs=0.1)


def test_sensing_uses_sharper_cca_mask():
    sim, _, radios = make_world(
        {("a", "b"): 45.0},
        {"a": (0, 0), "b": (1, 0)},
        {"a": 2463.0, "b": 2460.0},  # 3 MHz offset
    )
    readings = {}

    def measure():
        readings["sense"] = radios["b"].sense_power_dbm()

    radios["a"].transmit(Frame("a", None, 60), lambda tx: None)
    sim.schedule(0.001, measure)
    sim.run(1.0)
    # decode-path leakage is 18 dB, sensing-path 26 dB
    assert readings["sense"] == pytest.approx(-45.0 - 26.0, abs=0.5)


def test_double_transmit_rejected():
    sim, _, radios = make_world(
        {}, {"a": (0, 0)}, {"a": 2460.0}
    )
    radios["a"].transmit(Frame("a", None, 60), lambda tx: None)
    with pytest.raises(RuntimeError):
        radios["a"].transmit(Frame("a", None, 60), lambda tx: None)


def test_duplicate_registration_rejected():
    sim, medium, radios = make_world({}, {"a": (0, 0)}, {"a": 2460.0})
    with pytest.raises(ValueError):
        medium.register(radios["a"])
