"""Unit and integration tests for the energy model."""

import pytest
from hypothesis import given, strategies as st

from repro.phy.energy import DEFAULT_ENERGY_MODEL, EnergyAccumulator, EnergyModel


def test_tx_current_interpolation():
    model = EnergyModel()
    assert model.tx_current_ma(0.0) == pytest.approx(17.4)
    assert model.tx_current_ma(-25.0) == pytest.approx(8.5)
    assert model.tx_current_ma(-40.0) == pytest.approx(8.5)  # clamped
    assert model.tx_current_ma(5.0) == pytest.approx(17.4)  # clamped
    mid = model.tx_current_ma(-2.0)  # between (-3, 15.2) and (-1, 16.5)
    assert 15.2 < mid < 16.5


def test_energy_arithmetic():
    model = EnergyModel()
    # 1 s of RX at 18.8 mA and 3 V = 56.4 mJ
    assert model.rx_energy_j(1.0) == pytest.approx(0.0564)
    # 1 s of TX at 0 dBm = 52.2 mJ
    assert model.tx_energy_j(1.0, 0.0) == pytest.approx(0.0522)
    assert model.sensing_energy_j(1000) == pytest.approx(1000 * 2.4e-6)


def test_accumulator_tracks_states():
    acc = EnergyAccumulator()
    acc.transition("tx", 1.0)
    acc.transition("idle", 3.0)
    durations = acc.durations(10.0)
    assert durations["tx"] == pytest.approx(2.0)
    assert durations["idle"] == pytest.approx(8.0)


def test_accumulator_energy_breakdown():
    acc = EnergyAccumulator(tx_power_dbm=0.0)
    acc.transition("tx", 0.0)
    acc.transition("idle", 1.0)
    acc.note_sense_sample()
    breakdown = acc.breakdown_j(2.0)
    assert breakdown["tx"] == pytest.approx(0.0522)
    assert breakdown["listen"] == pytest.approx(0.0564)
    assert breakdown["sensing"] == pytest.approx(2.4e-6)
    assert acc.energy_j(2.0) == pytest.approx(sum(breakdown.values()))


def test_accumulator_rejects_time_reversal():
    acc = EnergyAccumulator()
    acc.transition("tx", 5.0)
    with pytest.raises(ValueError):
        acc.transition("idle", 4.0)


def test_radio_accrues_tx_energy():
    from repro.phy.fading import NoFading
    from repro.phy.frame import Frame
    from repro.phy.medium import Medium
    from repro.phy.propagation import FixedRssMatrix
    from repro.phy.radio import Radio
    from repro.sim.rng import RngStreams
    from repro.sim.simulator import Simulator

    sim = Simulator()
    medium = Medium(sim, FixedRssMatrix(), fading=NoFading(), rng=RngStreams(1))
    radio = Radio(sim, medium, "a", (0, 0), 2460.0, 0.0)
    frame = Frame("a", None, 60)
    radio.transmit(frame, lambda tx: None)
    sim.run(1.0)
    durations = radio.energy.durations(sim.now)
    assert durations["tx"] == pytest.approx(frame.airtime_s)
    assert durations["idle"] == pytest.approx(1.0 - frame.airtime_s)


def test_dcn_sensing_samples_counted():
    from repro.core.dcn import DcnCcaPolicy
    from repro.core.adjustor import AdjustorConfig
    from repro.mac.mac import Mac
    from repro.phy.fading import NoFading
    from repro.phy.medium import Medium
    from repro.phy.propagation import FixedRssMatrix
    from repro.phy.radio import Radio
    from repro.sim.rng import RngStreams
    from repro.sim.simulator import Simulator

    sim = Simulator()
    rng = RngStreams(1)
    medium = Medium(sim, FixedRssMatrix(), fading=NoFading(), rng=rng)
    radio = Radio(sim, medium, "a", (0, 0), 2460.0, 0.0, rng=rng)
    Mac(sim, radio, rng.stream("mac.a"),
        cca_policy=DcnCcaPolicy(AdjustorConfig(t_init_s=0.5)))
    sim.run(2.0)
    # ~0.5 s of 1 ms sampling, then the sampler stops
    assert 450 <= radio.energy.sense_samples <= 510


@given(
    st.lists(
        st.tuples(st.sampled_from(["tx", "idle"]), st.floats(0.001, 1.0)),
        min_size=1,
        max_size=30,
    )
)
def test_energy_monotone_in_time(steps):
    acc = EnergyAccumulator()
    now = 0.0
    previous = 0.0
    for state, dt in steps:
        now += dt
        acc.transition(state, now)
        current = acc.energy_j(now)
        assert current >= previous - 1e-12
        previous = current
