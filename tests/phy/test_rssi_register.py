"""Tests for the time-averaged RSSI register (8-symbol window)."""

import pytest

from repro.phy.constants import RSSI_AVG_WINDOW_S
from repro.phy.fading import NoFading
from repro.phy.frame import Frame
from repro.phy.medium import Medium
from repro.phy.propagation import FixedRssMatrix
from repro.phy.radio import Radio, RadioConfig
from repro.sim.rng import RngStreams
from repro.sim.simulator import Simulator
from repro.sim.units import dbm_to_mw, mw_to_dbm


def build(averaging=False):
    sim = Simulator()
    rng = RngStreams(8)
    matrix = FixedRssMatrix(default_loss_db=200.0)
    matrix.set_loss((0, 0), (1, 0), 50.0)
    medium = Medium(sim, matrix, fading=NoFading(), rng=rng)
    tx = Radio(sim, medium, "tx", (0, 0), 2460.0, 0.0, rng=rng)
    rx = Radio(
        sim, medium, "rx", (1, 0), 2460.0, 0.0, rng=rng,
        config=RadioConfig(cca_averaging=averaging),
    )
    return sim, tx, rx


def test_quiet_channel_reads_noise_floor():
    sim, _, rx = build()
    sim.run(0.01)
    assert rx.rssi_register_dbm() == pytest.approx(-100.0, abs=0.2)


def test_register_matches_instantaneous_after_long_signal():
    sim, tx, rx = build()
    measured = {}

    def probe():
        measured["avg"] = rx.rssi_register_dbm()
        measured["inst"] = rx.sense_power_dbm()

    tx.transmit(Frame("tx", None, 100), lambda t: None)
    sim.schedule(0.002, probe)  # >> 128 us into the frame
    sim.run(1.0)
    assert measured["avg"] == pytest.approx(measured["inst"], abs=0.1)
    assert measured["avg"] == pytest.approx(-50.0, abs=0.2)


def test_register_lags_a_fresh_signal():
    """Half a window into a new signal the register reads ~3 dB low."""
    sim, tx, rx = build()
    measured = {}

    def probe():
        measured["avg"] = rx.rssi_register_dbm()

    tx.transmit(Frame("tx", None, 100), lambda t: None)
    sim.schedule(RSSI_AVG_WINDOW_S / 2.0, probe)
    sim.run(1.0)
    expected = mw_to_dbm(
        0.5 * dbm_to_mw(-50.0) + 0.5 * dbm_to_mw(-100.0)
    )
    assert measured["avg"] == pytest.approx(expected, abs=0.3)


def test_register_decays_after_signal_ends():
    sim, tx, rx = build()
    frame = Frame("tx", None, 60)
    measured = {}

    def probe():
        measured["avg"] = rx.rssi_register_dbm()
        measured["inst"] = rx.sense_power_dbm()

    tx.transmit(frame, lambda t: None)
    # Probe a quarter-window after the frame ends: the register still
    # carries 3/4 of the signal's power, instantaneous reads noise.
    sim.schedule(frame.airtime_s + RSSI_AVG_WINDOW_S / 4.0, probe)
    sim.run(1.0)
    assert measured["inst"] == pytest.approx(-100.0, abs=0.2)
    expected = mw_to_dbm(
        0.75 * dbm_to_mw(-50.0) + 0.25 * dbm_to_mw(-100.0)
    )
    assert measured["avg"] == pytest.approx(expected, abs=0.5)


def test_cca_averaging_config_switches_comparison():
    sim, tx, rx = build(averaging=True)
    frame = Frame("tx", None, 60)
    outcomes = {}

    def probe():
        # Just after frame end: instantaneous is idle, average still busy.
        outcomes["busy_avg"] = rx.cca_busy(-77.0)

    tx.transmit(frame, lambda t: None)
    sim.schedule(frame.airtime_s + 1e-6, probe)
    sim.run(1.0)
    assert outcomes["busy_avg"] is True
