"""Calibration regression tests.

These pin the simulator to the paper's measured anchor points so that any
change to the mask, BER curve, fading or MAC timing that silently breaks
the reproduction fails loudly here.

They are slower than unit tests (each runs a short simulation) but still
bounded to a few seconds apiece.
"""

import pytest

from repro.experiments.figures import fig04


@pytest.fixture(scope="module")
def cprr_rows():
    table = fig04.run(seed=2, fast=False)
    return {row["cfd_mhz"]: row for row in table.rows}


def test_cprr_at_4_and_5_mhz_is_full(cprr_rows):
    for cfd in (4.0, 5.0):
        assert cprr_rows[cfd]["normal_cprr"] >= 0.985
        assert cprr_rows[cfd]["attacker_cprr"] >= 0.985


def test_cprr_at_3_mhz_near_97_percent(cprr_rows):
    assert 0.93 <= cprr_rows[3.0]["normal_cprr"] <= 1.0


def test_cprr_at_2_mhz_near_70_percent(cprr_rows):
    assert 0.55 <= cprr_rows[2.0]["normal_cprr"] <= 0.85


def test_cprr_at_1_mhz_below_30_percent(cprr_rows):
    assert cprr_rows[1.0]["normal_cprr"] <= 0.30


def test_cprr_monotone_in_cfd(cprr_rows):
    values = [cprr_rows[c]["normal_cprr"] for c in (1.0, 2.0, 3.0, 4.0)]
    assert values == sorted(values)
