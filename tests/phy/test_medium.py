"""Tests for medium-level signal delivery."""

import pytest

from repro.phy.fading import LogNormalFading, NoFading
from repro.phy.frame import Frame
from repro.phy.medium import Medium
from repro.phy.propagation import FixedRssMatrix, LogDistancePathLoss
from repro.phy.radio import Radio
from repro.sim.rng import RngStreams
from repro.sim.simulator import Simulator


def test_delivery_floor_prunes_inaudible_receivers():
    sim = Simulator()
    matrix = FixedRssMatrix(default_loss_db=200.0)
    matrix.set_loss((0, 0), (1, 0), 50.0)
    matrix.set_loss((0, 0), (2, 0), 150.0)  # -150 dBm: far below the floor
    medium = Medium(
        sim, matrix, fading=NoFading(), rng=RngStreams(1),
        delivery_floor_dbm=-115.0,
    )
    tx = Radio(sim, medium, "tx", (0, 0), 2460.0, 0.0)
    near = Radio(sim, medium, "near", (1, 0), 2460.0, 0.0)
    far = Radio(sim, medium, "far", (2, 0), 2460.0, 0.0)
    tx.transmit(Frame("tx", None, 60), lambda t: None)
    assert len(near.active_signals) == 1
    assert len(far.active_signals) == 0
    sim.run(1.0)
    assert near.active_signals == []


def test_transmitter_does_not_hear_itself():
    sim = Simulator()
    medium = Medium(
        sim, FixedRssMatrix(default_loss_db=10.0), fading=NoFading(),
        rng=RngStreams(1),
    )
    tx = Radio(sim, medium, "tx", (0, 0), 2460.0, 0.0)
    tx.transmit(Frame("tx", None, 60), lambda t: None)
    assert tx.active_signals == []


def test_fading_varies_per_packet_and_receiver():
    sim = Simulator()
    medium = Medium(
        sim,
        LogDistancePathLoss(),
        fading=LogNormalFading(sigma_db=4.0),
        rng=RngStreams(5),
    )
    tx = Radio(sim, medium, "tx", (0, 0), 2460.0, 0.0)
    rx = Radio(sim, medium, "rx", (2, 0), 2460.0, 0.0)
    rssis = []
    rx.add_frame_listener(lambda rec: rssis.append(rec.rssi_dbm))

    def send(remaining):
        if remaining == 0:
            return
        tx.transmit(Frame("tx", "rx", 60), lambda t: send(remaining - 1))

    send(20)
    sim.run(1.0)
    assert len(rssis) == 20
    assert len(set(round(r, 3) for r in rssis)) > 10  # genuinely varying
    mean = sum(rssis) / len(rssis)
    expected = LogDistancePathLoss().received_power_dbm(0.0, (0, 0), (2, 0))
    assert mean == pytest.approx(expected, abs=4.0)


def test_transmission_end_time_matches_airtime():
    sim = Simulator()
    medium = Medium(
        sim, FixedRssMatrix(default_loss_db=50.0), fading=NoFading(),
        rng=RngStreams(1),
    )
    tx = Radio(sim, medium, "tx", (0, 0), 2460.0, 0.0)
    frame = Frame("tx", None, 60)
    done = {}
    transmission = tx.transmit(frame, lambda t: done.update(at=sim.now))
    assert transmission.airtime_s == pytest.approx(frame.airtime_s)
    sim.run(1.0)
    assert done["at"] == pytest.approx(frame.airtime_s)
