"""Unit tests and properties for BER models."""

import pytest
from hypothesis import given, strategies as st

from repro.phy.modulation import (
    dbpsk_ber,
    dqpsk_ber,
    expected_bit_errors,
    oqpsk_ber,
    packet_error_rate,
)


def test_oqpsk_extremes():
    assert oqpsk_ber(-30.0) == pytest.approx(0.5)
    assert oqpsk_ber(40.0) == 0.0


def test_oqpsk_sensitivity_anchor():
    """CC2420 sensitivity: ~1 % PER for a ~100-byte MPDU near 6 dB SNR."""
    per_at_6db = packet_error_rate(oqpsk_ber(6.0), 888)
    assert per_at_6db < 0.05
    per_at_4db = packet_error_rate(oqpsk_ber(4.0), 888)
    assert per_at_4db > 0.2


def test_oqpsk_co_channel_collision_destroys_packets():
    """Equal-power co-channel collision (SINR ~0 dB) must corrupt."""
    assert packet_error_rate(oqpsk_ber(0.0), 888) > 0.99


@given(st.floats(min_value=-20.0, max_value=20.0), st.floats(min_value=0.05, max_value=5.0))
def test_oqpsk_monotone_decreasing(sinr, delta):
    assert oqpsk_ber(sinr + delta) <= oqpsk_ber(sinr) + 1e-12


@given(st.floats(min_value=-30.0, max_value=40.0))
def test_oqpsk_is_probability(sinr):
    ber = oqpsk_ber(sinr)
    assert 0.0 <= ber <= 0.5


def test_dbpsk_monotone_and_bounded():
    assert dbpsk_ber(-10.0) <= 0.5
    assert dbpsk_ber(10.0) < dbpsk_ber(0.0) < dbpsk_ber(-10.0)
    assert dbpsk_ber(20.0) < 1e-9


def test_dqpsk_worse_than_dbpsk_at_same_sinr():
    # lower processing gain -> higher BER at equal SINR
    assert dqpsk_ber(0.0) > dbpsk_ber(0.0)


def test_packet_error_rate_edge_cases():
    assert packet_error_rate(0.0, 1000) == 0.0
    assert packet_error_rate(1.0, 1000) == 1.0
    assert packet_error_rate(0.5, 0) == 0.0
    with pytest.raises(ValueError):
        packet_error_rate(0.1, -1)


def test_packet_error_rate_formula():
    assert packet_error_rate(0.01, 100) == pytest.approx(1 - 0.99**100)


def test_expected_bit_errors():
    assert expected_bit_errors(0.01, 1000) == pytest.approx(10.0)


@given(
    st.floats(min_value=0.0, max_value=1.0),
    st.integers(min_value=0, max_value=10_000),
)
def test_per_is_probability(ber, n_bits):
    per = packet_error_rate(ber, n_bits)
    assert 0.0 <= per <= 1.0


@given(
    st.floats(min_value=1e-6, max_value=0.1),
    st.integers(min_value=1, max_value=5000),
)
def test_per_increases_with_length(ber, n_bits):
    assert packet_error_rate(ber, n_bits + 1) >= packet_error_rate(ber, n_bits)
