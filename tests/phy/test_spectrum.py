"""Unit tests for bands and channel plans."""

import pytest
from hypothesis import given, strategies as st

from repro.phy.spectrum import EVALUATION_BAND, MOTIVATION_BAND, Band, ChannelPlan


def test_band_validation():
    with pytest.raises(ValueError):
        Band(2460.0, 2460.0)
    with pytest.raises(ValueError):
        Band(2470.0, 2460.0)


def test_band_width_and_contains():
    band = Band(2458.0, 2473.0)
    assert band.width_mhz == 15.0
    assert band.contains(2458.0)
    assert band.contains(2473.0)
    assert not band.contains(2474.0)


def test_slot_counts_match_paper_fig1():
    """Fig. 1 on a 12 MHz band: 9 MHz -> 1, 5 -> 2, 4 -> 3, 3 -> 4, 2 -> 6."""
    expected = {9.0: 1, 5.0: 2, 4.0: 3, 3.0: 4, 2.0: 6}
    for cfd, count in expected.items():
        assert ChannelPlan.slot(MOTIVATION_BAND, cfd).num_channels == count


def test_inclusive_counts_match_paper_section6():
    """2458-2473 MHz: 6 channels at 3 MHz, 4 at 5 MHz."""
    assert ChannelPlan.inclusive(EVALUATION_BAND, 3.0).num_channels == 6
    assert ChannelPlan.inclusive(EVALUATION_BAND, 5.0).num_channels == 4


def test_median_first_ordering():
    plan = ChannelPlan.inclusive(EVALUATION_BAND, 3.0)
    centers = list(plan.centers_mhz)
    sorted_centers = sorted(centers)
    mid = (sorted_centers[0] + sorted_centers[-1]) / 2
    # N0 is the centre-most channel; subsequent entries never get closer.
    distances = [abs(c - mid) for c in centers]
    assert distances == sorted(distances)


def test_centers_stay_inside_band():
    for cfd in (2.0, 3.0, 4.0, 5.0):
        plan = ChannelPlan.inclusive(EVALUATION_BAND, cfd)
        for center in plan.centers_mhz:
            assert EVALUATION_BAND.contains(center)


def test_neighbour_distance():
    plan = ChannelPlan.inclusive(EVALUATION_BAND, 3.0)
    for center in plan.centers_mhz:
        assert plan.neighbour_distance_mhz(center) == pytest.approx(3.0)


def test_single_channel_neighbour_distance_infinite():
    plan = ChannelPlan.slot(MOTIVATION_BAND, 9.0)
    assert plan.neighbour_distance_mhz(plan.centers_mhz[0]) == float("inf")


def test_explicit_plan_keeps_order():
    plan = ChannelPlan.explicit([2465.0, 2462.0, 2468.0], cfd_mhz=3.0)
    assert plan.centers_mhz == (2465.0, 2462.0, 2468.0)
    assert plan.label(0) == "N0"


def test_explicit_empty_rejected():
    with pytest.raises(ValueError):
        ChannelPlan.explicit([])


def test_bad_cfd_rejected():
    with pytest.raises(ValueError):
        ChannelPlan.slot(MOTIVATION_BAND, 0.0)
    with pytest.raises(ValueError):
        ChannelPlan.inclusive(MOTIVATION_BAND, -1.0)


def test_slot_too_wide_rejected():
    with pytest.raises(ValueError):
        ChannelPlan.slot(Band(2458.0, 2460.0), 5.0)


@given(st.sampled_from([2.0, 2.5, 3.0, 4.0, 5.0]))
def test_slot_channels_fit_band(cfd):
    plan = ChannelPlan.slot(MOTIVATION_BAND, cfd)
    assert plan.num_channels == int(MOTIVATION_BAND.width_mhz // cfd)
    for center in plan.centers_mhz:
        assert MOTIVATION_BAND.contains(center)
