"""Unit tests and properties for spectral masks."""

import pytest
from hypothesis import given, strategies as st

from repro.phy.mask import (
    CC2420_LEAKAGE_POINTS,
    CCA_LEAKAGE_POINTS,
    PerfectOrthogonalMask,
    PiecewiseLinearMask,
    ShiftedMask,
    default_cca_mask,
    default_mask,
)


def test_default_mask_anchor_points():
    mask = default_mask()
    for freq, atten in CC2420_LEAKAGE_POINTS:
        assert mask.leakage_db(freq) == pytest.approx(atten)


def test_mask_symmetric_in_offset():
    mask = default_mask()
    for df in (0.5, 1.0, 2.5, 4.0, 7.7):
        assert mask.leakage_db(df) == pytest.approx(mask.leakage_db(-df))


def test_mask_interpolates():
    mask = PiecewiseLinearMask([(0.0, 0.0), (2.0, 10.0)], max_db=40.0)
    assert mask.leakage_db(1.0) == pytest.approx(5.0)


def test_mask_extends_beyond_last_point_with_cap():
    mask = PiecewiseLinearMask([(0.0, 0.0), (1.0, 10.0)], max_db=25.0)
    # continues at 10 dB/MHz until the cap
    assert mask.leakage_db(2.0) == pytest.approx(20.0)
    assert mask.leakage_db(10.0) == pytest.approx(25.0)


def test_mask_validation():
    with pytest.raises(ValueError):
        PiecewiseLinearMask([])
    with pytest.raises(ValueError):
        PiecewiseLinearMask([(1.0, 0.0)])  # must start at 0
    with pytest.raises(ValueError):
        PiecewiseLinearMask([(0.0, 0.0), (0.0, 1.0)])  # not increasing
    with pytest.raises(ValueError):
        PiecewiseLinearMask([(0.0, 5.0), (1.0, 1.0)])  # decreasing atten
    with pytest.raises(ValueError):
        PiecewiseLinearMask([(0.0, 0.0), (1.0, 10.0)], max_db=5.0)


def test_attenuated_power():
    mask = default_mask()
    assert mask.attenuated_power_dbm(-50.0, 0.0) == pytest.approx(-50.0)
    assert mask.attenuated_power_dbm(-50.0, 3.0) == pytest.approx(
        -50.0 - mask.leakage_db(3.0)
    )


def test_perfect_orthogonal_mask():
    mask = PerfectOrthogonalMask()
    assert mask.leakage_db(0.0) == 0.0
    assert mask.leakage_db(0.2) == 0.0
    assert mask.leakage_db(1.0) == mask.max_db


def test_shifted_mask_adds_rejection_off_channel_only():
    base = default_mask()
    shifted = ShiftedMask(base, extra_db=5.0, from_mhz=0.75)
    assert shifted.leakage_db(0.0) == base.leakage_db(0.0)
    assert shifted.leakage_db(0.5) == base.leakage_db(0.5)
    assert shifted.leakage_db(3.0) == pytest.approx(base.leakage_db(3.0) + 5.0)


def test_default_cca_mask_is_sharper_than_decode():
    decode = default_mask()
    sensing = default_cca_mask()
    assert sensing.leakage_db(0.0) == pytest.approx(0.0)
    for df in (2.0, 3.0, 5.0, 9.0):
        assert sensing.leakage_db(df) > decode.leakage_db(df)


def test_default_cca_mask_for_custom_base_uses_shift():
    base = PiecewiseLinearMask([(0.0, 0.0), (5.0, 10.0)], max_db=30.0)
    sensing = default_cca_mask(base)
    assert isinstance(sensing, ShiftedMask)
    assert sensing.leakage_db(5.0) == pytest.approx(15.0)


def test_cca_anchor_points():
    sensing = default_cca_mask()
    for freq, atten in CCA_LEAKAGE_POINTS:
        assert sensing.leakage_db(freq) == pytest.approx(atten)


@given(st.floats(min_value=0.0, max_value=30.0), st.floats(min_value=0.0, max_value=30.0))
def test_default_mask_monotone(df1, df2):
    mask = default_mask()
    if df1 <= df2:
        assert mask.leakage_db(df1) <= mask.leakage_db(df2) + 1e-9


@given(st.floats(min_value=-30.0, max_value=30.0))
def test_leakage_never_negative_or_above_cap(df):
    mask = default_mask()
    value = mask.leakage_db(df)
    assert 0.0 <= value <= mask.max_db


# ----------------------------------------------------------------------
# Property tests over *arbitrary* valid masks (not just the calibrated
# default): any PiecewiseLinearMask must be symmetric in the sign of the
# offset, monotone non-decreasing in |delta_f|, and capped at max_db.

@st.composite
def piecewise_masks(draw):
    """Generate a valid PiecewiseLinearMask (constructor invariants hold)."""
    n_points = draw(st.integers(min_value=1, max_value=6))
    freq_steps = draw(
        st.lists(
            st.floats(min_value=0.1, max_value=5.0,
                      allow_nan=False, allow_infinity=False),
            min_size=n_points - 1, max_size=n_points - 1,
        )
    )
    atten_steps = draw(
        st.lists(
            st.floats(min_value=0.0, max_value=20.0,
                      allow_nan=False, allow_infinity=False),
            min_size=n_points - 1, max_size=n_points - 1,
        )
    )
    first_atten = draw(
        st.floats(min_value=0.0, max_value=10.0,
                  allow_nan=False, allow_infinity=False)
    )
    points = [(0.0, first_atten)]
    freq, atten = 0.0, first_atten
    for df, da in zip(freq_steps, atten_steps):
        freq += df
        atten += da
        points.append((freq, atten))
    headroom = draw(
        st.floats(min_value=0.0, max_value=40.0,
                  allow_nan=False, allow_infinity=False)
    )
    return PiecewiseLinearMask(points, max_db=points[-1][1] + headroom)


@given(piecewise_masks(), st.floats(min_value=-50.0, max_value=50.0,
                                    allow_nan=False, allow_infinity=False))
def test_arbitrary_mask_symmetric(mask, df):
    assert mask.leakage_db(df) == mask.leakage_db(-df)


@given(piecewise_masks(),
       st.floats(min_value=-50.0, max_value=50.0,
                 allow_nan=False, allow_infinity=False),
       st.floats(min_value=-50.0, max_value=50.0,
                 allow_nan=False, allow_infinity=False))
def test_arbitrary_mask_monotone_in_abs_offset(mask, df1, df2):
    lo, hi = sorted((abs(df1), abs(df2)))
    assert mask.leakage_db(lo) <= mask.leakage_db(hi) + 1e-9


@given(piecewise_masks(), st.floats(min_value=-200.0, max_value=200.0,
                                    allow_nan=False, allow_infinity=False))
def test_arbitrary_mask_bounded(mask, df):
    value = mask.leakage_db(df)
    assert 0.0 <= value <= mask.max_db + 1e-9
