"""Tests for the PR-2 kernel performance layer.

Three properties are load-bearing and verified here:

1. **Culling exactness** — running the same scenario with the
   :class:`~repro.phy.medium.LinkGainCache` enabled and disabled
   (``link_cache=False`` brute-force reference path) produces identical
   observable outcomes, bit for bit.
2. **Accumulator exactness** — the incremental in-channel power sums agree
   with the pre-optimisation brute-force re-summation (kept in
   :mod:`repro.perf.bench`) to within 1e-12 relative, over arbitrary
   signal start/end sequences (hypothesis property test).
3. **Frame-timeline bit accounting** — a completed frame samples exactly
   ``round(airtime * bit_rate)`` bits no matter how many times the
   interference environment changes mid-frame.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.perf.bench import (
    brute_force_in_channel_power_mw,
    brute_force_sensed_power_mw,
)
from repro.phy.constants import BIT_RATE_BPS
from repro.phy.fading import FadingModel, LogNormalFading, NoFading
from repro.phy.frame import Frame
from repro.phy.medium import Medium, Signal, Transmission
from repro.phy.propagation import FixedRssMatrix, LogDistancePathLoss
from repro.phy.radio import Radio
from repro.sim.rng import RngStreams
from repro.sim.simulator import Simulator


# ----------------------------------------------------------------------
# 1. Culling exactness: link_cache=True vs the brute-force reference path
# ----------------------------------------------------------------------
def _run_scenario(link_cache: bool, seed: int = 7, register_order=None):
    """A mixed-audibility scenario; returns every observable outcome.

    Two transmitters alternate frames towards a population of receivers:
    one comfortably audible, one borderline (mean below the delivery floor
    but within fading headroom, so *some* draws deliver), one hopeless
    (beyond floor + clip: the cullable case).
    """
    sim = Simulator()
    rng = RngStreams(seed)
    matrix = FixedRssMatrix(default_loss_db=60.0)
    positions = {
        "tx1": (0, 0),
        "tx2": (50, 0),
        "near": (1, 0),
        "edge": (2, 0),
        "far": (3, 0),
    }
    # tx1's links: near is clearly audible, edge is borderline
    # (-120 mean, floor -115, clip 12 -> best case -108), far is
    # unreachable under any draw (-150 + 12 < -115: culled).
    matrix.set_loss(positions["tx1"], positions["near"], 50.0)
    matrix.set_loss(positions["tx1"], positions["edge"], 120.0)
    matrix.set_loss(positions["tx1"], positions["far"], 150.0)
    # tx2 mirrors it with different pairings.
    matrix.set_loss(positions["tx2"], positions["near"], 118.0)
    matrix.set_loss(positions["tx2"], positions["edge"], 55.0)
    matrix.set_loss(positions["tx2"], positions["far"], 152.0)
    medium = Medium(
        sim,
        matrix,
        fading=LogNormalFading(sigma_db=4.0, clip_db=12.0),
        rng=rng,
        delivery_floor_dbm=-115.0,
        link_cache=link_cache,
    )
    radios = {}
    order = register_order or list(positions)
    for name in order:
        radios[name] = Radio(
            sim, medium, name, positions[name], 2460.0, 0.0, rng=rng
        )
    events = []
    for name in ("near", "edge", "far"):
        def listener(outcome, _name=name):
            events.append(
                (
                    _name,
                    outcome.frame.source,  # frame_id is a process-global counter
                    outcome.rssi_dbm,
                    outcome.crc_ok,
                    outcome.errored_bits,
                    outcome.total_bits,
                )
            )
        radios[name].add_frame_listener(listener)

    def chain(radio, remaining):
        if remaining == 0:
            return
        frame = Frame(radio.name, None, 40)
        radio.transmit(
            frame,
            lambda t: sim.schedule(1e-4, lambda: chain(radio, remaining - 1)),
        )

    sim.schedule(0.0, lambda: chain(radios["tx1"], 15))
    # Offset tx2 so the two frame streams interleave without colliding.
    sim.schedule(2e-3, lambda: chain(radios["tx2"], 15))
    sim.run_until_idle()
    # Sanity: the scenario must actually deliver frames and must include a
    # borderline receiver that is delivered only sometimes.
    delivered_to = {name for name, *_ in events}
    assert "near" in delivered_to and "edge" in delivered_to
    assert "far" not in delivered_to
    edge_count = sum(1 for name, *_ in events if name == "edge")
    assert 0 < edge_count < 30  # some draws miss the floor, some clear it
    return events


def test_culling_matches_brute_force_reference_exactly():
    cached = _run_scenario(link_cache=True)
    brute = _run_scenario(link_cache=False)
    assert cached == brute  # identical tuples, float-exact RSSIs included


def test_results_independent_of_registration_order():
    """Per-link fading streams key on radio *names*, so shuffling the
    registration order must not move any link's draw sequence."""
    base = _run_scenario(link_cache=True)
    shuffled = _run_scenario(
        link_cache=True,
        register_order=["far", "edge", "near", "tx2", "tx1"],
    )
    assert base == shuffled


def test_culling_exact_with_different_seeds():
    for seed in (1, 2, 3):
        assert _run_scenario(True, seed=seed) == _run_scenario(False, seed=seed)


# ----------------------------------------------------------------------
# LinkGainCache unit behaviour
# ----------------------------------------------------------------------
def _cache_rig(fading=None, floor=-115.0):
    sim = Simulator()
    matrix = FixedRssMatrix(default_loss_db=60.0)
    medium = Medium(
        sim,
        matrix,
        fading=fading if fading is not None else NoFading(),
        rng=RngStreams(1),
        delivery_floor_dbm=floor,
    )
    return sim, matrix, medium


def test_audible_set_culls_unreachable_receivers():
    sim, matrix, medium = _cache_rig()
    matrix.set_loss((0, 0), (1, 0), 50.0)
    matrix.set_loss((0, 0), (2, 0), 150.0)
    tx = Radio(sim, medium, "tx", (0, 0), 2460.0, 0.0)
    near = Radio(sim, medium, "near", (1, 0), 2460.0, 0.0)
    Radio(sim, medium, "far", (2, 0), 2460.0, 0.0)
    entries = medium._gain_cache.audible_entries(tx, 0.0)
    assert [entry[0] for entry in entries] == [near]
    assert entries[0][1] == pytest.approx(-50.0)


def test_audible_set_respects_fading_headroom():
    """A mean below the floor but within clip_db headroom must be kept."""
    sim, matrix, medium = _cache_rig(
        fading=LogNormalFading(sigma_db=4.0, clip_db=12.0)
    )
    matrix.set_loss((0, 0), (1, 0), 120.0)  # mean -120, best case -108
    matrix.set_loss((0, 0), (2, 0), 130.0)  # mean -130, best case -118: cull
    tx = Radio(sim, medium, "tx", (0, 0), 2460.0, 0.0)
    edge = Radio(sim, medium, "edge", (1, 0), 2460.0, 0.0)
    Radio(sim, medium, "far", (2, 0), 2460.0, 0.0)
    entries = medium._gain_cache.audible_entries(tx, 0.0)
    assert [entry[0] for entry in entries] == [edge]


def test_unbounded_fading_disables_culling():
    class WildFading(FadingModel):
        def sample_db(self, rng):  # pragma: no cover - never sampled here
            return 0.0

    sim, matrix, medium = _cache_rig(fading=WildFading())
    matrix.set_loss((0, 0), (1, 0), 300.0)
    tx = Radio(sim, medium, "tx", (0, 0), 2460.0, 0.0)
    far = Radio(sim, medium, "far", (1, 0), 2460.0, 0.0)
    assert math.isinf(medium.fading.max_gain_db())
    entries = medium._gain_cache.audible_entries(tx, 0.0)
    assert [entry[0] for entry in entries] == [far]


def test_audible_set_is_cached_and_register_updates_in_place():
    sim, matrix, medium = _cache_rig()
    matrix.set_loss((0, 0), (1, 0), 50.0)
    tx = Radio(sim, medium, "tx", (0, 0), 2460.0, 0.0)
    Radio(sim, medium, "rx1", (1, 0), 2460.0, 0.0)
    first = medium._gain_cache.audible_entries(tx, 0.0)
    assert medium._gain_cache.audible_entries(tx, 0.0) is first  # memoised
    matrix.set_loss((0, 0), (2, 0), 55.0)
    late = Radio(sim, medium, "late", (2, 0), 2460.0, 0.0)
    # Registration is a per-radio incremental update, not a full
    # invalidation: the cached list object survives and the newcomer is
    # appended at the end (where a rebuild would have placed it), with
    # the exact scalar-model mean RSS.
    updated = medium._gain_cache.audible_entries(tx, 0.0)
    assert updated is first
    assert [entry[0] for entry in updated][-1] is late
    assert updated[-1][1] == -55.0


def test_register_updates_match_full_rebuild_bitwise():
    sim, matrix, medium = _cache_rig()
    matrix.set_loss((0, 0), (1, 0), 50.0)
    matrix.set_loss((0, 0), (2, 0), 55.0)
    matrix.set_loss((0, 0), (3, 0), 300.0)  # inaudible: must not be added
    tx = Radio(sim, medium, "tx", (0, 0), 2460.0, 0.0)
    Radio(sim, medium, "rx1", (1, 0), 2460.0, 0.0)
    medium._gain_cache.audible_entries(tx, 0.0)  # warm the cache
    Radio(sim, medium, "late", (2, 0), 2460.0, 0.0)
    Radio(sim, medium, "far", (3, 0), 2460.0, 0.0)
    incremental = medium._gain_cache.audible_entries(tx, 0.0)
    medium.invalidate_link_cache()
    rebuilt = medium._gain_cache.audible_entries(tx, 0.0)
    assert [(e[0], e[1]) for e in incremental] == [
        (e[0], e[1]) for e in rebuilt
    ]


def test_late_registered_radio_hears_subsequent_transmissions():
    sim, matrix, medium = _cache_rig()
    matrix.set_loss((0, 0), (1, 0), 50.0)
    matrix.set_loss((0, 0), (2, 0), 55.0)
    tx = Radio(sim, medium, "tx", (0, 0), 2460.0, 0.0)
    Radio(sim, medium, "rx1", (1, 0), 2460.0, 0.0)
    tx.transmit(Frame("tx", None, 20), lambda t: None)  # warms the cache
    sim.run_until_idle()
    late = Radio(sim, medium, "late", (2, 0), 2460.0, 0.0)
    got = []
    late.add_frame_listener(lambda outcome: got.append(outcome))
    tx.transmit(Frame("tx", None, 20), lambda t: None)
    sim.run_until_idle()
    assert len(got) == 1


def test_duplicate_registration_rejected():
    sim, _, medium = _cache_rig()
    radio = Radio(sim, medium, "tx", (0, 0), 2460.0, 0.0)
    with pytest.raises(ValueError, match="registered twice"):
        medium.register(radio)


def test_radios_snapshot_is_stable_and_refreshed():
    sim, _, medium = _cache_rig()
    a = Radio(sim, medium, "a", (0, 0), 2460.0, 0.0)
    snap = medium.radios
    assert medium.radios is snap  # no per-access copy
    b = Radio(sim, medium, "b", (1, 0), 2460.0, 0.0)
    assert medium.radios == (a, b)


def test_invalidate_link_cache_after_position_change():
    sim, matrix, medium = _cache_rig()
    matrix.set_loss((0, 0), (1, 0), 150.0)
    matrix.set_loss((0, 0), (5, 0), 50.0)
    tx = Radio(sim, medium, "tx", (0, 0), 2460.0, 0.0)
    rx = Radio(sim, medium, "rx", (1, 0), 2460.0, 0.0)
    assert medium._gain_cache.audible_entries(tx, 0.0) == []
    rx.position = (5, 0)
    medium.invalidate_link_cache()
    entries = medium._gain_cache.audible_entries(tx, 0.0)
    assert [entry[0] for entry in entries] == [rx]


def test_buffered_fading_draws_match_scalar_normal_calls():
    """LogNormalFading batches its generator reads; the batched sequence
    must be bit-identical to per-call ``rng.normal(0, sigma)`` draws."""
    import numpy as np

    fading = LogNormalFading(sigma_db=4.0, clip_db=12.0)
    rng = np.random.default_rng(99)
    reference = np.random.default_rng(99)
    for _ in range(3 * LogNormalFading.BUFFER_DRAWS + 7):  # cross refills
        expected = reference.normal(0.0, 4.0)
        expected = min(max(expected, -12.0), 12.0)
        assert fading.sample_db(rng) == expected


# ----------------------------------------------------------------------
# 2. Incremental power accumulator vs brute-force re-summation
# ----------------------------------------------------------------------
def _bare_radio():
    sim = Simulator()
    rng = RngStreams(1)
    medium = Medium(sim, FixedRssMatrix(default_loss_db=50.0), rng=rng)
    return Radio(sim, medium, "rx", (0, 0), 2460.0, 0.0, rng=rng)


def _make_signal(rx, channel_mhz, rx_power_dbm):
    transmission = Transmission(
        source=rx,
        frame=Frame("s", None, 20),
        channel_mhz=channel_mhz,
        tx_power_dbm=0.0,
        start_time=0.0,
        end_time=1.0,
    )
    return Signal(transmission, rx_power_dbm)


def _rel_diff(a, b):
    scale = max(abs(a), abs(b), 1e-300)
    return abs(a - b) / scale


def _assert_accumulators_exact(rx):
    assert _rel_diff(rx.sensed_power_mw(), brute_force_sensed_power_mw(rx)) <= 1e-12
    assert (
        _rel_diff(rx.in_channel_power_mw(), brute_force_in_channel_power_mw(rx))
        <= 1e-12
    )
    for signal in rx.active_signals:
        assert (
            _rel_diff(
                rx.in_channel_power_mw(exclude=signal),
                brute_force_in_channel_power_mw(rx, exclude=signal),
            )
            <= 1e-12
        )


@settings(max_examples=60, deadline=None)
@given(
    spec=st.lists(
        st.tuples(
            st.integers(min_value=-6, max_value=6),  # channel offset (MHz)
            st.floats(min_value=-110.0, max_value=-20.0),  # RSS (dBm)
        ),
        min_size=0,
        max_size=24,
    ),
    data=st.data(),
)
def test_incremental_accumulator_matches_brute_force(spec, data):
    """Random add/remove/probe interleavings stay within 1e-12 relative of
    the pre-optimisation full re-summation (the ISSUE acceptance bound)."""
    rx = _bare_radio()
    live = []
    for offset, power in spec:
        signal = _make_signal(rx, 2460.0 + offset, power)
        rx._add_signal(signal)
        live.append(signal)
        _assert_accumulators_exact(rx)
    while live:
        index = data.draw(
            st.integers(min_value=0, max_value=len(live) - 1), label="remove"
        )
        rx._remove_signal(live.pop(index))
        _assert_accumulators_exact(rx)
    assert rx.sensed_power_mw() == rx._noise_mw  # exact reset, no drift


def test_removal_rebuild_is_bitwise_equal_to_brute_force():
    """After any removal the running sum is *bitwise* the brute-force sum
    (both walk the same list in the same order)."""
    rx = _bare_radio()
    signals = [
        _make_signal(rx, 2460.0 + (i % 5), -40.0 - 7.3 * i) for i in range(12)
    ]
    for signal in signals:
        rx._add_signal(signal)
    for signal in signals[::2]:
        rx._remove_signal(signal)
        assert rx._noise_mw + rx._sense_sum_mw == brute_force_sensed_power_mw(rx)


def test_gain_memo_caches_per_offset():
    rx = _bare_radio()
    first = rx._gains_for(2465.0)
    assert rx._gains_for(2465.0) is first
    assert rx._gains_for(2460.0) == (1.0, 1.0)  # co-channel: no attenuation


# ----------------------------------------------------------------------
# 3. Frame-timeline bit accounting
# ----------------------------------------------------------------------
def test_completed_frame_samples_exactly_its_bit_length():
    """Many mid-frame interference changes must not drift the sampled-bit
    total away from round(airtime * bit_rate)."""
    sim = Simulator()
    rng = RngStreams(3)
    matrix = FixedRssMatrix(default_loss_db=60.0)
    medium = Medium(sim, matrix, fading=NoFading(), rng=rng)
    tx = Radio(sim, medium, "tx", (0, 0), 2460.0, 0.0, rng=rng)
    rx = Radio(sim, medium, "rx", (1, 0), 2460.0, 0.0, rng=rng)
    # Off-channel interferer: perturbs rx's interference environment
    # (segment closures) without being lockable by rx.
    jammer = Radio(sim, medium, "jam", (2, 0), 2465.0, 0.0, rng=rng)
    matrix.set_loss((0, 0), (1, 0), 50.0)
    matrix.set_loss((2, 0), (1, 0), 70.0)

    outcomes = []
    rx.add_frame_listener(lambda outcome: outcomes.append(outcome))

    frame = Frame("tx", "rx", 100)  # long frame: ~4.3 ms on air
    tx.transmit(frame, lambda t: None)

    jam_count = [0]

    def jam():
        if sim.now >= frame.airtime_s - 5e-4:
            return
        jam_count[0] += 1
        jammer.transmit(
            Frame("jam", None, 0),
            lambda t: sim.schedule(3e-5, jam),
        )

    # Odd offset so segment boundaries land on fractional bit times.
    sim.schedule(1.37e-4, jam)
    sim.run_until_idle()

    assert jam_count[0] >= 5  # the frame really was chopped into segments
    [outcome] = outcomes
    expected_bits = round(frame.airtime_s * BIT_RATE_BPS)
    assert outcome.total_bits == expected_bits
    assert outcome.total_bits == frame.total_bits


def test_bit_accounting_with_log_distance_smoke():
    """End-to-end: clean reception over a physical path-loss model still
    accounts every on-air bit exactly once."""
    sim = Simulator()
    rng = RngStreams(4)
    medium = Medium(sim, LogDistancePathLoss(), fading=NoFading(), rng=rng)
    tx = Radio(sim, medium, "tx", (0, 0), 2460.0, 0.0, rng=rng)
    rx = Radio(sim, medium, "rx", (3, 0), 2460.0, 0.0, rng=rng)
    outcomes = []
    rx.add_frame_listener(lambda outcome: outcomes.append(outcome))
    frame = Frame("tx", "rx", 60)
    tx.transmit(frame, lambda t: None)
    sim.run_until_idle()
    [outcome] = outcomes
    assert outcome.total_bits == round(frame.airtime_s * BIT_RATE_BPS)
    assert outcome.crc_ok
