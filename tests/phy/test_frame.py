"""Unit tests for frame structure and airtime."""

import pytest
from hypothesis import given, strategies as st

from repro.phy.constants import BIT_RATE_BPS
from repro.phy.frame import Frame, frame_airtime_s, payload_for_airtime


def test_airtime_known_value():
    # 60-byte payload: 6 (PHY) + 11 (MHR) + 60 + 2 (FCS) = 79 bytes.
    assert frame_airtime_s(60) == pytest.approx(79 * 8 / 250_000)


def test_airtime_rejects_oversize():
    with pytest.raises(ValueError):
        frame_airtime_s(127)  # MPDU would exceed 127 bytes


def test_payload_for_airtime_roundtrip():
    payload = payload_for_airtime(frame_airtime_s(60))
    assert payload == 60


def test_payload_for_airtime_too_short():
    with pytest.raises(ValueError):
        payload_for_airtime(1e-5)


def test_frame_ids_unique():
    a = Frame("s", "r", 10)
    b = Frame("s", "r", 10)
    assert a.frame_id != b.frame_id


def test_frame_airtime_and_bits():
    frame = Frame("s", "r", 60)
    assert frame.airtime_s == pytest.approx(frame_airtime_s(60))
    assert frame.total_bits == 79 * 8
    assert frame.mpdu_bits == 73 * 8


def test_frame_bit_rate_override():
    slow = Frame("s", "r", 60)
    fast = Frame("s", "r", 60, bit_rate_bps=1_000_000)
    assert fast.airtime_s == pytest.approx(slow.airtime_s / 4.0)


def test_frame_validation():
    with pytest.raises(ValueError):
        Frame("s", "r", -1)
    with pytest.raises(ValueError):
        Frame("s", "r", 200)
    with pytest.raises(ValueError):
        Frame("s", "r", 10, bit_rate_bps=0)


def test_broadcast():
    assert Frame("s", None, 10).is_broadcast()
    assert not Frame("s", "r", 10).is_broadcast()


@given(st.integers(min_value=0, max_value=114))
def test_airtime_monotone_in_payload(payload):
    assert frame_airtime_s(payload + 0) <= frame_airtime_s(min(payload + 1, 114))


@given(st.integers(min_value=0, max_value=114))
def test_airtime_consistent_with_bits(payload):
    frame = Frame("s", None, payload)
    assert frame.airtime_s == pytest.approx(frame.total_bits / BIT_RATE_BPS)
