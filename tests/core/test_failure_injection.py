"""Failure-injection tests: DCN's behaviour when the network changes.

The updating phase exists for exactly these events:

- a *weak* co-channel transmitter appears -> Case I (Eq. 3) must lower the
  threshold immediately to protect it;
- that transmitter dies -> Case II (Eq. 4) must relax the threshold back
  up within ~T_U, restoring the forfeited concurrency.
"""

import pytest

from repro.core.adjustor import AdjustorConfig
from repro.core.dcn import DcnCcaPolicy
from repro.mac.cca import FixedCcaThreshold
from repro.mac.mac import Mac
from repro.net.traffic import SaturatedSource
from repro.phy.fading import NoFading
from repro.phy.medium import Medium
from repro.phy.propagation import FixedRssMatrix
from repro.phy.radio import Radio
from repro.sim.rng import RngStreams
from repro.sim.simulator import Simulator


class _Shim:
    def __init__(self, mac):
        self.mac = mac
        self.name = mac.name
        self.sim = mac.sim


def build_world():
    """One DCN node, a strong co-channel pair and a weak co-channel pair."""
    sim = Simulator()
    rng = RngStreams(17)
    matrix = FixedRssMatrix(default_loss_db=200.0)
    positions = {
        "dcn": (0, 0),
        "strong_tx": (1, 0),
        "strong_rx": (2, 0),
        "weak_tx": (3, 0),
        "weak_rx": (4, 0),
    }
    matrix.set_loss(positions["strong_tx"], positions["dcn"], 50.0)
    matrix.set_loss(positions["strong_tx"], positions["strong_rx"], 45.0)
    matrix.set_loss(positions["weak_tx"], positions["dcn"], 72.0)
    matrix.set_loss(positions["weak_tx"], positions["weak_rx"], 45.0)
    medium = Medium(sim, matrix, fading=NoFading(), rng=rng)
    policy = DcnCcaPolicy(AdjustorConfig(t_init_s=0.5, t_update_s=1.0))
    macs = {}
    for name, pos in positions.items():
        radio = Radio(sim, medium, name, pos, 2460.0, 0.0, rng=rng)
        macs[name] = Mac(
            sim, radio, rng.stream(f"mac.{name}"),
            cca_policy=policy if name == "dcn" else FixedCcaThreshold(-77.0),
        )
    return sim, macs, policy


def test_weak_joiner_lowers_threshold_then_death_relaxes_it():
    sim, macs, policy = build_world()
    strong = SaturatedSource(_Shim(macs["strong_tx"]), "strong_rx")
    strong.start()
    # Phase 1: only the strong transmitter -> threshold settles near -50.
    sim.run(3.0)
    settled = policy.threshold_dbm()
    assert settled == pytest.approx(-50.0, abs=1.0)

    # Phase 2: a weak transmitter joins -> Case I protects it immediately.
    weak = SaturatedSource(_Shim(macs["weak_tx"]), "weak_rx")
    weak.start()
    sim.run(4.0)
    lowered = policy.threshold_dbm()
    assert lowered == pytest.approx(-72.0, abs=1.0)

    # Phase 3: the weak transmitter dies -> Case II relaxes within ~T_U.
    weak.stop()
    sim.run(sim.now + 3.0)
    relaxed = policy.threshold_dbm()
    assert relaxed == pytest.approx(-50.0, abs=1.0)


def test_total_silence_keeps_threshold_stable():
    """With *no* co-channel traffic at all after a death, the window is
    empty and Case II must not move the threshold."""
    sim, macs, policy = build_world()
    strong = SaturatedSource(_Shim(macs["strong_tx"]), "strong_rx")
    strong.start()
    sim.run(3.0)
    before = policy.threshold_dbm()
    strong.stop()
    sim.run(sim.now + 5.0)
    assert policy.threshold_dbm() == pytest.approx(before)


def test_threshold_history_tracks_all_three_phases():
    sim, macs, policy = build_world()
    strong = SaturatedSource(_Shim(macs["strong_tx"]), "strong_rx")
    strong.start()
    sim.run(3.0)
    weak = SaturatedSource(_Shim(macs["weak_tx"]), "weak_rx")
    weak.start()
    sim.run(4.0)
    weak.stop()
    sim.run(sim.now + 3.0)
    values = [v for _, v in policy.history()]
    # default -> ~-50 (Eq.2/CaseII) -> ~-72 (Case I) -> ~-50 (Case II)
    assert values[0] == -77.0
    assert min(values) <= -71.0
    assert values[-1] == pytest.approx(-50.0, abs=1.0)
