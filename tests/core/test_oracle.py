"""Unit tests for the oracle CCA policy (Section VII-C upper bound)."""

import pytest

from repro.core.oracle import OracleCcaPolicy
from repro.mac.mac import Mac
from repro.phy.fading import NoFading
from repro.phy.frame import Frame
from repro.phy.medium import Medium
from repro.phy.propagation import FixedRssMatrix
from repro.phy.radio import Radio
from repro.sim.rng import RngStreams
from repro.sim.simulator import Simulator


def build(channels, losses):
    sim = Simulator()
    rng = RngStreams(12)
    matrix = FixedRssMatrix(default_loss_db=200.0)
    positions = {name: (i, 0) for i, name in enumerate(channels)}
    for (tx, rx), loss in losses.items():
        matrix.set_loss(positions[tx], positions[rx], loss)
    medium = Medium(sim, matrix, fading=NoFading(), rng=rng)
    policy = OracleCcaPolicy()
    macs = {}
    for name, channel in channels.items():
        radio = Radio(sim, medium, name, positions[name], channel, 0.0, rng=rng)
        macs[name] = Mac(
            sim, radio, rng.stream(f"mac.{name}"),
            cca_policy=policy if name == "probe" else None,
        )
    return sim, macs, policy


def test_idle_by_default():
    sim, macs, policy = build({"probe": 2460.0}, {})
    assert policy.threshold_dbm() == float("inf")


def test_unattached_policy_asserts():
    policy = OracleCcaPolicy()
    with pytest.raises(AssertionError):
        policy.threshold_dbm()


def test_defers_to_audible_co_channel():
    sim, macs, policy = build(
        {"probe": 2460.0, "co": 2460.0}, {("co", "probe"): 60.0}
    )
    seen = {}
    macs["co"].radio.transmit(Frame("co", None, 100), lambda t: None)
    sim.schedule(0.001, lambda: seen.update(th=policy.threshold_dbm()))
    sim.run(1.0)
    assert seen["th"] == float("-inf")


def test_ignores_co_channel_below_protect_floor():
    sim, macs, policy = build(
        {"probe": 2460.0, "co": 2460.0}, {("co", "probe"): 97.0}
    )
    seen = {}
    macs["co"].radio.transmit(Frame("co", None, 100), lambda t: None)
    sim.schedule(0.001, lambda: seen.update(th=policy.threshold_dbm()))
    sim.run(1.0)
    assert seen["th"] == float("inf")


def test_ignores_inter_channel_of_any_strength():
    sim, macs, policy = build(
        {"probe": 2460.0, "nb": 2463.0}, {("nb", "probe"): 25.0}
    )
    seen = {}
    macs["nb"].radio.transmit(Frame("nb", None, 100), lambda t: None)
    sim.schedule(0.001, lambda: seen.update(th=policy.threshold_dbm()))
    sim.run(1.0)
    assert seen["th"] == float("inf")


def test_describe():
    assert "oracle" in OracleCcaPolicy().describe()
