"""Unit tests for the CCA-Adjustor phase logic (Eqs. 2-4)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.adjustor import AdjustorConfig, CcaAdjustor
from repro.sim.simulator import Simulator


def make(sim=None, **config_kwargs):
    sim = sim if sim is not None else Simulator()
    return sim, CcaAdjustor(sim, AdjustorConfig(**config_kwargs))


def test_starts_at_conservative_default():
    _, adjustor = make()
    assert adjustor.threshold_dbm() == -77.0
    assert adjustor.initializing


def test_eq2_min_of_min_rssi_and_max_sense():
    _, adjustor = make()
    adjustor.observe_rssi(-50.0)
    adjustor.observe_rssi(-55.0)
    adjustor.observe_sense(-70.0)
    adjustor.observe_sense(-62.0)
    adjustor.finish_initialization()
    # min(min(S)= -55, max(P)= -62) = -62
    assert adjustor.threshold_dbm() == pytest.approx(-62.0)


def test_eq2_when_co_channel_weaker_than_sensing():
    _, adjustor = make()
    adjustor.observe_rssi(-65.0)
    adjustor.observe_sense(-60.0)
    adjustor.finish_initialization()
    assert adjustor.threshold_dbm() == pytest.approx(-65.0)


def test_init_without_any_evidence_keeps_default():
    _, adjustor = make()
    adjustor.finish_initialization()
    assert adjustor.threshold_dbm() == -77.0


def test_init_with_only_sense_records():
    _, adjustor = make()
    adjustor.observe_sense(-80.0)
    adjustor.observe_sense(-72.0)
    adjustor.finish_initialization()
    assert adjustor.threshold_dbm() == pytest.approx(-72.0)


def test_sense_ignored_after_initialization():
    _, adjustor = make()
    adjustor.observe_rssi(-55.0)
    adjustor.finish_initialization()
    adjustor.observe_sense(-90.0)
    assert adjustor.threshold_dbm() == pytest.approx(-55.0)


def test_case1_lowers_immediately():
    sim, adjustor = make()
    adjustor.observe_rssi(-50.0)
    adjustor.finish_initialization()
    assert adjustor.threshold_dbm() == pytest.approx(-50.0)
    sim.run(1.0)
    adjustor.observe_rssi(-64.0)  # weaker packet -> Eq. 3
    assert adjustor.threshold_dbm() == pytest.approx(-64.0)


def test_case1_ignores_stronger_packets():
    sim, adjustor = make()
    adjustor.observe_rssi(-60.0)
    adjustor.finish_initialization()
    adjustor.observe_rssi(-40.0)
    assert adjustor.threshold_dbm() == pytest.approx(-60.0)


def test_case2_relaxes_upward_after_quiet_window():
    sim, adjustor = make(t_update_s=3.0)
    adjustor.observe_rssi(-70.0)
    adjustor.finish_initialization()
    assert adjustor.threshold_dbm() == pytest.approx(-70.0)
    # Strong traffic only, for longer than T_U.
    sim.run(1.0)
    adjustor.observe_rssi(-52.0)
    sim.run(2.0)
    adjustor.observe_rssi(-50.0)
    sim.run(4.5)
    adjustor.periodic_update()
    # No Case-I update since init; window holds only recent strong packets.
    assert adjustor.threshold_dbm() == pytest.approx(-50.0)


def test_case2_suppressed_within_tu_of_case1():
    sim, adjustor = make(t_update_s=3.0)
    adjustor.observe_rssi(-70.0)
    adjustor.finish_initialization()
    sim.run(1.0)
    adjustor.observe_rssi(-75.0)  # Case I fires here
    sim.run(1.0)
    adjustor.observe_rssi(-50.0)
    adjustor.periodic_update()  # only 1 s since Case I -> no change
    assert adjustor.threshold_dbm() == pytest.approx(-75.0)


def test_case2_window_expires_old_records():
    sim, adjustor = make(t_update_s=2.0)
    adjustor.observe_rssi(-60.0)
    adjustor.finish_initialization()
    sim.run(0.5)
    adjustor.observe_rssi(-58.0)
    sim.run(5.5)  # -58 record now stale (5 s old > T_U)
    adjustor.observe_rssi(-45.0)
    sim.run(7.0)  # -45 record still fresh (1.5 s old < T_U)
    adjustor.periodic_update()
    assert adjustor.threshold_dbm() == pytest.approx(-45.0)


def test_case2_with_empty_window_keeps_threshold():
    sim, adjustor = make(t_update_s=1.0)
    adjustor.observe_rssi(-60.0)
    adjustor.finish_initialization()
    sim.run(10.0)
    adjustor.periodic_update()
    assert adjustor.threshold_dbm() == pytest.approx(-60.0)


def test_margin_applied_everywhere():
    sim, adjustor = make(margin_db=2.0)
    adjustor.observe_rssi(-50.0)
    adjustor.finish_initialization()
    assert adjustor.threshold_dbm() == pytest.approx(-52.0)
    adjustor.observe_rssi(-60.0)
    assert adjustor.threshold_dbm() == pytest.approx(-62.0)


def test_history_records_changes():
    sim, adjustor = make()
    adjustor.observe_rssi(-50.0)
    adjustor.finish_initialization()
    sim.run(1.0)
    adjustor.observe_rssi(-60.0)
    history = adjustor.history()
    assert [h[1] for h in history] == [-77.0, -50.0, -60.0]
    assert history[-1][0] == pytest.approx(1.0)


def test_config_validation():
    with pytest.raises(ValueError):
        AdjustorConfig(t_init_s=-1.0)
    with pytest.raises(ValueError):
        AdjustorConfig(t_update_s=0.0)
    with pytest.raises(ValueError):
        AdjustorConfig(sense_interval_s=0.0)


@given(st.lists(st.floats(min_value=-95.0, max_value=-30.0), min_size=1, max_size=50))
def test_invariant_threshold_never_above_weakest_observation(rssis):
    """Safety property: after init, the threshold never exceeds the weakest
    co-channel RSSI seen so far (with zero margin and no Case-II expiry)."""
    sim, adjustor = make(t_update_s=1000.0)
    adjustor.finish_initialization()
    running_min = -77.0
    for rssi in rssis:
        adjustor.observe_rssi(rssi)
        running_min = min(running_min, rssi)
        assert adjustor.threshold_dbm() <= running_min + 1e-9


# ----------------------------------------------------------------------
# Regression: initializing-phase observations seed the Case-II window.


def test_init_observations_seed_case2_window():
    """A weak neighbour heard *only* during init must survive the first
    Case-II check.

    Pre-fix, init-phase RSSI records were dropped after Eq. 2, so the
    first quiet-window minimum saw only the strong post-init traffic and
    relaxed the threshold above the weak neighbour — exactly the
    starvation DCN is meant to prevent.
    """
    sim, adjustor = make(t_update_s=3.0)
    adjustor.observe_rssi(-85.0)  # weak neighbour, heard during init only
    sim.run(1.0)
    adjustor.finish_initialization()  # Eq. 2 -> -85
    assert adjustor.threshold_dbm() == pytest.approx(-85.0)
    sim.run(2.0)
    adjustor.observe_rssi(-50.0)  # strong traffic after init (no Case I)
    sim.run(4.0)
    adjustor.periodic_update()
    # The seeded -85 record is still inside the first T_U window, so the
    # minimum includes it: the threshold must NOT relax to -50.
    assert adjustor.threshold_dbm() == pytest.approx(-85.0)


def test_seeded_window_expires_after_full_quiet_window():
    """The carried-over init observations live for exactly one T_U: if the
    weak neighbour then stays quiet, the threshold may relax as usual."""
    sim, adjustor = make(t_update_s=3.0)
    adjustor.observe_rssi(-85.0)
    sim.run(1.0)
    adjustor.finish_initialization()
    sim.run(2.0)
    adjustor.observe_rssi(-50.0)
    sim.run(4.0)
    adjustor.periodic_update()
    assert adjustor.threshold_dbm() == pytest.approx(-85.0)
    sim.run(5.5)
    adjustor.observe_rssi(-50.0)
    sim.run(7.0)
    adjustor.periodic_update()  # seeded record expired; only -50 remains
    assert adjustor.threshold_dbm() == pytest.approx(-50.0)


def test_only_trailing_tu_of_init_observations_seed_window():
    """With a long initializing phase, only observations from the last
    T_U before the boundary are carried over (older ones would already
    have expired had the updating phase been running)."""
    sim, adjustor = make(t_init_s=5.0, t_update_s=3.0)
    sim.run(1.0)
    adjustor.observe_rssi(-90.0)  # stale: 4 s before the boundary
    sim.run(3.0)
    adjustor.observe_rssi(-80.0)  # fresh: 2 s before the boundary
    sim.run(5.0)
    adjustor.finish_initialization()  # Eq. 2 -> -90
    assert adjustor.threshold_dbm() == pytest.approx(-90.0)
    sim.run(6.0)
    adjustor.observe_rssi(-50.0)
    sim.run(8.0)
    adjustor.periodic_update()
    # -90 was NOT seeded (too old); -80 was; min(-80, -50) = -80.
    assert adjustor.threshold_dbm() == pytest.approx(-80.0)


# ----------------------------------------------------------------------
# Regression: late-joining nodes anchor at construction time, not t = 0.


def test_history_anchors_at_construction_time():
    """A node booting mid-simulation must not report a phantom pre-boot
    threshold: the first history entry carries the construction time."""
    sim = Simulator()
    sim.run(5.0)
    _, adjustor = make(sim=sim)
    history = adjustor.history()
    assert history[0] == (pytest.approx(5.0), -77.0)


def test_case2_reference_anchors_at_construction_time():
    """The first quiet-window measurement must span time the node actually
    observed: constructed at t = 5 with T_U = 3, a periodic check at
    t = 7 is premature (2 s of evidence) and must not fire."""
    sim = Simulator()
    sim.run(5.0)
    _, adjustor = make(sim=sim, t_update_s=3.0)
    adjustor.finish_initialization()
    sim.run(6.0)
    adjustor.observe_rssi(-50.0)
    sim.run(7.0)
    adjustor.periodic_update()  # only 2 s since boot/finish: suppressed
    assert adjustor.threshold_dbm() == pytest.approx(-77.0)
    sim.run(8.5)
    adjustor.periodic_update()  # 3.5 s: a full window has now elapsed
    assert adjustor.threshold_dbm() == pytest.approx(-50.0)
