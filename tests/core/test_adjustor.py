"""Unit tests for the CCA-Adjustor phase logic (Eqs. 2-4)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.adjustor import AdjustorConfig, CcaAdjustor
from repro.sim.simulator import Simulator


def make(sim=None, **config_kwargs):
    sim = sim if sim is not None else Simulator()
    return sim, CcaAdjustor(sim, AdjustorConfig(**config_kwargs))


def test_starts_at_conservative_default():
    _, adjustor = make()
    assert adjustor.threshold_dbm() == -77.0
    assert adjustor.initializing


def test_eq2_min_of_min_rssi_and_max_sense():
    _, adjustor = make()
    adjustor.observe_rssi(-50.0)
    adjustor.observe_rssi(-55.0)
    adjustor.observe_sense(-70.0)
    adjustor.observe_sense(-62.0)
    adjustor.finish_initialization()
    # min(min(S)= -55, max(P)= -62) = -62
    assert adjustor.threshold_dbm() == pytest.approx(-62.0)


def test_eq2_when_co_channel_weaker_than_sensing():
    _, adjustor = make()
    adjustor.observe_rssi(-65.0)
    adjustor.observe_sense(-60.0)
    adjustor.finish_initialization()
    assert adjustor.threshold_dbm() == pytest.approx(-65.0)


def test_init_without_any_evidence_keeps_default():
    _, adjustor = make()
    adjustor.finish_initialization()
    assert adjustor.threshold_dbm() == -77.0


def test_init_with_only_sense_records():
    _, adjustor = make()
    adjustor.observe_sense(-80.0)
    adjustor.observe_sense(-72.0)
    adjustor.finish_initialization()
    assert adjustor.threshold_dbm() == pytest.approx(-72.0)


def test_sense_ignored_after_initialization():
    _, adjustor = make()
    adjustor.observe_rssi(-55.0)
    adjustor.finish_initialization()
    adjustor.observe_sense(-90.0)
    assert adjustor.threshold_dbm() == pytest.approx(-55.0)


def test_case1_lowers_immediately():
    sim, adjustor = make()
    adjustor.observe_rssi(-50.0)
    adjustor.finish_initialization()
    assert adjustor.threshold_dbm() == pytest.approx(-50.0)
    sim.run(1.0)
    adjustor.observe_rssi(-64.0)  # weaker packet -> Eq. 3
    assert adjustor.threshold_dbm() == pytest.approx(-64.0)


def test_case1_ignores_stronger_packets():
    sim, adjustor = make()
    adjustor.observe_rssi(-60.0)
    adjustor.finish_initialization()
    adjustor.observe_rssi(-40.0)
    assert adjustor.threshold_dbm() == pytest.approx(-60.0)


def test_case2_relaxes_upward_after_quiet_window():
    sim, adjustor = make(t_update_s=3.0)
    adjustor.observe_rssi(-70.0)
    adjustor.finish_initialization()
    assert adjustor.threshold_dbm() == pytest.approx(-70.0)
    # Strong traffic only, for longer than T_U.
    sim.run(1.0)
    adjustor.observe_rssi(-52.0)
    sim.run(2.0)
    adjustor.observe_rssi(-50.0)
    sim.run(4.5)
    adjustor.periodic_update()
    # No Case-I update since init; window holds only recent strong packets.
    assert adjustor.threshold_dbm() == pytest.approx(-50.0)


def test_case2_suppressed_within_tu_of_case1():
    sim, adjustor = make(t_update_s=3.0)
    adjustor.observe_rssi(-70.0)
    adjustor.finish_initialization()
    sim.run(1.0)
    adjustor.observe_rssi(-75.0)  # Case I fires here
    sim.run(1.0)
    adjustor.observe_rssi(-50.0)
    adjustor.periodic_update()  # only 1 s since Case I -> no change
    assert adjustor.threshold_dbm() == pytest.approx(-75.0)


def test_case2_window_expires_old_records():
    sim, adjustor = make(t_update_s=2.0)
    adjustor.observe_rssi(-60.0)
    adjustor.finish_initialization()
    sim.run(0.5)
    adjustor.observe_rssi(-58.0)
    sim.run(5.5)  # -58 record now stale (5 s old > T_U)
    adjustor.observe_rssi(-45.0)
    sim.run(7.0)  # -45 record still fresh (1.5 s old < T_U)
    adjustor.periodic_update()
    assert adjustor.threshold_dbm() == pytest.approx(-45.0)


def test_case2_with_empty_window_keeps_threshold():
    sim, adjustor = make(t_update_s=1.0)
    adjustor.observe_rssi(-60.0)
    adjustor.finish_initialization()
    sim.run(10.0)
    adjustor.periodic_update()
    assert adjustor.threshold_dbm() == pytest.approx(-60.0)


def test_margin_applied_everywhere():
    sim, adjustor = make(margin_db=2.0)
    adjustor.observe_rssi(-50.0)
    adjustor.finish_initialization()
    assert adjustor.threshold_dbm() == pytest.approx(-52.0)
    adjustor.observe_rssi(-60.0)
    assert adjustor.threshold_dbm() == pytest.approx(-62.0)


def test_history_records_changes():
    sim, adjustor = make()
    adjustor.observe_rssi(-50.0)
    adjustor.finish_initialization()
    sim.run(1.0)
    adjustor.observe_rssi(-60.0)
    history = adjustor.history()
    assert [h[1] for h in history] == [-77.0, -50.0, -60.0]
    assert history[-1][0] == pytest.approx(1.0)


def test_config_validation():
    with pytest.raises(ValueError):
        AdjustorConfig(t_init_s=-1.0)
    with pytest.raises(ValueError):
        AdjustorConfig(t_update_s=0.0)
    with pytest.raises(ValueError):
        AdjustorConfig(sense_interval_s=0.0)


@given(st.lists(st.floats(min_value=-95.0, max_value=-30.0), min_size=1, max_size=50))
def test_invariant_threshold_never_above_weakest_observation(rssis):
    """Safety property: after init, the threshold never exceeds the weakest
    co-channel RSSI seen so far (with zero margin and no Case-II expiry)."""
    sim, adjustor = make(t_update_s=1000.0)
    adjustor.finish_initialization()
    running_min = -77.0
    for rssi in rssis:
        adjustor.observe_rssi(rssi)
        running_min = min(running_min, rssi)
        assert adjustor.threshold_dbm() <= running_min + 1e-9
