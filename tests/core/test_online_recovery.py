"""Tests for the online recovery controller (Section VII-A future work)."""

import pytest

from repro.core.recovery import OnlineRecoveryController, RecoveryConfig
from repro.phy.errors import FrameReception
from repro.phy.frame import Frame


def reception(crc_ok, error_fraction=0.0, total=1000):
    return FrameReception(
        frame=Frame("s", "r", 60),
        rssi_dbm=-50.0,
        crc_ok=crc_ok,
        errored_bits=int(error_fraction * total),
        total_bits=total,
        start_time=0.0,
        end_time=0.003,
    )


def feed(controller, clean=0, recoverable=0, hopeless=0):
    for _ in range(clean):
        controller.record(reception(True))
    for _ in range(recoverable):
        controller.record(reception(False, error_fraction=0.05))
    for _ in range(hopeless):
        controller.record(reception(False, error_fraction=0.5))


def test_stays_disabled_on_clean_link():
    controller = OnlineRecoveryController(window=50)
    feed(controller, clean=100)
    assert not controller.enabled
    assert controller.recoverable_fraction == 0.0


def test_enables_on_lossy_recoverable_link():
    controller = OnlineRecoveryController(window=50)
    feed(controller, clean=60, recoverable=40)
    assert controller.enabled
    assert controller.recoverable_fraction > controller.activation_threshold


def test_stays_disabled_when_failures_hopeless():
    controller = OnlineRecoveryController(window=50)
    feed(controller, clean=60, hopeless=40)
    assert not controller.enabled


def test_disables_again_when_link_recovers():
    controller = OnlineRecoveryController(window=50)
    feed(controller, recoverable=50)
    assert controller.enabled
    feed(controller, clean=100)  # window slides past the bad period
    assert not controller.enabled
    assert controller.decision_changes == 2


def test_no_decision_before_half_window():
    controller = OnlineRecoveryController(window=100)
    feed(controller, recoverable=40)  # below window//2 observations
    assert not controller.enabled


def test_activation_threshold_scales_with_overhead():
    cheap = OnlineRecoveryController(
        RecoveryConfig(overhead_fraction=0.05), window=50
    )
    pricey = OnlineRecoveryController(
        RecoveryConfig(overhead_fraction=0.50), window=50
    )
    assert cheap.activation_threshold < pricey.activation_threshold


def test_validation():
    with pytest.raises(ValueError):
        OnlineRecoveryController(window=5)
    with pytest.raises(ValueError):
        OnlineRecoveryController(activation_margin=0.0)
