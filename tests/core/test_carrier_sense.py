"""Tests for the CCA mode-2 carrier-sense policy (Section VII-C)."""

import pytest

from repro.core.carrier_sense import CarrierSenseCcaPolicy
from repro.mac.mac import Mac
from repro.phy.fading import NoFading
from repro.phy.frame import Frame
from repro.phy.medium import Medium
from repro.phy.propagation import FixedRssMatrix
from repro.phy.radio import Radio
from repro.sim.rng import RngStreams
from repro.sim.simulator import Simulator


def build(channels, losses, policy=None):
    sim = Simulator()
    rng = RngStreams(4)
    matrix = FixedRssMatrix(default_loss_db=200.0)
    positions = {name: (i, 0) for i, name in enumerate(channels)}
    for (tx, rx), loss in losses.items():
        matrix.set_loss(positions[tx], positions[rx], loss)
    medium = Medium(sim, matrix, fading=NoFading(), rng=rng)
    macs = {}
    for name, channel in channels.items():
        radio = Radio(sim, medium, name, positions[name], channel, 0.0, rng=rng)
        cca = policy if name == "probe" and policy is not None else None
        macs[name] = Mac(sim, radio, rng.stream(f"mac.{name}"), cca_policy=cca)
    return sim, macs


def test_idle_when_nothing_on_air():
    policy = CarrierSenseCcaPolicy()
    sim, macs = build({"probe": 2460.0}, {}, policy)
    assert policy.threshold_dbm() == float("inf")


def test_busy_during_strong_co_channel_signal():
    policy = CarrierSenseCcaPolicy()
    sim, macs = build(
        {"probe": 2460.0, "co": 2460.0},
        {("co", "probe"): 50.0},
        policy,
    )
    observed = {}
    macs["co"].radio.transmit(Frame("co", None, 100), lambda tx: None)
    sim.schedule(0.001, lambda: observed.update(th=policy.threshold_dbm()))
    sim.run(1.0)
    assert observed["th"] == float("-inf")
    assert policy.threshold_dbm() == float("inf")  # signal over


def test_ignores_inter_channel_signal_however_strong():
    policy = CarrierSenseCcaPolicy()
    sim, macs = build(
        {"probe": 2460.0, "neighbour": 2463.0},
        {("neighbour", "probe"): 30.0},  # blisteringly strong leakage
        policy,
    )
    observed = {}
    macs["neighbour"].radio.transmit(Frame("n", None, 100), lambda tx: None)
    sim.schedule(0.001, lambda: observed.update(th=policy.threshold_dbm()))
    sim.run(1.0)
    assert observed["th"] == float("inf")


def test_misses_co_channel_signal_below_floor():
    """The realism gap vs the oracle: undetectable co-channel signals."""
    policy = CarrierSenseCcaPolicy()
    sim, macs = build(
        {"probe": 2460.0, "weak": 2460.0},
        {("weak", "probe"): 96.0},  # -96 dBm, below the correlator floor
        policy,
    )
    observed = {}
    macs["weak"].radio.transmit(Frame("w", None, 100), lambda tx: None)
    sim.schedule(0.001, lambda: observed.update(th=policy.threshold_dbm()))
    sim.run(1.0)
    assert observed["th"] == float("inf")


def test_misses_co_channel_buried_under_interference():
    policy = CarrierSenseCcaPolicy(detection_sinr_db=-1.0)
    sim, macs = build(
        {"probe": 2460.0, "co": 2460.0, "jam": 2461.0},
        {("co", "probe"): 70.0, ("jam", "probe"): 40.0},
        policy,
    )
    observed = {}
    macs["jam"].radio.transmit(Frame("j", None, 100), lambda tx: None)
    sim.schedule(
        0.0005, lambda: macs["co"].radio.transmit(Frame("c", None, 60), lambda tx: None)
    )
    # jam leaks -42 dBm in-channel; co arrives at -70 -> SINR ~ -28 dB
    sim.schedule(0.001, lambda: observed.update(th=policy.threshold_dbm()))
    sim.run(1.0)
    assert observed["th"] == float("inf")


def test_mode3_energy_backstop():
    policy = CarrierSenseCcaPolicy(energy_threshold_dbm=-50.0)
    sim, macs = build(
        {"probe": 2460.0, "neighbour": 2463.0},
        {("neighbour", "probe"): 30.0},
        policy,
    )
    observed = {}
    macs["neighbour"].radio.transmit(Frame("n", None, 100), lambda tx: None)
    # leakage through the sensing mask: -30 - 26 = -56 < -50 -> still idle;
    # but the MAC compares sensed power against the returned threshold.
    sim.schedule(0.001, lambda: observed.update(th=policy.threshold_dbm()))
    sim.run(1.0)
    assert observed["th"] == -50.0


def test_describe():
    assert "mode2" in CarrierSenseCcaPolicy().describe()
    assert "mode3" in CarrierSenseCcaPolicy(energy_threshold_dbm=-60).describe()
