"""Unit tests for the packet-recovery model (Section VII-A)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.recovery import PacketRecovery, RecoveryConfig
from repro.phy.errors import FrameReception
from repro.phy.frame import Frame


def reception(crc_ok, errored=0, total=1000, duration=0.003):
    return FrameReception(
        frame=Frame("s", "r", 60),
        rssi_dbm=-50.0,
        crc_ok=crc_ok,
        errored_bits=errored,
        total_bits=total,
        start_time=1.0,
        end_time=1.0 + duration,
    )


def test_crc_ok_counts_clean():
    recovery = PacketRecovery()
    recovery.record(reception(True))
    assert recovery.stats.crc_ok == 1
    assert recovery.stats.recovered == 0
    assert recovery.stats.delivered_with_recovery == 1


def test_small_error_fraction_recoverable():
    recovery = PacketRecovery(RecoveryConfig(max_error_fraction=0.10))
    recovery.record(reception(False, errored=50, total=1000))  # 5%
    assert recovery.stats.recovered == 1
    assert recovery.stats.unrecoverable == 0


def test_large_error_fraction_unrecoverable():
    recovery = PacketRecovery(RecoveryConfig(max_error_fraction=0.10))
    recovery.record(reception(False, errored=500, total=1000))  # 50%
    assert recovery.stats.recovered == 0
    assert recovery.stats.unrecoverable == 1


def test_boundary_inclusive():
    recovery = PacketRecovery(RecoveryConfig(max_error_fraction=0.10))
    recovery.record(reception(False, errored=100, total=1000))  # exactly 10%
    assert recovery.stats.recovered == 1


def test_overhead_accumulates():
    recovery = PacketRecovery(
        RecoveryConfig(max_error_fraction=0.10, overhead_fraction=0.2)
    )
    recovery.record(reception(False, errored=10, total=1000, duration=0.004))
    assert recovery.stats.overhead_airtime_s == pytest.approx(0.0008)


def test_recovery_ratio():
    recovery = PacketRecovery()
    recovery.record(reception(False, errored=10, total=1000))
    recovery.record(reception(False, errored=900, total=1000))
    assert recovery.stats.recovery_ratio == pytest.approx(0.5)


def test_recovery_ratio_empty():
    assert PacketRecovery().stats.recovery_ratio == 0.0


def test_zero_bits_unrecoverable():
    recovery = PacketRecovery()
    assert not recovery.is_recoverable(reception(False, errored=0, total=0))


def test_config_validation():
    with pytest.raises(ValueError):
        RecoveryConfig(max_error_fraction=1.5)
    with pytest.raises(ValueError):
        RecoveryConfig(max_error_fraction=-0.1)
    with pytest.raises(ValueError):
        RecoveryConfig(overhead_fraction=-1.0)


@given(
    st.integers(min_value=0, max_value=1000),
    st.floats(min_value=0.0, max_value=1.0),
)
def test_recoverability_matches_threshold(errored, threshold):
    recovery = PacketRecovery(RecoveryConfig(max_error_fraction=threshold))
    rec = reception(False, errored=errored, total=1000)
    assert recovery.is_recoverable(rec) == (errored / 1000 <= threshold)
