"""Integration tests for DcnCcaPolicy wired into a live MAC/radio."""

import pytest

from repro.core.adjustor import AdjustorConfig
from repro.core.dcn import DcnCcaPolicy
from repro.mac.mac import Mac
from repro.mac.params import MacParams
from repro.phy.fading import NoFading
from repro.phy.frame import Frame
from repro.phy.medium import Medium
from repro.phy.propagation import FixedRssMatrix
from repro.phy.radio import Radio
from repro.sim.rng import RngStreams
from repro.sim.simulator import Simulator


def build_world(channels, losses, policy_nodes, config=None):
    """channels: {name: mhz}; losses: {(tx, rx): db}; policy_nodes: set of
    node names that get DCN (others fixed)."""
    sim = Simulator()
    rng = RngStreams(9)
    matrix = FixedRssMatrix(default_loss_db=200.0)
    positions = {name: (i, 0) for i, name in enumerate(channels)}
    for (tx, rx), loss in losses.items():
        matrix.set_loss(positions[tx], positions[rx], loss)
    medium = Medium(sim, matrix, fading=NoFading(), rng=rng)
    macs = {}
    policies = {}
    for name, channel in channels.items():
        radio = Radio(sim, medium, name, positions[name], channel, 0.0, rng=rng)
        if name in policy_nodes:
            policy = DcnCcaPolicy(config)
            policies[name] = policy
        else:
            from repro.mac.cca import FixedCcaThreshold

            policy = FixedCcaThreshold(-77.0)
        macs[name] = Mac(sim, radio, rng.stream(f"mac.{name}"), cca_policy=policy)
    return sim, macs, policies


def saturate(mac, destination, payload=60):
    from repro.net.traffic import SaturatedSource

    class _Shim:
        def __init__(self, mac):
            self.mac = mac
            self.name = mac.name
            self.sim = mac.sim

    source = SaturatedSource(_Shim(mac), destination, payload_bytes=payload)
    source.start()
    return source


def test_policy_attaches_once():
    policy = DcnCcaPolicy()
    sim, macs, _ = build_world({"a": 2460.0}, {}, set())
    radio = macs["a"].radio
    policy.attach(macs["a"])
    with pytest.raises(RuntimeError):
        policy.attach(macs["a"])


def test_threshold_tracks_co_channel_rssi():
    """A DCN node snooping a neighbour at -50 dBm should settle its
    threshold at that level after initialization."""
    sim, macs, policies = build_world(
        {"dcn": 2460.0, "peer_tx": 2460.0, "peer_rx": 2460.0},
        {
            ("peer_tx", "dcn"): 50.0,
            ("peer_tx", "peer_rx"): 45.0,
        },
        {"dcn"},
    )
    saturate(macs["peer_tx"], "peer_rx")
    sim.run(5.0)
    threshold = policies["dcn"].threshold_dbm()
    assert threshold == pytest.approx(-50.0, abs=0.5)


def test_threshold_stays_default_during_init():
    sim, macs, policies = build_world(
        {"dcn": 2460.0, "peer_tx": 2460.0, "peer_rx": 2460.0},
        {("peer_tx", "dcn"): 50.0, ("peer_tx", "peer_rx"): 45.0},
        {"dcn"},
        config=AdjustorConfig(t_init_s=1.0),
    )
    saturate(macs["peer_tx"], "peer_rx")
    sim.run(0.5)
    assert policies["dcn"].threshold_dbm() == -77.0
    assert policies["dcn"].adjustor.initializing


def test_init_sensing_captures_inter_channel_leakage():
    """With no co-channel traffic at all, Eq. 2 falls back to the max
    sensed in-channel power (inter-channel leakage)."""
    sim, macs, policies = build_world(
        {"dcn": 2460.0, "itx": 2463.0, "irx": 2463.0},
        {("itx", "dcn"): 48.0, ("itx", "irx"): 45.0},
        {"dcn"},
    )
    saturate(macs["itx"], "irx")
    sim.run(5.0)
    threshold = policies["dcn"].threshold_dbm()
    # leakage at 3 MHz through the sensing mask: -48 - 26 = -74 dBm
    assert threshold == pytest.approx(-74.0, abs=1.0)
    assert threshold > -77.0  # relaxed above the default


def test_dcn_enables_concurrency_blocked_by_default():
    """The headline mechanism: a sender blocked by 3 MHz leakage under the
    default threshold transmits freely under DCN."""
    losses = {
        # DCN link (strong co-channel RSS so the threshold relaxes high)
        ("dcn_tx", "dcn_rx"): 45.0,
        ("dcn_rx", "dcn_tx"): 45.0,
        # interferer network 3 MHz away, audible leakage at the DCN sender
        ("itx", "dcn_tx"): 44.0,
        ("itx", "dcn_rx"): 44.0,
        ("itx", "irx"): 45.0,
        ("dcn_tx", "irx"): 44.0,
        ("dcn_tx", "itx"): 44.0,
    }
    channels = {
        "dcn_tx": 2460.0,
        "dcn_rx": 2460.0,
        "itx": 2463.0,
        "irx": 2463.0,
    }

    def throughput(with_dcn):
        sim, macs, _ = build_world(
            channels, losses, {"dcn_tx"} if with_dcn else set()
        )
        saturate(macs["itx"], "irx")
        saturate(macs["dcn_tx"], "dcn_rx")
        sim.run(3.0)
        base = macs["dcn_rx"].stats.delivered
        sim.run(8.0)
        return (macs["dcn_rx"].stats.delivered - base) / 5.0

    blocked = throughput(with_dcn=False)
    relaxed = throughput(with_dcn=True)
    assert relaxed > blocked * 1.5
    assert relaxed > 200.0  # near the saturated single-link rate


def test_describe_mentions_parameters():
    policy = DcnCcaPolicy(AdjustorConfig(t_init_s=2.0, t_update_s=5.0))
    text = policy.describe()
    assert "2" in text and "5" in text and "DCN" in text


def test_history_available_after_attach():
    sim, macs, policies = build_world(
        {"dcn": 2460.0, "peer_tx": 2460.0, "peer_rx": 2460.0},
        {("peer_tx", "dcn"): 50.0, ("peer_tx", "peer_rx"): 45.0},
        {"dcn"},
    )
    saturate(macs["peer_tx"], "peer_rx")
    sim.run(5.0)
    history = policies["dcn"].history()
    assert history[0][1] == -77.0
    assert len(history) >= 2


def test_detach_stops_periodic_timers_and_sim_drains():
    """Without detach the Case-II timer re-arms forever; a detached DCN
    policy must let run_until_idle terminate."""
    sim, macs, policies = build_world(
        {"dcn": 2460.0, "peer_tx": 2460.0, "peer_rx": 2460.0},
        {("peer_tx", "dcn"): 50.0, ("peer_tx", "peer_rx"): 45.0},
        {"dcn"},
    )
    source = saturate(macs["peer_tx"], "peer_rx")
    sim.run(5.0)
    source.stop()
    policies["dcn"].detach()
    sim.run_until_idle(max_time=100.0)
    # The queue really drained before the safety horizon (run_until_idle
    # advances the clock to max_time on a successful drain, so the
    # meaningful signal is the empty queue, not the clock).
    assert sim.pending_events == 0
    # Threshold remains queryable after detach.
    assert policies["dcn"].threshold_dbm() == pytest.approx(-50.0, abs=0.5)


def test_detach_is_idempotent_and_safe_before_attach():
    policy = DcnCcaPolicy()
    policy.detach()  # never attached: must be a no-op
    sim, macs, _ = build_world({"a": 2460.0}, {}, set())
    policy.attach(macs["a"])
    policy.detach()
    policy.detach()
    sim.run_until_idle(max_time=50.0)
    assert sim.pending_events == 0


def test_detach_during_init_finishes_initialization():
    sim, macs, _ = build_world({"a": 2460.0}, {}, set())
    policy = DcnCcaPolicy(AdjustorConfig(t_init_s=10.0))
    policy.attach(macs["a"])
    sim.run(1.0)
    assert policy.adjustor.initializing
    policy.detach()
    assert not policy.adjustor.initializing
    sim.run_until_idle(max_time=50.0)
    assert sim.pending_events == 0


def test_drained_dcn_deployment_terminates():
    """Regression: a Deployment full of DCN policies can quiesce and then
    run_until_idle returns (PR 5 documented this as a caveat — the
    periodic timers used to re-arm unconditionally)."""
    from repro.net.deployment import Deployment
    from repro.net.topology import fixed_power, one_region_topology
    from repro.phy.spectrum import EVALUATION_BAND, ChannelPlan

    plan = ChannelPlan.inclusive(EVALUATION_BAND, 5.0)
    rng = RngStreams(3).stream("topology")
    specs = one_region_topology(plan, rng, power=fixed_power(0.0))
    deployment = Deployment(
        specs, seed=3, policy_factory=lambda label, node: DcnCcaPolicy()
    )
    deployment.start_traffic()
    deployment.sim.run(2.0)
    deployment.quiesce()
    deployment.sim.run_until_idle(max_time=1000.0)
    assert deployment.sim.pending_events == 0


def test_late_attach_anchors_at_boot_time():
    """A node booting mid-run (late joiner) must behave like a t = 0 boot
    shifted by its attach time: all internal scheduling is relative, and
    the adjustor history starts at the attach time, not at t = 0."""
    sim, macs, _ = build_world({"a": 2460.0}, {}, set())
    sim.run(2.5)
    policy = DcnCcaPolicy(AdjustorConfig(t_init_s=1.0, t_update_s=3.0))
    policy.attach(macs["a"])
    history = policy.history()
    assert history[0] == (pytest.approx(2.5), -77.0)
    assert policy.adjustor.initializing
    sim.run(3.0)  # 0.5 s after attach: still initializing
    assert policy.adjustor.initializing
    sim.run(4.0)  # 1.5 s after attach: T_I = 1 s has elapsed
    assert not policy.adjustor.initializing
