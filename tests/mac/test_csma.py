"""Tests for the unslotted CSMA/CA engine and MAC behaviour."""

import pytest

from repro.mac.cca import DisabledCca, FixedCcaThreshold
from repro.mac.mac import Mac
from repro.mac.params import MacParams
from repro.phy.fading import NoFading
from repro.phy.frame import Frame
from repro.phy.medium import Medium
from repro.phy.propagation import FixedRssMatrix
from repro.phy.radio import Radio
from repro.sim.rng import RngStreams
from repro.sim.simulator import Simulator


def make_pair(loss_db=50.0, mac_params=None, cca=None, n_extra=0):
    sim = Simulator()
    rng = RngStreams(5)
    matrix = FixedRssMatrix(default_loss_db=200.0)
    positions = {"tx": (0, 0), "rx": (1, 0)}
    for k in range(n_extra):
        positions[f"x{k}"] = (2 + k, 0)
    for a in positions:
        for b in positions:
            if a != b:
                matrix.set_loss(positions[a], positions[b], loss_db)
    medium = Medium(sim, matrix, fading=NoFading(), rng=rng)
    radios = {
        name: Radio(sim, medium, name, pos, 2460.0, 0.0, rng=rng)
        for name, pos in positions.items()
    }
    macs = {
        name: Mac(
            sim,
            radio,
            rng.stream(f"mac.{name}"),
            params=mac_params,
            cca_policy=cca() if cca else FixedCcaThreshold(-77.0),
        )
        for name, radio in radios.items()
    }
    return sim, macs


def test_single_frame_delivered():
    sim, macs = make_pair()
    macs["tx"].send(Frame("tx", "rx", 60))
    sim.run(1.0)
    assert macs["tx"].stats.sent == 1
    assert macs["rx"].stats.delivered == 1


def test_frames_not_for_us_are_snooped_not_delivered():
    sim, macs = make_pair(n_extra=1)
    macs["tx"].send(Frame("tx", "x0", 60))
    sim.run(1.0)
    assert macs["rx"].stats.delivered == 0
    assert macs["rx"].stats.snooped == 1


def test_broadcast_delivered_to_all():
    sim, macs = make_pair(n_extra=1)
    macs["tx"].send(Frame("tx", None, 60))
    sim.run(1.0)
    assert macs["rx"].stats.delivered == 1
    assert macs["x0"].stats.delivered == 1


def test_queue_limit_drops():
    sim, macs = make_pair(mac_params=MacParams(queue_limit=2))
    accepted = [macs["tx"].send(Frame("tx", "rx", 60)) for _ in range(5)]
    assert accepted.count(True) <= 3  # 2 in queue + possibly 1 in flight
    assert macs["tx"].stats.queue_drops >= 2


def test_queue_drains_in_order():
    sim, macs = make_pair()
    order = []
    macs["rx"].add_receive_listener(lambda rec: order.append(rec.frame.sequence))
    for _ in range(3):
        macs["tx"].send(Frame("tx", "rx", 20))
    sim.run(1.0)
    assert order == [1, 2, 3]


def test_busy_channel_defers_transmission():
    sim, macs = make_pair(n_extra=1)
    # x0 blasts continuously with CSMA disabled; tx should defer.
    blaster = macs["x0"]
    blaster.params = MacParams(csma_enabled=False)

    def refill():
        if blaster.queue_length < 2:
            blaster.send(Frame("x0", None, 100))

    blaster.add_idle_listener(refill)
    for _ in range(3):
        blaster.send(Frame("x0", None, 100))
    macs["tx"].send(Frame("tx", "rx", 60))
    sim.run(0.02)
    # With the channel saturated at -50 dBm, tx's CCAs all read busy.
    assert macs["tx"].stats.cca_busy == macs["tx"].stats.cca_attempts
    assert macs["tx"].stats.cca_busy >= 1


def test_access_failure_after_max_backoffs():
    sim, macs = make_pair(n_extra=1)
    blaster = macs["x0"]
    blaster.params = MacParams(csma_enabled=False)

    def refill():
        if blaster.queue_length < 2:
            blaster.send(Frame("x0", None, 100))

    blaster.add_idle_listener(refill)
    for _ in range(3):
        blaster.send(Frame("x0", None, 100))
    macs["tx"].send(Frame("tx", "rx", 60))
    sim.run(1.0)
    assert macs["tx"].stats.access_failures == 1
    assert macs["tx"].stats.sent == 0


def test_csma_disabled_sends_immediately():
    sim, macs = make_pair(mac_params=MacParams(csma_enabled=False))
    macs["tx"].send(Frame("tx", "rx", 60))
    sim.run(0.01)
    assert macs["tx"].stats.sent == 1
    assert macs["tx"].stats.cca_attempts == 0


def test_disabled_cca_policy_never_busy():
    sim, macs = make_pair(cca=DisabledCca, n_extra=1)
    blaster = macs["x0"]
    blaster.params = MacParams(csma_enabled=False)
    for _ in range(3):
        blaster.send(Frame("x0", None, 100))
    macs["tx"].send(Frame("tx", "rx", 60))
    sim.run(1.0)
    assert macs["tx"].stats.sent == 1
    assert macs["tx"].stats.cca_busy == 0


def test_idle_listener_fires_when_queue_drains():
    sim, macs = make_pair()
    drained = []
    macs["tx"].add_idle_listener(lambda: drained.append(sim.now))
    macs["tx"].send(Frame("tx", "rx", 60))
    sim.run(1.0)
    assert len(drained) == 1


def test_params_validation():
    with pytest.raises(ValueError):
        MacParams(mac_min_be=6, mac_max_be=5)
    with pytest.raises(ValueError):
        MacParams(max_csma_backoffs=-1)
    with pytest.raises(ValueError):
        MacParams(queue_limit=0)


def test_stats_snapshot_and_since():
    sim, macs = make_pair()
    macs["tx"].send(Frame("tx", "rx", 60))
    sim.run(1.0)
    snap = macs["tx"].stats.snapshot()
    macs["tx"].send(Frame("tx", "rx", 60))
    sim.run(2.0)
    delta = macs["tx"].stats.since(snap)
    assert delta.sent == 1
    assert macs["tx"].stats.sent == 2
