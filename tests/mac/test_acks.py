"""Tests for acknowledgement and retransmission support."""

import pytest

from repro.mac.cca import FixedCcaThreshold
from repro.mac.mac import Mac
from repro.mac.params import MacParams
from repro.phy.fading import NoFading
from repro.phy.frame import ACK_MPDU_BYTES, Frame, ack_airtime_s
from repro.phy.medium import Medium
from repro.phy.propagation import FixedRssMatrix
from repro.phy.radio import Radio
from repro.sim.rng import RngStreams
from repro.sim.simulator import Simulator


def make_pair(loss_db=50.0, reverse_loss_db=None, **param_overrides):
    params = MacParams(ack_enabled=True, **param_overrides)
    sim = Simulator()
    rng = RngStreams(11)
    matrix = FixedRssMatrix(default_loss_db=200.0)
    matrix.set_loss((0, 0), (1, 0), loss_db)
    matrix.set_loss(
        (1, 0), (0, 0), reverse_loss_db if reverse_loss_db is not None else loss_db
    )
    medium = Medium(sim, matrix, fading=NoFading(), rng=rng)
    macs = {}
    for name, pos in (("tx", (0, 0)), ("rx", (1, 0))):
        radio = Radio(sim, medium, name, pos, 2460.0, 0.0, rng=rng)
        macs[name] = Mac(
            sim, radio, rng.stream(f"mac.{name}"),
            params=params, cca_policy=FixedCcaThreshold(-77.0),
        )
    return sim, macs


def test_ack_frame_structure():
    ack = Frame.ack("rx", "tx", sequence=7)
    assert ack.is_ack
    assert ack.sequence == 7
    assert ack.total_bits == (6 + ACK_MPDU_BYTES) * 8
    assert ack.airtime_s == pytest.approx(ack_airtime_s())


def test_ack_validation():
    with pytest.raises(ValueError):
        Frame("a", "b", 10, is_ack=True)
    with pytest.raises(ValueError):
        Frame("a", "b", 0, is_ack=True, ack_request=True)


def test_successful_ack_round_trip():
    sim, macs = make_pair()
    macs["tx"].send(Frame("tx", "rx", 60))
    sim.run(1.0)
    assert macs["rx"].stats.delivered == 1
    assert macs["rx"].stats.acks_sent == 1
    assert macs["tx"].stats.acks_received == 1
    assert macs["tx"].stats.ack_timeouts == 0
    assert macs["tx"].stats.retransmissions == 0
    assert not macs["tx"].busy


def test_broadcast_frames_not_acked():
    sim, macs = make_pair()
    macs["tx"].send(Frame("tx", None, 60))
    sim.run(1.0)
    assert macs["rx"].stats.delivered == 1
    assert macs["rx"].stats.acks_sent == 0
    assert macs["tx"].stats.acks_received == 0


def test_lost_frame_retransmitted_until_delivered():
    # Forward link too weak to decode (below sensitivity), so the first
    # attempts never get acked... use an asymmetric scenario instead:
    # frame reaches rx, but rx's ACK cannot reach tx.
    sim, macs = make_pair(loss_db=50.0, reverse_loss_db=120.0)
    macs["tx"].send(Frame("tx", "rx", 60))
    sim.run(2.0)
    # Every attempt delivered (duplicates at the receiver) but no ACK heard.
    assert macs["tx"].stats.ack_timeouts == 4  # initial + 3 retries
    assert macs["tx"].stats.retransmissions == 3
    assert macs["tx"].stats.retry_drops == 1
    assert macs["rx"].stats.delivered == 4


def test_retry_count_bounded_by_params():
    sim, macs = make_pair(
        loss_db=50.0, reverse_loss_db=120.0, max_frame_retries=1
    )
    macs["tx"].send(Frame("tx", "rx", 60))
    sim.run(2.0)
    assert macs["tx"].stats.retransmissions == 1
    assert macs["tx"].stats.retry_drops == 1


def test_queue_continues_after_retry_drop():
    sim, macs = make_pair(loss_db=50.0, reverse_loss_db=120.0)
    macs["tx"].send(Frame("tx", "rx", 60))
    macs["tx"].send(Frame("tx", "rx", 60))
    sim.run(3.0)
    # both frames eventually dropped after retries, queue fully drained
    assert macs["tx"].stats.retry_drops == 2
    assert macs["tx"].queue_length == 0
    assert not macs["tx"].busy


def test_acked_throughput_lower_than_unacked():
    def run(ack):
        sim = Simulator()
        rng = RngStreams(3)
        matrix = FixedRssMatrix(default_loss_db=200.0)
        matrix.set_loss((0, 0), (1, 0), 50.0)
        matrix.set_loss((1, 0), (0, 0), 50.0)
        medium = Medium(sim, matrix, fading=NoFading(), rng=rng)
        params = MacParams(ack_enabled=ack)
        macs = {}
        for name, pos in (("tx", (0, 0)), ("rx", (1, 0))):
            radio = Radio(sim, medium, name, pos, 2460.0, 0.0, rng=rng)
            macs[name] = Mac(
                sim, radio, rng.stream(f"mac.{name}"),
                params=params, cca_policy=FixedCcaThreshold(-77.0),
            )
        from repro.net.traffic import SaturatedSource

        class _Shim:
            def __init__(self, mac):
                self.mac = mac
                self.name = mac.name
                self.sim = mac.sim

        SaturatedSource(_Shim(macs["tx"]), "rx").start()
        sim.run(3.0)
        return macs["rx"].stats.delivered / 3.0

    unacked = run(False)
    acked = run(True)
    assert acked < unacked  # ACK airtime + waits cost throughput
    assert acked > 0.7 * unacked  # but not catastrophically


def test_bidirectional_acked_saturation_does_not_crash():
    """Stress the ACK/CSMA radio-busy race: both nodes saturate toward
    each other with ACKs enabled; every transmit path must tolerate the
    radio being mid-ACK."""
    from repro.net.traffic import SaturatedSource

    sim = Simulator()
    rng = RngStreams(21)
    matrix = FixedRssMatrix(default_loss_db=200.0)
    matrix.set_loss((0, 0), (1, 0), 50.0)
    matrix.set_loss((1, 0), (0, 0), 50.0)
    medium = Medium(sim, matrix, fading=NoFading(), rng=rng)
    params = MacParams(ack_enabled=True)
    macs = {}
    for name, pos in (("a", (0, 0)), ("b", (1, 0))):
        radio = Radio(sim, medium, name, pos, 2460.0, 0.0, rng=rng)
        macs[name] = Mac(
            sim, radio, rng.stream(f"mac.{name}"),
            params=params, cca_policy=FixedCcaThreshold(-77.0),
        )

    class _Shim:
        def __init__(self, mac):
            self.mac = mac
            self.name = mac.name
            self.sim = mac.sim

    SaturatedSource(_Shim(macs["a"]), "b").start()
    SaturatedSource(_Shim(macs["b"]), "a").start()
    sim.run(3.0)
    total = macs["a"].stats.delivered + macs["b"].stats.delivered
    assert total > 200  # both directions make progress
    assert macs["a"].stats.acks_sent > 0
    assert macs["b"].stats.acks_sent > 0
