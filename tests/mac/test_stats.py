"""Unit tests for MAC counters (pure data)."""

import pytest
from hypothesis import given, strategies as st

from repro.mac.stats import MacStats


def test_defaults_zero():
    stats = MacStats()
    assert stats.sent == 0
    assert stats.delivered == 0
    assert stats.cca_busy_ratio == 0.0
    assert stats.prr == 0.0


def test_snapshot_is_independent_copy():
    stats = MacStats(sent=5)
    snap = stats.snapshot()
    stats.sent = 9
    assert snap.sent == 5


def test_since_differences_all_fields():
    earlier = MacStats(sent=5, delivered=3, cca_attempts=10, acks_sent=2)
    later = MacStats(sent=9, delivered=7, cca_attempts=25, acks_sent=4)
    delta = later.since(earlier)
    assert delta.sent == 4
    assert delta.delivered == 4
    assert delta.cca_attempts == 15
    assert delta.acks_sent == 2


def test_cca_busy_ratio():
    stats = MacStats(cca_attempts=10, cca_busy=4)
    assert stats.cca_busy_ratio == pytest.approx(0.4)


def test_receive_side_prr():
    stats = MacStats(delivered=90, crc_failures=10)
    assert stats.prr == pytest.approx(0.9)


@given(
    st.integers(min_value=0, max_value=10**6),
    st.integers(min_value=0, max_value=10**6),
)
def test_since_roundtrip(a, b):
    earlier = MacStats(sent=a)
    later = MacStats(sent=a + b)
    assert later.since(earlier).sent == b
