"""Property-style tests for CSMA/CA timing invariants."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.mac.cca import FixedCcaThreshold
from repro.mac.mac import Mac
from repro.mac.params import MacParams
from repro.phy.constants import (
    CCA_DURATION_S,
    TURNAROUND_TIME_S,
    UNIT_BACKOFF_PERIOD_S,
)
from repro.phy.fading import NoFading
from repro.phy.frame import Frame, frame_airtime_s
from repro.phy.medium import Medium
from repro.phy.propagation import FixedRssMatrix
from repro.phy.radio import Radio
from repro.sim.rng import RngStreams
from repro.sim.simulator import Simulator
from repro.sim.trace import Trace


def build_single(seed, params=None, trace=None):
    sim = Simulator(trace=trace)
    if trace is not None:
        trace.bind_clock(lambda: sim.now)
    rng = RngStreams(seed)
    medium = Medium(
        sim, FixedRssMatrix(default_loss_db=50.0), fading=NoFading(), rng=rng
    )
    tx = Radio(sim, medium, "tx", (0, 0), 2460.0, 0.0, rng=rng)
    rx = Radio(sim, medium, "rx", (1, 0), 2460.0, 0.0, rng=rng)
    mac = Mac(sim, tx, rng.stream("mac.tx"), params=params,
              cca_policy=FixedCcaThreshold(-77.0))
    return sim, mac, rx


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=2**31 - 1))
def test_first_transmission_time_within_csma_bounds(seed):
    """First TX must start after cca+turnaround and within the maximum
    initial backoff window."""
    trace = Trace()
    sim, mac, _ = build_single(seed, trace=trace)
    mac.send(Frame("tx", "rx", 60))
    sim.run(1.0)
    tx_start = trace.of_kind("tx_start")[0].time
    min_start = CCA_DURATION_S + TURNAROUND_TIME_S
    max_start = (
        (2**3 - 1) * UNIT_BACKOFF_PERIOD_S + CCA_DURATION_S + TURNAROUND_TIME_S
    )
    assert min_start - 1e-12 <= tx_start <= max_start + 1e-12


@settings(max_examples=10, deadline=None)
@given(st.integers(min_value=0, max_value=2**31 - 1))
def test_saturated_single_sender_throughput_bounded_by_capacity(seed):
    """Delivered rate can never exceed 1/airtime, and a clean saturated
    link must achieve at least half of it."""
    sim, mac, rx = build_single(seed)
    from repro.net.traffic import SaturatedSource

    class _Shim:
        def __init__(self, mac):
            self.mac = mac
            self.name = mac.name
            self.sim = mac.sim

    rx_mac = Mac(sim, rx, RngStreams(seed + 1).stream("mac.rx"))
    SaturatedSource(_Shim(mac), "rx").start()
    sim.run(2.0)
    rate = rx_mac.stats.delivered / 2.0
    capacity = 1.0 / frame_airtime_s(60)
    assert rate <= capacity
    assert rate >= 0.5 * capacity


def test_transmissions_of_one_mac_never_overlap():
    trace = Trace()
    sim, mac, _ = build_single(3, trace=trace)
    from repro.net.traffic import SaturatedSource

    class _Shim:
        def __init__(self, mac):
            self.mac = mac
            self.name = mac.name
            self.sim = mac.sim

    SaturatedSource(_Shim(mac), "rx").start()
    sim.run(1.0)
    starts = [r.time for r in trace.of_kind("tx_start")]
    airtime = frame_airtime_s(60)
    for first, second in zip(starts, starts[1:]):
        assert second >= first + airtime - 1e-12


def test_backoff_grows_with_busy_channel():
    """With an always-busy CCA the attempts must spread out over growing
    backoff windows before the access failure."""
    trace = Trace()
    sim, mac, _ = build_single(5, trace=trace)
    mac.cca_policy = FixedCcaThreshold(-200.0)  # noise floor > threshold
    mac.send(Frame("tx", "rx", 60))
    sim.run(2.0)
    assert mac.stats.access_failures == 1
    assert mac.stats.cca_attempts == 5  # NB = 0..4
    busy_events = trace.of_kind("cca_busy")
    assert len(busy_events) == 5
