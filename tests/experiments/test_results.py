"""Unit tests for result tables and metrics."""

import pytest

from repro.experiments.metrics import NetworkMeasurement, jain_fairness
from repro.experiments.results import ResultTable


def measurement(label="N0", sent=100, delivered=90, duration=1.0):
    return NetworkMeasurement(
        label=label,
        channel_mhz=2460.0,
        duration_s=duration,
        sent=sent,
        delivered=delivered,
        crc_failures=5,
        access_failures=2,
        cca_attempts=200,
        cca_busy=80,
    )


def test_measurement_derived_metrics():
    m = measurement()
    assert m.throughput_pps == pytest.approx(90.0)
    assert m.offered_pps == pytest.approx(100.0)
    assert m.prr == pytest.approx(0.9)
    assert m.cca_busy_ratio == pytest.approx(0.4)


def test_measurement_zero_guards():
    m = measurement(sent=0, delivered=0, duration=0.0)
    assert m.throughput_pps == 0.0
    assert m.prr == 0.0


def test_jain_fairness_equal_is_one():
    assert jain_fairness([100.0, 100.0, 100.0]) == pytest.approx(1.0)


def test_jain_fairness_single_winner():
    assert jain_fairness([100.0, 0.0, 0.0, 0.0]) == pytest.approx(0.25)


def test_jain_fairness_validation():
    with pytest.raises(ValueError):
        jain_fairness([])


def test_table_columns_follow_insertion():
    table = ResultTable("t")
    table.add_row(a=1, b=2)
    table.add_row(a=3, c=4)
    assert table.columns() == ["a", "b", "c"]
    assert table.column("b") == [2, None]


def test_table_row_lookup_and_sum():
    table = ResultTable("t")
    table.add_row(k="x", v=1.0)
    table.add_row(k="y", v=2.0)
    assert table.row_by("k", "y")["v"] == 2.0
    assert table.sum("v") == pytest.approx(3.0)
    with pytest.raises(KeyError):
        table.row_by("k", "z")


def test_table_render_text_and_csv():
    table = ResultTable("My Table")
    table.add_row(name="a", value=1.25)
    table.add_note("a note")
    text = table.to_text()
    assert "My Table" in text
    assert "a note" in text
    assert "1.2" in text
    csv = table.to_csv()
    assert csv.splitlines()[0] == "name,value"
    assert "a,1.25" in csv
