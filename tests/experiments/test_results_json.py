"""JSON round-trip tests for ResultTable (the campaign cache format)."""

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.experiments.results import ResultTable

# Cell values an exhibit can produce: JSON scalars only.
cells = st.one_of(
    st.integers(min_value=-10**9, max_value=10**9),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.text(max_size=24),
    st.booleans(),
    st.none(),
)
column_names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz_0123456789", min_size=1, max_size=12
)


@st.composite
def tables(draw):
    table = ResultTable(draw(st.text(max_size=40)))
    columns = draw(st.lists(column_names, min_size=1, max_size=5, unique=True))
    for _ in range(draw(st.integers(min_value=0, max_value=6))):
        row = {col: draw(cells) for col in columns
               if draw(st.booleans())}  # ragged rows allowed
        table.rows.append(row)
    for note in draw(st.lists(st.text(max_size=40), max_size=3)):
        table.add_note(note)
    return table


@settings(max_examples=80, deadline=None)
@given(tables())
def test_json_round_trip_preserves_everything(table):
    clone = ResultTable.from_json(table.to_json())
    # title, notes, row order and cell values all survive
    assert clone.title == table.title
    assert clone.notes == table.notes
    assert clone.rows == table.rows
    assert clone.columns() == table.columns()
    # cell *types* survive too: int stays int, float stays float, bool
    # stays bool (bool is an int subclass, so == alone would not catch it)
    for original_row, cloned_row in zip(table.rows, clone.rows):
        assert list(original_row) == list(cloned_row)  # key order
        for key in original_row:
            assert type(cloned_row[key]) is type(original_row[key])
    # rendering is identical, hence cache-served tables print identically
    assert clone.to_text() == table.to_text()
    assert clone.to_json() == table.to_json()


def test_round_trip_mixed_cell_types_explicit():
    table = ResultTable("Fig. T: mixed")
    table.add_row(n=1, ratio=0.5, label="edge", flag=True, hole=None)
    table.add_row(ratio=2.0, n=7, label="x")  # different key order + ragged
    table.add_note("note 1")
    table.add_note("note 2")
    clone = ResultTable.from_json(table.to_json(indent=2))
    assert clone.rows[0] == {"n": 1, "ratio": 0.5, "label": "edge",
                             "flag": True, "hole": None}
    assert isinstance(clone.rows[0]["n"], int)
    assert isinstance(clone.rows[0]["ratio"], float)
    assert isinstance(clone.rows[0]["flag"], bool)
    assert list(clone.rows[1]) == ["ratio", "n", "label"]
    assert clone.notes == ["note 1", "note 2"]


def test_to_dict_is_a_deep_copy():
    table = ResultTable("t")
    table.add_row(a=1)
    payload = table.to_dict()
    payload["rows"][0]["a"] = 999
    assert table.rows[0]["a"] == 1


def test_from_json_rejects_garbage():
    with pytest.raises(ValueError, match="invalid ResultTable JSON"):
        ResultTable.from_json("{not json")
    with pytest.raises(ValueError, match="title"):
        ResultTable.from_json(json.dumps({"rows": []}))
    with pytest.raises(ValueError, match="title"):
        ResultTable.from_json(json.dumps({"title": 3}))
    with pytest.raises(ValueError, match="rows"):
        ResultTable.from_json(json.dumps({"title": "t", "rows": [1, 2]}))
    with pytest.raises(ValueError, match="notes"):
        ResultTable.from_json(json.dumps({"title": "t", "notes": [1]}))


def test_from_dict_defaults_missing_sections():
    table = ResultTable.from_dict({"title": "t"})
    assert table.rows == [] and table.notes == []
