"""Tests for the experiment registry and fast-profile experiment runs."""

import pytest

from repro.experiments.registry import REGISTRY, all_ids, get


PAPER_EXHIBITS = {
    "fig01", "fig02", "fig04", "fig06", "fig07", "fig08", "fig09", "fig10",
    "fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "fig20", "fig21",
    "table1", "fig25", "fig26", "fig27", "fig28", "fig29", "fig30",
}


def test_every_paper_exhibit_registered():
    assert PAPER_EXHIBITS.issubset(set(all_ids()))


def test_ablations_registered():
    for ablation in ("ablation_margin", "ablation_tu", "ablation_ti",
                     "ablation_oracle", "ablation_mode2", "ablation_energy"):
        assert ablation in REGISTRY


def test_get_unknown_raises_with_hint():
    with pytest.raises(KeyError, match="fig04"):
        get("nonexistent")


def test_metadata_complete():
    for experiment in REGISTRY.values():
        assert experiment.paper_exhibit
        assert experiment.description
        assert callable(experiment.run)
