"""Tests for statistics helpers and the bar-chart renderer."""

import pytest

from repro.experiments.results import ResultTable
from repro.experiments.scenarios import evaluation_plan, evaluation_testbed
from repro.experiments.stats import seed_sweep, summarize


def test_summarize_single_value():
    summary = summarize([5.0])
    assert summary.mean == 5.0
    assert summary.std == 0.0
    assert summary.ci95 == 0.0
    assert summary.n == 1


def test_summarize_known_values():
    summary = summarize([1.0, 2.0, 3.0])
    assert summary.mean == pytest.approx(2.0)
    assert summary.std == pytest.approx(1.0)
    assert summary.ci95 == pytest.approx(1.96 / (3**0.5), rel=1e-6)
    assert "2.0" in str(summary)


def test_summarize_empty_rejected():
    with pytest.raises(ValueError):
        summarize([])


def test_seed_sweep_runs_each_seed():
    seen = []

    def factory(seed):
        seen.append(seed)
        return evaluation_testbed(evaluation_plan(5.0), seed=seed)

    summary = seed_sweep(factory, seeds=(1, 2), duration_s=1.0, warmup_s=0.5)
    assert seen == [1, 2]
    assert summary.n == 2
    assert summary.mean > 500  # 4 healthy channels


def test_bar_chart_renders_scaled_bars():
    table = ResultTable("demo")
    table.add_row(design="a", value=50.0)
    table.add_row(design="b", value=100.0)
    chart = table.to_bar_chart("design", "value", width=20)
    lines = chart.splitlines()
    assert "demo" in lines[0]
    bar_a = lines[1].split("|")[1].split()[0]
    bar_b = lines[2].split("|")[1].split()[0]
    assert len(bar_b) == 20
    assert len(bar_a) == 10


def test_bar_chart_without_numeric_column():
    table = ResultTable("demo")
    table.add_row(design="a", value="text")
    chart = table.to_bar_chart("design", "value")
    assert "no numeric data" in chart
