"""Tests for statistics helpers and the bar-chart renderer."""

import pytest

from repro.experiments.results import ResultTable
from repro.experiments.scenarios import evaluation_plan, evaluation_testbed
from repro.experiments.stats import seed_sweep, summarize, t_critical_95


def test_summarize_single_value():
    summary = summarize([5.0])
    assert summary.mean == 5.0
    assert summary.std == 0.0
    assert summary.ci95 == 0.0
    assert summary.n == 1


def test_summarize_known_values():
    summary = summarize([1.0, 2.0, 3.0])
    assert summary.mean == pytest.approx(2.0)
    assert summary.std == pytest.approx(1.0)
    # n = 3 -> 2 degrees of freedom -> t = 4.303, NOT the normal 1.96.
    assert summary.ci95 == pytest.approx(4.303 / (3**0.5), rel=1e-6)
    assert "2.0" in str(summary)


def test_summarize_uses_student_t_not_normal():
    """Regression: small-n CIs must widen with the t distribution.

    The pre-fix code used z = 1.96 regardless of n, understating the
    interval by ~30 % at the typical 5 seeds.
    """
    summary = summarize([10.0, 11.0, 12.0, 13.0, 14.0])  # n=5, df=4
    expected = 2.776 * summary.std / (5**0.5)
    assert summary.ci95 == pytest.approx(expected, rel=1e-9)
    # Guard against regressing to the normal approximation.
    normal = 1.96 * summary.std / (5**0.5)
    assert summary.ci95 > normal * 1.25


def test_t_critical_values():
    assert t_critical_95(1) == pytest.approx(12.706)
    assert t_critical_95(4) == pytest.approx(2.776)
    assert t_critical_95(30) == pytest.approx(2.042)
    # Interpolated region: bracketed by the neighbouring anchors.
    assert 2.021 < t_critical_95(35) < 2.042
    assert 2.000 < t_critical_95(50) < 2.021
    assert 1.980 < t_critical_95(100) < 2.000
    # Large df approaches (but never drops below) the normal limit.
    assert 1.960 < t_critical_95(5000) < 1.962
    with pytest.raises(ValueError):
        t_critical_95(0)


def test_t_critical_monotone_decreasing():
    values = [t_critical_95(df) for df in range(1, 200)]
    assert all(a >= b for a, b in zip(values, values[1:]))


def test_summarize_empty_rejected():
    with pytest.raises(ValueError):
        summarize([])


def test_seed_sweep_runs_each_seed():
    seen = []

    def factory(seed):
        seen.append(seed)
        return evaluation_testbed(evaluation_plan(5.0), seed=seed)

    summary = seed_sweep(factory, seeds=(1, 2), duration_s=1.0, warmup_s=0.5)
    assert seen == [1, 2]
    assert summary.n == 2
    assert summary.mean > 500  # 4 healthy channels


def test_bar_chart_renders_scaled_bars():
    table = ResultTable("demo")
    table.add_row(design="a", value=50.0)
    table.add_row(design="b", value=100.0)
    chart = table.to_bar_chart("design", "value", width=20)
    lines = chart.splitlines()
    assert "demo" in lines[0]
    bar_a = lines[1].split("|")[1].split()[0]
    bar_b = lines[2].split("|")[1].split()[0]
    assert len(bar_b) == 20
    assert len(bar_a) == 10


def test_bar_chart_without_numeric_column():
    table = ResultTable("demo")
    table.add_row(design="a", value="text")
    chart = table.to_bar_chart("design", "value")
    assert "no numeric data" in chart
