"""Shape tests: fast-profile experiment runs must reproduce the paper's
qualitative claims (who wins, where the knees are).

Each test runs an experiment in its fast profile and asserts the *shape*
the paper reports, with generous tolerances — absolute packet rates are
checked only against coarse sanity bands.
"""

import pytest

from repro.experiments.figures import (
    fig01,
    fig02,
    fig06,
    fig08,
    fig10,
    fig19,
    fig29,
    table1,
)


def test_fig06_relaxing_monotone_and_lossless():
    table = fig06.run(seed=1, fast=True)
    sent = table.column("sent_pps")
    received = table.column("received_pps")
    # relaxing the threshold never reduces sent throughput
    assert sent == sorted(sent)
    # no co-channel interference: everything sent is received
    for s, r in zip(sent, received):
        assert r == pytest.approx(s, rel=0.02, abs=1.0)
    # the default -77 dBm sits well below the fully-relaxed level
    default = table.row_by("threshold_dbm", -77.0)["sent_pps"]
    relaxed = table.row_by("threshold_dbm", -40.0)["sent_pps"]
    assert relaxed > 1.5 * default


def test_fig08_prr_collapses_past_min_rss():
    table = fig08.run(seed=1, fast=True)
    protective = table.row_by("threshold_dbm", -60.0)
    bullying = table.row_by("threshold_dbm", -20.0)
    assert bullying["sent_pps"] > 1.5 * protective["sent_pps"]
    assert bullying["prr"] < protective["prr"] - 0.2


def test_fig10_power_regimes():
    table = fig10.run(seed=1, fast=True)
    by_power = {row["power_dbm"]: row["prr"] for row in table.rows}
    assert by_power[-8.0] > 0.8
    assert by_power[-15.0] > 0.8
    assert by_power[-22.0] > 0.55
    assert by_power[-33.0] < 0.45
    assert by_power[-33.0] < by_power[-15.0]


def test_fig19_dcn_beats_zigbee_substantially():
    table = fig19.run(seed=1, fast=True)
    zigbee = table.rows[0]["overall_pps"]
    dcn = table.rows[1]["overall_pps"]
    assert dcn > 1.3 * zigbee  # paper: +58%; band: at least +30%
    assert table.rows[1]["channels"] == 6
    assert table.rows[0]["channels"] == 4


def test_fig01_three_mhz_beats_zigbee_default_by_40_percent():
    table = fig01.run(seed=1, fast=True)
    by_cfd = {row["cfd_mhz"]: row["throughput_pps"] for row in table.rows}
    assert by_cfd[3.0] > 1.4 * by_cfd[5.0]
    assert by_cfd[5.0] > by_cfd[9.0]
    assert by_cfd[4.0] > by_cfd[5.0]


def test_fig02_contrast():
    table = fig02.run(seed=1, fast=True)
    rows = {row["separation"]: row for row in table.rows}
    # 802.15.4: full concurrency from one channel apart
    assert rows[1]["dot15_4_normalized"] > 0.9
    # 802.11b: still depressed three channels apart
    assert rows[3]["dot11b_normalized"] < 0.8
    # both share fairly at co-channel
    assert 0.3 < rows[0]["dot15_4_normalized"] < 0.75


def test_fig29_most_failures_lightly_corrupted():
    table = fig29.run(seed=1, fast=True)
    cdf_10 = table.row_by("error_bit_fraction", 0.10)["cumulative"]
    assert cdf_10 > 0.6  # paper: 0.87
    cdf_100 = table.row_by("error_bit_fraction", 1.0)["cumulative"]
    assert cdf_100 == pytest.approx(1.0)


def test_table1_fairness_tight():
    table = table1.run(seed=1, fast=True)
    values = [row["throughput_pps"] for row in table.rows]
    assert len(values) == 6
    assert max(values) / min(values) < 1.25
