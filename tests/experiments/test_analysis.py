"""Tests for the deployment diagnostics."""

import pytest

from repro.experiments.analysis import (
    blocking_report,
    interference_margin_report,
    link_budget_report,
    threshold_report,
)
from repro.experiments.runner import run_deployment
from repro.experiments.scenarios import (
    dcn_policy_factory,
    evaluation_plan,
    evaluation_testbed,
    five_network_plan,
    standard_testbed,
)


@pytest.fixture(scope="module")
def fixed_deployment():
    return standard_testbed(five_network_plan(3.0), seed=2)


@pytest.fixture(scope="module")
def settled_dcn_deployment():
    deployment = evaluation_testbed(
        evaluation_plan(3.0), seed=2, policy_factory=dcn_policy_factory()
    )
    run_deployment(deployment, duration_s=1.0)  # warm up so DCN settles
    return deployment


def test_link_budget_covers_every_link(fixed_deployment):
    table = link_budget_report(fixed_deployment)
    assert len(table.rows) == 10  # 5 networks x 2 links
    for row in table.rows:
        assert row["snr_db"] > 20.0  # testbed links are healthy
        assert row["clean_air_per"] < 0.01


def test_blocking_report_finds_cross_channel_blockers(fixed_deployment):
    table = blocking_report(fixed_deployment)
    assert len(table.rows) == 10
    # The whole point of the VI-A rig: some senders are silenced by
    # cross-channel leakage under the fixed threshold.
    assert any(row["cross_channel_blockers"] > 0 for row in table.rows)
    assert all(row["threshold_dbm"] == -77.0 for row in table.rows)


def test_dcn_clears_blockers(settled_dcn_deployment):
    table = blocking_report(settled_dcn_deployment)
    cross = sum(row["cross_channel_blockers"] for row in table.rows)
    assert cross == 0  # the evaluation rig is fully cleared by DCN


def test_threshold_report_shows_dcn_settled(settled_dcn_deployment):
    table = threshold_report(settled_dcn_deployment)
    assert len(table.rows) == 24
    dcn_rows = [r for r in table.rows if "DCN" in r["policy"]]
    assert dcn_rows
    for row in dcn_rows:
        assert row["adjustments"] >= 1
        assert row["threshold_dbm"] > -77.0  # relaxed above the default


def test_interference_margins(fixed_deployment):
    table = interference_margin_report(fixed_deployment)
    assert len(table.rows) == 10
    margins = [r["margin_db"] for r in table.rows if r["margin_db"] is not None]
    assert margins
    # at CFD=3 MHz most links should have positive margins (tolerable
    # interference), which is the paper's core observation
    positive = sum(1 for m in margins if m > 0)
    assert positive >= len(margins) // 2
