"""Shape tests for the remaining exhibits (fast profile).

Together with ``test_shapes.py`` every registered exhibit is exercised by
the test suite end-to-end.
"""

import pytest

from repro.experiments.figures import (
    fig14,
    fig15,
    fig16,
    fig17,
    fig18,
    fig20,
    fig21,
    fig25,
    fig26,
    fig27,
    fig28,
    fig30,
)


@pytest.fixture(scope="module")
def five_net_tables():
    """Figs. 14-18 share memoised runs; produce them all at once."""
    return {
        "fig14": fig14.run(seed=3, fast=True),
        "fig15": fig15.run(seed=3, fast=True),
        "fig16": fig16.run(seed=3, fast=True),
        "fig17": fig17.run(seed=3, fast=True),
        "fig18": fig18.run(seed=3, fast=True),
    }


def test_fig14_dcn_on_n0_improves_n0(five_net_tables):
    for row in five_net_tables["fig14"].rows:
        assert row["gain_pct"] > 5.0
    cfd3 = five_net_tables["fig14"].row_by("cfd_mhz", 3.0)
    assert cfd3["n0_with_dcn_pps"] > 230.0  # near the single-channel rate


def test_fig15_neighbours_pay_little(five_net_tables):
    for row in five_net_tables["fig15"].rows:
        assert -15.0 < row["change_pct"] < 5.0


def test_fig16_fig17_all_networks_improve(five_net_tables):
    for fig in ("fig16", "fig17"):
        gains = [row["gain_pct"] for row in five_net_tables[fig].rows]
        assert all(g > -5.0 for g in gains)
        assert sum(gains) > 0.0


def test_fig17_middle_gains_more_than_edges(five_net_tables):
    rows = {row["network"]: row["gain_pct"] for row in five_net_tables["fig17"].rows}
    middle = rows["N0"]
    edges = (rows["N3"] + rows["N4"]) / 2.0
    assert middle > edges - 3.0  # middle >= edges within noise


def test_fig18_cfd3_beats_cfd2_with_dcn(five_net_tables):
    table = five_net_tables["fig18"]
    cfd2 = table.row_by("cfd_mhz", 2.0)["with_dcn_pps"]
    cfd3 = table.row_by("cfd_mhz", 3.0)["with_dcn_pps"]
    assert cfd3 > 1.05 * cfd2


def test_fig20_power_regimes():
    table = fig20.run(seed=1, fast=True)
    by_power = {row["n0_power_dbm"]: row for row in table.rows}
    assert by_power[-33.0]["n0_throughput_pps"] < 100.0
    assert by_power[-0.6]["n0_throughput_pps"] > 200.0
    assert by_power[-33.0]["n0_prr"] < by_power[-0.6]["n0_prr"]


def test_fig21_neighbours_unhurt_by_n0_power():
    table = fig21.run(seed=1, fast=True)
    values = [row["others_pps"] for row in table.rows]
    assert min(values) > 0.85 * max(values)  # flat within 15%


@pytest.mark.parametrize("module", [fig25, fig26, fig27])
def test_cases_dcn_wins_overall(module):
    table = module.run(seed=1, fast=True)
    zigbee = table.rows[0]["overall_pps"]
    with_dcn = table.rows[2]["overall_pps"]
    assert with_dcn > zigbee


def test_fig28_recovery_closes_the_gap():
    table = fig28.run(seed=1, fast=True)
    relaxed = table.row_by("threshold_dbm", -60.0)
    gap = relaxed["sent_pps"] - relaxed["received_pps"]
    closed = relaxed["recoverable_pps"] - relaxed["received_pps"]
    assert gap > 5.0  # severe interference leaves a real gap
    assert closed > 0.5 * gap  # recovery rescues most of it


def test_fig30_dcn_gains_on_wide_band():
    table = fig30.run(seed=1, fast=True)
    assert len(table.rows) == 7
    total_without = table.sum("without_pps")
    total_with = table.sum("with_dcn_pps")
    assert total_with > total_without
