"""Unit tests for the EXPERIMENTS.md report renderer (no simulation)."""

from repro.experiments.registry import REGISTRY
from repro.experiments.report import PAPER_CLAIMS, render_report
from repro.experiments.results import ResultTable


def _dummy_tables():
    tables = {}
    elapsed = {}
    for eid in REGISTRY:
        table = ResultTable(f"dummy {eid}")
        table.add_row(metric=1.0)
        table.add_note("a note")
        tables[eid] = table
        elapsed[eid] = 0.5
    return tables, elapsed


def test_every_experiment_has_a_paper_claim():
    missing = [eid for eid in REGISTRY if eid not in PAPER_CLAIMS]
    assert missing == []


def test_render_contains_every_exhibit():
    tables, elapsed = _dummy_tables()
    text = render_report(tables, elapsed, profile="paper", seed=1)
    for eid, experiment in REGISTRY.items():
        assert experiment.paper_exhibit in text
        assert f"dummy {eid}" in text
    assert "paper vs. measured" in text
    assert "profile: paper" in text


def test_render_includes_claims_and_notes():
    tables, elapsed = _dummy_tables()
    text = render_report(tables, elapsed, profile="fast", seed=7)
    assert PAPER_CLAIMS["fig19"] in text
    assert "a note" in text
    assert "seed: 7" in text


def test_render_footer_with_cache_status_and_seeds():
    tables, elapsed = _dummy_tables()
    cache_status = {eid: ("hit" if i % 2 else "miss")
                    for i, eid in enumerate(tables)}
    text = render_report(tables, elapsed, profile="fast", seed=1,
                         seeds=[1, 2, 3], cache_status=cache_status)
    assert "seeds: 1,2,3" in text
    assert "## Run summary" in text
    assert "| exhibit | wall time (s) | cache |" in text
    assert "| `fig19` | 0.50 | " in text
    assert "| **total** |" in text
    # one summary row per exhibit
    assert text.count("| 0.50 |") == len(tables)


def test_render_without_cache_status_has_no_footer():
    tables, elapsed = _dummy_tables()
    text = render_report(tables, elapsed, profile="paper", seed=1)
    assert "Run summary" not in text


def test_render_skips_missing_exhibits():
    tables, elapsed = _dummy_tables()
    del tables["fig19"]
    text = render_report(tables, elapsed, profile="paper", seed=1)
    assert "dummy fig19" not in text
    assert "dummy fig04" in text


def test_parse_seeds_forms():
    from repro.experiments.report import parse_seeds

    assert parse_seeds("1,2,3") == [1, 2, 3]
    assert parse_seeds("4") == [4]
    assert parse_seeds("1-4") == [1, 2, 3, 4]
    assert parse_seeds("7,9-11") == [7, 9, 10, 11]
    import argparse
    import pytest

    with pytest.raises(argparse.ArgumentTypeError):
        parse_seeds(",")
