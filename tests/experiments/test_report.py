"""Unit tests for the EXPERIMENTS.md report renderer (no simulation)."""

from repro.experiments.registry import REGISTRY
from repro.experiments.report import PAPER_CLAIMS, render_report
from repro.experiments.results import ResultTable


def _dummy_tables():
    tables = {}
    elapsed = {}
    for eid in REGISTRY:
        table = ResultTable(f"dummy {eid}")
        table.add_row(metric=1.0)
        table.add_note("a note")
        tables[eid] = table
        elapsed[eid] = 0.5
    return tables, elapsed


def test_every_experiment_has_a_paper_claim():
    missing = [eid for eid in REGISTRY if eid not in PAPER_CLAIMS]
    assert missing == []


def test_render_contains_every_exhibit():
    tables, elapsed = _dummy_tables()
    text = render_report(tables, elapsed, profile="paper", seed=1)
    for eid, experiment in REGISTRY.items():
        assert experiment.paper_exhibit in text
        assert f"dummy {eid}" in text
    assert "paper vs. measured" in text
    assert "profile: paper" in text


def test_render_includes_claims_and_notes():
    tables, elapsed = _dummy_tables()
    text = render_report(tables, elapsed, profile="fast", seed=7)
    assert PAPER_CLAIMS["fig19"] in text
    assert "a note" in text
    assert "seed: 7" in text
