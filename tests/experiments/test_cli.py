"""Tests for the command-line interface."""

import pytest

from repro.__main__ import main


def test_list_prints_all_experiments(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig19" in out
    assert "Table I" in out
    assert "ablation_oracle" in out


def test_run_unknown_experiment_fails(capsys):
    assert main(["run", "fig999"]) == 2
    err = capsys.readouterr().err
    assert "unknown experiment" in err


def test_run_fast_experiment(capsys):
    assert main(["run", "fig04", "--fast", "--seed", "2"]) == 0
    out = capsys.readouterr().out
    assert "CPRR" in out


def test_run_with_csv(capsys):
    assert main(["run", "fig04", "--fast", "--csv"]) == 0
    out = capsys.readouterr().out
    assert "cfd_mhz,normal_cprr" in out


def test_requires_subcommand():
    with pytest.raises(SystemExit):
        main([])
