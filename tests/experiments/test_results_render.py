"""Additional rendering tests for ResultTable (pure)."""

from repro.experiments.results import ResultTable


def test_float_format_applied():
    table = ResultTable("t")
    table.add_row(v=1.23456)
    assert "1.2346" in table.to_text("{:.4f}")
    assert "1.2" in table.to_text("{:.1f}")


def test_missing_cells_render_as_dash():
    table = ResultTable("t")
    table.add_row(a=1)
    table.add_row(b=2)
    text = table.to_text()
    assert "-" in text


def test_str_is_text_render():
    table = ResultTable("hello")
    table.add_row(x=1)
    assert str(table) == table.to_text()


def test_csv_handles_missing_cells():
    table = ResultTable("t")
    table.add_row(a=1)
    table.add_row(b=2)
    lines = table.to_csv().splitlines()
    assert lines[0] == "a,b"
    assert lines[1] == "1,"
    assert lines[2] == ",2"


def test_notes_appear_in_order():
    table = ResultTable("t")
    table.add_row(a=1)
    table.add_note("first")
    table.add_note("second")
    text = table.to_text()
    assert text.index("first") < text.index("second")


def test_bar_chart_zero_peak():
    table = ResultTable("t")
    table.add_row(k="a", v=0.0)
    chart = table.to_bar_chart("k", "v", width=10)
    assert "a" in chart  # renders without dividing by zero
