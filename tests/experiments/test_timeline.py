"""Tests for channel-activity timelines."""

import pytest

from repro.experiments.runner import run_deployment
from repro.experiments.scenarios import (
    dcn_policy_factory,
    five_network_plan,
    standard_testbed,
)
from repro.experiments.timeline import Interval, Timeline
from repro.sim.trace import Trace


def test_busy_time_merges_overlaps():
    tl = Timeline(
        [
            Interval(0.0, 1.0, 2460.0, "a"),
            Interval(0.5, 1.5, 2460.0, "b"),
            Interval(3.0, 4.0, 2460.0, "a"),
            Interval(0.0, 2.0, 2463.0, "c"),
        ]
    )
    assert tl.busy_time(2460.0) == pytest.approx(2.5)
    assert tl.busy_time(2463.0) == pytest.approx(2.0)
    assert tl.channels() == [2460.0, 2463.0]


def test_concurrency_profile_counts_channels_not_transmitters():
    tl = Timeline(
        [
            Interval(0.0, 1.0, 2460.0, "a"),
            Interval(0.0, 1.0, 2460.0, "b"),  # same channel: still k=1
            Interval(0.5, 1.5, 2463.0, "c"),
        ]
    )
    profile = tl.concurrency_profile()
    assert profile[1] == pytest.approx(1.0)  # [0,0.5) and [1.0,1.5)
    assert profile[2] == pytest.approx(0.5)  # [0.5,1.0)
    assert tl.concurrency_fraction(2) == pytest.approx(0.5 / 1.5)


def test_empty_timeline():
    tl = Timeline([])
    assert tl.concurrency_fraction() == 0.0
    assert tl.channels() == []


def test_dcn_raises_cross_channel_concurrency():
    def concurrency(policy_factory):
        trace = Trace(keep_records=True)
        deployment = standard_testbed(
            five_network_plan(3.0), seed=4, policy_factory=policy_factory,
            trace=trace,
        )
        run_deployment(deployment, duration_s=2.0)
        return Timeline.from_trace(trace).concurrency_fraction(2)

    fixed = concurrency(None)
    dcn = concurrency(dcn_policy_factory())
    assert dcn > fixed  # DCN's gain IS restored cross-channel concurrency
    assert dcn > 0.5
