"""Tests for the paper-scenario builders."""

import pytest

from repro.core.dcn import DcnCcaPolicy
from repro.experiments.scenarios import (
    case_one,
    case_three,
    case_two,
    cprr_rig,
    dcn_only_on,
    dcn_policy_factory,
    evaluation_plan,
    evaluation_testbed,
    five_network_plan,
    motivation_plan,
    section_iv_rig,
    standard_testbed,
    wideband_plan,
)
from repro.mac.cca import DisabledCca, FixedCcaThreshold


def test_plans_have_paper_channel_counts():
    assert motivation_plan(9.0).num_channels == 1
    assert motivation_plan(3.0).num_channels == 4
    assert motivation_plan(2.0).num_channels == 6
    assert five_network_plan(3.0).num_channels == 5
    assert evaluation_plan(3.0).num_channels == 6
    assert evaluation_plan(5.0).num_channels == 4
    assert wideband_plan().num_channels == 7


def test_five_network_plan_n0_is_median():
    plan = five_network_plan(3.0)
    centers = sorted(plan.centers_mhz)
    assert plan.centers_mhz[0] == centers[len(centers) // 2]
    # N3/N4 are the boundary frequencies
    assert {plan.centers_mhz[3], plan.centers_mhz[4]} == {centers[0], centers[-1]}


def test_standard_testbed_structure():
    deployment = standard_testbed(five_network_plan(3.0), seed=1)
    assert len(deployment.networks) == 5
    assert len(deployment.nodes) == 20


def test_evaluation_testbed_structure():
    deployment = evaluation_testbed(evaluation_plan(3.0), seed=1)
    assert len(deployment.networks) == 6
    assert len(deployment.nodes) == 24


def test_power_overrides_apply_to_whole_network():
    deployment = evaluation_testbed(
        evaluation_plan(3.0), seed=1, power_overrides={"N0": -15.0}
    )
    for node in deployment.network("N0").nodes:
        assert node.tx_power_dbm == -15.0
    for node in deployment.network("N1").nodes:
        assert node.tx_power_dbm == 0.0


def test_dcn_only_on_factory():
    factory = dcn_only_on(["N0"])
    assert isinstance(factory("N0", "N0.s0"), DcnCcaPolicy)
    assert isinstance(factory("N1", "N1.s0"), FixedCcaThreshold)


def test_dcn_policy_factory_gives_fresh_instances():
    factory = dcn_policy_factory()
    assert factory("N0", "a") is not factory("N0", "b")


def test_cprr_rig_disables_carrier_sense():
    deployment = cprr_rig(3.0, seed=1)
    assert len(deployment.nodes) == 4
    assert not deployment.nodes["normal.s0"].mac.params.csma_enabled
    assert isinstance(
        deployment.nodes["normal.s0"].mac.cca_policy, DisabledCca
    )
    channels = {n.channel_mhz for n in deployment.nodes.values()}
    assert channels == {2460.0, 2463.0}


def test_section_iv_rig_structure():
    deployment = section_iv_rig(
        seed=1, link_cca_policy=FixedCcaThreshold(-60.0), n_co_channel_links=3
    )
    # probe network: 1 + 3 links = 8 nodes; 4 interferer networks x 2
    assert len(deployment.nodes) == 16
    assert deployment.node("probe.s0").mac.cca_policy.threshold_dbm() == -60.0
    assert deployment.node("probe.s1").mac.cca_policy.threshold_dbm() == -77.0
    offsets = sorted(
        round(n.channel_mhz - 2465.0, 1)
        for n in deployment.nodes.values()
        if n.name.startswith("I") and n.name.endswith("s0")
    )
    assert offsets == [-6.0, -3.0, 3.0, 6.0]


@pytest.mark.parametrize("builder", [case_one, case_two, case_three])
def test_cases_use_random_powers(builder):
    deployment = builder(evaluation_plan(3.0), seed=2)
    powers = [n.tx_power_dbm for n in deployment.nodes.values()]
    assert all(-22.0 <= p <= 0.0 for p in powers)
    assert len(set(powers)) > 10  # genuinely random, not constant


# ---------------------------------------------------------------------------
# large_scene (the scale family behind perf profile --scene and the
# fanout_1k / mini_run_5k benches)
# ---------------------------------------------------------------------------
def test_large_scene_builds_and_runs():
    from repro.experiments.scenarios import large_scene, scene_plan

    plan = scene_plan()
    assert len(plan.centers_mhz) == 16  # full 2.4 GHz band at 5 MHz
    deployment = large_scene(64, seed=2)
    assert len(deployment.nodes) == 64
    assert len(deployment.networks) == 16
    # One saturated link per network by default; everyone else idle.
    assert all(len(net.spec.links) == 1 for net in deployment.networks)
    assert deployment.medium.vectorized
    deployment.start_traffic()
    deployment.sim.run(0.005)
    sent = sum(n.mac.stats.sent for n in deployment.nodes.values())
    assert sent > 0


def test_large_scene_deterministic_for_same_seed():
    from repro.experiments.scenarios import large_scene

    def outcome(seed):
        deployment = large_scene(64, seed=seed)
        deployment.start_traffic()
        deployment.sim.run(0.01)
        return sorted(
            (name, node.mac.stats.sent, node.mac.stats.delivered)
            for name, node in deployment.nodes.items()
        )

    assert outcome(5) == outcome(5)
    assert outcome(5) != outcome(6)


def test_large_scene_trace_identical_across_scheduler_sharding():
    """mini_run determinism: a fixed-seed scene renders byte-identical
    traces whether the band-sharded scheduler is on or off."""
    from repro.check.runtime import CheckSession
    from repro.experiments.scenarios import large_scene
    from repro.phy.frame import reset_frame_ids

    def traced(sharded_scheduler):
        reset_frame_ids()  # frame ids are process-global correlation tags
        with CheckSession(capture_traces=True) as session:
            deployment = large_scene(
                200, seed=3, area_m2_per_mote=400.0,
                sharded_scheduler=sharded_scheduler,
            )
            deployment.start_traffic()
            deployment.sim.run(0.01)
        assert session.traces
        return [str(r) for t in session.traces for r in t.records]

    sharded = traced(True)
    plain = traced(False)
    assert sharded  # the scene actually produced records
    assert sharded == plain
