"""Tests for the measurement runner."""

import pytest

from repro.experiments.runner import DEFAULT_WARMUP_S, run_deployment
from repro.experiments.scenarios import evaluation_plan, evaluation_testbed


@pytest.fixture(scope="module")
def result():
    deployment = evaluation_testbed(evaluation_plan(5.0), seed=4)
    return run_deployment(deployment, duration_s=2.0, warmup_s=0.5)


def test_measures_requested_window(result):
    assert result.duration_s == 2.0
    assert result.warmup_s == 0.5
    for m in result.networks:
        assert m.duration_s == 2.0


def test_warmup_excluded_from_counters():
    deployment = evaluation_testbed(evaluation_plan(5.0), seed=4)
    short = run_deployment(deployment, duration_s=1.0, warmup_s=3.0)
    # a 1 s window cannot contain 4 s worth of packets
    for m in short.networks:
        assert m.delivered < 400


def test_network_lookup(result):
    assert result.network("N0").label == "N0"
    with pytest.raises(KeyError):
        result.network("N99")
    others = result.except_network("N0")
    assert len(others) == len(result.networks) - 1
    assert all(m.label != "N0" for m in others)


def test_overall_is_sum(result):
    assert result.overall_throughput_pps == pytest.approx(
        sum(m.throughput_pps for m in result.networks)
    )


def test_fairness_in_unit_range(result):
    assert 0.0 < result.fairness <= 1.0


def test_default_warmup_covers_dcn_phases():
    # T_I (1 s) + T_U (3 s) must fit inside the default warm-up
    assert DEFAULT_WARMUP_S >= 4.0


def test_zero_duration_rejected():
    deployment = evaluation_testbed(evaluation_plan(5.0), seed=4)
    with pytest.raises(ValueError):
        run_deployment(deployment, duration_s=0.0)


def test_runs_compose_on_same_deployment():
    deployment = evaluation_testbed(evaluation_plan(5.0), seed=4)
    first = run_deployment(deployment, duration_s=1.0, warmup_s=0.5)
    second = run_deployment(deployment, duration_s=1.0, warmup_s=0.0)
    assert deployment.sim.now == pytest.approx(2.5)
    assert second.overall_throughput_pps > 0
