"""Integration tests for Deployment and traffic sources."""

import pytest

from repro.core.dcn import DcnCcaPolicy
from repro.mac.cca import FixedCcaThreshold
from repro.net.deployment import Deployment, zigbee_policy_factory
from repro.net.topology import one_region_topology, fixed_power
from repro.net.traffic import AttackerSource, PoissonSource, SaturatedSource
from repro.phy.spectrum import EVALUATION_BAND, ChannelPlan
from repro.sim.rng import RngStreams


def make_specs(seed=1, cfd=5.0):
    plan = ChannelPlan.inclusive(EVALUATION_BAND, cfd)
    rng = RngStreams(seed).stream("topology")
    return one_region_topology(plan, rng, power=fixed_power(0.0))


def test_deployment_builds_all_nodes():
    deployment = Deployment(make_specs(), seed=1)
    assert len(deployment.networks) == 4
    assert len(deployment.nodes) == 16
    for network in deployment.networks:
        assert len(network.senders()) == 2
        assert len(network.receivers()) == 2


def test_lookup_helpers():
    deployment = Deployment(make_specs(), seed=1)
    assert deployment.network("N0").label == "N0"
    with pytest.raises(KeyError):
        deployment.network("N9")
    node = deployment.node("N0.s0")
    assert node.name == "N0.s0"


def test_duplicate_node_names_rejected():
    specs = make_specs()
    with pytest.raises(ValueError):
        Deployment(list(specs) + [specs[0]], seed=1)


def test_policy_factory_applied_per_node():
    calls = []

    def factory(label, node):
        calls.append((label, node))
        return FixedCcaThreshold(-60.0) if label == "N0" else FixedCcaThreshold(-77.0)

    deployment = Deployment(make_specs(), seed=1, policy_factory=factory)
    assert len(calls) == 16
    assert deployment.node("N0.s0").mac.cca_policy.threshold_dbm() == -60.0
    assert deployment.node("N1.s0").mac.cca_policy.threshold_dbm() == -77.0


def test_saturated_traffic_flows():
    deployment = Deployment(make_specs(), seed=1)
    deployment.start_traffic()
    deployment.sim.run(1.0)
    delivered = sum(n.mac.stats.delivered for n in deployment.nodes.values())
    assert delivered > 100


def test_stop_traffic_halts_flow():
    deployment = Deployment(make_specs(), seed=1)
    deployment.start_traffic()
    deployment.sim.run(0.5)
    deployment.stop_traffic()
    deployment.sim.run(1.0)
    snapshot = sum(n.mac.stats.delivered for n in deployment.nodes.values())
    deployment.sim.run(2.0)
    after = sum(n.mac.stats.delivered for n in deployment.nodes.values())
    assert after == snapshot


def test_deterministic_given_seed():
    def run(seed):
        deployment = Deployment(make_specs(), seed=seed)
        deployment.start_traffic()
        deployment.sim.run(1.0)
        return tuple(
            n.mac.stats.delivered for n in deployment.nodes.values()
        )

    assert run(5) == run(5)
    assert run(5) != run(6)


def test_dcn_policies_independent_per_node():
    deployment = Deployment(
        make_specs(), seed=1, policy_factory=lambda l, n: DcnCcaPolicy()
    )
    a = deployment.node("N0.s0").mac.cca_policy
    b = deployment.node("N0.s1").mac.cca_policy
    assert a is not b


def test_poisson_source_rate():
    deployment = Deployment(make_specs(), seed=1, saturate_senders=False)
    node = deployment.node("N0.s0")
    rng = RngStreams(99).stream("poisson")
    source = PoissonSource(node, "N0.r0", rate_pps=50.0, rng=rng)
    source.start()
    deployment.sim.run(10.0)
    assert 300 < source.generated < 700  # ~500 expected


def test_attacker_source_interval():
    deployment = Deployment(make_specs(), seed=1, saturate_senders=False)
    node = deployment.node("N0.s0")
    source = AttackerSource(node, None, interval_s=0.01)
    source.start()
    deployment.sim.run(1.0)
    assert source.generated == pytest.approx(100, abs=2)
    source.stop()
    deployment.sim.run(2.0)
    assert source.generated <= 102


def test_source_validation():
    deployment = Deployment(make_specs(), seed=1, saturate_senders=False)
    node = deployment.node("N0.s0")
    with pytest.raises(ValueError):
        AttackerSource(node, None, interval_s=0.0)
    with pytest.raises(ValueError):
        PoissonSource(node, None, rate_pps=0.0, rng=RngStreams(1).stream("x"))
