"""Tests for channel-assignment algorithms."""

import pytest

from repro.net.assignment import (
    assignment_cost,
    interference_matrix,
    min_interference_assignment,
    orthogonal_assignment,
    reassign,
)
from repro.net.topology import clustered_region_topology, fixed_power
from repro.phy.propagation import LogDistancePathLoss
from repro.phy.spectrum import EVALUATION_BAND, ChannelPlan
from repro.sim.rng import RngStreams


@pytest.fixture()
def specs():
    plan = ChannelPlan.inclusive(EVALUATION_BAND, 3.0)
    rng = RngStreams(6).stream("topology")
    return clustered_region_topology(
        plan, rng, region_radius_m=4.0, power=fixed_power(0.0)
    )


@pytest.fixture()
def path_loss():
    return LogDistancePathLoss()


def test_interference_matrix_shape_and_symmetry_of_magnitude(specs, path_loss):
    matrix = interference_matrix(specs, path_loss)
    n = len(specs)
    assert len(matrix) == n and all(len(row) == n for row in matrix)
    for i in range(n):
        assert matrix[i][i] == 0.0
        for j in range(n):
            if i != j:
                assert matrix[i][j] > 0.0


def test_orthogonal_assignment_reuses_when_out_of_channels(specs):
    channels = orthogonal_assignment(specs, 2458.0, 2473.0, 9.0)
    assert len(channels) == 6
    assert set(channels) == {2458.0, 2467.0}  # only 2 orthogonal channels
    assert channels.count(2458.0) == 3  # round-robin reuse


def test_min_interference_uses_all_channels_before_reuse(specs, path_loss):
    plan_channels = [2458.0, 2461.0, 2464.0, 2467.0, 2470.0, 2473.0]
    channels = min_interference_assignment(specs, plan_channels, path_loss)
    assert sorted(channels) == sorted(plan_channels)  # one each


def test_min_interference_beats_naive_order(specs, path_loss):
    plan_channels = [2458.0, 2461.0, 2464.0, 2467.0, 2470.0, 2473.0]
    matrix = interference_matrix(specs, path_loss)
    smart = min_interference_assignment(specs, plan_channels, path_loss)
    naive = list(plan_channels)  # arbitrary order
    assert assignment_cost(specs, smart, matrix) <= assignment_cost(
        specs, naive, matrix
    ) * 1.0001


def test_assignment_cost_prefers_separation(specs, path_loss):
    matrix = interference_matrix(specs, path_loss)
    spread = [2458.0, 2461.0, 2464.0, 2467.0, 2470.0, 2473.0]
    piled = [2458.0] * 6
    assert assignment_cost(specs, spread, matrix) < assignment_cost(
        specs, piled, matrix
    )


def test_reassign_preserves_structure(specs):
    channels = [2458.0 + i for i in range(len(specs))]
    new_specs = reassign(specs, channels)
    for spec, new_spec, channel in zip(specs, new_specs, channels):
        assert new_spec.channel_mhz == channel
        assert new_spec.nodes == spec.nodes
        assert new_spec.links == spec.links
    with pytest.raises(ValueError):
        reassign(specs, channels[:-1])


def test_min_interference_requires_channels(specs, path_loss):
    with pytest.raises(ValueError):
        min_interference_assignment(specs, [], path_loss)
