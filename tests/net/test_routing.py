"""Unit and integration tests for repro.net.routing."""

import json

import pytest

from repro.net.routing import RoutingConfig
from repro.net.routing.messages import (
    DATA_HEADER_BYTES,
    UNREACHABLE,
    DataHeader,
    Hello,
    hello_payload_bytes,
)
from repro.net.routing.tables import (
    MembersTable,
    MemberNetworksTable,
    NeighborTable,
)
from repro.obs.recorder import Observability
from repro.obs.summary import routing_table
from repro.experiments.scenarios import convergecast_testbed


# ---------------------------------------------------------------------------
# Messages
# ---------------------------------------------------------------------------
def test_hello_payload_scales_with_sharing():
    assert hello_payload_bytes(0) == 8
    assert hello_payload_bytes(4) == 8 + 4 * 3
    assert DATA_HEADER_BYTES == 12


def test_data_header_forwarding_trace():
    header = DataHeader(
        origin="a", destination="sink", seq=7, ttl=16, created_s=1.5
    )
    hop1 = header.forwarded_by("a")
    hop2 = hop1.forwarded_by("b")
    assert hop2.ttl == 14
    assert hop2.hops == 2
    assert hop2.path == ("a", "b")
    # immutable provenance: origin/seq/timestamp survive re-framing
    assert (hop2.origin, hop2.seq, hop2.created_s) == ("a", 7, 1.5)
    assert header.path == ()


# ---------------------------------------------------------------------------
# Neighbour table
# ---------------------------------------------------------------------------
def hello(sender, hop_count=UNREACHABLE, parent=None, shared=()):
    return Hello(sender=sender, hop_count=hop_count, parent=parent,
                 shared=tuple(shared))


def test_observe_hello_direct_and_shared():
    table = NeighborTable("me", max_age_s=2.0)
    table.observe_hello(
        hello("a", hop_count=1, parent="sink", shared=[("b", 2), ("me", 0)]),
        rssi_dbm=-80.0, now=1.0,
    )
    assert "a" in table and "b" in table
    assert "me" not in table  # sharing never creates a self-entry
    assert table.get("a").hops == 1
    assert table.get("b").hops == 2
    assert table.get("b").via == "a"


def test_sharing_never_downgrades_direct_entry():
    table = NeighborTable("me", max_age_s=2.0)
    table.observe_hello(hello("b", hop_count=3), rssi_dbm=-70.0, now=1.0)
    table.observe_hello(
        hello("a", shared=[("b", 1)]), rssi_dbm=-60.0, now=1.1
    )
    entry = table.get("b")
    assert entry.hops == 1 and entry.via is None
    assert entry.rssi_dbm == -70.0


def test_aging_drops_stale_and_via_orphans():
    table = NeighborTable("me", max_age_s=1.0)
    table.observe_hello(
        hello("a", shared=[("b", 2)]), rssi_dbm=-70.0, now=0.0
    )
    table.observe_hello(hello("c"), rssi_dbm=-70.0, now=1.5)
    expired = table.age(now=2.0)
    # "a" is stale; "b" was only reachable via "a" and dies with it
    assert expired == ["a", "b"]
    assert "c" in table and len(table) == 1


def test_route_to_applies_rssi_floor():
    table = NeighborTable("me", max_age_s=5.0)
    table.observe_hello(
        hello("weak", shared=[("behind_weak", 2)]), rssi_dbm=-92.0, now=0.0
    )
    table.observe_hello(hello("strong"), rssi_dbm=-60.0, now=0.0)
    assert table.route_to("strong") == "strong"
    assert table.route_to("weak") == "weak"
    assert table.route_to("behind_weak") == "weak"
    # audible but below the floor: not a usable first hop
    assert table.route_to("weak", min_rssi_dbm=-88.0) is None
    assert table.route_to("behind_weak", min_rssi_dbm=-88.0) is None
    assert table.route_to("strong", min_rssi_dbm=-88.0) == "strong"
    assert table.route_to("unknown") is None


def test_best_parent_prefers_depth_then_rssi():
    table = NeighborTable("me", max_age_s=5.0)
    table.observe_hello(hello("deep", hop_count=3), rssi_dbm=-50.0, now=0.0)
    table.observe_hello(hello("shallow_weak", hop_count=1),
                        rssi_dbm=-80.0, now=0.0)
    table.observe_hello(hello("shallow_strong", hop_count=1),
                        rssi_dbm=-60.0, now=0.0)
    table.observe_hello(hello("unjoined"), rssi_dbm=-40.0, now=0.0)
    best = table.best_parent()
    assert best is not None and best.name == "shallow_strong"
    # the floor can disqualify the shallow candidates entirely
    table.observe_hello(hello("shallow_weak", hop_count=1),
                        rssi_dbm=-93.0, now=0.1)
    table.observe_hello(hello("shallow_strong", hop_count=1),
                        rssi_dbm=-93.0, now=0.1)
    best = table.best_parent(min_rssi_dbm=-88.0)
    assert best is not None and best.name == "deep"


def test_members_and_member_networks():
    members = MembersTable()
    members.add("child", now=1.0)
    members.add("child", now=9.0)  # re-join keeps the first timestamp
    assert "child" in members and members.children["child"] == 1.0
    members.remove("child")
    assert "child" not in members

    downward = MemberNetworksTable()
    downward.learn("leaf1", via_child="child_a")
    downward.learn("leaf2", via_child="child_b")
    assert downward.route_to("leaf1") == "child_a"
    downward.forget_child("child_a")
    assert downward.route_to("leaf1") is None
    assert downward.route_to("leaf2") == "child_b"


def test_routing_config_validation():
    with pytest.raises(ValueError):
        RoutingConfig(hello_interval_s=0.0)
    with pytest.raises(ValueError):
        RoutingConfig(hello_jitter=1.0)
    with pytest.raises(ValueError):
        RoutingConfig(ttl=0)
    with pytest.raises(ValueError):
        RoutingConfig(neighbor_max_age_s=0.4)  # must cover one interval


# ---------------------------------------------------------------------------
# End-to-end: interleaved grids, tree join, convergecast delivery
# ---------------------------------------------------------------------------
def run_grid(seed=1, obs=None, sim_s=8.0):
    deployment, fabric = convergecast_testbed("orthogonal", seed=seed,
                                              obs=obs)
    fabric.start()
    fabric.attach_convergecast(interval_s=0.5, start_delay_s=3.0)
    fabric.start_sources()
    deployment.sim.run(sim_s)
    fabric.stop()
    deployment.sim.run(deployment.sim.now + 1.0)  # bounded in-flight drain
    return deployment, fabric


def test_tree_forms_and_reports_deliver():
    _, fabric = run_grid()
    summary = fabric.summary()
    assert summary["joined_fraction"] == 1.0
    assert summary["created"] > 0
    assert summary["delivery_ratio"] > 0.8
    assert summary["hops_max"] >= 2.0  # genuinely multi-hop
    assert 0.0 < summary["delay_mean_s"] <= summary["delay_max_s"]
    for sink in fabric.sink_routers():
        assert sink.hop_count == 0
        assert len(sink.stats.delays_s) == len(sink.stats.hop_counts)


def test_summary_deterministic_for_same_seed():
    _, fabric_a = run_grid(seed=5)
    _, fabric_b = run_grid(seed=5)
    assert json.dumps(fabric_a.summary()) == json.dumps(fabric_b.summary())


def test_summary_seed_sensitive():
    _, fabric_a = run_grid(seed=5)
    _, fabric_b = run_grid(seed=6)
    assert json.dumps(fabric_a.summary()) != json.dumps(fabric_b.summary())


def test_observability_neutral_and_populated():
    obs = Observability(sample_interval_s=None)
    _, with_obs = run_grid(obs=obs)
    _, without = run_grid()
    # telemetry must not perturb the model
    assert json.dumps(with_obs.summary()) == json.dumps(without.summary())

    created = sum(
        c.value for c in obs.registry.counters("route.created")
    )
    delivered = sum(
        c.value for c in obs.registry.counters("route.delivered")
    )
    assert created == with_obs.summary()["created"]
    assert delivered == with_obs.summary()["delivered"]
    delays = [h for h in obs.registry.histograms("route.delay_s")]
    assert delays and all(h.count > 0 for h in delays)

    table = routing_table(obs)
    assert table is not None
    assert any("join" in c for c in table.columns())


def test_routing_table_absent_without_routing_metrics():
    obs = Observability(sample_interval_s=None)
    assert routing_table(obs) is None
