"""Unit tests for topology generation."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.topology import (
    clustered_region_topology,
    fixed_power,
    grid_topology,
    one_region_topology,
    random_power,
    random_topology,
    separated_clusters_topology,
    sink_name,
)
from repro.phy.spectrum import EVALUATION_BAND, ChannelPlan
from repro.sim.rng import RngStreams


def rng(seed=1):
    return RngStreams(seed).stream("topology")


def plan(cfd=3.0):
    return ChannelPlan.inclusive(EVALUATION_BAND, cfd)


GENERATORS = [
    one_region_topology,
    clustered_region_topology,
    separated_clusters_topology,
    random_topology,
]


@pytest.mark.parametrize("generator", GENERATORS)
def test_structure_of_generated_networks(generator):
    specs = generator(plan(), rng())
    assert len(specs) == 6
    labels = [s.label for s in specs]
    assert labels == [f"N{i}" for i in range(6)]
    for spec in specs:
        assert len(spec.links) == 2
        assert len(spec.nodes) == 4  # the paper's 4 MicaZ nodes per network
        names = {n.name for n in spec.nodes}
        for link in spec.links:
            assert link.sender in names
            assert link.receiver in names
            assert link.sender != link.receiver


@pytest.mark.parametrize("generator", GENERATORS)
def test_node_names_globally_unique(generator):
    specs = generator(plan(), rng())
    names = [n.name for s in specs for n in s.nodes]
    assert len(names) == len(set(names))


def test_reproducible_for_same_seed():
    a = one_region_topology(plan(), rng(7))
    b = one_region_topology(plan(), rng(7))
    assert a == b


def test_different_seeds_differ():
    a = one_region_topology(plan(), rng(7))
    b = one_region_topology(plan(), rng(8))
    assert a != b


def test_link_distance_respected():
    specs = one_region_topology(plan(), rng(), link_distance_m=2.5)
    for spec in specs:
        positions = {n.name: n.position for n in spec.nodes}
        for link in spec.links:
            d = math.dist(positions[link.sender], positions[link.receiver])
            assert d == pytest.approx(2.5)


def test_one_region_bounded():
    specs = one_region_topology(
        plan(), rng(), region_radius_m=2.0, link_distance_m=1.0
    )
    for spec in specs:
        for node in spec.nodes:
            # sender within the region square; receiver at most 1 m beyond
            assert math.hypot(*node.position) <= math.hypot(2.0, 2.0) + 1.0 + 1e-9


def test_separated_clusters_are_separated():
    specs = separated_clusters_topology(
        plan(), rng(), cluster_spacing_m=10.0, cluster_radius_m=0.5,
        link_distance_m=0.5,
    )
    centroids = []
    for spec in specs:
        xs = [n.position[0] for n in spec.nodes]
        ys = [n.position[1] for n in spec.nodes]
        centroids.append((sum(xs) / len(xs), sum(ys) / len(ys)))
    for i in range(len(centroids)):
        for j in range(i + 1, len(centroids)):
            assert math.dist(centroids[i], centroids[j]) > 3.0


def test_random_topology_nearest_pairing_shortens_links():
    near = random_topology(plan(), rng(3), region_size_m=6.0, pair_nearest=True)
    far = random_topology(plan(), rng(3), region_size_m=6.0, pair_nearest=False)

    def mean_link(specs):
        total, count = 0.0, 0
        for spec in specs:
            positions = {n.name: n.position for n in spec.nodes}
            for link in spec.links:
                total += math.dist(positions[link.sender], positions[link.receiver])
                count += 1
        return total / count

    assert mean_link(near) < mean_link(far)


def test_fixed_power_assignment():
    specs = one_region_topology(plan(), rng(), power=fixed_power(-7.0))
    for spec in specs:
        for node in spec.nodes:
            assert node.tx_power_dbm == -7.0


def test_random_power_within_range():
    specs = one_region_topology(plan(), rng(), power=random_power(-22.0, 0.0))
    powers = [n.tx_power_dbm for s in specs for n in s.nodes]
    assert all(-22.0 <= p <= 0.0 for p in powers)
    assert len(set(powers)) > 1


def test_random_power_validation():
    with pytest.raises(ValueError):
        random_power(0.0, -22.0)


def test_network_spec_senders_receivers():
    specs = one_region_topology(plan(), rng())
    spec = specs[0]
    assert len(spec.senders) == 2
    assert len(spec.receivers) == 2
    assert set(spec.senders).isdisjoint(set(spec.receivers))


@settings(max_examples=20)
@given(st.integers(min_value=1, max_value=4))
def test_links_per_network_honoured(links):
    specs = one_region_topology(plan(), rng(), links_per_network=links)
    for spec in specs:
        assert len(spec.links) == links
        assert len(spec.nodes) == 2 * links


# ---------------------------------------------------------------------------
# grid_topology (the multi-hop routing scene)
# ---------------------------------------------------------------------------
def test_grid_structure():
    spec = grid_topology(3, 4, 30.0, 2460.0, label="G")
    assert spec.label == "G"
    assert spec.channel_mhz == 2460.0
    assert len(spec.nodes) == 12
    assert spec.links == ()  # grids route hop-by-hop, no fixed links
    names = [n.name for n in spec.nodes]
    assert len(names) == len(set(names))
    assert sink_name("G") in names
    assert "G.g2_3" in names  # far corner of a 3x4 grid


def test_grid_positions_without_jitter():
    spec = grid_topology(2, 3, 10.0, 2460.0, origin=(5.0, -2.0))
    positions = {n.name: n.position for n in spec.nodes}
    assert positions[sink_name("N0")] == (5.0, -2.0)
    assert positions["N0.g0_2"] == (25.0, -2.0)
    assert positions["N0.g1_0"] == (5.0, 8.0)
    assert positions["N0.g1_2"] == (25.0, 8.0)


def test_grid_sink_never_jittered():
    spec = grid_topology(3, 3, 30.0, 2460.0, jitter_m=5.0, rng=rng(11))
    positions = {n.name: n.position for n in spec.nodes}
    assert positions[sink_name("N0")] == (0.0, 0.0)


def test_grid_deterministic_for_same_seed():
    a = grid_topology(4, 4, 30.0, 2460.0, jitter_m=3.0, rng=rng(7))
    b = grid_topology(4, 4, 30.0, 2460.0, jitter_m=3.0, rng=rng(7))
    assert a == b


def test_grid_different_seeds_differ():
    a = grid_topology(4, 4, 30.0, 2460.0, jitter_m=3.0, rng=rng(7))
    b = grid_topology(4, 4, 30.0, 2460.0, jitter_m=3.0, rng=rng(8))
    assert a != b


def test_grid_nodes_stay_in_region():
    pitch, jitter = 30.0, 4.0
    spec = grid_topology(5, 5, pitch, 2460.0, jitter_m=jitter, rng=rng(3))
    span = 4 * pitch
    for node in spec.nodes:
        for axis in (0, 1):
            assert -jitter - 1e-9 <= node.position[axis] <= span + jitter + 1e-9


def test_grid_validation():
    with pytest.raises(ValueError):
        grid_topology(0, 3, 30.0, 2460.0)
    with pytest.raises(ValueError):
        grid_topology(3, 3, 0.0, 2460.0)
    with pytest.raises(ValueError):
        grid_topology(3, 3, 30.0, 2460.0, jitter_m=-1.0)
    with pytest.raises(ValueError):
        # jitter without an rng would be irreproducible — rejected
        grid_topology(3, 3, 30.0, 2460.0, jitter_m=1.0)


@settings(max_examples=40, deadline=None)
@given(
    rows=st.integers(min_value=1, max_value=5),
    cols=st.integers(min_value=1, max_value=5),
    pitch=st.floats(min_value=5.0, max_value=60.0),
    jitter_frac=st.floats(min_value=0.0, max_value=0.3),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_grid_pitch_bounds_min_pairwise_distance(
    rows, cols, pitch, jitter_frac, seed
):
    """Pitch minus worst-case jitter lower-bounds the closest node pair.

    Two jittered nodes can each move up to ``sqrt(2) * jitter_m`` toward
    each other, so ``pitch_m - 2 * sqrt(2) * jitter_m`` bounds the minimum
    pairwise distance.  ``jitter_frac <= 0.3`` keeps the bound positive
    (2 * sqrt(2) * 0.3 < 0.849 < 1).
    """
    jitter = jitter_frac * pitch
    spec = grid_topology(
        rows, cols, pitch, 2460.0,
        jitter_m=jitter, rng=rng(seed) if jitter > 0 else None,
    )
    points = [n.position for n in spec.nodes]
    bound = pitch - 2.0 * math.sqrt(2.0) * jitter
    for i in range(len(points)):
        for j in range(i + 1, len(points)):
            assert math.dist(points[i], points[j]) >= bound - 1e-9


# ---------------------------------------------------------------------------
# scale_topology (the synthetic dense scene for benches/profiling)
# ---------------------------------------------------------------------------
def test_scale_topology_mote_count_and_active_links():
    from repro.net.topology import scale_topology

    plan = ChannelPlan.inclusive(EVALUATION_BAND, 3.0)  # 6 channels
    specs = scale_topology(plan, rng(1), 120, active_links_per_network=2)
    assert len(specs) == len(plan.centers_mhz)
    total = sum(len(s.nodes) for s in specs)
    assert total == 120  # 120 // (2*6) = 10 pairs per network, exact
    for spec in specs:
        assert len(spec.links) == 2  # the rest are idle listeners
        assert len(spec.nodes) == 20


def test_scale_topology_density_grows_area():
    from repro.net.topology import scale_topology

    plan = ChannelPlan.inclusive(EVALUATION_BAND, 3.0)

    def side(n):
        specs = scale_topology(plan, rng(1), n)
        xs = [node.position[0] for s in specs for node in s.nodes]
        ys = [node.position[1] for s in specs for node in s.nodes]
        return max(max(xs) - min(xs), max(ys) - min(ys))

    assert side(1200) > 2.5 * side(120)  # ~sqrt(10) ≈ 3.16x


def test_scale_topology_rejects_too_few_motes():
    from repro.net.topology import scale_topology

    plan = ChannelPlan.inclusive(EVALUATION_BAND, 3.0)
    with pytest.raises(ValueError):
        scale_topology(plan, rng(1), 5)
