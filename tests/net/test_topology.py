"""Unit tests for topology generation."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.net.topology import (
    clustered_region_topology,
    fixed_power,
    one_region_topology,
    random_power,
    random_topology,
    separated_clusters_topology,
)
from repro.phy.spectrum import EVALUATION_BAND, ChannelPlan
from repro.sim.rng import RngStreams


def rng(seed=1):
    return RngStreams(seed).stream("topology")


def plan(cfd=3.0):
    return ChannelPlan.inclusive(EVALUATION_BAND, cfd)


GENERATORS = [
    one_region_topology,
    clustered_region_topology,
    separated_clusters_topology,
    random_topology,
]


@pytest.mark.parametrize("generator", GENERATORS)
def test_structure_of_generated_networks(generator):
    specs = generator(plan(), rng())
    assert len(specs) == 6
    labels = [s.label for s in specs]
    assert labels == [f"N{i}" for i in range(6)]
    for spec in specs:
        assert len(spec.links) == 2
        assert len(spec.nodes) == 4  # the paper's 4 MicaZ nodes per network
        names = {n.name for n in spec.nodes}
        for link in spec.links:
            assert link.sender in names
            assert link.receiver in names
            assert link.sender != link.receiver


@pytest.mark.parametrize("generator", GENERATORS)
def test_node_names_globally_unique(generator):
    specs = generator(plan(), rng())
    names = [n.name for s in specs for n in s.nodes]
    assert len(names) == len(set(names))


def test_reproducible_for_same_seed():
    a = one_region_topology(plan(), rng(7))
    b = one_region_topology(plan(), rng(7))
    assert a == b


def test_different_seeds_differ():
    a = one_region_topology(plan(), rng(7))
    b = one_region_topology(plan(), rng(8))
    assert a != b


def test_link_distance_respected():
    specs = one_region_topology(plan(), rng(), link_distance_m=2.5)
    for spec in specs:
        positions = {n.name: n.position for n in spec.nodes}
        for link in spec.links:
            d = math.dist(positions[link.sender], positions[link.receiver])
            assert d == pytest.approx(2.5)


def test_one_region_bounded():
    specs = one_region_topology(
        plan(), rng(), region_radius_m=2.0, link_distance_m=1.0
    )
    for spec in specs:
        for node in spec.nodes:
            # sender within the region square; receiver at most 1 m beyond
            assert math.hypot(*node.position) <= math.hypot(2.0, 2.0) + 1.0 + 1e-9


def test_separated_clusters_are_separated():
    specs = separated_clusters_topology(
        plan(), rng(), cluster_spacing_m=10.0, cluster_radius_m=0.5,
        link_distance_m=0.5,
    )
    centroids = []
    for spec in specs:
        xs = [n.position[0] for n in spec.nodes]
        ys = [n.position[1] for n in spec.nodes]
        centroids.append((sum(xs) / len(xs), sum(ys) / len(ys)))
    for i in range(len(centroids)):
        for j in range(i + 1, len(centroids)):
            assert math.dist(centroids[i], centroids[j]) > 3.0


def test_random_topology_nearest_pairing_shortens_links():
    near = random_topology(plan(), rng(3), region_size_m=6.0, pair_nearest=True)
    far = random_topology(plan(), rng(3), region_size_m=6.0, pair_nearest=False)

    def mean_link(specs):
        total, count = 0.0, 0
        for spec in specs:
            positions = {n.name: n.position for n in spec.nodes}
            for link in spec.links:
                total += math.dist(positions[link.sender], positions[link.receiver])
                count += 1
        return total / count

    assert mean_link(near) < mean_link(far)


def test_fixed_power_assignment():
    specs = one_region_topology(plan(), rng(), power=fixed_power(-7.0))
    for spec in specs:
        for node in spec.nodes:
            assert node.tx_power_dbm == -7.0


def test_random_power_within_range():
    specs = one_region_topology(plan(), rng(), power=random_power(-22.0, 0.0))
    powers = [n.tx_power_dbm for s in specs for n in s.nodes]
    assert all(-22.0 <= p <= 0.0 for p in powers)
    assert len(set(powers)) > 1


def test_random_power_validation():
    with pytest.raises(ValueError):
        random_power(0.0, -22.0)


def test_network_spec_senders_receivers():
    specs = one_region_topology(plan(), rng())
    spec = specs[0]
    assert len(spec.senders) == 2
    assert len(spec.receivers) == 2
    assert set(spec.senders).isdisjoint(set(spec.receivers))


@settings(max_examples=20)
@given(st.integers(min_value=1, max_value=4))
def test_links_per_network_honoured(links):
    specs = one_region_topology(plan(), rng(), links_per_network=links)
    for spec in specs:
        assert len(spec.links) == links
        assert len(spec.nodes) == 2 * links
