"""Tests for campaign counters and the live progress printer."""

import io
import time

from repro.campaign.progress import CampaignStats, ProgressPrinter


class FakeTty(io.StringIO):
    def isatty(self):
        return True


def test_stats_record_and_counters():
    stats = CampaignStats(total=3)
    stats.record(("a", 1), 1.5, ok=True, from_cache=False, retries=1)
    stats.record(("a", 2), 0.0, ok=True, from_cache=True)
    stats.record(("b", 1), 2.0, ok=False, from_cache=False)
    assert stats.completed == 2 and stats.failed == 1 and stats.done == 3
    assert stats.cache_hits == 1 and stats.cache_misses == 2
    assert stats.retries == 1
    assert stats.job_elapsed_s[("a", 1)] == 1.5
    assert stats.elapsed_s() >= 0.0


def test_elapsed_survives_wall_clock_step_backwards(monkeypatch):
    """Regression: a long-running server must not report negative elapsed.

    ``elapsed_s`` used to be ``time.time() - started_at``; an NTP step
    (wall clock jumping backwards mid-campaign) produced negative or
    absurd durations.  It now runs on the monotonic clock, which by
    definition cannot step.
    """
    stats = CampaignStats(total=1)
    # Simulate the wall clock stepping 1 hour into the past after the
    # campaign started: monotonic-based elapsed must not care.
    monkeypatch.setattr(time, "time", lambda: stats.started_at - 3600.0)
    elapsed = stats.elapsed_s()
    assert elapsed >= 0.0
    assert elapsed < 60.0  # and not "an hour ago" in either direction
    # The wall-clock submission stamp itself is untouched (cache payloads
    # and logs still carry real points in time).
    assert stats.started_at > 1_000_000_000.0


def test_elapsed_tracks_monotonic_clock(monkeypatch):
    stats = CampaignStats(total=1)
    base = stats.started_monotonic
    monkeypatch.setattr(time, "monotonic", lambda: base + 12.5)
    assert abs(stats.elapsed_s() - 12.5) < 1e-9
    assert "12.5s" in stats.summary_line()


def test_summary_line_mentions_everything():
    stats = CampaignStats(total=2)
    stats.record(("a", 1), 1.0, ok=True, from_cache=True, retries=2)
    stats.record(("b", 1), 1.0, ok=False, from_cache=False)
    line = stats.summary_line()
    assert "1/2 ok" in line
    assert "1 failed" in line
    assert "cache 1 hit / 1 miss" in line
    assert "2 retries" in line


def test_printer_non_tty_writes_one_line_per_job():
    stream = io.StringIO()
    printer = ProgressPrinter(stream)
    stats = CampaignStats(total=2)
    stats.record(("a", 1), 1.0, ok=True, from_cache=False)
    printer.update(stats, "a@seed=1", ok=True, from_cache=False, elapsed_s=1.0)
    stats.record(("b", 1), 0.0, ok=False, from_cache=False)
    printer.update(stats, "b@seed=1", ok=False, from_cache=False, elapsed_s=0.0)
    printer.finish(stats)
    lines = stream.getvalue().splitlines()
    assert lines[0].startswith("[1/2] ok  a@seed=1")
    assert "FAIL b@seed=1" in lines[1]
    assert lines[-1].startswith("campaign: ")
    assert "\r" not in stream.getvalue()


def test_printer_tty_rewrites_in_place():
    stream = FakeTty()
    printer = ProgressPrinter(stream)
    stats = CampaignStats(total=1)
    stats.record(("a", 1), 0.5, ok=True, from_cache=True)
    printer.update(stats, "a@seed=1", ok=True, from_cache=True, elapsed_s=0.5)
    printer.finish(stats)
    text = stream.getvalue()
    assert "\r" in text and "(cache)" in text


def test_printer_disabled_suppresses_updates_but_not_summary():
    stream = io.StringIO()
    printer = ProgressPrinter(stream, enabled=False)
    stats = CampaignStats(total=1)
    printer.update(stats, "x", ok=True, from_cache=False, elapsed_s=0.0)
    assert stream.getvalue() == ""  # per-job updates stay silent
    printer.finish(stats)
    # ...but the final summary is always emitted (CI auditability)
    lines = stream.getvalue().splitlines()
    assert len(lines) == 1 and lines[0].startswith("campaign: ")
