"""End-to-end tests for the campaign server (HTTP round trips).

Most tests run the server in-process on an ephemeral port with
``jobs=0`` (thread workers — which also exercises the executor's
non-main-thread timeout fallback) and an injected synthetic runner, so
they are fast and registry-independent.  The slow crash-resume test at
the bottom drives the real ``python -m repro serve`` CLI as a subprocess
with the real registry, SIGKILLs it mid-campaign and proves the journal
recovery produces byte-identical results.
"""

import os
import random
import subprocess
import sys
import threading
import time
import urllib.request
from contextlib import contextmanager

import pytest

from repro.campaign import JobSpec, run_campaign
from repro.campaign.client import CampaignClient, ServerError
from repro.campaign.server import CampaignServer, ServerConfig
from repro.experiments.results import ResultTable

KNOWN_IDS = ["alpha", "beta"]

_calls_lock = threading.Lock()
_calls = []


def fake_runner(spec):
    """Deterministic synthetic exhibit; records invocations (thread mode
    shares the process, so the list is visible to the test)."""
    with _calls_lock:
        _calls.append(spec.key)
    rng = random.Random(f"{spec.exhibit_id}:{spec.seed}")
    table = ResultTable(f"synthetic {spec.exhibit_id}")
    for x in range(3):
        table.add_row(x=x, y=round(rng.random(), 6))
    table.add_note(f"seed={spec.seed}")
    return table


def slow_runner(spec):
    time.sleep(0.3)
    return fake_runner(spec)


@contextmanager
def running_server(tmp_path, runner=fake_runner, **overrides):
    config = ServerConfig(
        port=0,
        state_dir=str(tmp_path / "state"),
        cache_dir=str(tmp_path / "cache"),
        jobs=0,  # thread workers: fast, in-process, registry-free
        backoff_s=0.01,
        **overrides,
    )
    server = CampaignServer(config, runner=runner, known_ids=KNOWN_IDS)
    thread = threading.Thread(target=server.run, daemon=True)
    thread.start()
    assert server.ready.wait(15), "server never became ready"
    client = CampaignClient(f"http://127.0.0.1:{server.port}",
                            timeout_s=30.0)
    try:
        yield server, client
    finally:
        server.request_shutdown()
        thread.join(15)
        assert not thread.is_alive(), "server failed to drain"


def test_round_trip_byte_identical_to_one_shot(tmp_path):
    with running_server(tmp_path) as (_server, client):
        doc = client.submit(ids=["alpha"], seeds=[1, 2])
        final = client.wait(doc["id"], timeout_s=30)
        assert final["state"] == "done"
        assert final["completed"] == 2 and final["failed"] == 0
        tables = final["result"]["tables"]
    oneshot = run_campaign(
        [JobSpec.make("alpha", seed=1), JobSpec.make("alpha", seed=2)],
        jobs=1, cache=False, runner=fake_runner,
    )
    for seed in (1, 2):
        assert (tables[f"alpha@s{seed}"]
                == oneshot.outcome("alpha", seed).table.to_json())
    # aggregated table matches the one-shot aggregation byte for byte
    agg = final["result"]["aggregated"]["alpha"]
    assert agg == oneshot.aggregated()["alpha"].to_json()


def test_warm_resubmit_is_served_from_cache(tmp_path):
    with running_server(tmp_path) as (_server, client):
        first = client.wait(
            client.submit(ids=["alpha"], seeds=[1, 2])["id"], timeout_s=30
        )
        assert first["cache_hits"] == 0
        before = client.cache_stats()
        second = client.wait(
            client.submit(ids=["alpha"], seeds=[1, 2])["id"], timeout_s=30
        )
        after = client.cache_stats()
        assert second["cache_hits"] == 2 and second["cache_misses"] == 0
        assert after["hits"] >= before["hits"] + 2
        # counters also flow through the obs metrics registry
        assert (after["metrics"]["counters"]["campaign.cache.hits"]
                >= 2)
        # ...and the payload bytes are identical across the two runs
        assert first["result"]["tables"] == second["result"]["tables"]


def test_events_stream_replays_and_follows(tmp_path):
    with running_server(tmp_path) as (_server, client):
        cid = client.submit(ids=["alpha", "beta"], seeds=[1])["id"]
        events = list(client.stream_events(cid))
    kinds = [e["event"] for e in events]
    assert kinds[0] == "submitted"
    assert kinds[1] == "started"
    assert kinds.count("job") == 2
    assert kinds[-1] == "done"
    assert [e["seq"] for e in events] == list(range(len(events)))
    job_events = [e for e in events if e["event"] == "job"]
    assert {(e["exhibit_id"], e["seed"]) for e in job_events} == {
        ("alpha", 1), ("beta", 1)
    }
    done = events[-1]
    assert done["ok"] is True and done["completed"] == 2


def test_concurrent_identical_submissions_coalesce(tmp_path):
    """Two clients submitting the same campaign concurrently must get
    byte-identical results, and each unique job computes only once."""
    with _calls_lock:
        _calls.clear()
    with running_server(tmp_path, runner=slow_runner) as (server, client):
        ids_a = client.submit(ids=["alpha"], seeds=[1, 2, 3])["id"]
        ids_b = client.submit(ids=["alpha"], seeds=[1, 2, 3])["id"]
        assert ids_a != ids_b
        final_a = client.wait(ids_a, timeout_s=30)
        final_b = client.wait(ids_b, timeout_s=30)
        assert final_a["result"]["tables"] == final_b["result"]["tables"]
        assert final_a["result"]["aggregated"] == final_b["result"]["aggregated"]
    with _calls_lock:
        # single-flight: 3 unique jobs -> exactly 3 executions, not 6
        assert sorted(_calls) == [("alpha", 1), ("alpha", 2), ("alpha", 3)]


def test_submit_validation_errors(tmp_path):
    with running_server(tmp_path) as (_server, client):
        with pytest.raises(ServerError) as err:
            client.submit(ids=["missing-exhibit"], seeds=[1])
        assert err.value.status == 400
        with pytest.raises(ServerError) as err:
            client.submit(ids=["alpha"], seeds=[])
        assert err.value.status == 400
        with pytest.raises(ServerError) as err:
            client.campaign("nope")
        assert err.value.status == 404


def test_server_info_and_campaign_listing(tmp_path):
    with running_server(tmp_path) as (_server, client):
        info = client.info()
        assert info["server"] == "repro-campaign"
        assert info["campaigns"] == 0
        cid = client.submit(ids=["beta"], seeds=[1])["id"]
        client.wait(cid, timeout_s=30)
        listed = client.campaigns()
        assert [c["id"] for c in listed] == [cid]
        assert listed[0]["state"] == "done"
        assert client.info()["queue"]["outstanding"] == 0  # journalled done


def test_graceful_drain_finishes_outstanding_work(tmp_path):
    with running_server(tmp_path, runner=slow_runner) as (server, client):
        cid = client.submit(ids=["alpha", "beta"], seeds=[1, 2])["id"]
        drain = client.shutdown()
        assert drain["state"] == "draining"
        # submissions are refused while draining
        with pytest.raises(ServerError) as err:
            client.submit(ids=["alpha"], seeds=[9])
        assert err.value.status == 503
        # ...but the in-flight campaign still completes before exit
        record = server._campaigns[cid]
        deadline = time.monotonic() + 30
        while record.state != "done":
            assert time.monotonic() < deadline
            time.sleep(0.05)
        assert record.stats.completed == 4


def test_in_process_restart_resumes_from_journal(tmp_path):
    """Journal recovery without the subprocess machinery: admit, finish
    one job's worth of cache, drop the server object, start a fresh one
    on the same state dir — the campaign is re-admitted and completes."""
    with running_server(tmp_path) as (_server, client):
        cid = client.submit(ids=["alpha"], seeds=[1, 2])["id"]
        client.wait(cid, timeout_s=30)
        # a second campaign that we journal but never let finish:
        # simulate by writing the submit record directly
        _server.queue.record_submit(
            "c9999-feedface", {"ids": ["beta"], "seeds": [5], "fast": True}
        )
    with running_server(tmp_path) as (server, client):
        deadline = time.monotonic() + 30
        while True:
            recovered = [c for c in client.campaigns()
                         if c["id"] == "c9999-feedface"]
            if recovered and recovered[0]["state"] == "done":
                break
            assert time.monotonic() < deadline
            time.sleep(0.05)
        assert recovered[0]["resumed"] is True
        assert client.info()["queue"]["outstanding"] == 0
        # fresh ids keep counting past recovered ones
        fresh = client.submit(ids=["alpha"], seeds=[3])["id"]
        assert int(fresh.split("-")[0][1:]) > 9999


# ----------------------------------------------------------------------
# The real thing: CLI subprocess, real registry, SIGKILL mid-campaign.


@pytest.mark.slow
def test_crash_resume_byte_identical(tmp_path):
    port = 18700 + (os.getpid() % 200)
    base = f"http://127.0.0.1:{port}"
    env = dict(os.environ)
    src = str((
        __import__("pathlib").Path(__file__).resolve().parents[2] / "src"
    ))
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")

    def start():
        return subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", str(port),
             "--jobs", "2", "--state-dir", str(tmp_path / "state"),
             "--cache-dir", str(tmp_path / "cache")],
            env=env, stderr=subprocess.PIPE,
        )

    def wait_ready(proc, timeout=60):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            try:
                urllib.request.urlopen(base + "/healthz", timeout=1).read()
                return
            except Exception:
                if proc.poll() is not None:
                    pytest.fail(
                        f"server died: {proc.stderr.read().decode()}"
                    )
                time.sleep(0.2)
        pytest.fail("server never became ready")

    client = CampaignClient(base, timeout_s=30.0)
    seeds = [1, 2, 3, 4]
    proc = start()
    try:
        wait_ready(proc)
        cid = client.submit(ids=["fig04"], seeds=seeds, fast=True)["id"]
        # let at least one job land in cache + journal, then SIGKILL
        deadline = time.monotonic() + 120
        while client.campaign(cid)["done"] < 1:
            assert time.monotonic() < deadline
            time.sleep(0.2)
        proc.kill()
        proc.wait(30)

        proc = start()
        wait_ready(proc)
        final = client.wait(cid, timeout_s=240, poll_s=0.5)
        assert final["resumed"] is True
        assert final["completed"] == len(seeds) and final["failed"] == 0
        assert final["cache_hits"] >= 1  # pre-crash work was not redone

        oneshot = run_campaign(
            [JobSpec.make("fig04", seed=s) for s in seeds],
            jobs=1, cache=False,
        )
        for seed in seeds:
            assert (final["result"]["tables"][f"fig04@s{seed}"]
                    == oneshot.outcome("fig04", seed).table.to_json())
        agg = final["result"]["aggregated"]["fig04"]
        assert agg == oneshot.aggregated()["fig04"].to_json()

        client.shutdown()
        proc.wait(60)
        assert proc.returncode == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(30)
