"""Tests for the persistent sharded campaign queue journal."""

import json

from repro.campaign.queue import CampaignQueue


PAYLOAD = {"ids": ["fig04"], "seeds": [1, 2], "fast": True}


def test_submit_job_done_lifecycle(tmp_path):
    queue = CampaignQueue(tmp_path / "queue")
    queue.record_submit("c0001-abc", PAYLOAD)
    queue.record_job("c0001-abc", "fig04", 1, ok=True, elapsed_s=1.5)
    queue.record_job("c0001-abc", "fig04", 2, ok=False)
    campaigns = queue.replay()
    assert set(campaigns) == {"c0001-abc"}
    state = campaigns["c0001-abc"]
    assert state.payload == PAYLOAD
    assert state.completed == [("fig04", 1)]
    assert state.failed == [("fig04", 2)]
    assert not state.done
    assert queue.recover()[0].campaign_id == "c0001-abc"

    queue.record_done("c0001-abc")
    assert queue.recover() == []
    assert queue.replay()["c0001-abc"].done


def test_recover_survives_truncated_trailing_line(tmp_path):
    """A crash mid-append leaves a torn last line; replay must skip it
    and keep every acknowledged record."""
    queue = CampaignQueue(tmp_path / "queue", shards=1)
    queue.record_submit("c0001-abc", PAYLOAD)
    queue.record_job("c0001-abc", "fig04", 1, ok=True)
    path = queue.shard_path("c0001-abc")
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"op": "job", "id": "c0001-abc", "exh')  # torn
    recovered = queue.recover()
    assert len(recovered) == 1
    assert recovered[0].completed == [("fig04", 1)]


def test_sharding_spreads_and_isolates_campaigns(tmp_path):
    queue = CampaignQueue(tmp_path / "queue", shards=4)
    ids = [f"c{i:04d}-{i:08x}" for i in range(32)]
    for cid in ids:
        queue.record_submit(cid, PAYLOAD)
    shards = queue.shard_paths()
    assert 1 < len(shards) <= 4  # crc32 spread across files
    # a corrupted shard only loses its own campaigns
    shards[0].write_bytes(b"\x00garbage\xff\nnot json either\n")
    survivors = {q.campaign_id for q in queue.recover()}
    lost = {cid for cid in ids if queue.shard_path(cid) == shards[0]}
    assert survivors == set(ids) - lost
    assert lost and survivors


def test_compact_drops_finished_campaigns(tmp_path):
    queue = CampaignQueue(tmp_path / "queue", shards=2)
    for index in range(4):
        cid = f"c{index:04d}-deadbeef"
        queue.record_submit(cid, PAYLOAD)
        queue.record_job(cid, "fig04", 1, ok=True)
        if index % 2 == 0:
            queue.record_done(cid)
    kept = queue.compact()
    # only the two unfinished campaigns remain (submit + job lines each)
    assert kept == 4
    outstanding = {q.campaign_id for q in queue.recover()}
    assert outstanding == {"c0001-deadbeef", "c0003-deadbeef"}
    # journal files shrank to exactly the kept lines
    total_lines = sum(
        len(path.read_text().splitlines()) for path in queue.shard_paths()
    )
    assert total_lines == kept


def test_status_reports_outstanding(tmp_path):
    queue = CampaignQueue(tmp_path / "queue")
    assert queue.status()["campaigns"] == 0
    queue.record_submit("c0001-abc", PAYLOAD)
    queue.record_submit("c0002-def", PAYLOAD)
    queue.record_done("c0002-def")
    status = queue.status()
    assert status["campaigns"] == 2
    assert status["outstanding"] == 1
    assert status["outstanding_ids"] == ["c0001-abc"]


def test_journal_lines_are_canonical_json(tmp_path):
    queue = CampaignQueue(tmp_path / "queue", shards=1)
    queue.record_submit("c0001-abc", PAYLOAD)
    queue.record_job("c0001-abc", "fig04", 1, ok=True, from_cache=True,
                     elapsed_s=0.25)
    lines = queue.shard_path("c0001-abc").read_text().splitlines()
    assert [json.loads(line)["op"] for line in lines] == ["submit", "job"]
    job = json.loads(lines[1])
    assert job["from_cache"] is True and job["elapsed_s"] == 0.25
