"""Executor edge cases: retries, timeouts, graceful failure, parallel parity.

Synthetic runners live at module level so they stay picklable for the
process-pool paths.
"""

import random
import time

import pytest

from repro.campaign.cache import ResultCache
from repro.campaign.executor import CampaignResult, JobOutcome, run_campaign
from repro.campaign.jobs import CampaignSpec, JobSpec
from repro.campaign.progress import CampaignStats
from repro.experiments.results import ResultTable


# ----------------------------------------------------------------------
# Picklable synthetic runners.


def fake_runner(spec):
    """Deterministic cheap stand-in for an exhibit run."""
    rng = random.Random(f"{spec.exhibit_id}:{spec.seed}")  # str-seeded: stable
    table = ResultTable(f"synthetic {spec.exhibit_id}")
    for x in range(3):
        table.add_row(x=x, y=round(rng.random(), 6), label=f"row{x}")
    table.add_note(f"seed={spec.seed}")
    return table


def crashing_runner(spec):
    raise RuntimeError(f"boom on {spec.exhibit_id}")


def sleeping_runner(spec):
    time.sleep(10.0)
    return fake_runner(spec)


class FlakyRunner:
    """Fails ``fail_times`` times (counted in a file, so it survives
    pickling into pool workers), then succeeds."""

    def __init__(self, counter_path, fail_times):
        self.counter_path = str(counter_path)
        self.fail_times = fail_times

    def __call__(self, spec):
        try:
            with open(self.counter_path) as handle:
                attempts = int(handle.read() or 0)
        except FileNotFoundError:
            attempts = 0
        attempts += 1
        with open(self.counter_path, "w") as handle:
            handle.write(str(attempts))
        if attempts <= self.fail_times:
            raise RuntimeError(f"flaky attempt {attempts}")
        return fake_runner(spec)


def specs(*pairs):
    return [JobSpec.make(eid, seed=seed) for eid, seed in pairs]


# ----------------------------------------------------------------------


def test_inline_success_records_everything(tmp_path):
    cache = ResultCache(tmp_path / "cache", version="1")
    result = run_campaign(
        specs(("a", 1), ("a", 2), ("b", 1)),
        jobs=1, cache=cache, runner=fake_runner,
    )
    assert result.ok and not result.failures()
    assert result.stats.total == 3
    assert result.stats.completed == 3
    assert result.stats.cache_misses == 3
    assert result.exhibit_ids() == ["a", "b"]
    assert len(result.tables_for("a")) == 2
    outcome = result.outcome("a", 1)
    assert outcome.ok and outcome.attempts == 1 and not outcome.from_cache
    assert outcome.table.to_dict() == fake_runner(JobSpec.make("a", 1)).to_dict()


def test_cache_hits_skip_execution(tmp_path):
    cache = ResultCache(tmp_path / "cache", version="1")
    jobs = specs(("a", 1), ("a", 2))
    run_campaign(jobs, cache=cache, runner=fake_runner)
    second = run_campaign(jobs, cache=cache, runner=crashing_runner)
    # crashing runner never invoked: everything came from the cache
    assert second.ok
    assert second.stats.cache_hits == 2 and second.stats.cache_misses == 0
    assert all(o.from_cache for o in second.outcomes.values())


def test_cache_false_disables_caching(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)  # any default cache would land here
    result = run_campaign(specs(("a", 1)), cache=False, runner=fake_runner)
    assert result.ok
    assert not (tmp_path / ".repro-cache").exists()


def test_retry_then_succeed(tmp_path):
    runner = FlakyRunner(tmp_path / "counter", fail_times=2)
    result = run_campaign(
        specs(("a", 1)), cache=False, runner=runner,
        retries=2, backoff_s=0.01,
    )
    assert result.ok
    outcome = result.outcome("a", 1)
    assert outcome.attempts == 3
    assert result.stats.retries == 2


def test_retries_exhausted_records_failure_not_exception(tmp_path):
    runner = FlakyRunner(tmp_path / "counter", fail_times=99)
    result = run_campaign(
        specs(("a", 1), ("b", 1)), cache=False, runner=runner,
        retries=1, backoff_s=0.01,
    )
    # the campaign itself never raises; the failure is recorded
    assert not result.ok
    [failure] = [o for o in result.failures() if o.spec.exhibit_id == "a"] or \
                result.failures()[:1]
    assert failure.attempts == 2
    assert "flaky attempt" in failure.error
    assert result.stats.failed >= 1


def test_crash_does_not_kill_campaign():
    result = run_campaign(
        specs(("good", 1), ("bad", 1)),
        cache=False, retries=0, runner=_mixed_runner,
    )
    assert result.outcome("good", 1).ok
    bad = result.outcome("bad", 1)
    assert not bad.ok and "boom" in bad.error
    assert result.stats.completed == 1 and result.stats.failed == 1


def _mixed_runner(spec):
    if spec.exhibit_id == "bad":
        raise RuntimeError("boom")
    return fake_runner(spec)


def test_timeout_records_failure_and_campaign_continues():
    result = run_campaign(
        specs(("slow", 1), ("quick", 1)),
        cache=False, retries=0, timeout_s=0.3,
        runner=_slow_or_quick,
    )
    slow = result.outcome("slow", 1)
    assert not slow.ok and "timeout" in slow.error
    assert result.outcome("quick", 1).ok


def _slow_or_quick(spec):
    if spec.exhibit_id == "slow":
        time.sleep(10.0)
    return fake_runner(spec)


def test_sub_second_timeout_enforced():
    """Regression: ``timeout_s=0.2`` must fire at ~0.2 s, not be truncated.

    The inline executor arms SIGALRM via ``setitimer``; an ``alarm()``-style
    implementation would int-truncate 0.2 to 0 (no alarm at all) and the
    sleeping runner would block for its full 10 s.
    """
    start = time.monotonic()
    result = run_campaign(
        specs(("slow", 1)),
        cache=False, retries=0, timeout_s=0.2, runner=sleeping_runner,
    )
    elapsed = time.monotonic() - start
    outcome = result.outcome("slow", 1)
    assert not outcome.ok and "timeout" in outcome.error
    # Generous ceiling: the point is that we did not sleep the full 10 s
    # (truncated-to-zero alarm) nor round 0.2 up to whole seconds.
    assert elapsed < 1.5, f"0.2 s timeout took {elapsed:.2f} s to fire"


def test_duplicate_jobs_rejected():
    with pytest.raises(ValueError, match="duplicate"):
        run_campaign(specs(("a", 1), ("a", 1)), cache=False,
                     runner=fake_runner)


def test_parallel_matches_inline_for_synthetic_jobs(tmp_path):
    jobs = specs(("a", 1), ("a", 2), ("b", 1), ("b", 2), ("c", 1))
    inline = run_campaign(jobs, jobs=1, cache=False, runner=fake_runner)
    pooled = run_campaign(jobs, jobs=4, cache=False, runner=fake_runner)
    assert inline.ok and pooled.ok
    for spec in jobs:
        a = inline.outcomes[spec.key].table.to_json()
        b = pooled.outcomes[spec.key].table.to_json()
        assert a == b  # byte-identical regardless of --jobs


def test_pool_timeout_and_retry(tmp_path):
    runner = FlakyRunner(tmp_path / "counter", fail_times=1)
    result = run_campaign(
        specs(("a", 1), ("b", 1)), jobs=2, cache=False,
        runner=runner, retries=2, backoff_s=0.01, timeout_s=30.0,
    )
    assert result.ok
    assert result.stats.retries >= 1


@pytest.mark.slow
def test_real_exhibit_identical_across_jobs():
    """Acceptance: fixed-seed results are byte-identical for jobs=1 vs 4."""
    spec = CampaignSpec.make(ids=["fig29"], seeds=[1, 2], fast=True)
    inline = run_campaign(spec, jobs=1, cache=False)
    pooled = run_campaign(spec, jobs=4, cache=False)
    assert inline.ok and pooled.ok
    for seed in (1, 2):
        assert (inline.outcome("fig29", seed).table.to_json()
                == pooled.outcome("fig29", seed).table.to_json())


@pytest.mark.slow
def test_fading_exhibit_identical_across_jobs():
    """fig04 is the fading-dominated exhibit (per-packet log-normal draws on
    every link): per-link fading RNG streams must keep its fixed-seed
    results byte-identical regardless of worker-pool parallelism."""
    spec = CampaignSpec.make(ids=["fig04"], seeds=[1, 2], fast=True)
    inline = run_campaign(spec, jobs=1, cache=False)
    pooled = run_campaign(spec, jobs=4, cache=False)
    assert inline.ok and pooled.ok
    for seed in (1, 2):
        assert (inline.outcome("fig04", seed).table.to_json()
                == pooled.outcome("fig04", seed).table.to_json())


def test_campaign_result_aggregated_helper():
    result = run_campaign(specs(("a", 1), ("a", 2)), cache=False,
                          runner=fake_runner)
    agg = result.aggregated()
    assert set(agg) == {"a"}
    assert any("2 seeds" in note for note in agg["a"].notes)


def test_stats_injection_and_summary():
    stats = CampaignStats()
    result = run_campaign(specs(("a", 1)), cache=False, runner=fake_runner,
                          stats=stats)
    assert result.stats is stats
    line = stats.summary_line()
    assert "1/1 ok" in line and "0 failed" in line


def test_outcome_dataclass_flags():
    spec = JobSpec.make("a", 1)
    ok = JobOutcome(spec, ResultTable("t"), None, 1, 0.1)
    bad = JobOutcome(spec, None, "err", 2, 0.1)
    assert ok.ok and not bad.ok
    empty = CampaignResult()
    assert empty.ok and empty.failures() == []


# ----------------------------------------------------------------------
# Non-main-thread execution (the campaign server runs jobs on threads).


def test_timeout_path_survives_worker_threads():
    """Regression: ``signal.signal``/``setitimer`` raise ``ValueError``
    off the main thread.  A thread-spawned runner with a timeout set
    must fall back to the no-alarm path instead of crashing."""
    import threading

    from repro.campaign.executor import _execute_with_timeout

    spec = JobSpec.make("a", 1)
    results = {}

    def in_thread():
        try:
            results["table"] = _execute_with_timeout(
                fake_runner, spec, timeout_s=5.0
            )
        except BaseException as exc:  # noqa: BLE001 - recording for assert
            results["error"] = exc

    thread = threading.Thread(target=in_thread)
    thread.start()
    thread.join(10)
    assert "error" not in results, f"thread crashed: {results['error']!r}"
    assert results["table"].to_json() == fake_runner(spec).to_json()


def test_whole_campaign_runs_inside_a_thread():
    """The server drives ``execute_payload`` from executor threads; an
    entire inline campaign with a timeout must work there too."""
    import threading

    results = {}

    def in_thread():
        try:
            results["result"] = run_campaign(
                specs(("a", 1), ("b", 1)), cache=False,
                runner=fake_runner, timeout_s=5.0,
            )
        except BaseException as exc:  # noqa: BLE001
            results["error"] = exc

    thread = threading.Thread(target=in_thread)
    thread.start()
    thread.join(30)
    assert "error" not in results, f"thread crashed: {results['error']!r}"
    assert results["result"].ok
    # ...and the tables match the main-thread run byte for byte.
    main = run_campaign(specs(("a", 1), ("b", 1)), cache=False,
                        runner=fake_runner)
    for key in ("a", "b"):
        assert (results["result"].outcome(key, 1).table.to_json()
                == main.outcome(key, 1).table.to_json())
