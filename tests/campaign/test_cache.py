"""Tests for the content-addressed on-disk result cache."""

import json

from repro.campaign.cache import ResultCache
from repro.campaign.jobs import JobSpec
from repro.experiments.results import ResultTable


def sample_table():
    table = ResultTable("Fig. X: sample")
    table.add_row(x=1, y=2.5, label="a")
    table.add_row(x=2, y=3.5, label="b")
    table.add_note("a note")
    return table


def test_put_get_round_trip(tmp_path):
    cache = ResultCache(tmp_path / "cache", version="0.1.0")
    spec = JobSpec.make("fig04", seed=3)
    assert cache.get(spec) is None
    cache.put(spec, sample_table(), elapsed_s=1.25)
    entry = cache.get(spec)
    assert entry is not None
    assert entry.spec == spec
    assert entry.elapsed_s == 1.25
    assert entry.version == "0.1.0"
    assert entry.table.to_dict() == sample_table().to_dict()


def test_version_change_invalidates(tmp_path):
    """Bumping ``repro.__version__`` must miss every old entry."""
    root = tmp_path / "cache"
    spec = JobSpec.make("fig04", seed=1)
    ResultCache(root, version="0.1.0").put(spec, sample_table(), 1.0)
    assert ResultCache(root, version="0.1.0").get(spec) is not None
    assert ResultCache(root, version="0.2.0").get(spec) is None
    # ... and a fresh result under the new version coexists on disk
    ResultCache(root, version="0.2.0").put(spec, sample_table(), 2.0)
    assert ResultCache(root, version="0.2.0").get(spec) is not None


def test_seed_and_profile_separate_entries(tmp_path):
    cache = ResultCache(tmp_path / "cache", version="0.1.0")
    cache.put(JobSpec.make("fig04", seed=1), sample_table(), 1.0)
    assert cache.get(JobSpec.make("fig04", seed=2)) is None
    assert cache.get(JobSpec.make("fig04", seed=1, fast=False)) is None


def test_metrics_round_trip_and_backward_compat(tmp_path):
    cache = ResultCache(tmp_path / "cache", version="0.1.0")
    spec = JobSpec.make("fig04", seed=1)
    snap = {"schema": 1, "counters": {"tx.frames{channel=2460.0}": 12.0}}
    cache.put(spec, sample_table(), 1.0, metrics=snap)
    entry = cache.get(spec)
    assert entry.metrics == snap
    # entries without metrics (pre-obs caches) read back as None
    other = JobSpec.make("fig04", seed=2)
    cache.put(other, sample_table(), 1.0)
    assert cache.get(other).metrics is None
    payload = json.loads(cache.path_for(other).read_text())
    assert "metrics" not in payload  # entry shape unchanged when absent


def test_non_dict_metrics_entry_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path / "cache", version="0.1.0")
    spec = JobSpec.make("fig04", seed=1)
    path = cache.put(spec, sample_table(), 1.0)
    payload = json.loads(path.read_text())
    payload["metrics"] = "garbage"
    path.write_text(json.dumps(payload))
    assert cache.get(spec) is None
    assert not path.exists()  # evicted


def test_corrupt_entry_is_a_miss_and_evicted(tmp_path):
    cache = ResultCache(tmp_path / "cache", version="0.1.0")
    spec = JobSpec.make("fig04", seed=1)
    path = cache.put(spec, sample_table(), 1.0)
    path.write_text("{not json")
    assert cache.get(spec) is None
    assert not path.exists()  # evicted


def test_tampered_key_is_rejected(tmp_path):
    cache = ResultCache(tmp_path / "cache", version="0.1.0")
    spec = JobSpec.make("fig04", seed=1)
    path = cache.put(spec, sample_table(), 1.0)
    payload = json.loads(path.read_text())
    payload["key"] = "0" * 64
    path.write_text(json.dumps(payload))
    assert cache.get(spec) is None


def test_clear_and_status(tmp_path):
    cache = ResultCache(tmp_path / "cache", version="0.1.0")
    for seed in (1, 2):
        cache.put(JobSpec.make("fig04", seed=seed), sample_table(), 1.0)
    cache.put(JobSpec.make("fig29", seed=1), sample_table(), 1.0)
    old = ResultCache(tmp_path / "cache", version="0.0.9")
    old.put(JobSpec.make("fig29", seed=9), sample_table(), 1.0)

    status = cache.status()
    assert status["entries"] == 4
    assert status["current_version_entries"] == 3
    assert status["by_exhibit"] == {"fig04": 2, "fig29": 2}
    assert status["bytes"] > 0

    assert cache.clear() == 4  # clear drops every version
    assert cache.status()["entries"] == 0
    assert cache.clear() == 0


def test_missing_directory_is_empty_not_an_error(tmp_path):
    cache = ResultCache(tmp_path / "nope", version="0.1.0")
    assert list(cache.entries()) == []
    assert cache.clear() == 0
    assert cache.status()["entries"] == 0
