"""Tests for the content-addressed on-disk result cache."""

import json

from repro.campaign.cache import ResultCache
from repro.campaign.jobs import JobSpec
from repro.experiments.results import ResultTable


def sample_table():
    table = ResultTable("Fig. X: sample")
    table.add_row(x=1, y=2.5, label="a")
    table.add_row(x=2, y=3.5, label="b")
    table.add_note("a note")
    return table


def test_put_get_round_trip(tmp_path):
    cache = ResultCache(tmp_path / "cache", version="0.1.0")
    spec = JobSpec.make("fig04", seed=3)
    assert cache.get(spec) is None
    cache.put(spec, sample_table(), elapsed_s=1.25)
    entry = cache.get(spec)
    assert entry is not None
    assert entry.spec == spec
    assert entry.elapsed_s == 1.25
    assert entry.version == "0.1.0"
    assert entry.table.to_dict() == sample_table().to_dict()


def test_version_change_invalidates(tmp_path):
    """Bumping ``repro.__version__`` must miss every old entry."""
    root = tmp_path / "cache"
    spec = JobSpec.make("fig04", seed=1)
    ResultCache(root, version="0.1.0").put(spec, sample_table(), 1.0)
    assert ResultCache(root, version="0.1.0").get(spec) is not None
    assert ResultCache(root, version="0.2.0").get(spec) is None
    # ... and a fresh result under the new version coexists on disk
    ResultCache(root, version="0.2.0").put(spec, sample_table(), 2.0)
    assert ResultCache(root, version="0.2.0").get(spec) is not None


def test_seed_and_profile_separate_entries(tmp_path):
    cache = ResultCache(tmp_path / "cache", version="0.1.0")
    cache.put(JobSpec.make("fig04", seed=1), sample_table(), 1.0)
    assert cache.get(JobSpec.make("fig04", seed=2)) is None
    assert cache.get(JobSpec.make("fig04", seed=1, fast=False)) is None


def test_metrics_round_trip_and_backward_compat(tmp_path):
    cache = ResultCache(tmp_path / "cache", version="0.1.0")
    spec = JobSpec.make("fig04", seed=1)
    snap = {"schema": 1, "counters": {"tx.frames{channel=2460.0}": 12.0}}
    cache.put(spec, sample_table(), 1.0, metrics=snap)
    entry = cache.get(spec)
    assert entry.metrics == snap
    # entries without metrics (pre-obs caches) read back as None
    other = JobSpec.make("fig04", seed=2)
    cache.put(other, sample_table(), 1.0)
    assert cache.get(other).metrics is None
    payload = json.loads(cache.path_for(other).read_text())
    assert "metrics" not in payload  # entry shape unchanged when absent


def test_non_dict_metrics_entry_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path / "cache", version="0.1.0")
    spec = JobSpec.make("fig04", seed=1)
    path = cache.put(spec, sample_table(), 1.0)
    payload = json.loads(path.read_text())
    payload["metrics"] = "garbage"
    path.write_text(json.dumps(payload))
    assert cache.get(spec) is None
    assert not path.exists()  # evicted


def test_corrupt_entry_is_a_miss_and_evicted(tmp_path):
    cache = ResultCache(tmp_path / "cache", version="0.1.0")
    spec = JobSpec.make("fig04", seed=1)
    path = cache.put(spec, sample_table(), 1.0)
    path.write_text("{not json")
    assert cache.get(spec) is None
    assert not path.exists()  # evicted


def test_truncated_entry_is_a_recorded_miss(tmp_path):
    """Regression: a worker killed mid-write (or disk-full) leaves a
    truncated JSON prefix; ``get`` must record a miss and evict the bad
    file instead of raising ``JSONDecodeError`` into the campaign."""
    cache = ResultCache(tmp_path / "cache", version="0.1.0")
    spec = JobSpec.make("fig04", seed=1)
    path = cache.put(spec, sample_table(), 1.0)
    full = path.read_bytes()
    path.write_bytes(full[: len(full) // 2])  # torn write
    assert cache.get(spec) is None
    assert not path.exists()
    assert cache.stats.corrupt == 1
    assert cache.stats.evictions == 1
    assert cache.stats.misses == 1
    # the slot is clean: the next put/get round-trips normally
    cache.put(spec, sample_table(), 1.0)
    assert cache.get(spec) is not None


def test_empty_and_binary_entries_are_recorded_misses(tmp_path):
    cache = ResultCache(tmp_path / "cache", version="0.1.0")
    spec = JobSpec.make("fig04", seed=1)
    path = cache.put(spec, sample_table(), 1.0)
    path.write_bytes(b"")  # crashed before any byte hit the file
    assert cache.get(spec) is None
    path2 = cache.put(spec, sample_table(), 1.0)
    path2.write_bytes(b"\xff\xfe\x00garbage\x80")  # undecodable bytes
    assert cache.get(spec) is None
    assert not path2.exists()
    assert cache.stats.corrupt == 2


def test_stats_counters_and_snapshot(tmp_path):
    cache = ResultCache(tmp_path / "cache", version="0.1.0")
    spec = JobSpec.make("fig04", seed=1)
    assert cache.get(spec) is None  # miss (absent)
    cache.put(spec, sample_table(), 1.0)
    assert cache.get(spec) is not None  # hit
    assert cache.get(JobSpec.make("fig04", seed=2)) is None  # miss
    assert (cache.stats.hits, cache.stats.misses, cache.stats.puts) == (1, 2, 1)
    snap = cache.stats_snapshot()
    assert snap["hits"] == 1 and snap["misses"] == 2 and snap["puts"] == 1
    assert snap["entries"] == 1 and snap["bytes"] > 0
    assert snap["max_bytes"] is None


def test_counters_mirror_into_obs_registry(tmp_path):
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    cache = ResultCache(tmp_path / "cache", version="0.1.0",
                        metrics=registry)
    spec = JobSpec.make("fig04", seed=1)
    cache.get(spec)
    cache.put(spec, sample_table(), 1.0)
    cache.get(spec)
    by_name = {c.name: c.value for c in registry.counters()}
    assert by_name["campaign.cache.hits"] == 1
    assert by_name["campaign.cache.misses"] == 1
    assert by_name["campaign.cache.puts"] == 1


def test_lru_eviction_respects_size_budget(tmp_path):
    probe = ResultCache(tmp_path / "probe", version="0.1.0")
    entry_size = probe.put(
        JobSpec.make("fig04", seed=1), sample_table(), 1.0
    ).stat().st_size
    # Budget for two entries: the third put must evict the LRU one.
    cache = ResultCache(tmp_path / "cache", version="0.1.0",
                        max_bytes=int(entry_size * 2.5))
    import os

    paths = {}
    for seed in (1, 2, 3):
        paths[seed] = cache.put(JobSpec.make("fig04", seed=seed),
                                sample_table(), 1.0)
        # Distinct mtimes so LRU order is unambiguous on coarse clocks.
        stamp = 1_000_000 + seed
        os.utime(paths[seed], (stamp, stamp))
        if seed == 2:
            # Touch seed 1 (a hit refreshes recency): seed 2 becomes LRU.
            assert cache.get(JobSpec.make("fig04", seed=1)) is not None
            os.utime(paths[1], (1_000_010, 1_000_010))
    cache._enforce_budget()
    assert cache.get(JobSpec.make("fig04", seed=1)) is not None
    assert cache.get(JobSpec.make("fig04", seed=3)) is not None
    assert cache.get(JobSpec.make("fig04", seed=2)) is None  # evicted LRU
    assert cache.stats.evictions >= 1
    assert cache.stats.bytes_evicted > 0


def test_budget_never_evicts_the_entry_just_written(tmp_path):
    cache = ResultCache(tmp_path / "cache", version="0.1.0", max_bytes=1)
    spec = JobSpec.make("fig04", seed=1)
    cache.put(spec, sample_table(), 1.0)
    # A budget smaller than one entry must not eat the freshest result.
    assert cache.get(spec) is not None


def test_tampered_key_is_rejected(tmp_path):
    cache = ResultCache(tmp_path / "cache", version="0.1.0")
    spec = JobSpec.make("fig04", seed=1)
    path = cache.put(spec, sample_table(), 1.0)
    payload = json.loads(path.read_text())
    payload["key"] = "0" * 64
    path.write_text(json.dumps(payload))
    assert cache.get(spec) is None


def test_clear_and_status(tmp_path):
    cache = ResultCache(tmp_path / "cache", version="0.1.0")
    for seed in (1, 2):
        cache.put(JobSpec.make("fig04", seed=seed), sample_table(), 1.0)
    cache.put(JobSpec.make("fig29", seed=1), sample_table(), 1.0)
    old = ResultCache(tmp_path / "cache", version="0.0.9")
    old.put(JobSpec.make("fig29", seed=9), sample_table(), 1.0)

    status = cache.status()
    assert status["entries"] == 4
    assert status["current_version_entries"] == 3
    assert status["by_exhibit"] == {"fig04": 2, "fig29": 2}
    assert status["bytes"] > 0

    assert cache.clear() == 4  # clear drops every version
    assert cache.status()["entries"] == 0
    assert cache.clear() == 0


def test_missing_directory_is_empty_not_an_error(tmp_path):
    cache = ResultCache(tmp_path / "nope", version="0.1.0")
    assert list(cache.entries()) == []
    assert cache.clear() == 0
    assert cache.status()["entries"] == 0
