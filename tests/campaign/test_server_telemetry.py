"""Service telemetry on the campaign server: ``/metrics`` exposition,
the deprecated ``/cache/stats`` alias, worker-metric merge, the merged
campaign trace, the events JSONL sink and ``/debug/profile``.

Reuses the in-process harness from :mod:`tests.campaign.test_server`
(ephemeral port, thread workers, synthetic runner).
"""

import json

import pytest

from repro.campaign.client import ServerError
from repro.obs.exposition import parse_prometheus, validate_prometheus
from repro.obs.runtime import active_obs_session
from repro.obs.sinks import read_jsonl
from tests.campaign.test_server import fake_runner, running_server


def obs_probe_runner(spec):
    """Like ``fake_runner``, but records worker-side metrics into the
    ambient obs session (when one is installed) so the server has
    something to merge."""
    session = active_obs_session()
    if session is not None:
        obs = session.make_observability()
        obs.registry.counter("tx.frames", channel=2412.0).inc(5)
        obs.registry.histogram("rx.rssi_dbm").observe(-70.0)
    return fake_runner(spec)


def _run_one(client, ids=("alpha",), seeds=(1, 2), obs=False):
    doc = client.submit(ids=list(ids), seeds=list(seeds), obs=obs)
    final = client.wait(doc["id"], timeout_s=30)
    assert final["state"] == "done", final
    return doc["id"], final


def test_metrics_endpoint_parses_and_carries_key_series(tmp_path):
    with running_server(tmp_path) as (_server, client):
        _run_one(client)
        text = client.metrics_text()
        # Acceptance criteria: valid Prometheus text format 0.0.4.
        assert validate_prometheus(text) > 0
        samples = {}
        for name, labels, value in parse_prometheus(text):
            samples.setdefault(name, []).append((labels, value))
    assert samples["server_campaigns_submitted"][0][1] == 1.0
    assert samples["server_jobs_completed"][0][1] == 2.0
    assert samples["server_jobs_failed"][0][1] == 0.0
    assert samples["server_jobs_in_flight"][0][1] == 0.0
    assert samples["server_uptime_s"][0][1] > 0.0
    assert samples["campaign_cache_misses"][0][1] == 2.0
    # Per-exhibit wall-time summary with quantile + _sum/_count rows.
    elapsed = {labels.get("quantile"): value
               for labels, value in samples["server_job_elapsed_s"]
               if labels.get("exhibit") == "alpha"}
    assert set(elapsed) == {"0.5", "0.95", "0.99"}
    assert samples["server_job_elapsed_s_count"][0][0]["exhibit"] == "alpha"
    assert samples["server_job_elapsed_s_count"][0][1] == 2.0
    assert "server_job_queue_wait_s_count" in samples


def test_metrics_content_type_is_prometheus_text(tmp_path):
    import urllib.request

    with running_server(tmp_path) as (server, _client):
        url = f"http://127.0.0.1:{server.port}/metrics"
        with urllib.request.urlopen(url, timeout=10) as response:
            ctype = response.headers.get("Content-Type")
    assert ctype == "text/plain; version=0.0.4; charset=utf-8"


def test_cache_stats_alias_matches_metrics(tmp_path):
    with running_server(tmp_path) as (_server, client):
        _run_one(client)
        stats = client.cache_stats()
        metrics = client.metrics()
    # Pinned JSON shape of the deprecated alias.
    assert set(stats) >= {"root", "version", "max_bytes", "hits", "misses",
                          "entries", "bytes", "metrics"}
    by_name = {name: value for name, labels, value in metrics}
    assert by_name["campaign_cache_hits"] == float(stats["hits"])
    assert by_name["campaign_cache_misses"] == float(stats["misses"])


def test_obs_submission_merges_worker_series(tmp_path):
    with running_server(tmp_path, runner=obs_probe_runner) as \
            (_server, client):
        _run_one(client, obs=True)
        text = client.metrics_text()
        assert validate_prometheus(text) > 0
    by_name = {}
    for name, labels, value in parse_prometheus(text):
        by_name[name] = value
    # Two jobs, each incrementing by 5 / observing one rssi sample.
    assert by_name["worker_tx_frames"] == 10.0
    assert by_name["worker_rx_rssi_dbm_count"] == 2.0
    assert by_name["worker_rx_rssi_dbm_sum"] == pytest.approx(-140.0)


def test_obs_off_submission_ships_no_worker_series(tmp_path):
    with running_server(tmp_path, runner=obs_probe_runner) as \
            (_server, client):
        _run_one(client, obs=False)
        names = {n for n, _l, _v in parse_prometheus(client.metrics_text())}
    assert not {n for n in names if n.startswith("worker_")}


def test_campaign_trace_endpoint_merges_server_and_worker_tracks(tmp_path):
    with running_server(tmp_path) as (_server, client):
        cid, _final = _run_one(client, seeds=(1,), obs=True)
        doc = client.trace(cid)
    json.dumps(doc)
    assert doc["metadata"]["campaign"] == cid
    events = doc["traceEvents"]
    durations = [e for e in events if e["ph"] == "X"]
    names = {e["name"] for e in durations}
    # Server track spans…
    assert {"submit", "queue_wait", "execute", "cache_probe"} <= names
    server_track = [e for e in durations if e["pid"] == 0]
    assert server_track
    # …and a worker track per job (pid >= 1) with the wall execute span.
    worker_track = [e for e in durations if e["pid"] >= 1]
    assert any(e["name"] == "execute" for e in worker_track)
    metas = [e for e in events if e["ph"] == "M"]
    process_names = {e["args"]["name"] for e in metas
                     if e["name"] == "process_name"}
    assert any(p.startswith("server:") for p in process_names)
    assert any(p.startswith("worker:") for p in process_names)
    assert all(e["ts"] >= 0 for e in durations)


def test_trace_unknown_campaign_404s(tmp_path):
    with running_server(tmp_path) as (_server, client):
        with pytest.raises(ServerError, match="404"):
            client.trace("no-such-campaign")


def test_events_fan_out_into_rotating_jsonl(tmp_path):
    with running_server(tmp_path) as (server, client):
        _run_one(client)
        path = server.events_sink.path
        assert str(path).startswith(str(tmp_path))
    records = read_jsonl(path)
    # First line: a manifest naming the server role, then the campaign's
    # event stream (submitted → started → job… → done).
    assert records[0]["kind"] == "manifest"
    assert records[0]["role"] == "campaign-server"
    kinds = [r.get("event") for r in records if r.get("kind") == "event"]
    assert kinds[0] == "submitted"
    assert "done" in kinds
    assert kinds.count("job") == 2
    job = next(r for r in records if r.get("event") == "job")
    assert job["campaign"]
    assert {"exhibit_id", "seed", "ok"} <= set(job)


def test_debug_profile_reports_flight_recorder_snapshots(tmp_path):
    with running_server(tmp_path) as (_server, client):
        report = client.debug_profile()
    assert report["count"] >= 1
    snap = report["snapshots"][-1]
    assert snap["uptime_s"] >= 0.0
    assert "cpu_user_s" in snap and "gc_counts" in snap
    assert snap["jobs_in_flight"] == 0
    json.dumps(report)


def test_info_reports_telemetry_surfaces(tmp_path):
    with running_server(tmp_path) as (server, client):
        info = client.info()
    assert info["jobs_in_flight"] == 0
    assert info["events_jsonl"].endswith("events.jsonl")
