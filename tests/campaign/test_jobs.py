"""Unit tests for the campaign job model (specs, expansion, cache keys)."""

import pytest

from repro.campaign.jobs import CampaignSpec, JobSpec, expand_jobs

KNOWN = ["fig04", "fig19", "fig29", "table1"]


def test_make_normalises_and_freezes():
    spec = JobSpec.make("fig04", seed="3", fast=1, params={"b": 2, "a": 1})
    assert spec.seed == 3 and spec.fast is True
    assert spec.params == (("a", 1), ("b", 2))  # sorted, hashable
    assert hash(spec)  # frozen dataclass stays hashable
    assert spec.param_dict() == {"a": 1, "b": 2}
    assert spec.run_kwargs() == {"seed": 3, "fast": True, "a": 1, "b": 2}


def test_profile_and_key():
    assert JobSpec("fig04", 2, True).profile == "fast"
    assert JobSpec("fig04", 2, False).profile == "paper"
    assert JobSpec("fig04", 2, True).key == ("fig04", 2)


def test_params_reject_non_scalars():
    with pytest.raises(TypeError):
        JobSpec.make("fig04", params={"xs": [1, 2]})
    with pytest.raises(TypeError):
        JobSpec.make("fig04", params={1: "x"})


def test_dict_round_trip():
    spec = JobSpec.make("fig19", seed=7, fast=False, params={"k": "v"})
    assert JobSpec.from_dict(spec.to_dict()) == spec


def test_cache_key_is_stable_and_sensitive():
    spec = JobSpec.make("fig04", seed=1, fast=True)
    key = spec.cache_key("0.1.0")
    assert key == spec.cache_key("0.1.0")  # deterministic
    assert len(key) == 64  # sha256 hex
    # every input dimension must change the key
    assert key != JobSpec.make("fig29", seed=1).cache_key("0.1.0")
    assert key != JobSpec.make("fig04", seed=2).cache_key("0.1.0")
    assert key != JobSpec.make("fig04", seed=1, fast=False).cache_key("0.1.0")
    assert key != JobSpec.make("fig04", params={"x": 1}).cache_key("0.1.0")
    assert key != spec.cache_key("0.2.0")


def test_campaign_expansion_crosses_ids_and_seeds():
    jobs = CampaignSpec.make(ids=["fig04", "fig29"], seeds=[1, 2, 3]).expand(KNOWN)
    assert len(jobs) == 6
    assert {j.key for j in jobs} == {
        ("fig04", 1), ("fig04", 2), ("fig04", 3),
        ("fig29", 1), ("fig29", 2), ("fig29", 3),
    }


def test_campaign_default_ids_means_all_known():
    jobs = CampaignSpec.make(seeds=[5]).expand(KNOWN)
    assert [j.exhibit_id for j in jobs] == KNOWN
    assert all(j.seed == 5 for j in jobs)


def test_campaign_rejects_unknown_ids_and_empty_seeds():
    with pytest.raises(KeyError, match="fig999"):
        CampaignSpec.make(ids=["fig999"]).expand(KNOWN)
    with pytest.raises(ValueError):
        CampaignSpec.make(seeds=[])


def test_expand_jobs_wrapper():
    jobs = expand_jobs(None, [1, 2], True, KNOWN)
    assert len(jobs) == 2 * len(KNOWN)
    assert str(jobs[0]) == f"{KNOWN[0]}@seed=1/fast"
