"""Multi-process stress tests for the shared result cache.

The campaign server promotes ``.repro-cache/`` to a *shared* store: pool
workers, concurrent campaigns and even concurrent servers all hit one
directory.  These tests hammer a single cache dir from N real processes
and assert nobody ever observes a torn entry — the atomic tmp+rename
write discipline is what makes that true.
"""

import json
import multiprocessing

from repro.campaign.cache import ResultCache
from repro.campaign.jobs import JobSpec
from repro.experiments.results import ResultTable


def make_table(worker: int) -> ResultTable:
    table = ResultTable("concurrent sample")
    for x in range(20):
        table.add_row(x=x, y=x * 0.5, worker=worker)
    return table


def hammer(args):
    """One worker: interleave puts, gets and corruption-recovery on the
    same small spec space so collisions are guaranteed."""
    root, worker, rounds = args
    cache = ResultCache(root, version="0.1.0")
    torn = 0
    for i in range(rounds):
        spec = JobSpec.make("fig04", seed=(worker + i) % 5)
        cache.put(spec, make_table(worker), elapsed_s=1.0)
        entry = cache.get(JobSpec.make("fig04", seed=i % 5))
        if entry is not None:
            # Any readable entry must be complete and well-formed: all
            # rows present, every row from a single writer.
            rows = entry.table.to_dict()["rows"]
            if len(rows) != 20 or len({r["worker"] for r in rows}) != 1:
                torn += 1
    return {"worker": worker, "torn": torn,
            "stats": cache.stats.to_dict()}


def eviction_hammer(args):
    root, worker, rounds = args
    cache = ResultCache(root, version="0.1.0", max_bytes=4096)
    for i in range(rounds):
        spec = JobSpec.make("fig04", seed=(worker * rounds + i) % 16)
        cache.put(spec, make_table(worker), elapsed_s=1.0)
        cache.get(spec)
    return cache.stats.to_dict()


def test_parallel_put_get_never_sees_torn_entries(tmp_path):
    root = str(tmp_path / "cache")
    workers, rounds = 4, 25
    ctx = multiprocessing.get_context("spawn")
    with ctx.Pool(workers) as pool:
        reports = pool.map(
            hammer, [(root, w, rounds) for w in range(workers)]
        )
    assert [r["torn"] for r in reports] == [0] * workers
    total_puts = sum(r["stats"]["puts"] for r in reports)
    assert total_puts == workers * rounds
    # No reader ever crashed out: every get was a clean hit or miss.
    for report in reports:
        stats = report["stats"]
        assert stats["hits"] + stats["misses"] == rounds
    # The surviving directory itself is fully readable.
    survivor = ResultCache(root, version="0.1.0")
    for path in survivor.entries():
        payload = json.loads(path.read_text())
        assert len(payload["table"]["rows"]) == 20


def test_parallel_eviction_under_tiny_budget_is_safe(tmp_path):
    """Concurrent writers each enforcing a too-small budget must not
    corrupt each other: losing entries is fine (that is what eviction
    does), torn or unreadable survivors are not."""
    root = str(tmp_path / "cache")
    workers, rounds = 4, 15
    ctx = multiprocessing.get_context("spawn")
    with ctx.Pool(workers) as pool:
        stats = pool.map(
            eviction_hammer, [(root, w, rounds) for w in range(workers)]
        )
    assert sum(s["puts"] for s in stats) == workers * rounds
    survivor = ResultCache(root, version="0.1.0")
    for path in survivor.entries():  # whatever survived parses cleanly
        assert json.loads(path.read_text())["table"]["rows"]
    # ...and a fresh enforcement pass leaves the dir within budget.
    bounded = ResultCache(root, version="0.1.0", max_bytes=4096)
    bounded._enforce_budget()
    remaining = sum(
        p.stat().st_size for p in bounded.root.glob("*.json")
    )
    assert remaining <= 4096 or len(list(bounded.root.glob("*.json"))) <= 1


def test_concurrent_identical_puts_last_writer_wins_cleanly(tmp_path):
    root = str(tmp_path / "cache")
    spec = JobSpec.make("fig04", seed=1)
    ctx = multiprocessing.get_context("spawn")
    with ctx.Pool(4) as pool:
        pool.map(hammer, [(root, w, 10) for w in range(4)])
    cache = ResultCache(root, version="0.1.0")
    entry = cache.get(spec)
    if entry is not None:
        workers = {r["worker"] for r in entry.table.to_dict()["rows"]}
        assert len(workers) == 1  # one writer's payload, never a blend
        payload = json.loads(cache.path_for(spec).read_text())
        assert payload["key"] == spec.cache_key("0.1.0")
