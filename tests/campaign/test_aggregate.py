"""Tests for per-seed table aggregation (mean ± 95 % CI)."""

import pytest

from repro.campaign.aggregate import aggregate_seeds
from repro.campaign.executor import run_campaign
from repro.campaign.jobs import JobSpec
from repro.experiments.results import ResultTable
from repro.experiments.stats import summarize


def table_for(values, labels=("a", "b"), title="T"):
    table = ResultTable(title)
    for label, value in zip(labels, values):
        table.add_row(x=1, label=label, y=value)
    return table


def test_single_table_passes_through_unchanged():
    src = table_for([1.0, 2.0])
    src.add_note("only seed")
    out = aggregate_seeds([src])
    assert out.to_dict() == src.to_dict()
    assert out is not src  # a copy, not an alias


def test_mean_and_ci_match_stats_summarize():
    tables = [table_for([v, v * 2]) for v in (10.0, 12.0, 14.0)]
    out = aggregate_seeds(tables)
    expected_row0 = summarize([10.0, 12.0, 14.0])
    expected_row1 = summarize([20.0, 24.0, 28.0])
    assert out.rows[0]["y"] == pytest.approx(expected_row0.mean)
    assert out.rows[0]["y_ci95"] == pytest.approx(expected_row0.ci95)
    assert out.rows[1]["y"] == pytest.approx(expected_row1.mean)
    assert out.rows[1]["y_ci95"] == pytest.approx(expected_row1.ci95)
    assert any("3 seeds" in note for note in out.notes)


def test_identical_numeric_column_stays_int_without_ci():
    """Swept x-axis parameters keep their type and gain no CI column."""
    tables = [table_for([1.0, 2.0]), table_for([3.0, 4.0])]
    out = aggregate_seeds(tables)
    assert out.rows[0]["x"] == 1 and isinstance(out.rows[0]["x"], int)
    assert "x_ci95" not in out.columns()
    assert "y_ci95" in out.columns()


def test_labels_pass_through_and_conflicts_raise():
    out = aggregate_seeds([table_for([1.0, 2.0]), table_for([2.0, 3.0])])
    assert out.column("label") == ["a", "b"]
    with pytest.raises(ValueError, match="label"):
        aggregate_seeds([
            table_for([1.0, 2.0], labels=("a", "b")),
            table_for([1.0, 2.0], labels=("a", "DIFFERENT")),
        ])


def test_row_count_mismatch_raises():
    short = ResultTable("T")
    short.add_row(x=1, label="a", y=1.0)
    with pytest.raises(ValueError, match="row counts"):
        aggregate_seeds([table_for([1.0, 2.0]), short])


def test_empty_input_raises():
    with pytest.raises(ValueError):
        aggregate_seeds([])


def test_common_notes_survive_seed_specific_ones_drop():
    t1, t2 = table_for([1.0, 2.0]), table_for([2.0, 3.0])
    for t in (t1, t2):
        t.add_note("shared calibration note")
    t1.add_note("seed=1")
    t2.add_note("seed=2")
    out = aggregate_seeds([t1, t2])
    assert "shared calibration note" in out.notes
    assert "seed=1" not in out.notes and "seed=2" not in out.notes


def _partial_runner(spec):
    if spec.exhibit_id == "dead" or (spec.exhibit_id == "half" and spec.seed == 2):
        raise RuntimeError("nope")
    table = ResultTable(spec.exhibit_id)
    table.add_row(v=float(spec.seed))
    return table


def test_aggregate_campaign_skips_dead_exhibits_keeps_partial():
    jobs = [JobSpec.make(eid, seed=s)
            for eid in ("ok", "half", "dead") for s in (1, 2)]
    result = run_campaign(jobs, cache=False, retries=0,
                          runner=_partial_runner)
    agg = result.aggregated()
    assert set(agg) == {"ok", "half"}
    assert len(agg["half"].rows) == 1  # only the surviving seed
    assert agg["half"].rows[0]["v"] == 1.0
