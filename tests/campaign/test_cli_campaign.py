"""CLI + registry integration for the campaign engine (dummy exhibits)."""

import pytest

import repro.__main__ as cli
from repro.campaign.cache import ResultCache
from repro.campaign.jobs import JobSpec
from repro.experiments import registry as registry_module
from repro.experiments.registry import Experiment, run_all
from repro.experiments.results import ResultTable


def _dummy_run(seed=1, fast=True, **params):
    table = ResultTable(f"dummy seed={seed}")
    table.add_row(seed=seed, value=float(seed) * 2.0, fast=str(fast))
    return table


def _failing_run(seed=1, fast=True, **params):
    raise RuntimeError("always fails")


@pytest.fixture
def dummy_registry(monkeypatch):
    registry = {
        "d1": Experiment("d1", "Fig. D1", "dummy one", _dummy_run),
        "d2": Experiment("d2", "Fig. D2", "dummy two", _dummy_run),
    }
    monkeypatch.setattr(registry_module, "REGISTRY", registry)
    monkeypatch.setattr(cli, "REGISTRY", registry)
    return registry


# ------------------------------------------------------------------
# registry.run_all through the campaign engine


def test_run_all_warns_without_jobs(dummy_registry):
    with pytest.warns(DeprecationWarning, match="repro.campaign"):
        tables = run_all(seed=3, fast=True)
    assert set(tables) == {"d1", "d2"}
    assert tables["d1"].rows[0]["seed"] == 3


def test_run_all_ids_filter_no_warning(dummy_registry):
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("error")  # jobs= given: must not warn
        tables = run_all(seed=2, ids=["d2"], jobs=1)
    assert set(tables) == {"d2"}


def test_run_all_unknown_id(dummy_registry):
    with pytest.raises(KeyError, match="d999"):
        run_all(ids=["d999"], jobs=1)


def test_run_all_surfaces_failures(dummy_registry, monkeypatch):
    dummy_registry["bad"] = Experiment("bad", "Fig. B", "bad", _failing_run)
    with pytest.raises(RuntimeError, match="always fails"):
        run_all(ids=["bad"], jobs=1)


def test_run_all_uses_cache_when_asked(dummy_registry, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    run_all(seed=1, ids=["d1"], jobs=1, use_cache=True)
    assert (tmp_path / ".repro-cache").is_dir()
    # cached entry is served back (run function replaced by a bomb)
    dummy_registry["d1"] = Experiment("d1", "Fig. D1", "dummy", _failing_run)
    tables = run_all(seed=1, ids=["d1"], jobs=1, use_cache=True)
    assert tables["d1"].rows[0]["seed"] == 1


# ------------------------------------------------------------------
# python -m repro campaign ...


def test_campaign_run_and_status_and_clean(dummy_registry, tmp_path, capsys):
    cache_dir = str(tmp_path / "cache")
    rc = cli.main(["campaign", "run", "--seeds", "1,2", "--jobs", "1",
                   "--fast", "--quiet", "--cache-dir", cache_dir,
                   "--aggregate"])
    assert rc == 0
    captured = capsys.readouterr()
    # summary line goes to stderr via ProgressPrinter.finish (even --quiet)
    assert "campaign: 4/4 ok" in captured.err
    assert "cache 0 hit / 4 miss" in captured.err
    assert "2 seeds" in captured.out  # aggregated tables printed

    rc = cli.main(["campaign", "status", "--cache-dir", cache_dir])
    assert rc == 0
    out = capsys.readouterr().out
    assert "entries           : 4" in out
    assert "d1" in out and "d2" in out

    # warm re-run: all hits
    rc = cli.main(["campaign", "run", "--seeds", "1,2", "--jobs", "1",
                   "--fast", "--quiet", "--cache-dir", cache_dir])
    assert rc == 0
    assert "cache 4 hit / 0 miss" in capsys.readouterr().err

    rc = cli.main(["campaign", "clean", "--cache-dir", cache_dir])
    assert rc == 0
    assert "removed 4" in capsys.readouterr().out


def test_campaign_run_seed_range_and_subset(dummy_registry, tmp_path, capsys):
    rc = cli.main(["campaign", "run", "--ids", "d1", "--seeds", "1-3",
                   "--quiet", "--no-cache"])
    assert rc == 0
    assert "campaign: 3/3 ok" in capsys.readouterr().err


def test_campaign_run_unknown_id(dummy_registry, capsys):
    rc = cli.main(["campaign", "run", "--ids", "zzz", "--quiet",
                   "--no-cache"])
    assert rc == 2
    assert "unknown exhibit ids" in capsys.readouterr().err


def test_campaign_run_reports_failures(dummy_registry, capsys):
    dummy_registry["bad"] = Experiment("bad", "Fig. B", "bad", _failing_run)
    rc = cli.main(["campaign", "run", "--ids", "bad", "--quiet", "--no-cache",
                   "--retries", "0"])
    assert rc == 1
    captured = capsys.readouterr()
    assert "1 failed" in captured.err
    assert "always fails" in captured.err


def test_version_bump_invalidates_cli_cache(dummy_registry, tmp_path, capsys):
    """End-to-end cache invalidation when ``repro.__version__`` changes."""
    cache_dir = tmp_path / "cache"
    spec = JobSpec.make("d1", seed=1)
    ResultCache(cache_dir, version="0.0.1").put(
        spec, _dummy_run(seed=1), 1.0
    )
    rc = cli.main(["campaign", "run", "--ids", "d1", "--seeds", "1",
                   "--quiet", "--cache-dir", str(cache_dir)])
    assert rc == 0
    # old-version entry was not served: this run was a miss
    assert "cache 0 hit / 1 miss" in capsys.readouterr().err
