"""Pure unit tests for the Fig. 2 experiment's data structures."""

import pytest

from repro.dot11.link import SeparationResult
from repro.experiments.timeline import Interval


def test_normalized_throughput():
    result = SeparationResult(
        separation_channels=2, link_a_pps=100.0, link_b_pps=80.0,
        isolated_pps=100.0,
    )
    assert result.normalized_throughput == pytest.approx(0.9)


def test_normalized_throughput_zero_isolated():
    result = SeparationResult(
        separation_channels=0, link_a_pps=1.0, link_b_pps=1.0, isolated_pps=0.0
    )
    assert result.normalized_throughput == 0.0


def test_interval_duration():
    interval = Interval(start=1.5, end=2.0, channel_mhz=2460.0, source="a")
    assert interval.duration == pytest.approx(0.5)
