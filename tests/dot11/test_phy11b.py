"""Tests for the 802.11b contrast substrate (Fig. 2 behaviour)."""

import pytest

from repro.dot11.link import run_dot15_separation, run_separation
from repro.dot11.phy11b import (
    dot11b_channel_mhz,
    dot11b_mac_params,
    dot11b_mask,
)


def test_channel_grid():
    assert dot11b_channel_mhz(1) == 2412.0
    assert dot11b_channel_mhz(6) == 2437.0
    assert dot11b_channel_mhz(11) == 2462.0
    with pytest.raises(ValueError):
        dot11b_channel_mhz(0)
    with pytest.raises(ValueError):
        dot11b_channel_mhz(12)


def test_mask_is_wide():
    """11b signals are ~22 MHz wide: 2 channels (10 MHz) apart still only
    buys a handful of dB."""
    mask = dot11b_mask()
    assert mask.leakage_db(10.0) < 10.0
    assert mask.leakage_db(25.0) >= 40.0


def test_mac_params_are_dcf_scale():
    params = dot11b_mac_params()
    assert params.unit_backoff_s == pytest.approx(20e-6)
    assert params.mac_min_be == 5


def test_dot15_concurrent_from_one_channel_apart():
    results = run_dot15_separation([0, 1], seed=1, duration_s=2.0)
    same, adjacent = results
    assert same.normalized_throughput < 0.7
    assert adjacent.normalized_throughput > 0.9


def test_dot11_depressed_at_partial_overlap():
    results = run_separation([1, 3, 6], seed=1, duration_s=2.0)
    by_sep = {r.separation_channels: r.normalized_throughput for r in results}
    # partial overlap (1 and 3 channels apart) stays well below full
    assert by_sep[1] < 0.8
    assert by_sep[3] < 0.8
    # far separation recovers
    assert by_sep[6] > 0.9


def test_dot11_false_locks_are_the_mechanism():
    """At separation 2 the 802.11b receivers false-lock; at separation 6
    they do not."""
    from repro.dot11.link import _TwoLinkWorld
    from repro.dot11.phy11b import dot11b_channel_mhz as ch

    near = _TwoLinkWorld(1, True, ch(1), ch(3))
    near.run_saturated(1.0)
    near_locks = sum(
        mac.radio.false_locks for mac in near.macs.values()
    )
    far = _TwoLinkWorld(1, True, ch(1), ch(1) + 30.0)
    far.run_saturated(1.0)
    far_locks = sum(mac.radio.false_locks for mac in far.macs.values())
    assert near_locks > 50
    assert far_locks == 0
