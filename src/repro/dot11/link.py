"""The Fig. 2 two-link channel-separation experiment.

Two saturated links; link A stays on the lowest channel, link B moves one
channel index at a time.  The metric is total throughput normalised by
twice the throughput of a single isolated link — 1.0 means perfect
concurrency, ~0.5 means the links are effectively sharing one channel.

The 802.11b variant uses :class:`~repro.dot11.phy11b.Dot11Radio` (which
false-locks on overlapped-channel packets); the 802.15.4 variant uses the
standard substrate.  Identical harness, different receiver physics — the
difference in the resulting curves is the paper's Fig. 2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..mac.cca import FixedCcaThreshold
from ..mac.mac import Mac
from ..mac.params import MacParams
from ..phy.constants import CHANNEL_SPACING_MHZ, channel_center_mhz
from ..phy.fading import LogNormalFading
from ..phy.medium import Medium
from ..phy.propagation import LogDistancePathLoss
from ..phy.radio import Radio
from ..sim.rng import RngStreams
from ..sim.simulator import Simulator
from .phy11b import (
    DOT11B_BIT_RATE_BPS,
    DOT11B_CHANNEL_SPACING_MHZ,
    Dot11Radio,
    dot11b_channel_mhz,
    dot11b_mac_params,
)

__all__ = ["SeparationResult", "run_separation", "run_dot15_separation"]


@dataclass(frozen=True)
class SeparationResult:
    """Outcome for one channel separation."""

    separation_channels: int
    link_a_pps: float
    link_b_pps: float
    isolated_pps: float

    @property
    def normalized_throughput(self) -> float:
        if self.isolated_pps <= 0:
            return 0.0
        return (self.link_a_pps + self.link_b_pps) / (2.0 * self.isolated_pps)


class _TwoLinkWorld:
    """Two sender->receiver links a couple of metres apart."""

    def __init__(
        self,
        seed: int,
        dot11: bool,
        channel_a_mhz: float,
        channel_b_mhz: float,
    ) -> None:
        self.sim = Simulator()
        self.rng = RngStreams(seed)
        self.medium = Medium(
            sim=self.sim,
            path_loss=LogDistancePathLoss(),
            fading=LogNormalFading(sigma_db=3.0),
            rng=self.rng,
        )
        radio_cls = Dot11Radio if dot11 else Radio
        mac_params = dot11b_mac_params() if dot11 else MacParams()
        positions = {
            "a.s": (0.0, 0.0),
            "a.r": (1.5, 0.0),
            "b.s": (1.5, 2.0),
            "b.r": (0.0, 2.0),
        }
        channels = {
            "a.s": channel_a_mhz,
            "a.r": channel_a_mhz,
            "b.s": channel_b_mhz,
            "b.r": channel_b_mhz,
        }
        tx_power = 15.0 if dot11 else 0.0  # typical 802.11b output power
        self.macs = {}
        for name, pos in positions.items():
            radio = radio_cls(
                sim=self.sim,
                medium=self.medium,
                name=name,
                position=pos,
                channel_mhz=channels[name],
                tx_power_dbm=tx_power,
                rng=self.rng,
            )
            self.macs[name] = Mac(
                sim=self.sim,
                radio=radio,
                rng=self.rng.stream(f"mac.{name}"),
                params=mac_params,
                cca_policy=FixedCcaThreshold(-77.0),
            )
        self.dot11 = dot11

    def run_saturated(self, duration_s: float, warmup_s: float = 0.5):
        from ..net.traffic import SaturatedSource

        bit_rate = DOT11B_BIT_RATE_BPS if self.dot11 else None

        class _NodeShim:
            def __init__(self, mac):
                self.mac = mac
                self.name = mac.name
                self.sim = mac.sim

        sources = [
            SaturatedSource(
                _NodeShim(self.macs["a.s"]), "a.r", bit_rate_bps=bit_rate
            ),
            SaturatedSource(
                _NodeShim(self.macs["b.s"]), "b.r", bit_rate_bps=bit_rate
            ),
        ]
        for source in sources:
            source.start()
        self.sim.run(warmup_s)
        base_a = self.macs["a.r"].stats.delivered
        base_b = self.macs["b.r"].stats.delivered
        self.sim.run(self.sim.now + duration_s)
        a_pps = (self.macs["a.r"].stats.delivered - base_a) / duration_s
        b_pps = (self.macs["b.r"].stats.delivered - base_b) / duration_s
        return a_pps, b_pps


def _isolated_rate(seed: int, dot11: bool, duration_s: float) -> float:
    """Throughput of link A alone, with link B parked far away in spectrum
    and space (no interaction)."""
    if dot11:
        world = _TwoLinkWorld(
            seed, True, dot11b_channel_mhz(1), dot11b_channel_mhz(1) + 500.0
        )
    else:
        world = _TwoLinkWorld(
            seed, False, channel_center_mhz(11), channel_center_mhz(11) + 500.0
        )
    a_pps, _ = world.run_saturated(duration_s)
    return a_pps


def run_separation(
    separations: List[int],
    seed: int = 1,
    duration_s: float = 5.0,
    dot11: bool = True,
) -> List[SeparationResult]:
    """Normalized two-link throughput per channel-index separation."""
    isolated = _isolated_rate(seed, dot11, duration_s)
    results = []
    for separation in separations:
        if dot11:
            chan_a = dot11b_channel_mhz(1)
            chan_b = chan_a + separation * DOT11B_CHANNEL_SPACING_MHZ
        else:
            chan_a = channel_center_mhz(11)
            chan_b = chan_a + separation * CHANNEL_SPACING_MHZ
        world = _TwoLinkWorld(seed, dot11, chan_a, chan_b)
        a_pps, b_pps = world.run_saturated(duration_s)
        results.append(
            SeparationResult(
                separation_channels=separation,
                link_a_pps=a_pps,
                link_b_pps=b_pps,
                isolated_pps=isolated,
            )
        )
    return results


def run_dot15_separation(
    separations: List[int], seed: int = 1, duration_s: float = 5.0
) -> List[SeparationResult]:
    """The 802.15.4 half of Fig. 2."""
    return run_separation(separations, seed=seed, duration_s=duration_s, dot11=False)
