"""802.11b contrast substrate (paper Fig. 2 only).

802.11b receivers lock onto partially-overlapped-channel packets; 802.15.4
receivers cannot.  This package provides the minimal 11b PHY/MAC needed to
demonstrate that behavioural difference with the shared simulation kernel.
"""

from .link import SeparationResult, run_dot15_separation, run_separation
from .phy11b import (
    DOT11B_BIT_RATE_BPS,
    DOT11B_CHANNEL_1_MHZ,
    DOT11B_CHANNEL_SPACING_MHZ,
    Dot11Radio,
    dot11b_channel_mhz,
    dot11b_mac_params,
    dot11b_mask,
)

__all__ = [
    "SeparationResult",
    "run_dot15_separation",
    "run_separation",
    "DOT11B_BIT_RATE_BPS",
    "DOT11B_CHANNEL_1_MHZ",
    "DOT11B_CHANNEL_SPACING_MHZ",
    "Dot11Radio",
    "dot11b_channel_mhz",
    "dot11b_mac_params",
    "dot11b_mask",
]
