"""A minimal 802.11b PHY for the Fig. 2 contrast experiment.

The paper's Fig. 2 (after Mishra et al.) contrasts two receiver behaviours:

- an **802.11b** receiver *does* synchronise to packets from partially
  overlapped channels — the energy looks like a valid DSSS preamble, the
  receiver locks, spends the frame time decoding garbage, and misses any
  concurrent packet on its own channel;
- an **802.15.4** receiver *cannot* decode anything even 1 MHz off its
  centre frequency, so neighbouring-channel energy is just noise.

:class:`Dot11Radio` implements the first behaviour by overriding the lock
rule of :class:`~repro.phy.radio.Radio`: a signal is lockable when its
*post-mask* in-band power clears the sensitivity, whatever its channel; but
decoding only succeeds for co-channel signals.

Everything else (medium, SINR segments, CSMA engine) is reused from the
main substrate with 802.11b constants.
"""

from __future__ import annotations

from typing import Tuple

from ..mac.params import MacParams
from ..phy.mask import PiecewiseLinearMask
from ..phy.medium import Signal
from ..phy.modulation import dbpsk_ber
from ..phy.radio import Radio, RadioConfig, RadioState
from ..phy.reception import Reception
from ..sim.units import MICROSECOND, linear_to_db, mw_to_dbm

__all__ = [
    "DOT11B_CHANNEL_1_MHZ",
    "DOT11B_CHANNEL_SPACING_MHZ",
    "DOT11B_BIT_RATE_BPS",
    "dot11b_channel_mhz",
    "dot11b_mask",
    "dot11b_mac_params",
    "Dot11Radio",
]

DOT11B_CHANNEL_1_MHZ = 2412.0
DOT11B_CHANNEL_SPACING_MHZ = 5.0
#: 1 Mbps DBPSK (the basic rate keeps airtime math simple).
DOT11B_BIT_RATE_BPS = 1_000_000

#: 802.11b DSSS signals are ~22 MHz wide; spectral overlap between two
#: channels k steps (5 MHz each) apart decays slowly — channels only become
#: orthogonal ~5 steps (25 MHz) apart.  Attenuation versus offset follows
#: the usual partial-overlap factors for the 802.11b transmit mask.
DOT11B_OVERLAP_POINTS: Tuple[Tuple[float, float], ...] = (
    (0.0, 0.0),
    (5.0, 1.0),
    (10.0, 5.0),
    (15.0, 12.0),
    (20.0, 22.0),
    (25.0, 50.0),
    (30.0, 62.0),
)


def dot11b_channel_mhz(channel: int) -> float:
    """Centre frequency of 802.11b channel 1..11."""
    if not 1 <= channel <= 11:
        raise ValueError(f"802.11b channel must be in 1..11, got {channel}")
    return DOT11B_CHANNEL_1_MHZ + DOT11B_CHANNEL_SPACING_MHZ * (channel - 1)


def dot11b_mask() -> PiecewiseLinearMask:
    """Partial-overlap attenuation of ~22 MHz-wide 802.11b DSSS signals."""
    return PiecewiseLinearMask(DOT11B_OVERLAP_POINTS, max_db=70.0)


def dot11b_mac_params() -> MacParams:
    """DCF-flavoured CSMA parameters.

    We reuse the unslotted CSMA/CA engine with 802.11-scale timing: 20 us
    slots, CWmin = 32 slots (2^5), one CCA per attempt standing in for the
    DIFS check.  The engine is 802.15.4-shaped, but for a saturated
    two-link contrast the differences (freeze-and-resume backoff) do not
    change who can decode what — which is the phenomenon under test.
    """
    return MacParams(
        mac_min_be=5,
        mac_max_be=8,
        max_csma_backoffs=6,
        unit_backoff_s=20.0 * MICROSECOND,
        cca_duration_s=15.0 * MICROSECOND,
        turnaround_s=10.0 * MICROSECOND,
    )


class Dot11Radio(Radio):
    """A radio whose receiver false-locks onto overlapped-channel energy."""

    def __init__(self, *args, **kwargs) -> None:
        kwargs.setdefault("mask", dot11b_mask())
        # The sensing path and decode path share the wide 11b filter.
        kwargs.setdefault("cca_mask", kwargs["mask"])
        kwargs.setdefault(
            "config",
            RadioConfig(
                sensitivity_dbm=-84.0,
                noise_floor_dbm=-95.0,
                capture_threshold_db=-1.0,
                co_channel_tolerance_mhz=0.5,
            ),
        )
        super().__init__(*args, **kwargs)
        self.false_locks = 0

    def on_signal_start(self, signal: Signal) -> None:
        if self.current_reception is not None:
            # Close the elapsed segment under the old interference set.
            self.current_reception.on_interference_change()
            self._add_signal(signal)
            return
        self._add_signal(signal)
        if self.state is not RadioState.IDLE:
            return
        # Post-mask in-band power was cached by _add_signal.
        in_band_dbm = mw_to_dbm(signal.decode_mw)
        if in_band_dbm < self.config.sensitivity_dbm:
            return
        if self._lock_sinr_db(signal) < self.config.capture_threshold_db:
            self.sim.trace.emit(
                "preamble_missed", radio=self.name, frame=signal.frame.frame_id
            )
            return
        # The 802.11 receiver locks regardless of the signal's channel —
        # this is precisely what makes overlapped-channel concurrency
        # infeasible in 802.11 and feasible in 802.15.4.
        if not self._is_co_channel(signal):
            self.false_locks += 1
            self.sim.trace.emit(
                "false_lock", radio=self.name, frame=signal.frame.frame_id
            )
        self.current_reception = Reception(
            self,
            signal,
            self._bit_rng,
            ber_model=dbpsk_ber,
            bit_rate_bps=DOT11B_BIT_RATE_BPS,
        )

    def on_signal_end(self, signal: Signal) -> None:
        reception = self.current_reception
        locked_on_this = reception is not None and reception.signal is signal
        if locked_on_this:
            outcome = reception.finalize()
            self.current_reception = None
            self._remove_signal(signal)
            if self._is_co_channel(signal):
                self._dispatch_reception(outcome)
            # A false-locked off-channel frame never decodes: the receiver
            # simply wasted its airtime.  Nothing is dispatched.
            return
        if self.current_reception is not None:
            self.current_reception.on_interference_change()
        self._remove_signal(signal)

    def _lock_sinr_db(self, signal: Signal) -> float:
        # The post-mask in-band power was cached when the signal was added.
        in_band_mw = signal.decode_mw
        interference_mw = self.in_channel_power_mw(exclude=signal)
        if interference_mw <= 0.0:
            return 100.0
        return linear_to_db(in_band_mw / interference_mw)
