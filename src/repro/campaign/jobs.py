"""Job model for experiment campaigns.

A *campaign* is a batch of exhibit runs — every registered exhibit (or a
named subset) crossed with a list of seeds.  Each cell of that cross
product is a :class:`JobSpec`: one `(exhibit_id, seed, fast, params)`
tuple that is hashable, serialisable and content-addressable, so the
executor can schedule it, the cache can key on it and a failure report
can name it precisely.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

__all__ = ["JobSpec", "CampaignSpec", "expand_jobs"]


def _freeze_params(params: Optional[Mapping[str, Any]]) -> Tuple[Tuple[str, Any], ...]:
    """Normalise a params mapping into a sorted, hashable tuple of pairs."""
    if not params:
        return ()
    for key, value in params.items():
        if not isinstance(key, str):
            raise TypeError(f"param keys must be str, got {key!r}")
        if not isinstance(value, (str, int, float, bool, type(None))):
            raise TypeError(
                f"param {key!r} must be a JSON scalar, got {type(value).__name__}"
            )
    return tuple(sorted(params.items()))


@dataclass(frozen=True)
class JobSpec:
    """One schedulable exhibit run: ``(exhibit_id, seed, fast, params)``.

    ``params`` is stored as a sorted tuple of ``(key, value)`` pairs so the
    spec stays hashable and its JSON form is canonical.
    """

    exhibit_id: str
    seed: int = 1
    fast: bool = True
    params: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def make(
        cls,
        exhibit_id: str,
        seed: int = 1,
        fast: bool = True,
        params: Optional[Mapping[str, Any]] = None,
    ) -> "JobSpec":
        return cls(exhibit_id, int(seed), bool(fast), _freeze_params(params))

    # ------------------------------------------------------------------
    @property
    def profile(self) -> str:
        return "fast" if self.fast else "paper"

    @property
    def key(self) -> Tuple[str, int]:
        """The (exhibit_id, seed) pair used to index campaign outcomes."""
        return (self.exhibit_id, self.seed)

    @property
    def label(self) -> str:
        """Human-readable job id (``fig04@s3``) — the name server event
        streams, trace tracks and failure summaries all agree on."""
        return f"{self.exhibit_id}@s{self.seed}"

    def param_dict(self) -> Dict[str, Any]:
        return dict(self.params)

    def run_kwargs(self) -> Dict[str, Any]:
        """Keyword arguments forwarded to the exhibit's ``run`` callable."""
        kwargs: Dict[str, Any] = {"seed": self.seed, "fast": self.fast}
        kwargs.update(self.param_dict())
        return kwargs

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "exhibit_id": self.exhibit_id,
            "seed": self.seed,
            "fast": self.fast,
            "params": self.param_dict(),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "JobSpec":
        return cls.make(
            payload["exhibit_id"],
            seed=payload.get("seed", 1),
            fast=payload.get("fast", True),
            params=payload.get("params"),
        )

    def cache_key(self, version: str) -> str:
        """Content-address of this job under a given ``repro`` version.

        The key covers everything that can change the produced table:
        exhibit id, seed, profile, extra params and the package version
        (a new release invalidates every cached result).
        """
        canonical = json.dumps(
            {
                "exhibit_id": self.exhibit_id,
                "seed": self.seed,
                "profile": self.profile,
                "params": self.param_dict(),
                "version": version,
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def __str__(self) -> str:
        extra = f" {self.param_dict()}" if self.params else ""
        return f"{self.exhibit_id}@seed={self.seed}/{self.profile}{extra}"


@dataclass(frozen=True)
class CampaignSpec:
    """A declarative campaign: exhibits × seeds under one profile.

    ``ids=None`` means *every registered exhibit* (resolved lazily at
    expansion time so the spec itself does not import the registry).
    """

    ids: Optional[Tuple[str, ...]] = None
    seeds: Tuple[int, ...] = (1,)
    fast: bool = True
    params: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def make(
        cls,
        ids: Optional[Sequence[str]] = None,
        seeds: Sequence[int] = (1,),
        fast: bool = True,
        params: Optional[Mapping[str, Any]] = None,
    ) -> "CampaignSpec":
        if not seeds:
            raise ValueError("a campaign needs at least one seed")
        return cls(
            tuple(ids) if ids is not None else None,
            tuple(int(s) for s in seeds),
            bool(fast),
            _freeze_params(params),
        )

    def expand(self, known_ids: Sequence[str]) -> List[JobSpec]:
        """Cross exhibits × seeds into concrete job specs.

        ``known_ids`` is the registry's id list; explicit ``ids`` are
        validated against it so a typo fails before any work is scheduled.
        """
        if self.ids is None:
            selected: Sequence[str] = list(known_ids)
        else:
            unknown = [eid for eid in self.ids if eid not in known_ids]
            if unknown:
                raise KeyError(
                    f"unknown exhibit ids {unknown!r}; known: {sorted(known_ids)}"
                )
            selected = list(self.ids)
        return [
            JobSpec(eid, seed, self.fast, self.params)
            for eid in selected
            for seed in self.seeds
        ]


def expand_jobs(
    ids: Optional[Sequence[str]],
    seeds: Sequence[int],
    fast: bool,
    known_ids: Sequence[str],
    params: Optional[Mapping[str, Any]] = None,
) -> List[JobSpec]:
    """Convenience wrapper: build and expand a :class:`CampaignSpec`."""
    return CampaignSpec.make(ids, seeds, fast, params).expand(known_ids)
