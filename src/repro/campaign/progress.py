"""Progress and observability hooks for campaign runs.

The executor reports every job completion to a :class:`CampaignStats`
(counters: completions, failures, cache hits/misses, retries, per-job
timing) and optionally to a :class:`ProgressPrinter` that keeps a live
one-line status on a terminal stream.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import IO, Dict, Optional

__all__ = ["CampaignStats", "ProgressPrinter"]


@dataclass
class CampaignStats:
    """Mutable counters describing one campaign run.

    ``started_at`` stays wall-clock (it names a point in time for logs
    and cache payloads); ``elapsed_s`` is measured on the monotonic
    clock so an NTP step mid-campaign — routine in a server that runs
    for days — can never produce a negative or absurd duration.
    """

    total: int = 0
    completed: int = 0
    failed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    retries: int = 0
    started_at: float = field(default_factory=time.time)
    started_monotonic: float = field(default_factory=time.monotonic)
    job_elapsed_s: Dict[tuple, float] = field(default_factory=dict)

    @property
    def done(self) -> int:
        return self.completed + self.failed

    def elapsed_s(self) -> float:
        return time.monotonic() - self.started_monotonic

    def record(self, key: tuple, elapsed_s: float, *, ok: bool,
               from_cache: bool, retries: int = 0) -> None:
        self.job_elapsed_s[key] = elapsed_s
        self.retries += retries
        if from_cache:
            self.cache_hits += 1
        else:
            self.cache_misses += 1
        if ok:
            self.completed += 1
        else:
            self.failed += 1

    def summary_line(self) -> str:
        bits = [
            f"{self.completed}/{self.total} ok",
            f"{self.failed} failed",
            f"cache {self.cache_hits} hit / {self.cache_misses} miss",
        ]
        if self.retries:
            bits.append(f"{self.retries} retries")
        bits.append(f"{self.elapsed_s():.1f}s")
        return ", ".join(bits)


class ProgressPrinter:
    """Live one-line progress display (``\\r``-rewritten on a TTY).

    Falls back to one line per job on non-TTY streams so logs stay
    readable under CI.
    """

    def __init__(self, stream: Optional[IO[str]] = None, enabled: bool = True):
        self.stream = stream if stream is not None else sys.stderr
        self.enabled = enabled
        self._is_tty = bool(getattr(self.stream, "isatty", lambda: False)())
        self._last_width = 0

    def update(self, stats: CampaignStats, label: str, *, ok: bool,
               from_cache: bool, elapsed_s: float) -> None:
        if not self.enabled:
            return
        mark = "ok " if ok else "FAIL"
        origin = "cache" if from_cache else f"{elapsed_s:.1f}s"
        line = (f"[{stats.done}/{stats.total}] {mark} {label} ({origin})  "
                f"hits={stats.cache_hits} fails={stats.failed}")
        if self._is_tty:
            pad = max(0, self._last_width - len(line))
            self.stream.write("\r" + line + " " * pad)
            self._last_width = len(line)
        else:
            self.stream.write(line + "\n")
        self.stream.flush()

    def finish(self, stats: CampaignStats) -> None:
        """Emit the final summary line.

        Printed even when per-job updates are disabled (``enabled=False``
        or ``--quiet``): the one-line totals are the minimum record a CI
        log needs to be auditable.
        """
        if self.enabled and self._is_tty:
            self.stream.write("\r" + " " * self._last_width + "\r")
        self.stream.write(f"campaign: {stats.summary_line()}\n")
        self.stream.flush()
