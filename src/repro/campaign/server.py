"""Campaign-as-a-service: a long-running asyncio experiment server.

Promotes :func:`repro.campaign.executor.run_campaign` from a one-shot
batch call into a service: clients submit campaigns over HTTP/JSON, a
shared worker pool executes the jobs through the *same* worker
entrypoint (:func:`repro.campaign.executor.execute_payload`), results
land in the shared content-addressed cache, and progress streams back as
NDJSON.  Everything is stdlib — ``asyncio`` + a deliberately small
HTTP/1.1 front end — so the server runs wherever the repro does.

Endpoints
---------
- ``POST /campaigns`` — submit ``{"ids": [...], "seeds": [...],
  "fast": true, "params": {...}, "timeout_s": ..., "retries": ...,
  "obs": false}``; returns ``{"id": ..., "state": "queued", ...}``.
- ``GET /campaigns`` — summaries of every known campaign.
- ``GET /campaigns/<id>`` — state, counters and (when done) the result:
  per-job ``ResultTable`` JSON strings **byte-identical** to a one-shot
  ``repro campaign run`` of the same specs, plus aggregated tables.
- ``GET /campaigns/<id>/events`` — NDJSON progress stream (replays the
  retained history, then live events until the campaign finishes).
- ``GET /metrics`` — Prometheus text exposition of the server-lifetime
  registry: cache hit/miss/eviction, queue depth, jobs
  in-flight/completed/failed, per-exhibit wall-time summaries,
  coalescing counters, and ``worker_*`` series merged from the obs
  snapshots worker processes ship home on ``JobOutcome.metrics``.
- ``GET /cache/stats`` — deprecated alias: the same JSON as before
  ``/metrics`` existed (kept so old tooling keeps working; new tooling
  should scrape ``/metrics``).
- ``GET /campaigns/<id>/trace`` — the merged Chrome ``trace_event``
  timeline of one campaign: server-side spans (submit, cache-probe,
  queue-wait, execute) as a parent track, worker wall + sim spans below
  (see :mod:`repro.obs.tracectx`; ``repro obs timeline --campaign``).
- ``GET /debug/profile`` — the :class:`~repro.perf.profiler.
  FlightRecorder` ring: periodic CPU/RSS/GC snapshots of the server
  process.
- ``GET /healthz``, ``GET /`` — liveness and server info.
- ``POST /shutdown`` — graceful drain: stop accepting, finish
  outstanding campaigns, then exit.

Every ``/events`` record is additionally fanned out into a rotating
JSONL sink (``<state_dir>/events.jsonl``), so ``repro obs summary`` can
post-process a server run after the fact.

Crash safety
------------
Submissions are journalled to a sharded JSONL queue
(:class:`repro.campaign.queue.CampaignQueue`) before the client sees an
id; job completions are journalled *after* their table enters the shared
cache.  A killed server therefore restarts, replays the journal,
re-admits every campaign that never reached ``done`` and serves the
already-finished jobs from cache — the aggregate result is identical to
an uninterrupted run.

Determinism
-----------
A job executes as the same pure payload dict whether it arrived through
``run_campaign`` or over HTTP, in a pool process whose only input is the
spec — so a submitted campaign's tables are byte-identical to the
one-shot CLI, and identical campaigns submitted concurrently coalesce
onto one execution (single-flight) without changing anyone's bytes.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import multiprocessing
import threading
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

from ..obs.exposition import merge_worker_snapshot, render_prometheus
from ..obs.metrics import MetricsRegistry, registry_snapshot
from ..obs.sinks import RotatingJsonlSink, run_manifest
from ..obs.tracectx import SpanRecorder, campaign_trace
from ..perf.profiler import FlightRecorder
from .cache import DEFAULT_CACHE_DIR, ResultCache
from .executor import CampaignResult, JobOutcome, Runner, execute_payload
from .jobs import JobSpec, expand_jobs
from .progress import CampaignStats
from .queue import CampaignQueue

__all__ = ["CampaignServer", "ServerConfig", "DEFAULT_PORT",
           "DEFAULT_STATE_DIR"]

DEFAULT_PORT = 8642
DEFAULT_STATE_DIR = ".repro-server"

#: Events retained per campaign for late ``/events`` subscribers.
_MAX_EVENTS = 10_000


@dataclass(frozen=True)
class ServerConfig:
    """Static configuration of one :class:`CampaignServer`."""

    host: str = "127.0.0.1"
    port: int = DEFAULT_PORT
    state_dir: str = DEFAULT_STATE_DIR
    cache_dir: Optional[str] = None  # None -> shared DEFAULT_CACHE_DIR
    #: Worker processes; ``0`` runs jobs on asyncio's thread pool instead
    #: (no process isolation and no SIGALRM timeouts — the executor's
    #: non-main-thread fallback applies; used by tests and tiny setups).
    jobs: int = 2
    retries: int = 2
    backoff_s: float = 0.5
    timeout_s: Optional[float] = None
    cache_max_bytes: Optional[int] = None
    queue_shards: int = 4
    #: Rotation budget of the server-side ``/events`` JSONL sink
    #: (``<state_dir>/events.jsonl``): active-file size and backup count.
    events_max_bytes: int = 4 * 2 ** 20
    events_backups: int = 4
    #: Flight-recorder sampling period (``GET /debug/profile``).
    profile_interval_s: float = 5.0
    #: Per-job cap on sim spans exported into the campaign trace.
    trace_sim_spans: int = 4000


@dataclass
class _Campaign:
    """Live server-side state of one submitted campaign."""

    campaign_id: str
    payload: Dict[str, Any]
    specs: List[JobSpec]
    state: str = "queued"  # queued | running | done
    submitted_at: float = field(default_factory=time.time)
    resumed: bool = False
    stats: CampaignStats = field(default_factory=CampaignStats)
    outcomes: Dict[Tuple[str, int], JobOutcome] = field(default_factory=dict)
    events: List[Dict[str, Any]] = field(default_factory=list)
    result: Optional[Dict[str, Any]] = None
    changed: Optional[asyncio.Condition] = None  # created on the loop
    #: Server-side wall spans (submit / cache_probe / queue_wait /
    #: execute) — the parent track of the merged campaign trace.
    trace: SpanRecorder = field(default_factory=SpanRecorder)
    #: Per-job worker trace exports, keyed by ``JobSpec.label``.
    job_traces: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    def summary(self) -> Dict[str, Any]:
        return {
            "id": self.campaign_id,
            "state": self.state,
            "resumed": self.resumed,
            "submitted_at": self.submitted_at,
            "total": self.stats.total,
            "done": self.stats.done,
            "completed": self.stats.completed,
            "failed": self.stats.failed,
            "cache_hits": self.stats.cache_hits,
            "cache_misses": self.stats.cache_misses,
            "retries": self.stats.retries,
            "elapsed_s": round(self.stats.elapsed_s(), 6),
        }


def _campaign_digest(payload: Dict[str, Any]) -> str:
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:8]


class CampaignServer:
    """The long-running experiment server (one instance, one loop)."""

    def __init__(self, config: ServerConfig = ServerConfig(), *,
                 runner: Optional[Runner] = None,
                 known_ids: Optional[List[str]] = None) -> None:
        self.config = config
        self.runner = runner  # injectable for tests; must be picklable
        self._known_ids = known_ids
        self.metrics = MetricsRegistry()
        self.cache = ResultCache(
            config.cache_dir or DEFAULT_CACHE_DIR,
            max_bytes=config.cache_max_bytes,
            metrics=self.metrics,
        )
        self.queue = CampaignQueue(
            Path(config.state_dir) / "queue", shards=config.queue_shards
        )
        self.started_at = time.time()
        #: Server-lifetime ``/events`` fan-out (rotating, manifest-led).
        self.events_sink = RotatingJsonlSink(
            Path(config.state_dir) / "events.jsonl",
            max_bytes=config.events_max_bytes,
            backups=config.events_backups,
            manifest=run_manifest(role="campaign-server"),
        )
        self.jobs_in_flight = 0
        self.flight = FlightRecorder(
            interval_s=config.profile_interval_s,
            sample_fn=lambda: {
                "jobs_in_flight": self.jobs_in_flight,
                "campaigns": len(self._campaigns),
            },
        )
        # Pre-register the headline counters so /metrics exposes every
        # key series from the first scrape (at 0), not only after its
        # first increment — dashboards and the CI assertions key on the
        # names being present.
        for name in (
            "server.campaigns.submitted", "server.campaigns.completed",
            "server.jobs.completed", "server.jobs.failed",
            "server.jobs.retried", "server.jobs.coalesced",
            "server.events.sink_errors",
            "campaign.cache.hits", "campaign.cache.misses",
            "campaign.cache.writes", "campaign.cache.evictions",
        ):
            self.metrics.counter(name)
        # Live service gauges: registered once, read at scrape time.
        self.metrics.gauge("server.jobs.in_flight",
                           lambda: float(self.jobs_in_flight))
        self.metrics.gauge("server.uptime_s",
                           lambda: time.time() - self.started_at)
        self.metrics.gauge(
            "server.campaigns.running",
            lambda: float(sum(1 for c in self._campaigns.values()
                              if c.state == "running")),
        )
        self.metrics.gauge(
            "server.queue.depth",
            lambda: float(sum(max(0, c.stats.total - c.stats.done)
                              for c in self._campaigns.values()
                              if c.state != "done")),
        )
        self.port: Optional[int] = None  # actual bound port once ready
        self.ready = threading.Event()
        #: Optional callback invoked with the server once it is bound
        #: (the CLI prints the listening banner through this).
        self.announce = None
        self._campaigns: Dict[str, _Campaign] = {}
        self._tasks: Dict[str, asyncio.Task] = {}
        self._inflight: Dict[str, asyncio.Future] = {}
        self._seq = 0
        self._draining = False
        self._stopped: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._pool: Optional[ProcessPoolExecutor] = None
        self._server: Optional[asyncio.base_events.Server] = None

    # ------------------------------------------------------------------
    # Lifecycle.

    def run(self) -> None:
        """Blocking entry point: start, serve until drained, clean up."""
        asyncio.run(self._main())

    async def _main(self) -> None:
        await self.start()
        assert self._stopped is not None
        try:
            await self._stopped.wait()
        finally:
            await self._close()

    async def start(self) -> None:
        """Bind, recover the journal, and begin accepting submissions."""
        self._loop = asyncio.get_running_loop()
        self._stopped = asyncio.Event()
        if self.config.jobs > 0:
            # Spawned (not forked) workers: a forked pool child would
            # inherit the listening socket, and after a SIGKILL of the
            # server the orphaned workers would keep the port bound —
            # the restarted server could never come back up.
            self._pool = ProcessPoolExecutor(
                max_workers=self.config.jobs,
                mp_context=multiprocessing.get_context("spawn"),
            )
        self._server = await asyncio.start_server(
            self._handle_client, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        try:
            import signal as _signal

            for signum in (_signal.SIGINT, _signal.SIGTERM):
                self._loop.add_signal_handler(signum, self.request_shutdown)
        except (NotImplementedError, RuntimeError, ValueError):
            pass  # non-main-thread loop (tests) or platform without signals
        # Re-admit campaigns the previous process never finished.  Their
        # completed jobs are in the shared cache, so the re-run serves
        # them as hits and only the interrupted tail is recomputed.
        for queued in self.queue.recover():
            try:
                self._admit(queued.campaign_id, queued.payload,
                            journal=False, resumed=True)
            except Exception:
                # A journalled payload that no longer expands (exhibit
                # renamed, corrupted record) must not block the server.
                self._count("server.campaigns.recovery_failed")
                continue
            self._count("server.campaigns.recovered")
        self.flight.start()
        self.ready.set()
        if self.announce is not None:
            self.announce(self)

    def request_shutdown(self) -> None:
        """Thread-safe graceful-drain trigger (signal handlers, tests)."""
        if self._loop is None:
            return
        try:
            self._loop.call_soon_threadsafe(
                lambda: self._loop and
                self._loop.create_task(self.shutdown())
            )
        except RuntimeError:
            pass  # loop already closed: the server is gone, nothing to do

    async def shutdown(self) -> None:
        """Drain: refuse new work, finish outstanding campaigns, stop."""
        if self._draining:
            return
        self._draining = True
        outstanding = [t for t in self._tasks.values() if not t.done()]
        if outstanding:
            await asyncio.wait(outstanding)
        if self._stopped is not None:
            self._stopped.set()

    async def _close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
        self.flight.stop()
        self.events_sink.close()
        self.ready.clear()

    def _count(self, name: str, amount: float = 1.0) -> None:
        self.metrics.counter(name).inc(amount)

    # ------------------------------------------------------------------
    # Campaign admission and execution.

    def _registry_ids(self) -> List[str]:
        if self._known_ids is not None:
            return list(self._known_ids)
        from ..experiments.registry import REGISTRY

        return list(REGISTRY)

    def _expand(self, payload: Dict[str, Any]) -> List[JobSpec]:
        ids = payload.get("ids")
        if ids is not None and (
            not isinstance(ids, list)
            or not all(isinstance(i, str) for i in ids)
        ):
            raise ValueError("'ids' must be a list of exhibit id strings")
        seeds = payload.get("seeds", [1])
        if (not isinstance(seeds, list) or not seeds
                or not all(isinstance(s, int) for s in seeds)):
            raise ValueError("'seeds' must be a non-empty list of ints")
        params = payload.get("params")
        if params is not None and not isinstance(params, dict):
            raise ValueError("'params' must be an object")
        return expand_jobs(ids, seeds, bool(payload.get("fast", True)),
                           self._registry_ids(), params)

    def _admit(self, campaign_id: Optional[str], payload: Dict[str, Any],
               *, journal: bool = True, resumed: bool = False) -> _Campaign:
        """Validate, journal and schedule one campaign (loop thread)."""
        specs = self._expand(payload)
        if campaign_id is None:
            self._seq += 1
            campaign_id = f"c{self._seq:04d}-{_campaign_digest(payload)}"
        else:
            # Recovered ids look like c0007-...: keep the sequence ahead
            # of them so new ids never collide.
            try:
                self._seq = max(self._seq, int(campaign_id[1:5]))
            except ValueError:
                pass
        rec = _Campaign(campaign_id, payload, specs, resumed=resumed)
        rec.stats.total = len(specs)
        rec.changed = asyncio.Condition()
        self._campaigns[campaign_id] = rec
        if journal:
            self.queue.record_submit(campaign_id, payload)
        self._count("server.campaigns.submitted")
        rec.trace.add("submit", rec.submitted_at, time.time())
        self._emit(rec, {"event": "submitted", "id": campaign_id,
                         "jobs": len(specs), "resumed": resumed})
        self._tasks[campaign_id] = asyncio.get_running_loop().create_task(
            self._run_campaign(rec)
        )
        return rec

    def _emit(self, rec: _Campaign, event: Dict[str, Any]) -> None:
        event.setdefault("ts", round(time.time(), 3))
        event["seq"] = len(rec.events)
        if len(rec.events) < _MAX_EVENTS:
            rec.events.append(event)
        try:
            self.events_sink.emit(
                {"kind": "event", "campaign": rec.campaign_id, **event})
        except Exception:
            # Telemetry fan-out must never fail a campaign: a full disk
            # or closed sink only bumps a counter the scrape can see.
            self._count("server.events.sink_errors")
        assert rec.changed is not None

        async def _notify() -> None:
            async with rec.changed:  # type: ignore[union-attr]
                rec.changed.notify_all()  # type: ignore[union-attr]

        asyncio.get_running_loop().create_task(_notify())

    async def _run_campaign(self, rec: _Campaign) -> None:
        rec.state = "running"
        self._emit(rec, {"event": "started", "id": rec.campaign_id})
        # The pool already bounds the processes actually computing; the
        # semaphore only bounds how much work one campaign parks in the
        # pool's queue at a time, so concurrent campaigns interleave.
        width = max(1, self.config.jobs or 4)
        semaphore = asyncio.Semaphore(width)

        async def one(spec: JobSpec) -> None:
            enqueued = time.time()
            async with semaphore:
                acquired = time.time()
                rec.trace.add("queue_wait", enqueued, acquired,
                              job=spec.label)
                self.metrics.histogram(
                    "server.job.queue_wait_s", exhibit=spec.exhibit_id
                ).observe(acquired - enqueued)
                outcome = await self._execute_spec(rec, spec)
            if not outcome.from_cache:
                # Cache hits are ~free and would drown the signal; the
                # per-exhibit latency summary tracks real executions.
                self.metrics.histogram(
                    "server.job.elapsed_s", exhibit=spec.exhibit_id
                ).observe(outcome.elapsed_s)
            rec.outcomes[spec.key] = outcome
            rec.stats.record(spec.key, outcome.elapsed_s, ok=outcome.ok,
                             from_cache=outcome.from_cache,
                             retries=max(0, outcome.attempts - 1))
            self.queue.record_job(
                rec.campaign_id, spec.exhibit_id, spec.seed,
                ok=outcome.ok, from_cache=outcome.from_cache,
                elapsed_s=outcome.elapsed_s,
            )
            self._count("server.jobs.completed" if outcome.ok
                        else "server.jobs.failed")
            event: Dict[str, Any] = {
                "event": "job", "id": rec.campaign_id,
                "exhibit_id": spec.exhibit_id, "seed": spec.seed,
                "ok": outcome.ok, "from_cache": outcome.from_cache,
                "elapsed_s": round(outcome.elapsed_s, 6),
                "done": rec.stats.done, "total": rec.stats.total,
            }
            if outcome.error:
                event["error"] = outcome.error.strip().splitlines()[-1]
            self._emit(rec, event)

        await asyncio.gather(*(one(spec) for spec in rec.specs))
        rec.result = self._build_result(rec)
        rec.state = "done"
        self.queue.record_done(rec.campaign_id)
        self._count("server.campaigns.completed")
        self._emit(rec, {
            "event": "done", "id": rec.campaign_id,
            "ok": rec.stats.failed == 0,
            "completed": rec.stats.completed, "failed": rec.stats.failed,
            "cache_hits": rec.stats.cache_hits,
            "elapsed_s": round(rec.stats.elapsed_s(), 6),
        })

    def _build_result(self, rec: _Campaign) -> Dict[str, Any]:
        """Fold outcomes into the response payload, in spec order.

        The per-job ``ResultTable`` JSON strings are produced by the same
        ``to_json`` used by ``repro campaign run`` and the determinism
        oracle, so a client can byte-compare them against a one-shot run.
        """
        result = CampaignResult(stats=rec.stats)
        for spec in rec.specs:
            result.outcomes[spec.key] = rec.outcomes[spec.key]
        tables = {
            spec.label: outcome.table.to_json()
            for spec in rec.specs
            for outcome in (rec.outcomes[spec.key],)
            if outcome.table is not None
        }
        aggregated = {
            eid: table.to_json()
            for eid, table in result.aggregated().items()
        }
        failures = [
            {"spec": str(o.spec), "attempts": o.attempts, "error": o.error}
            for o in result.failures()
        ]
        return {"tables": tables, "aggregated": aggregated,
                "failures": failures}

    async def _execute_spec(self, rec: _Campaign,
                            spec: JobSpec) -> JobOutcome:
        """One job: cache, single-flight coalescing, retries, pool."""
        with rec.trace.span("cache_probe", job=spec.label):
            entry = self.cache.get(spec)
        if entry is not None:
            return JobOutcome(spec, entry.table, None, attempts=0,
                              elapsed_s=entry.elapsed_s, from_cache=True,
                              metrics=entry.metrics)
        key = spec.cache_key(self.cache.version)
        while (leader := self._inflight.get(key)) is not None:
            # An identical job (same exhibit/seed/profile/params/version)
            # is already computing — likely the same campaign submitted
            # by a second client.  Wait for the leader, then take the
            # result from the shared cache instead of recomputing.
            self._count("server.jobs.coalesced")
            await asyncio.shield(leader)
            entry = self.cache.get(spec)
            if entry is not None:
                return JobOutcome(spec, entry.table, None, attempts=0,
                                  elapsed_s=entry.elapsed_s,
                                  from_cache=True, metrics=entry.metrics)
            # Leader failed (or the entry was evicted): try to lead.
        assert self._loop is not None
        future = self._loop.create_future()
        self._inflight[key] = future
        try:
            attempts = 0
            elapsed = 0.0
            while True:
                attempts += 1
                raw = await self._dispatch(rec, spec)
                elapsed += raw["elapsed_s"]
                if raw.get("trace"):
                    rec.job_traces[spec.label] = raw["trace"]
                if raw["ok"]:
                    table_dict = raw["table"]
                    from ..experiments.results import ResultTable

                    table = ResultTable.from_dict(table_dict)
                    metrics = raw.get("metrics")
                    if metrics:
                        # Fresh execution only (cache hits replay stored
                        # snapshots and would double-count): fold the
                        # worker's obs totals into worker.* series.
                        merge_worker_snapshot(self.metrics, metrics)
                    self.cache.put(spec, table, raw["elapsed_s"],
                                   metrics=metrics)
                    return JobOutcome(spec, table, None, attempts, elapsed,
                                      metrics=metrics)
                if attempts > self.config.retries:
                    return JobOutcome(spec, None, raw["error"], attempts,
                                      elapsed)
                self._count("server.jobs.retried")
                await asyncio.sleep(
                    self.config.backoff_s * (2 ** (attempts - 1))
                )
        finally:
            self._inflight.pop(key, None)
            future.set_result(None)

    async def _dispatch(self, rec: _Campaign,
                        spec: JobSpec) -> Dict[str, Any]:
        """Ship one payload to the worker pool (or the thread fallback).

        The payload carries the job's :class:`TraceContext` so the worker
        stamps its spans with the campaign/job identity, and ``obs`` when
        the submission asked for it — in which case the worker's metric
        snapshot rides back on the result for the ``worker.*`` merge.
        """
        payload: Dict[str, Any] = {
            "spec": spec.to_dict(), "timeout_s": self.config.timeout_s,
            "trace": {"campaign": rec.campaign_id, "job": spec.label},
            "trace_sim_spans": self.config.trace_sim_spans,
        }
        if rec.payload.get("obs"):
            payload["obs"] = True
        assert self._loop is not None
        self.jobs_in_flight += 1
        t0 = time.time()
        try:
            return await self._loop.run_in_executor(
                self._pool, execute_payload, payload, self.runner
            )
        except Exception:  # broken pool / unpicklable runner
            return {"ok": False, "error": traceback.format_exc(limit=4),
                    "elapsed_s": 0.0}
        finally:
            self.jobs_in_flight -= 1
            rec.trace.add("execute", t0, time.time(), job=spec.label)

    # ------------------------------------------------------------------
    # HTTP front end.

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            request = await asyncio.wait_for(reader.readline(), timeout=30)
            parts = request.decode("latin-1").split()
            if len(parts) < 2:
                return
            method, target = parts[0].upper(), parts[1]
            headers: Dict[str, str] = {}
            while True:
                line = await asyncio.wait_for(reader.readline(), timeout=30)
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                headers[name.strip().lower()] = value.strip()
            length = int(headers.get("content-length", "0") or 0)
            body = await reader.readexactly(length) if length else b""
            await self._route(method, target, body, writer)
        except (asyncio.IncompleteReadError, asyncio.TimeoutError,
                ConnectionError):
            pass
        except Exception:
            try:
                self._respond(writer, 500, {
                    "error": traceback.format_exc(limit=4)
                })
            except Exception:
                pass
        finally:
            try:
                if not writer.is_closing():
                    await writer.drain()
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    async def _route(self, method: str, target: str, body: bytes,
                     writer: asyncio.StreamWriter) -> None:
        path = target.split("?", 1)[0].rstrip("/") or "/"
        if method == "GET" and path in ("/", "/healthz"):
            self._respond(writer, 200, self.info())
        elif method == "POST" and path == "/campaigns":
            await self._post_campaign(body, writer)
        elif method == "GET" and path == "/campaigns":
            self._respond(writer, 200, {
                "campaigns": [c.summary()
                              for c in self._campaigns.values()],
            })
        elif method == "GET" and path == "/metrics":
            self._respond_text(writer, 200, render_prometheus(self.metrics))
        elif method == "GET" and path == "/debug/profile":
            self._respond(writer, 200, self.flight.report())
        elif method == "GET" and path == "/cache/stats":
            # Deprecated alias: /metrics carries the same counters as
            # campaign_cache_* series; the JSON shape is pinned by tests
            # so pre-/metrics tooling keeps working unchanged.
            snap = self.cache.stats_snapshot()
            snap["metrics"] = registry_snapshot(self.metrics)
            self._respond(writer, 200, snap)
        elif method == "POST" and path == "/shutdown":
            outstanding = sum(
                1 for c in self._campaigns.values() if c.state != "done"
            )
            self._respond(writer, 202, {
                "state": "draining", "outstanding": outstanding,
            })
            assert self._loop is not None
            self._loop.create_task(self.shutdown())
        elif path.startswith("/campaigns/"):
            rest = path[len("/campaigns/"):]
            if method == "GET" and rest.endswith("/events"):
                await self._stream_events(rest[: -len("/events")].rstrip("/"),
                                          writer)
            elif method == "GET" and rest.endswith("/trace"):
                cid = rest[: -len("/trace")].rstrip("/")
                rec = self._campaigns.get(cid)
                if rec is None:
                    self._respond(writer, 404,
                                  {"error": f"unknown campaign {cid!r}"})
                else:
                    self._respond(writer, 200, campaign_trace(
                        rec.campaign_id, rec.trace.spans, rec.job_traces,
                        metadata={"state": rec.state,
                                  "jobs": len(rec.specs)},
                    ))
            elif method == "GET":
                rec = self._campaigns.get(rest)
                if rec is None:
                    self._respond(writer, 404,
                                  {"error": f"unknown campaign {rest!r}"})
                else:
                    doc = rec.summary()
                    doc["result"] = rec.result
                    self._respond(writer, 200, doc)
            else:
                self._respond(writer, 405, {"error": "method not allowed"})
        else:
            self._respond(writer, 404, {"error": f"no route {path!r}"})

    async def _post_campaign(self, body: bytes,
                             writer: asyncio.StreamWriter) -> None:
        if self._draining:
            self._respond(writer, 503, {"error": "server is draining"})
            return
        try:
            payload = json.loads(body.decode("utf-8")) if body else {}
            if not isinstance(payload, dict):
                raise ValueError("submission must be a JSON object")
            rec = self._admit(None, payload)
        except (ValueError, KeyError) as exc:
            self._respond(writer, 400, {"error": str(exc)})
            return
        doc = rec.summary()
        doc["jobs"] = len(rec.specs)
        self._respond(writer, 200, doc)

    async def _stream_events(self, campaign_id: str,
                             writer: asyncio.StreamWriter) -> None:
        rec = self._campaigns.get(campaign_id)
        if rec is None:
            self._respond(writer, 404,
                          {"error": f"unknown campaign {campaign_id!r}"})
            return
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Cache-Control: no-store\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()
        cursor = 0
        assert rec.changed is not None
        while True:
            while cursor < len(rec.events):
                line = json.dumps(rec.events[cursor],
                                  separators=(",", ":")) + "\n"
                writer.write(line.encode("utf-8"))
                cursor += 1
            await writer.drain()
            # Events appended while drain() was awaited must still go
            # out, so only stop once the cursor has caught up too.
            if rec.state == "done" and cursor >= len(rec.events):
                return
            async with rec.changed:
                if cursor >= len(rec.events) and rec.state != "done":
                    await rec.changed.wait()

    _REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request",
                404: "Not Found", 405: "Method Not Allowed",
                500: "Internal Server Error",
                503: "Service Unavailable"}

    def _respond(self, writer: asyncio.StreamWriter, status: int,
                 obj: Dict[str, Any]) -> None:
        self._write_response(
            writer, status, json.dumps(obj, sort_keys=True).encode("utf-8"),
            "application/json",
        )

    def _respond_text(self, writer: asyncio.StreamWriter, status: int,
                      text: str) -> None:
        """Plain-text response — the Prometheus exposition content type."""
        self._write_response(
            writer, status, text.encode("utf-8"),
            "text/plain; version=0.0.4; charset=utf-8",
        )

    def _write_response(self, writer: asyncio.StreamWriter, status: int,
                        body: bytes, content_type: str) -> None:
        head = (
            f"HTTP/1.1 {status} {self._REASONS.get(status, 'Unknown')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + body)

    # ------------------------------------------------------------------
    def info(self) -> Dict[str, Any]:
        from .. import __version__

        return {
            "server": "repro-campaign",
            "version": __version__,
            "uptime_s": round(time.time() - self.started_at, 3),
            "draining": self._draining,
            "jobs": self.config.jobs,
            "campaigns": len(self._campaigns),
            "running": sum(1 for c in self._campaigns.values()
                           if c.state == "running"),
            "jobs_in_flight": self.jobs_in_flight,
            "events_jsonl": str(self.events_sink.path),
            "queue": self.queue.status(),
        }
