"""Multiprocess campaign executor: timeouts, retries, graceful failure.

The executor takes a list of :class:`JobSpec`\\ s and runs them either
inline (``jobs=1`` — bit-for-bit the sequential behaviour) or on a
:class:`concurrent.futures.ProcessPoolExecutor` (``jobs>1``).  Either
way each job gets:

- a **result cache** lookup first (unless disabled) — hits never touch
  the pool;
- a **per-job timeout** enforced *inside* the worker via ``SIGALRM`` so a
  runaway simulation cannot wedge the campaign;
- a **bounded retry** with exponential backoff — transient failures are
  re-attempted ``retries`` times before being recorded;
- **graceful degradation** — a job that exhausts its retries yields a
  :class:`JobOutcome` carrying the error text; the campaign always runs
  to completion and never raises because one exhibit misbehaved.

Determinism: a job is always executed as
``REGISTRY[exhibit_id].run(seed=..., fast=..., **params)`` in a process
whose only input is the spec, so results at a fixed seed are identical
regardless of ``jobs`` (verified by tests and the acceptance criteria).
"""

from __future__ import annotations

import signal
import threading
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..experiments.results import ResultTable
from .cache import ResultCache
from .jobs import CampaignSpec, JobSpec
from .progress import CampaignStats, ProgressPrinter

__all__ = [
    "JobOutcome",
    "CampaignResult",
    "run_campaign",
    "run_registry_job",
    "execute_payload",
    "JobTimeout",
]

#: A runner maps a JobSpec to its ResultTable (the default consults the
#: registry; tests inject flaky/recording runners).
Runner = Callable[[JobSpec], ResultTable]


class JobTimeout(Exception):
    """Raised inside a worker when a job exceeds its wall-clock budget."""


def run_registry_job(spec: JobSpec) -> ResultTable:
    """Default runner: resolve the exhibit in the registry and run it."""
    from ..experiments.registry import get

    return get(spec.exhibit_id).run(**spec.run_kwargs())


@dataclass(frozen=True)
class JobOutcome:
    """What happened to one job: a table, or a recorded failure."""

    spec: JobSpec
    table: Optional[ResultTable]
    error: Optional[str]
    attempts: int
    elapsed_s: float
    from_cache: bool = False
    #: Observability snapshot of the run (``obs=True`` campaigns only).
    metrics: Optional[Dict[str, Any]] = None

    @property
    def ok(self) -> bool:
        return self.table is not None


@dataclass
class CampaignResult:
    """All outcomes of one campaign run, indexed by ``(exhibit_id, seed)``."""

    outcomes: Dict[Tuple[str, int], JobOutcome] = field(default_factory=dict)
    stats: CampaignStats = field(default_factory=CampaignStats)

    @property
    def ok(self) -> bool:
        return not self.failures()

    def failures(self) -> List[JobOutcome]:
        return [o for o in self.outcomes.values() if not o.ok]

    def exhibit_ids(self) -> List[str]:
        seen: List[str] = []
        for eid, _seed in self.outcomes:
            if eid not in seen:
                seen.append(eid)
        return seen

    def tables_for(self, exhibit_id: str) -> List[ResultTable]:
        """Successful per-seed tables of one exhibit, in seed order."""
        pairs = sorted(
            (seed, outcome)
            for (eid, seed), outcome in self.outcomes.items()
            if eid == exhibit_id and outcome.ok
        )
        return [outcome.table for _seed, outcome in pairs]

    def outcome(self, exhibit_id: str, seed: int) -> JobOutcome:
        return self.outcomes[(exhibit_id, seed)]

    def aggregated(self) -> Dict[str, ResultTable]:
        """Per-exhibit mean ± CI tables (see :mod:`repro.campaign.aggregate`)."""
        from .aggregate import aggregate_campaign

        return aggregate_campaign(self)


# ----------------------------------------------------------------------
# Worker-side execution (runs in the pool process for jobs > 1).


def _alarm_handler(_signum, _frame):  # pragma: no cover - fires via signal
    raise JobTimeout()


def _execute_with_timeout(
    runner: Runner, spec: JobSpec, timeout_s: Optional[float]
) -> ResultTable:
    """Run one job, enforcing the timeout with ``SIGALRM`` when available.

    ``signal.signal``/``setitimer`` raise ``ValueError`` off the main
    thread, so when a worker *thread* (the campaign server runs jobs on
    executor threads) reaches this point the alarm is skipped and the
    job runs without a wall-clock budget rather than crashing the
    thread.  Pool *processes* execute jobs on their main thread and keep
    the full timeout behaviour.
    """
    use_alarm = (
        timeout_s is not None
        and timeout_s > 0
        and hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not use_alarm:
        return runner(spec)
    previous = signal.signal(signal.SIGALRM, _alarm_handler)
    signal.setitimer(signal.ITIMER_REAL, float(timeout_s))
    try:
        return runner(spec)
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


#: ObsSession is a process-global ambient that refuses to nest.  Pool
#: processes run one job at a time, but the campaign server's ``jobs=0``
#: mode executes jobs on *threads* of one process — without this lock two
#: concurrent obs jobs would collide on the ambient slot.  Non-obs jobs
#: never take it, so the obs-off path keeps its full parallelism.
_OBS_LOCK = threading.Lock()


def _worker(payload: Dict[str, Any], runner: Optional[Runner]) -> Dict[str, Any]:
    """Pool entry point: pure data in, pure data out (pickle-friendly).

    Optional payload keys beyond ``spec``/``timeout_s``:

    - ``obs`` — run under an ambient obs session and return its snapshot
      as ``metrics``;
    - ``trace`` — a :class:`~repro.obs.tracectx.TraceContext` dict; when
      present the result carries a ``trace`` export (wall-clock execute
      span, plus bounded sim spans when ``obs`` is also on) for the
      server's merged per-campaign timeline;
    - ``trace_sim_spans`` — cap on exported sim spans (default 4000).
    """
    spec = JobSpec.from_dict(payload["spec"])
    timeout_s = payload.get("timeout_s")
    trace_ctx = payload.get("trace")
    start = time.perf_counter()
    wall_start = time.time()
    try:
        obs_session = None
        if payload.get("obs"):
            # Event-driven telemetry only (sample_interval_s=None): the
            # snapshot costs a few counters per frame, not a gauge sweep,
            # and enabling it never changes the job's fixed-seed result.
            from ..obs.runtime import ObsSession

            with _OBS_LOCK:
                with ObsSession(sample_interval_s=None) as obs_session:
                    table = _execute_with_timeout(
                        runner or run_registry_job, spec, timeout_s
                    )
                metrics = obs_session.snapshot()
        else:
            table = _execute_with_timeout(
                runner or run_registry_job, spec, timeout_s
            )
            metrics = None
        result = {
            "ok": True,
            "table": table.to_dict(),
            "elapsed_s": time.perf_counter() - start,
        }
        if metrics is not None:
            result["metrics"] = metrics
        if trace_ctx is not None:
            trace: Dict[str, Any] = {
                "campaign": trace_ctx.get("campaign", ""),
                "job": trace_ctx.get("job", str(spec)),
                "wall": [{"name": "execute", "job": trace_ctx.get("job", ""),
                          "t0": wall_start, "t1": time.time()}],
            }
            if obs_session is not None:
                from ..obs.tracectx import export_sim_spans

                trace.update(export_sim_spans(
                    obs_session.recorders,
                    max_spans=int(payload.get("trace_sim_spans", 4000)),
                ))
            result["trace"] = trace
        return result
    except JobTimeout:
        return {
            "ok": False,
            "error": f"timeout after {timeout_s:.1f}s",
            "elapsed_s": time.perf_counter() - start,
        }
    except Exception:
        return {
            "ok": False,
            "error": traceback.format_exc(limit=8),
            "elapsed_s": time.perf_counter() - start,
        }


#: Public name of the pool entry point: the campaign server submits the
#: exact same payload dicts to its own worker pool, so a job executes
#: identically whether it came from ``run_campaign`` or over HTTP.
execute_payload = _worker


# ----------------------------------------------------------------------
# Parent-side orchestration.


@dataclass
class _Pending:
    spec: JobSpec
    attempts: int = 0
    elapsed_s: float = 0.0
    not_before: float = 0.0
    last_error: Optional[str] = None


def _payload(pending: _Pending, timeout_s: Optional[float],
             obs: bool = False) -> Dict[str, Any]:
    payload: Dict[str, Any] = {
        "spec": pending.spec.to_dict(), "timeout_s": timeout_s,
    }
    if obs:
        payload["obs"] = True
    return payload


def run_campaign(
    jobs_or_spec: Sequence[JobSpec] | CampaignSpec,
    *,
    jobs: int = 1,
    cache: ResultCache | None | bool = None,
    timeout_s: Optional[float] = None,
    retries: int = 2,
    backoff_s: float = 0.5,
    runner: Optional[Runner] = None,
    progress: Optional[ProgressPrinter] = None,
    stats: Optional[CampaignStats] = None,
    obs: bool = False,
) -> CampaignResult:
    """Run a batch of exhibit jobs and collect every outcome.

    Parameters
    ----------
    jobs_or_spec:
        Either an explicit list of :class:`JobSpec` or a
        :class:`CampaignSpec` (expanded against the registry).
    jobs:
        Worker processes.  ``1`` executes inline in this process (no
        pool), which is also the fallback when only one job remains.
    cache:
        ``None`` → use the default :class:`ResultCache`; ``False`` →
        disable caching; any :class:`ResultCache` → use it.
    timeout_s:
        Per-job wall-clock budget; an expired job records a failure
        (and is retried like any other failure).
    retries:
        Extra attempts after the first failure, with exponential
        backoff ``backoff_s * 2**(attempt-1)``.
    runner:
        Override the job runner (must be picklable when ``jobs>1``);
        defaults to registry execution.
    obs:
        When True each worker runs its job under an ambient
        :class:`~repro.obs.runtime.ObsSession` (event-driven metrics
        only) and the resulting snapshot rides along on
        :attr:`JobOutcome.metrics` and into the result cache.  Jobs that
        hit the cache reuse the cached snapshot when one was stored.
    """
    if isinstance(jobs_or_spec, CampaignSpec):
        from ..experiments.registry import all_ids

        specs = jobs_or_spec.expand(all_ids())
    else:
        specs = list(jobs_or_spec)
    seen: set = set()
    for spec in specs:
        if spec.key in seen:
            raise ValueError(f"duplicate job {spec}")
        seen.add(spec.key)

    if cache is False:
        cache_obj: Optional[ResultCache] = None
    elif cache is None:
        cache_obj = ResultCache()
    else:
        cache_obj = cache

    result = CampaignResult(stats=stats or CampaignStats())
    result.stats.total = len(specs)
    jobs = max(1, int(jobs))
    retries = max(0, int(retries))

    def record(outcome: JobOutcome) -> None:
        result.outcomes[outcome.spec.key] = outcome
        result.stats.record(
            outcome.spec.key,
            outcome.elapsed_s,
            ok=outcome.ok,
            from_cache=outcome.from_cache,
            retries=max(0, outcome.attempts - 1),
        )
        if progress is not None:
            progress.update(
                result.stats,
                str(outcome.spec),
                ok=outcome.ok,
                from_cache=outcome.from_cache,
                elapsed_s=outcome.elapsed_s,
            )

    # 1. cache pass -----------------------------------------------------
    pending: List[_Pending] = []
    for spec in specs:
        entry = cache_obj.get(spec) if cache_obj is not None else None
        if entry is not None:
            record(JobOutcome(spec, entry.table, None, attempts=0,
                              elapsed_s=entry.elapsed_s, from_cache=True,
                              metrics=entry.metrics))
        else:
            pending.append(_Pending(spec))

    # 2. execution pass -------------------------------------------------
    def settle(pend: _Pending, raw: Dict[str, Any]) -> None:
        """Fold one attempt's raw worker dict into retry/record logic."""
        pend.attempts += 1
        pend.elapsed_s += raw["elapsed_s"]
        if raw["ok"]:
            table = ResultTable.from_dict(raw["table"])
            metrics = raw.get("metrics")
            if cache_obj is not None:
                cache_obj.put(pend.spec, table, raw["elapsed_s"],
                              metrics=metrics)
            record(JobOutcome(pend.spec, table, None, pend.attempts,
                              pend.elapsed_s, metrics=metrics))
        elif pend.attempts > retries:
            record(JobOutcome(pend.spec, None, raw["error"], pend.attempts,
                              pend.elapsed_s))
        else:
            pend.last_error = raw["error"]
            pend.not_before = (
                time.monotonic() + backoff_s * (2 ** (pend.attempts - 1))
            )
            requeue.append(pend)

    if jobs == 1 or len(pending) <= 1:
        queue = list(pending)
        requeue: List[_Pending] = []
        while queue or requeue:
            if not queue:
                queue, requeue = requeue, []
            pend = queue.pop(0)
            delay = pend.not_before - time.monotonic()
            if delay > 0:
                time.sleep(delay)
            settle(pend, _worker(_payload(pend, timeout_s, obs), runner))
    else:
        requeue = []
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures = {
                pool.submit(_worker, _payload(p, timeout_s, obs), runner): p
                for p in pending
            }
            while futures:
                done, _ = wait(futures, return_when=FIRST_COMPLETED)
                for future in done:
                    pend = futures.pop(future)
                    try:
                        raw = future.result()
                    except Exception:  # broken pool / unpicklable runner
                        raw = {
                            "ok": False,
                            "error": traceback.format_exc(limit=4),
                            "elapsed_s": 0.0,
                        }
                    settle(pend, raw)
                # resubmit anything settle() queued for retry
                while requeue:
                    pend = requeue.pop()
                    delay = max(0.0, pend.not_before - time.monotonic())
                    if delay:
                        time.sleep(delay)
                    futures[pool.submit(
                        _worker, _payload(pend, timeout_s, obs), runner)] = pend

    if progress is not None:
        progress.finish(result.stats)
    return result
