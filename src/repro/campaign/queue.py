"""Persistent sharded campaign queue: a JSONL journal with recovery.

The campaign server must survive being killed mid-campaign: a client who
submitted work expects the restarted server to finish it, not to shrug.
The queue therefore journals three record kinds, one JSON object per
line, appended and flushed before the corresponding state becomes
visible to clients:

- ``submit`` — a campaign was accepted: its id, the raw submission
  payload (ids/seeds/profile/params/options) and the expanded job list;
- ``job`` — one job finished (ok or failed, cache hit or computed);
- ``done`` — the campaign completed and its result is reproducible from
  the submission alone (every job's table is in the result cache).

Journals are *sharded* by campaign id across ``shards`` append-only
files so a busy server never funnels every append through one file (and
a corrupted shard only loses its own campaigns).  Replay tolerates a
truncated trailing line — the signature of a crash mid-append — by
skipping undecodable lines.

Recovery is deliberately dumb: :meth:`CampaignQueue.recover` returns the
submissions that never reached ``done``; the server simply re-runs them.
Jobs that completed before the crash were journalled *after* their
result entered the shared cache, so the re-run serves them as cache hits
and the aggregate result is identical to an uninterrupted run.
"""

from __future__ import annotations

import json
import os
import threading
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = ["CampaignQueue", "QueuedCampaign", "DEFAULT_QUEUE_DIR"]

#: Default journal location inside the server's state directory.
DEFAULT_QUEUE_DIR = "queue"


@dataclass
class QueuedCampaign:
    """Replayed state of one journalled campaign."""

    campaign_id: str
    payload: Dict[str, Any]
    #: ``(exhibit_id, seed)`` keys of jobs whose completion was journalled.
    completed: List[Tuple[str, int]] = field(default_factory=list)
    failed: List[Tuple[str, int]] = field(default_factory=list)
    done: bool = False

    @property
    def finished_jobs(self) -> int:
        return len(self.completed) + len(self.failed)


class CampaignQueue:
    """Append-only sharded JSONL journal of campaign lifecycles."""

    def __init__(self, root: str | os.PathLike, shards: int = 4) -> None:
        if shards < 1:
            raise ValueError("need at least one journal shard")
        self.root = Path(root)
        self.shards = shards
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def shard_path(self, campaign_id: str) -> Path:
        index = zlib.crc32(campaign_id.encode("utf-8")) % self.shards
        return self.root / f"journal-{index:02d}.jsonl"

    def shard_paths(self) -> List[Path]:
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("journal-*.jsonl"))

    def _append(self, campaign_id: str, record: Dict[str, Any]) -> None:
        """Durably append one record to the campaign's shard.

        The line is flushed and fsynced before this returns: once the
        caller exposes the new state (an HTTP 200, a progress event), a
        crash must not be able to forget it.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        path = self.shard_path(campaign_id)
        with self._lock:
            with open(path, "a", encoding="utf-8") as handle:
                handle.write(line + "\n")
                handle.flush()
                os.fsync(handle.fileno())

    # ------------------------------------------------------------------
    def record_submit(self, campaign_id: str,
                      payload: Dict[str, Any]) -> None:
        self._append(campaign_id, {
            "op": "submit", "id": campaign_id, "payload": payload,
        })

    def record_job(self, campaign_id: str, exhibit_id: str, seed: int, *,
                   ok: bool, from_cache: bool = False,
                   elapsed_s: float = 0.0) -> None:
        self._append(campaign_id, {
            "op": "job", "id": campaign_id,
            "exhibit_id": exhibit_id, "seed": seed,
            "ok": ok, "from_cache": from_cache,
            "elapsed_s": round(float(elapsed_s), 6),
        })

    def record_done(self, campaign_id: str) -> None:
        self._append(campaign_id, {"op": "done", "id": campaign_id})

    # ------------------------------------------------------------------
    def _replay(self) -> Iterator[Dict[str, Any]]:
        """Every decodable record across all shards, oldest file first.

        Order across shards is not meaningful (campaigns never span
        shards); order within a shard is append order.
        """
        for path in self.shard_paths():
            try:
                text = path.read_text(encoding="utf-8", errors="replace")
            except OSError:
                continue
            for line in text.splitlines():
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except ValueError:
                    # Truncated trailing line from a crash mid-append (or
                    # a torn byte range): skip it — the matching state
                    # change was never acknowledged to any client.
                    continue
                if isinstance(record, dict) and "op" in record:
                    yield record

    def replay(self) -> Dict[str, QueuedCampaign]:
        """Fold the journal into per-campaign state (all campaigns)."""
        campaigns: Dict[str, QueuedCampaign] = {}
        for record in self._replay():
            cid = record.get("id")
            if not isinstance(cid, str):
                continue
            if record["op"] == "submit":
                payload = record.get("payload")
                if isinstance(payload, dict):
                    campaigns[cid] = QueuedCampaign(cid, payload)
            elif record["op"] == "job":
                queued = campaigns.get(cid)
                if queued is not None:
                    key = (str(record.get("exhibit_id")),
                           int(record.get("seed", 0)))
                    target = (queued.completed if record.get("ok")
                              else queued.failed)
                    if key not in target:
                        target.append(key)
            elif record["op"] == "done":
                queued = campaigns.get(cid)
                if queued is not None:
                    queued.done = True
        return campaigns

    def recover(self) -> List[QueuedCampaign]:
        """Campaigns submitted but never journalled ``done``, in order."""
        return [q for q in self.replay().values() if not q.done]

    # ------------------------------------------------------------------
    def compact(self) -> int:
        """Drop completed campaigns from the journal; returns lines kept.

        Rewrites each shard atomically (tmp + rename) retaining only the
        records of campaigns that have not finished, so a long-lived
        server's journal stays proportional to its *outstanding* work.
        """
        unfinished = {q.campaign_id for q in self.recover()}
        kept = 0
        for path in self.shard_paths():
            lines: List[str] = []
            try:
                text = path.read_text(encoding="utf-8", errors="replace")
            except OSError:
                continue
            for line in text.splitlines():
                try:
                    record = json.loads(line)
                except ValueError:
                    continue
                if isinstance(record, dict) and record.get("id") in unfinished:
                    lines.append(line)
            tmp = path.with_suffix(".tmp")
            with self._lock:
                with open(tmp, "w", encoding="utf-8") as handle:
                    for line in lines:
                        handle.write(line + "\n")
                    handle.flush()
                    os.fsync(handle.fileno())
                os.replace(tmp, path)
            kept += len(lines)
        return kept

    def status(self) -> Dict[str, Any]:
        """Journal summary for the server's root endpoint."""
        campaigns = self.replay()
        outstanding = [c for c in campaigns.values() if not c.done]
        return {
            "root": str(self.root),
            "shards": len(self.shard_paths()),
            "campaigns": len(campaigns),
            "outstanding": len(outstanding),
            "outstanding_ids": [c.campaign_id for c in outstanding],
        }
