"""Blocking HTTP client for the campaign server (stdlib ``urllib``).

Used by ``python -m repro submit`` and the test-suite; kept free of any
third-party dependency so a bare checkout can drive a remote server.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["CampaignClient", "ServerError"]


class ServerError(RuntimeError):
    """An HTTP error response from the campaign server."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"server returned {status}: {message}")
        self.status = status


class CampaignClient:
    """Thin JSON-over-HTTP wrapper around one server base URL."""

    def __init__(self, base_url: str, timeout_s: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = timeout_s

    # ------------------------------------------------------------------
    def _request(self, method: str, path: str,
                 payload: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=body, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout_s) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                detail = json.loads(exc.read().decode("utf-8"))
                message = detail.get("error", str(detail))
            except Exception:
                message = exc.reason
            raise ServerError(exc.code, str(message)) from None

    def _request_text(self, path: str) -> str:
        """GET a non-JSON endpoint (``/metrics``) as text."""
        request = urllib.request.Request(
            self.base_url + path, headers={"Accept": "text/plain"}
        )
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout_s) as response:
                return response.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            raise ServerError(exc.code, str(exc.reason)) from None

    # ------------------------------------------------------------------
    def info(self) -> Dict[str, Any]:
        return self._request("GET", "/")

    def submit(self, *, ids: Optional[List[str]] = None,
               seeds: Optional[List[int]] = None, fast: bool = True,
               params: Optional[Dict[str, Any]] = None,
               obs: bool = False) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"fast": bool(fast)}
        if ids is not None:
            payload["ids"] = list(ids)
        if seeds is not None:
            payload["seeds"] = [int(s) for s in seeds]
        if params:
            payload["params"] = dict(params)
        if obs:
            payload["obs"] = True
        return self._request("POST", "/campaigns", payload)

    def campaign(self, campaign_id: str) -> Dict[str, Any]:
        return self._request("GET", f"/campaigns/{campaign_id}")

    def campaigns(self) -> List[Dict[str, Any]]:
        return self._request("GET", "/campaigns")["campaigns"]

    def cache_stats(self) -> Dict[str, Any]:
        return self._request("GET", "/cache/stats")

    def metrics_text(self) -> str:
        """Raw ``GET /metrics`` body (Prometheus exposition text)."""
        return self._request_text("/metrics")

    def metrics(self) -> List[Any]:
        """Parsed ``/metrics`` samples: ``(name, labels, value)`` triples."""
        from ..obs.exposition import parse_prometheus

        return parse_prometheus(self.metrics_text())

    def trace(self, campaign_id: str) -> Dict[str, Any]:
        """The campaign's merged Chrome ``trace_event`` document."""
        return self._request("GET", f"/campaigns/{campaign_id}/trace")

    def debug_profile(self) -> Dict[str, Any]:
        """The server's flight-recorder ring (``GET /debug/profile``)."""
        return self._request("GET", "/debug/profile")

    def shutdown(self) -> Dict[str, Any]:
        return self._request("POST", "/shutdown", {})

    # ------------------------------------------------------------------
    def wait(self, campaign_id: str, *, poll_s: float = 0.2,
             timeout_s: Optional[float] = None) -> Dict[str, Any]:
        """Poll until the campaign is done; returns its final document."""
        deadline = (time.monotonic() + timeout_s
                    if timeout_s is not None else None)
        while True:
            doc = self.campaign(campaign_id)
            if doc["state"] == "done":
                return doc
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(
                    f"campaign {campaign_id} still {doc['state']!r} "
                    f"after {timeout_s}s"
                )
            time.sleep(poll_s)

    def stream_events(self, campaign_id: str) -> Iterator[Dict[str, Any]]:
        """Yield NDJSON progress events until the campaign finishes.

        The connection stays open for the campaign's lifetime, so the
        read timeout only bounds the gap *between* events.
        """
        request = urllib.request.Request(
            f"{self.base_url}/campaigns/{campaign_id}/events",
            headers={"Accept": "application/x-ndjson"},
        )
        try:
            with urllib.request.urlopen(request,
                                        timeout=self.timeout_s) as response:
                for line in response:
                    line = line.strip()
                    if line:
                        yield json.loads(line.decode("utf-8"))
        except urllib.error.HTTPError as exc:
            raise ServerError(exc.code, exc.reason) from None
