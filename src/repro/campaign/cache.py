"""Content-addressed on-disk result cache for campaign jobs.

Every completed job stores its JSON-serialised :class:`ResultTable`
under ``.repro-cache/`` keyed by a SHA-256 of *everything that can change
the result*: exhibit id, seed, profile, extra params and
``repro.__version__`` (see :meth:`repro.campaign.jobs.JobSpec.cache_key`).
Re-running a campaign — or regenerating EXPERIMENTS.md — therefore only
pays for jobs whose inputs actually changed; bumping the package version
invalidates every entry at once.

Entries are single JSON files, written atomically (tmp file + rename) so
concurrent campaign processes — and the long-running campaign server's
worker threads — can share one cache directory.  A corrupt, truncated or
unreadable entry (a worker killed mid-write, a disk-full partial JSON)
is treated as a *recorded* miss: the bad file is evicted, a counter
ticks, and the campaign re-runs the job instead of dying on a
``JSONDecodeError``.

The store keeps :class:`CacheStats` (hits / misses / evictions /
corrupt-entry counts), optionally mirrored into a
:class:`repro.obs.metrics.MetricsRegistry` so the server can export them,
and enforces an optional LRU size budget: every hit refreshes the entry
file's mtime, and ``put`` evicts least-recently-used entries until the
directory fits ``max_bytes`` again.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import TYPE_CHECKING, Any, Dict, Iterator, List, Optional, Tuple

from ..experiments.results import ResultTable
from .jobs import JobSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..obs.metrics import MetricsRegistry

__all__ = ["CacheEntry", "CacheStats", "ResultCache", "DEFAULT_CACHE_DIR"]

#: Default cache location, relative to the invoking process's cwd.
DEFAULT_CACHE_DIR = ".repro-cache"

_FORMAT = 1  # bump when the on-disk entry layout changes


@dataclass(frozen=True)
class CacheEntry:
    """One cached job result."""

    spec: JobSpec
    table: ResultTable
    elapsed_s: float
    version: str
    created_at: float
    #: Optional observability snapshot captured with the result (present
    #: when the campaign ran with ``obs=True``); ``None`` otherwise —
    #: including for entries written before the obs subsystem existed.
    metrics: Optional[Dict[str, Any]] = None


@dataclass
class CacheStats:
    """Lifetime counters of one :class:`ResultCache` handle."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0
    corrupt: int = 0
    bytes_evicted: int = 0

    def to_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
            "corrupt": self.corrupt,
            "bytes_evicted": self.bytes_evicted,
        }


class ResultCache:
    """Content-addressed store of job results under one directory.

    Parameters
    ----------
    root:
        Cache directory (created lazily on first ``put``).
    version:
        Overrides ``repro.__version__`` in cache keys (tests).
    max_bytes:
        Optional LRU size budget.  When the directory exceeds it after a
        ``put``, least-recently-used entries (oldest mtime; hits refresh
        mtime) are evicted until it fits.  ``None`` disables eviction.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; when given,
        every :class:`CacheStats` increment is mirrored into counters
        named ``campaign.cache.<field>`` so the server's ``/cache/stats``
        endpoint and obs exports see live values.
    """

    def __init__(self, root: str | os.PathLike = DEFAULT_CACHE_DIR,
                 version: Optional[str] = None, *,
                 max_bytes: Optional[int] = None,
                 metrics: Optional["MetricsRegistry"] = None) -> None:
        if version is None:
            from .. import __version__ as version
        self.root = Path(root)
        self.version = version
        self.max_bytes = max_bytes
        self.metrics = metrics
        self.stats = CacheStats()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def _bump(self, name: str, amount: int = 1) -> None:
        with self._lock:
            setattr(self.stats, name, getattr(self.stats, name) + amount)
        if self.metrics is not None:
            self.metrics.counter(f"campaign.cache.{name}").inc(amount)

    # ------------------------------------------------------------------
    def path_for(self, spec: JobSpec) -> Path:
        """Entry file for a spec: human-readable prefix + content hash."""
        digest = spec.cache_key(self.version)
        return self.root / f"{spec.exhibit_id}-s{spec.seed}-{digest[:16]}.json"

    def get(self, spec: JobSpec) -> Optional[CacheEntry]:
        """Look up a spec; a corrupt/stale entry counts as a miss.

        Anything short of a well-formed, key-matching entry — missing
        file, truncated or empty JSON (a worker killed mid-write despite
        tmp+rename, disk-full partial writes), undecodable bytes, or a
        payload whose key does not match — is a recorded miss; bad files
        are evicted so the next writer starts clean.
        """
        path = self.path_for(spec)
        try:
            payload = json.loads(path.read_bytes())
        except FileNotFoundError:
            self._bump("misses")
            return None
        except (OSError, ValueError):
            # ValueError covers json.JSONDecodeError (truncated/empty
            # JSON) and UnicodeDecodeError (binary garbage) alike.
            self._evict_counted(path, corrupt=True)
            self._bump("misses")
            return None
        try:
            if not isinstance(payload, dict):
                raise ValueError("cache entry is not a JSON object")
            if payload["format"] != _FORMAT:
                raise ValueError(f"unknown cache format {payload['format']!r}")
            if payload["key"] != spec.cache_key(self.version):
                # hash-prefix collision or handcrafted file: never trust it
                raise ValueError("cache key mismatch")
            table = ResultTable.from_dict(payload["table"])
            metrics = payload.get("metrics")
            if metrics is not None and not isinstance(metrics, dict):
                raise ValueError("cache metrics must be a dict")
            entry = CacheEntry(
                spec=JobSpec.from_dict(payload["spec"]),
                table=table,
                elapsed_s=float(payload.get("elapsed_s", 0.0)),
                version=str(payload.get("version", "")),
                created_at=float(payload.get("created_at", 0.0)),
                metrics=metrics,
            )
        except (KeyError, TypeError, ValueError):
            self._evict_counted(path, corrupt=True)
            self._bump("misses")
            return None
        self._bump("hits")
        self._touch(path)
        return entry

    def put(self, spec: JobSpec, table: ResultTable, elapsed_s: float,
            metrics: Optional[Dict[str, Any]] = None) -> Path:
        """Atomically write one entry; returns the entry path.

        ``metrics`` is the optional observability snapshot (see
        :meth:`repro.obs.runtime.ObsSession.snapshot`); omitting it keeps
        the entry shape of pre-obs caches, so the on-disk format version
        is unchanged and old entries stay readable.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        payload: Dict[str, Any] = {
            "format": _FORMAT,
            "key": spec.cache_key(self.version),
            "spec": spec.to_dict(),
            "version": self.version,
            "elapsed_s": float(elapsed_s),
            "created_at": time.time(),
            "table": table.to_dict(),
        }
        if metrics is not None:
            payload["metrics"] = metrics
        path = self.path_for(spec)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(self.root), prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self._bump("puts")
        if self.max_bytes is not None:
            self._enforce_budget(protect=path)
        return path

    # ------------------------------------------------------------------
    def entries(self) -> Iterator[Path]:
        """All entry files currently on disk (any version)."""
        if not self.root.is_dir():
            return iter(())
        return iter(sorted(self.root.glob("*.json")))

    def clear(self) -> int:
        """Delete every entry (all versions); returns the count removed."""
        removed = 0
        for path in self.entries():
            self._evict(path)
            removed += 1
        return removed

    def status(self) -> Dict[str, Any]:
        """Summary of the cache directory for ``repro campaign status``."""
        total_bytes = 0
        count = 0
        current = 0
        by_exhibit: Dict[str, int] = {}
        for path in self.entries():
            count += 1
            try:
                stat = path.stat()
                total_bytes += stat.st_size
                payload = json.loads(path.read_text())
                exhibit = payload["spec"]["exhibit_id"]
                by_exhibit[exhibit] = by_exhibit.get(exhibit, 0) + 1
                if payload.get("version") == self.version:
                    current += 1
            except (OSError, ValueError, KeyError, TypeError):
                continue
        return {
            "root": str(self.root),
            "version": self.version,
            "entries": count,
            "current_version_entries": current,
            "bytes": total_bytes,
            "by_exhibit": dict(sorted(by_exhibit.items())),
        }

    def stats_snapshot(self) -> Dict[str, Any]:
        """Counters + directory summary, the ``GET /cache/stats`` payload."""
        with self._lock:
            counters = self.stats.to_dict()
        snap = {
            "root": str(self.root),
            "version": self.version,
            "max_bytes": self.max_bytes,
        }
        snap.update(counters)
        total = 0
        count = 0
        for path in self.entries():
            try:
                total += path.stat().st_size
            except OSError:
                continue
            count += 1
        snap["entries"] = count
        snap["bytes"] = total
        return snap

    # ------------------------------------------------------------------
    def _enforce_budget(self, protect: Optional[Path] = None) -> int:
        """Evict LRU entries until the directory fits ``max_bytes``.

        The just-written entry (``protect``) is never evicted: a budget
        smaller than one entry must not make the cache eat its own
        freshest result.  Returns the number of entries evicted.
        """
        assert self.max_bytes is not None
        candidates: List[Tuple[float, int, Path]] = []
        total = 0
        for path in self.entries():
            try:
                stat = path.stat()
            except OSError:  # concurrently evicted by another process
                continue
            total += stat.st_size
            if protect is None or path != protect:
                candidates.append((stat.st_mtime, stat.st_size, path))
        candidates.sort()  # oldest mtime (= least recently used) first
        evicted = 0
        for _mtime, size, path in candidates:
            if total <= self.max_bytes:
                break
            self._evict_counted(path)
            self._bump("bytes_evicted", size)
            total -= size
            evicted += 1
        return evicted

    @staticmethod
    def _touch(path: Path) -> None:
        """Refresh the entry's mtime so LRU eviction sees the hit."""
        try:
            os.utime(path)
        except OSError:  # pragma: no cover - raced with an eviction
            pass

    def _evict_counted(self, path: Path, corrupt: bool = False) -> None:
        self._evict(path)
        self._bump("evictions")
        if corrupt:
            self._bump("corrupt")

    @staticmethod
    def _evict(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass
