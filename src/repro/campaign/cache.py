"""Content-addressed on-disk result cache for campaign jobs.

Every completed job stores its JSON-serialised :class:`ResultTable`
under ``.repro-cache/`` keyed by a SHA-256 of *everything that can change
the result*: exhibit id, seed, profile, extra params and
``repro.__version__`` (see :meth:`repro.campaign.jobs.JobSpec.cache_key`).
Re-running a campaign — or regenerating EXPERIMENTS.md — therefore only
pays for jobs whose inputs actually changed; bumping the package version
invalidates every entry at once.

Entries are single JSON files, written atomically (tmp file + rename) so
concurrent campaign processes can share one cache directory.  A corrupt
or unreadable entry is treated as a miss and removed.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, Optional

from ..experiments.results import ResultTable
from .jobs import JobSpec

__all__ = ["CacheEntry", "ResultCache", "DEFAULT_CACHE_DIR"]

#: Default cache location, relative to the invoking process's cwd.
DEFAULT_CACHE_DIR = ".repro-cache"

_FORMAT = 1  # bump when the on-disk entry layout changes


@dataclass(frozen=True)
class CacheEntry:
    """One cached job result."""

    spec: JobSpec
    table: ResultTable
    elapsed_s: float
    version: str
    created_at: float
    #: Optional observability snapshot captured with the result (present
    #: when the campaign ran with ``obs=True``); ``None`` otherwise —
    #: including for entries written before the obs subsystem existed.
    metrics: Optional[Dict[str, Any]] = None


class ResultCache:
    """Content-addressed store of job results under one directory."""

    def __init__(self, root: str | os.PathLike = DEFAULT_CACHE_DIR,
                 version: Optional[str] = None) -> None:
        if version is None:
            from .. import __version__ as version
        self.root = Path(root)
        self.version = version

    # ------------------------------------------------------------------
    def path_for(self, spec: JobSpec) -> Path:
        """Entry file for a spec: human-readable prefix + content hash."""
        digest = spec.cache_key(self.version)
        return self.root / f"{spec.exhibit_id}-s{spec.seed}-{digest[:16]}.json"

    def get(self, spec: JobSpec) -> Optional[CacheEntry]:
        """Look up a spec; a corrupt/stale entry counts as a miss."""
        path = self.path_for(spec)
        try:
            payload = json.loads(path.read_text())
        except FileNotFoundError:
            return None
        except (OSError, json.JSONDecodeError):
            self._evict(path)
            return None
        try:
            if payload["format"] != _FORMAT:
                raise ValueError(f"unknown cache format {payload['format']!r}")
            if payload["key"] != spec.cache_key(self.version):
                # hash-prefix collision or handcrafted file: never trust it
                raise ValueError("cache key mismatch")
            table = ResultTable.from_dict(payload["table"])
            metrics = payload.get("metrics")
            if metrics is not None and not isinstance(metrics, dict):
                raise ValueError("cache metrics must be a dict")
            return CacheEntry(
                spec=JobSpec.from_dict(payload["spec"]),
                table=table,
                elapsed_s=float(payload.get("elapsed_s", 0.0)),
                version=str(payload.get("version", "")),
                created_at=float(payload.get("created_at", 0.0)),
                metrics=metrics,
            )
        except (KeyError, TypeError, ValueError):
            self._evict(path)
            return None

    def put(self, spec: JobSpec, table: ResultTable, elapsed_s: float,
            metrics: Optional[Dict[str, Any]] = None) -> Path:
        """Atomically write one entry; returns the entry path.

        ``metrics`` is the optional observability snapshot (see
        :meth:`repro.obs.runtime.ObsSession.snapshot`); omitting it keeps
        the entry shape of pre-obs caches, so the on-disk format version
        is unchanged and old entries stay readable.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        payload: Dict[str, Any] = {
            "format": _FORMAT,
            "key": spec.cache_key(self.version),
            "spec": spec.to_dict(),
            "version": self.version,
            "elapsed_s": float(elapsed_s),
            "created_at": time.time(),
            "table": table.to_dict(),
        }
        if metrics is not None:
            payload["metrics"] = metrics
        path = self.path_for(spec)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(self.root), prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        return path

    # ------------------------------------------------------------------
    def entries(self) -> Iterator[Path]:
        """All entry files currently on disk (any version)."""
        if not self.root.is_dir():
            return iter(())
        return iter(sorted(self.root.glob("*.json")))

    def clear(self) -> int:
        """Delete every entry (all versions); returns the count removed."""
        removed = 0
        for path in self.entries():
            self._evict(path)
            removed += 1
        return removed

    def status(self) -> Dict[str, Any]:
        """Summary of the cache directory for ``repro campaign status``."""
        total_bytes = 0
        count = 0
        current = 0
        by_exhibit: Dict[str, int] = {}
        for path in self.entries():
            count += 1
            try:
                stat = path.stat()
                total_bytes += stat.st_size
                payload = json.loads(path.read_text())
                exhibit = payload["spec"]["exhibit_id"]
                by_exhibit[exhibit] = by_exhibit.get(exhibit, 0) + 1
                if payload.get("version") == self.version:
                    current += 1
            except (OSError, json.JSONDecodeError, KeyError, TypeError):
                continue
        return {
            "root": str(self.root),
            "version": self.version,
            "entries": count,
            "current_version_entries": current,
            "bytes": total_bytes,
            "by_exhibit": dict(sorted(by_exhibit.items())),
        }

    # ------------------------------------------------------------------
    @staticmethod
    def _evict(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass
