"""repro.campaign — parallel experiment-campaign engine.

Turns the exhibit registry (:mod:`repro.experiments.registry`) into a
batch-execution engine:

- :mod:`repro.campaign.jobs` — the job model: ``(exhibit_id, seed,
  fast, params)`` specs expanded from declarative campaign definitions;
- :mod:`repro.campaign.executor` — a multiprocess executor with per-job
  timeouts, bounded retry with backoff and graceful failure recording;
- :mod:`repro.campaign.cache` — a content-addressed on-disk result
  cache (``.repro-cache/``) keyed by exhibit id + seed + profile +
  params + ``repro.__version__``;
- :mod:`repro.campaign.aggregate` — per-seed table merging into
  mean ± 95 % CI columns;
- :mod:`repro.campaign.progress` — cache hit/miss and timing counters
  plus a live one-line progress printer.

Quickstart::

    >>> from repro.campaign import CampaignSpec, run_campaign
    >>> spec = CampaignSpec.make(ids=["fig04"], seeds=[1, 2], fast=True)
    >>> result = run_campaign(spec, jobs=2)
    >>> result.ok, sorted(result.aggregated())
    (True, ['fig04'])

Command line::

    python -m repro campaign run --fast --seeds 1,2 --jobs 4
    python -m repro campaign status
    python -m repro campaign clean
"""

from .aggregate import aggregate_campaign, aggregate_seeds
from .cache import DEFAULT_CACHE_DIR, CacheEntry, CacheStats, ResultCache
from .executor import (
    CampaignResult,
    JobOutcome,
    JobTimeout,
    execute_payload,
    run_campaign,
    run_registry_job,
)
from .jobs import CampaignSpec, JobSpec, expand_jobs
from .progress import CampaignStats, ProgressPrinter
from .queue import CampaignQueue, QueuedCampaign

__all__ = [
    "CampaignSpec",
    "JobSpec",
    "expand_jobs",
    "ResultCache",
    "CacheEntry",
    "CacheStats",
    "DEFAULT_CACHE_DIR",
    "run_campaign",
    "run_registry_job",
    "execute_payload",
    "CampaignResult",
    "JobOutcome",
    "JobTimeout",
    "aggregate_seeds",
    "aggregate_campaign",
    "CampaignStats",
    "ProgressPrinter",
    "CampaignQueue",
    "QueuedCampaign",
    # lazily resolved (they pull in asyncio/obs): see __getattr__
    "CampaignServer",
    "ServerConfig",
    "CampaignClient",
]


def __getattr__(name):  # PEP 562 — keep `import repro` light
    if name in ("CampaignServer", "ServerConfig"):
        from . import server

        return getattr(server, name)
    if name == "CampaignClient":
        from .client import CampaignClient

        return CampaignClient
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
