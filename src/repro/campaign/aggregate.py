"""Merge per-seed result tables into mean ± 95 % CI tables.

A campaign runs every exhibit across N seeds; this module folds the N
tables of one exhibit back into a single :class:`ResultTable` whose
numeric cells are per-row means with a ``<col>_ci95`` companion column
(Student-t 95 % confidence half-width with n − 1 degrees of freedom, via
:func:`repro.experiments.stats.summarize`).  Non-numeric cells (labels,
channel names) must agree across seeds and are passed through.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, TYPE_CHECKING

from ..experiments.results import ResultTable
from ..experiments.stats import summarize

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .executor import CampaignResult

__all__ = ["aggregate_seeds", "aggregate_campaign"]


def _is_numeric(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def aggregate_seeds(
    tables: Sequence[ResultTable], title: str | None = None
) -> ResultTable:
    """Fold per-seed tables of one exhibit into a mean ± CI table.

    All tables must have the same shape (row count and, per row, the
    same non-numeric cells) — they come from the same exhibit code at
    different seeds, so anything else is a bug worth surfacing.

    With a single input table the values pass through unchanged and no
    CI columns are added, so ``--seeds 7`` degrades to exactly the
    single-seed table.
    """
    if not tables:
        raise ValueError("aggregate_seeds needs at least one table")
    first = tables[0]
    for other in tables[1:]:
        if len(other.rows) != len(first.rows):
            raise ValueError(
                f"cannot aggregate {first.title!r}: row counts differ "
                f"({len(first.rows)} vs {len(other.rows)})"
            )

    merged = ResultTable(title if title is not None else first.title)
    if len(tables) == 1:
        merged.rows = [dict(row) for row in first.rows]
        merged.notes = list(first.notes)
        return merged

    for index, base_row in enumerate(first.rows):
        out_row: Dict[str, object] = {}
        for col in base_row:
            values = [t.rows[index].get(col) for t in tables]
            if all(_is_numeric(v) for v in values):
                if all(v == values[0] for v in values[1:]):
                    # Identical across seeds (swept parameter / x-axis
                    # column): pass through untouched, no CI companion.
                    out_row[col] = values[0]
                else:
                    summary = summarize(values)
                    out_row[col] = summary.mean
                    out_row[f"{col}_ci95"] = summary.ci95
            else:
                distinct = {repr(v) for v in values}
                if len(distinct) != 1:
                    raise ValueError(
                        f"cannot aggregate {first.title!r}: column {col!r} "
                        f"row {index} mixes values {sorted(distinct)}"
                    )
                out_row[col] = base_row[col]
        merged.rows.append(out_row)

    # Notes common to every seed stay; seed-specific ones are dropped.
    common = [n for n in first.notes if all(n in t.notes for t in tables[1:])]
    merged.notes = common
    merged.add_note(
        f"mean ± 95% CI (Student-t, {len(tables) - 1} df) "
        f"over {len(tables)} seeds"
    )
    return merged


def aggregate_campaign(result: "CampaignResult") -> Dict[str, ResultTable]:
    """Per-exhibit aggregated tables from a campaign's successful jobs.

    Exhibits whose every seed failed are omitted (their failures are
    still recorded on the :class:`CampaignResult`).
    """
    aggregated: Dict[str, ResultTable] = {}
    for exhibit_id in result.exhibit_ids():
        tables: List[ResultTable] = result.tables_for(exhibit_id)
        if tables:
            aggregated[exhibit_id] = aggregate_seeds(tables)
    return aggregated
