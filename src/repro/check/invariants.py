"""Runtime invariants: conservation laws the kernel must never break.

Armed either explicitly (``Simulator(checks=InvariantChecker())`` /
``Simulator(checks=True)``) or ambiently (``REPRO_CHECKS=1`` in the
environment, or via an active :class:`~repro.check.runtime.CheckSession`
with a checker).  Hook points live in the model layers:

===========================  =============================================
hook                         invariant
===========================  =============================================
``on_event``                 event-time monotonicity: the kernel never
                             dispatches an event scheduled before the
                             current clock; periodically cross-checks the
                             event queue's live-event counter against a
                             full heap scan.
``on_accumulator_update``    the radio's incremental sensing-path power
                             sum is never negative, and every
                             ``resample_every`` updates it is resampled
                             against the brute-force mask re-evaluation
                             (relative drift ≤ ``drift_rtol``); the
                             decode-path sum is cross-checked at the same
                             cadence.
``on_frame_complete``        per-transmission bit conservation: a
                             completed frame samples exactly
                             ``round(airtime · bit_rate)`` bits, and
                             ``0 ≤ errored ≤ total`` (delivered + lost
                             bits add up to the frame's on-air length).
``on_adjustor_threshold``    CCA-threshold sanity: never NaN/±inf and
                             never above the strongest co-channel RSSI
                             observed so far minus the safety margin.
===========================  =============================================

A violated invariant raises :class:`InvariantViolation` carrying a
first-divergence report (who, when, expected vs observed) — the checks
are assertions about *model* correctness, so the simulation must die
loudly rather than record a wrong number.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Any, Dict, Optional

__all__ = [
    "CheckConfig",
    "InvariantChecker",
    "InvariantViolation",
    "checks_enabled_by_env",
]

#: Environment variable that arms the default checker on every
#: newly-constructed :class:`~repro.sim.simulator.Simulator`.
ENV_FLAG = "REPRO_CHECKS"


class InvariantViolation(RuntimeError):
    """A runtime invariant failed; the message is the divergence report."""


def checks_enabled_by_env() -> bool:
    """``True`` when ``REPRO_CHECKS`` is set to a truthy value."""
    return os.environ.get(ENV_FLAG, "").strip().lower() not in (
        "", "0", "false", "no", "off",
    )


@dataclass(frozen=True)
class CheckConfig:
    """Tunables of the invariant layer."""

    #: Brute-force accumulator resample cadence, in accumulator updates
    #: per radio (1 = every update; raise to amortise the O(n·mask)
    #: resample on big rigs).
    resample_every: int = 32
    #: Allowed relative drift between the incremental accumulator and
    #: its brute-force resample.
    drift_rtol: float = 1e-9
    #: Event-queue live-count audit cadence, in dispatched events.
    queue_audit_every: int = 4096
    #: Slack (dB) for the threshold-vs-strongest-RSSI comparison.
    threshold_slack_db: float = 1e-9

    def __post_init__(self) -> None:
        if self.resample_every < 1:
            raise ValueError("resample_every must be >= 1")
        if self.drift_rtol <= 0:
            raise ValueError("drift_rtol must be > 0")
        if self.queue_audit_every < 1:
            raise ValueError("queue_audit_every must be >= 1")


class InvariantChecker:
    """Stateful hook sink; one instance audits one (or more) simulators.

    The checker is deliberately duck-typed against the model layers (it
    receives radios / receptions / adjustors and reads their public
    state) so this module stays import-light and usable from the
    simulator without cycles.
    """

    def __init__(self, config: Optional[CheckConfig] = None) -> None:
        self.config = config if config is not None else CheckConfig()
        #: Per-invariant pass counters, for reporting.
        self.counters: Dict[str, int] = {
            "events": 0,
            "queue_audits": 0,
            "accumulator_updates": 0,
            "accumulator_resamples": 0,
            "frames": 0,
            "thresholds": 0,
        }
        self._accum_updates: Dict[int, int] = {}
        self._max_rssi: Dict[int, float] = {}

    # ------------------------------------------------------------------
    # Kernel hooks
    # ------------------------------------------------------------------
    def on_event(self, event: Any, now: float, queue: Any = None) -> None:
        """Dispatched-event hook: monotonicity + periodic queue audit."""
        self.counters["events"] += 1
        if event.time < now:
            raise InvariantViolation(
                f"event-time monotonicity violated: event "
                f"{event!r} dispatched at clock {now:.9f} s "
                f"({now - event.time:.3e} s in the past)"
            )
        if (
            queue is not None
            and self.counters["events"] % self.config.queue_audit_every == 0
        ):
            self.counters["queue_audits"] += 1
            scanned = queue.scan_live()
            if scanned != len(queue):
                raise InvariantViolation(
                    f"event-queue live counter diverged: counter says "
                    f"{len(queue)} live events, heap scan found {scanned}"
                )

    # ------------------------------------------------------------------
    # PHY hooks
    # ------------------------------------------------------------------
    def on_accumulator_update(self, radio: Any) -> None:
        """Signal add/remove hook: non-negativity + periodic resample."""
        self.counters["accumulator_updates"] += 1
        if radio._sense_sum_mw < 0.0:
            raise InvariantViolation(
                f"negative sensing-path accumulator on radio "
                f"{radio.name!r} at t={radio.sim.now:.9f} s: "
                f"{radio._sense_sum_mw!r} mW "
                f"({len(radio.active_signals)} active signals)"
            )
        key = id(radio)
        count = self._accum_updates.get(key, 0) + 1
        self._accum_updates[key] = count
        if count % self.config.resample_every == 0:
            self.resample_radio(radio)

    def resample_radio(self, radio: Any) -> None:
        """Cross-check both power accumulators against brute force now."""
        self.counters["accumulator_resamples"] += 1
        self._compare(
            radio,
            "sensing-path",
            incremental=radio.sensed_power_mw(),
            reference=radio.resample_sense_power_mw(),
        )
        self._compare(
            radio,
            "decode-path",
            incremental=radio.in_channel_power_mw(),
            reference=radio.resample_in_channel_power_mw(),
        )

    def _compare(
        self, radio: Any, label: str, incremental: float, reference: float
    ) -> None:
        scale = max(abs(reference), abs(incremental), 1e-300)
        drift = abs(incremental - reference) / scale
        if drift > self.config.drift_rtol:
            raise InvariantViolation(
                f"{label} accumulator drift on radio {radio.name!r} at "
                f"t={radio.sim.now:.9f} s: incremental "
                f"{incremental!r} mW vs brute-force resample "
                f"{reference!r} mW (relative drift {drift:.3e} > "
                f"{self.config.drift_rtol:.1e}; "
                f"{len(radio.active_signals)} active signals) — first "
                f"divergence after "
                f"{self.counters['accumulator_updates']} accumulator "
                f"updates"
            )

    def on_frame_complete(self, reception: Any, outcome: Any) -> None:
        """Finalised-reception hook: per-transmission bit conservation."""
        self.counters["frames"] += 1
        airtime = outcome.end_time - outcome.start_time
        expected = int(round(airtime * reception.bit_rate_bps))
        if outcome.total_bits != expected:
            raise InvariantViolation(
                f"bit conservation violated for frame "
                f"{outcome.frame.frame_id} at radio "
                f"{reception.radio.name!r}: sampled {outcome.total_bits} "
                f"bits but round(airtime·rate) = round({airtime:.9f} s · "
                f"{reception.bit_rate_bps} bps) = {expected}"
            )
        if not (0 <= outcome.errored_bits <= outcome.total_bits):
            raise InvariantViolation(
                f"errored-bit count out of range for frame "
                f"{outcome.frame.frame_id} at radio "
                f"{reception.radio.name!r}: {outcome.errored_bits} of "
                f"{outcome.total_bits} sampled bits"
            )

    # ------------------------------------------------------------------
    # CCA-Adjustor hooks
    # ------------------------------------------------------------------
    def on_adjustor_rssi(self, adjustor: Any, rssi_dbm: float) -> None:
        """Track the strongest co-channel RSSI each adjustor has seen."""
        key = id(adjustor)
        best = self._max_rssi.get(key)
        if best is None or rssi_dbm > best:
            self._max_rssi[key] = rssi_dbm

    def on_adjustor_threshold(self, adjustor: Any, value_dbm: float) -> None:
        """Derived-threshold hook: finiteness + upper-bound sanity."""
        self.counters["thresholds"] += 1
        if math.isnan(value_dbm) or math.isinf(value_dbm):
            raise InvariantViolation(
                f"CCA threshold became non-finite at "
                f"t={adjustor.sim.now:.9f} s: {value_dbm!r} dBm"
            )
        best = self._max_rssi.get(id(adjustor))
        if best is not None:
            ceiling = best - adjustor.config.margin_db
            if value_dbm > ceiling + self.config.threshold_slack_db:
                raise InvariantViolation(
                    f"CCA threshold sanity violated at "
                    f"t={adjustor.sim.now:.9f} s: derived threshold "
                    f"{value_dbm:.6f} dBm exceeds strongest observed "
                    f"co-channel RSSI ({best:.6f} dBm) minus margin "
                    f"({adjustor.config.margin_db:g} dB)"
                )

    # ------------------------------------------------------------------
    def summary(self) -> str:
        """One-line pass-count report for CLI output."""
        c = self.counters
        return (
            f"invariants ok: {c['events']} events, "
            f"{c['queue_audits']} queue audits, "
            f"{c['accumulator_resamples']} accumulator resamples "
            f"(of {c['accumulator_updates']} updates), "
            f"{c['frames']} frames, {c['thresholds']} thresholds"
        )
