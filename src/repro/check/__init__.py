"""repro.check — runtime invariants, differential oracle, determinism.

PR-2 doubled the kernel's surface area: every hot path (link-gain
culling, incremental power accumulators, per-link fading streams) now
shadows a retained brute-force reference.  This package is the
correctness layer that continuously cross-checks them:

- :mod:`repro.check.invariants` — opt-in runtime invariants
  (``Simulator(checks=...)`` / ``REPRO_CHECKS=1``): event-time
  monotonicity, non-negative power accumulators with periodic
  brute-force resampling, per-frame bit conservation and CCA-threshold
  sanity.  Violations raise :class:`InvariantViolation` with a
  first-divergence report.
- :mod:`repro.check.oracle` — the differential oracle
  (``python -m repro check diff <exhibit>``): runs an exhibit on the
  fast path and on the reference path (``Medium(link_cache=False)`` +
  brute-force accumulators) and diffs the traces event by event.
- :mod:`repro.check.determinism` — the determinism checker
  (``python -m repro check determinism <exhibit>``): same seed twice,
  and ``--jobs 1`` vs ``--jobs N`` through the campaign engine, must
  produce byte-identical ``ResultTable`` JSON.
- :mod:`repro.check.faults` — test-only fault injection used to prove
  the invariant layer actually catches corruption.

Import note: model layers (``repro.net.deployment``, ``repro.phy``)
consult :mod:`repro.check.runtime` on construction, so this package
``__init__`` must stay import-light.  The heavyweight modules (oracle,
determinism — which pull in the experiment registry) are exposed
lazily via module ``__getattr__``.
"""

from __future__ import annotations

from .invariants import CheckConfig, InvariantChecker, InvariantViolation
from .runtime import CheckSession, active_session

__all__ = [
    "CheckConfig",
    "CheckSession",
    "DiffReport",
    "DeterminismReport",
    "InvariantChecker",
    "InvariantViolation",
    "active_session",
    "check_determinism",
    "diff_exhibit",
]

_LAZY = {
    "DiffReport": ("repro.check.oracle", "DiffReport"),
    "diff_exhibit": ("repro.check.oracle", "diff_exhibit"),
    "DeterminismReport": ("repro.check.determinism", "DeterminismReport"),
    "check_determinism": ("repro.check.determinism", "check_determinism"),
}


def __getattr__(name: str):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), attr)
