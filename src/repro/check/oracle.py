"""Differential oracle: fast path vs brute-force reference path.

PR-2's optimisations (link-gain culling, incremental accumulators,
batched fan-out events) all claim *exactness*: a fixed seed must
produce the same behaviour with or without them.  The oracle turns
that claim into a machine check.  ``diff_exhibit`` runs one exhibit
twice —

1. the **fast path** (default ``Medium`` with the
   :class:`~repro.phy.medium.LinkGainCache` and incremental power
   accumulators), and
2. the **reference path** (``Medium(link_cache=False)`` brute-force
   fan-out plus per-probe mask re-evaluation in the radio power sums)

— with tracing enabled and runtime invariants armed on both, then
compares the two runs trace record by trace record and the produced
:class:`~repro.experiments.results.ResultTable` JSON byte by byte.
The report names the *first divergence*: which deployment, which
record index, what each path saw, plus the records leading up to it.

Used by ``python -m repro check diff <exhibit>`` and the CI ``check``
job.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from .invariants import CheckConfig, InvariantChecker
from .runtime import CheckSession

__all__ = ["TraceDivergence", "DiffReport", "diff_exhibit", "run_traced"]

#: Matching records shown before the first divergence.
CONTEXT_RECORDS = 3


@dataclass(frozen=True)
class TraceDivergence:
    """First point where the fast and reference traces disagree."""

    deployment_index: int
    record_index: int
    fast_record: Optional[str]
    reference_record: Optional[str]
    context: Tuple[str, ...] = ()

    def describe(self) -> str:
        lines = [
            f"first divergence: deployment #{self.deployment_index}, "
            f"trace record #{self.record_index}",
        ]
        for record in self.context:
            lines.append(f"    ... {record}")
        lines.append(f"    fast      : {self.fast_record or '<trace ended>'}")
        lines.append(
            f"    reference : {self.reference_record or '<trace ended>'}"
        )
        return "\n".join(lines)


@dataclass
class DiffReport:
    """Outcome of one differential-oracle run."""

    exhibit_id: str
    seed: int
    fast_profile: bool
    deployments: int = 0
    records_compared: int = 0
    divergence: Optional[TraceDivergence] = None
    tables_match: bool = True
    invariant_summaries: Tuple[str, str] = ("", "")
    notes: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.divergence is None and self.tables_match

    def describe(self) -> str:
        profile = "fast" if self.fast_profile else "paper"
        head = (
            f"check diff {self.exhibit_id} (seed {self.seed}, "
            f"profile {profile}): {self.deployments} deployment(s), "
            f"{self.records_compared} trace records compared"
        )
        lines = [head]
        lines.extend(self.notes)
        if self.divergence is not None:
            lines.append(self.divergence.describe())
        if not self.tables_match:
            lines.append(
                "ResultTable JSON differs between fast and reference paths"
            )
        if self.ok:
            lines.append("fast and reference paths are trace-identical")
            for label, summary in zip(
                ("fast", "reference"), self.invariant_summaries
            ):
                if summary:
                    lines.append(f"  [{label}] {summary}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
def run_traced(
    exhibit_id: str,
    seed: int = 1,
    fast: bool = True,
    *,
    reference: bool = False,
    checker: Optional[InvariantChecker] = None,
    band_sharding: bool = False,
) -> Tuple[Any, List[Any]]:
    """Run one registered exhibit inside an instrumented session.

    Returns ``(table, traces)`` where ``traces`` are the per-deployment
    :class:`~repro.sim.trace.Trace` objects in construction order.
    ``band_sharding`` is ignored on reference runs (the reference leg is
    always the plain scalar path).
    """
    from ..experiments.registry import get
    from ..phy.frame import reset_frame_ids

    experiment = get(exhibit_id)
    session = CheckSession(
        reference=reference, capture_traces=True, checker=checker,
        band_sharding=band_sharding,
    )
    # Frame ids come from a process-global counter and exist only to
    # correlate trace records; restart it so both oracle legs allocate
    # identical ids and records can be compared verbatim.
    reset_frame_ids()
    with session:
        table = experiment.run(seed=seed, fast=fast)
    return table, session.traces


def _record_key(record: Any) -> Tuple[float, str, tuple]:
    return (record.time, record.kind, tuple(sorted(record.fields.items())))


def _compare_traces(
    fast_traces: List[Any], ref_traces: List[Any]
) -> Tuple[int, Optional[TraceDivergence]]:
    """Record-by-record comparison; returns (records compared, divergence)."""
    compared = 0
    for dep_index, (ft, rt) in enumerate(zip(fast_traces, ref_traces)):
        fast_records = ft.records
        ref_records = rt.records
        limit = min(len(fast_records), len(ref_records))
        for i in range(limit):
            compared += 1
            fr, rr = fast_records[i], ref_records[i]
            if _record_key(fr) != _record_key(rr):
                context = tuple(
                    str(r)
                    for r in fast_records[max(0, i - CONTEXT_RECORDS):i]
                )
                return compared, TraceDivergence(
                    dep_index, i, str(fr), str(rr), context
                )
        if len(fast_records) != len(ref_records):
            i = limit
            context = tuple(
                str(r) for r in fast_records[max(0, i - CONTEXT_RECORDS):i]
            )
            return compared, TraceDivergence(
                dep_index,
                i,
                str(fast_records[i]) if i < len(fast_records) else None,
                str(ref_records[i]) if i < len(ref_records) else None,
                context,
            )
    return compared, None


def diff_exhibit(
    exhibit_id: str,
    seed: int = 1,
    fast: bool = True,
    *,
    invariants: bool = True,
    check_config: Optional[CheckConfig] = None,
    band_sharding: bool = False,
) -> DiffReport:
    """Run the differential oracle on one exhibit.

    Raises :class:`~repro.check.invariants.InvariantViolation` if either
    run breaks a runtime invariant (when ``invariants`` is on); returns
    a :class:`DiffReport` whose ``ok`` reflects trace and table
    equality.  ``band_sharding`` applies to the fast leg only, so the
    sharded configuration is gated against the scalar reference.
    """
    fast_checker = InvariantChecker(check_config) if invariants else None
    ref_checker = InvariantChecker(check_config) if invariants else None

    fast_table, fast_traces = run_traced(
        exhibit_id, seed, fast, reference=False, checker=fast_checker,
        band_sharding=band_sharding,
    )
    ref_table, ref_traces = run_traced(
        exhibit_id, seed, fast, reference=True, checker=ref_checker
    )

    report = DiffReport(
        exhibit_id=exhibit_id,
        seed=seed,
        fast_profile=fast,
        deployments=len(fast_traces),
        invariant_summaries=(
            fast_checker.summary() if fast_checker else "",
            ref_checker.summary() if ref_checker else "",
        ),
    )
    if len(fast_traces) != len(ref_traces):
        # Deployment *count* differing would mean the exhibit itself is
        # non-deterministic — report it as a divergence at record 0.
        report.divergence = TraceDivergence(
            min(len(fast_traces), len(ref_traces)),
            0,
            f"<{len(fast_traces)} deployments>",
            f"<{len(ref_traces)} deployments>",
        )
        return report

    report.records_compared, report.divergence = _compare_traces(
        fast_traces, ref_traces
    )
    report.tables_match = fast_table.to_json() == ref_table.to_json()
    if report.deployments == 0:
        report.notes.append(
            "note: exhibit built no Deployment — only table JSON compared"
        )
    return report
