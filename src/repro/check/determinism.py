"""Determinism checker: fixed seed ⇒ byte-identical results.

The reproduction's contract (and the result cache's correctness) rests
on two properties:

1. **Replay** — running one exhibit twice at the same seed in the same
   process produces byte-identical ``ResultTable`` JSON (no hidden
   global state, no dict-ordering or id()-keyed behaviour leaks).
2. **Parallel invariance** — running the same jobs through the
   campaign engine with ``--jobs 1`` (inline) and ``--jobs N``
   (process pool) produces byte-identical per-job JSON (results do not
   depend on scheduling, worker reuse or pickling round-trips).

``check_determinism`` verifies both and reports the first differing
byte region when they fail.  Used by
``python -m repro check determinism <exhibit>`` and the CI ``check``
job.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

__all__ = ["DeterminismReport", "check_determinism"]


def _first_difference(a: str, b: str, context: int = 40) -> str:
    """Human-readable pointer at the first differing byte of two strings."""
    limit = min(len(a), len(b))
    index = next(
        (i for i in range(limit) if a[i] != b[i]), limit
    )
    lo = max(0, index - context)
    return (
        f"first difference at byte {index}:\n"
        f"    a[{lo}:{index + context}] = {a[lo:index + context]!r}\n"
        f"    b[{lo}:{index + context}] = {b[lo:index + context]!r}"
    )


@dataclass
class DeterminismReport:
    """Outcome of one determinism check."""

    exhibit_id: str
    seed: int
    fast_profile: bool
    jobs: int
    replay_ok: bool = True
    jobs_ok: bool = True
    json_bytes: int = 0
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.replay_ok and self.jobs_ok

    def describe(self) -> str:
        profile = "fast" if self.fast_profile else "paper"
        lines = [
            f"check determinism {self.exhibit_id} (seed {self.seed}, "
            f"profile {profile}, jobs 1 vs {self.jobs})"
        ]
        lines.append(
            f"  replay (same seed twice)        : "
            f"{'byte-identical' if self.replay_ok else 'DIVERGED'} "
            f"({self.json_bytes} JSON bytes)"
        )
        lines.append(
            f"  campaign --jobs 1 vs --jobs {self.jobs}   : "
            f"{'byte-identical' if self.jobs_ok else 'DIVERGED'}"
        )
        lines.extend(self.failures)
        return "\n".join(lines)


def check_determinism(
    exhibit_id: str,
    seed: int = 1,
    fast: bool = True,
    *,
    jobs: int = 2,
) -> DeterminismReport:
    """Verify replay and parallel-execution determinism of one exhibit.

    Runs the exhibit at ``seed`` and ``seed + 1`` (two jobs, so the
    pool genuinely schedules work on distinct workers) through the
    campaign engine with the result cache disabled.
    """
    from ..campaign import JobSpec, run_campaign
    from ..experiments.registry import get

    jobs = max(2, int(jobs))
    report = DeterminismReport(exhibit_id, seed, fast, jobs)
    experiment = get(exhibit_id)

    # 1. replay: same seed twice, same process --------------------------
    first = experiment.run(seed=seed, fast=fast).to_json()
    second = experiment.run(seed=seed, fast=fast).to_json()
    report.json_bytes = len(first)
    if first != second:
        report.replay_ok = False
        report.failures.append(
            "  replay divergence — " + _first_difference(first, second)
        )

    # 2. campaign engine: --jobs 1 vs --jobs N --------------------------
    specs = [
        JobSpec.make(exhibit_id, seed=s, fast=fast)
        for s in (seed, seed + 1)
    ]
    inline = run_campaign(list(specs), jobs=1, cache=False)
    pooled = run_campaign(list(specs), jobs=jobs, cache=False)
    for spec in specs:
        for label, result in (("jobs=1", inline), (f"jobs={jobs}", pooled)):
            outcome = result.outcome(*spec.key)
            if not outcome.ok:
                report.jobs_ok = False
                report.failures.append(
                    f"  {spec} failed under {label}: {outcome.error}"
                )
    if report.jobs_ok:
        for spec in specs:
            a = inline.outcome(*spec.key).table.to_json()
            b = pooled.outcome(*spec.key).table.to_json()
            if a != b:
                report.jobs_ok = False
                report.failures.append(
                    f"  {spec} differs between jobs=1 and jobs={jobs} — "
                    + _first_difference(a, b)
                )
        # The inline replay table must also match the campaign's output
        # (the executor round-trips tables through to_dict/from_dict).
        a = inline.outcome(exhibit_id, seed).table.to_json()
        if a != first:
            report.jobs_ok = False
            report.failures.append(
                "  campaign output differs from direct run — "
                + _first_difference(a, first)
            )
    return report
