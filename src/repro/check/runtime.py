"""Ambient check-session plumbing (import-light, no repro imports).

The differential oracle needs to re-run an *unmodified* exhibit under
instrumentation: traces captured, the medium forced onto its brute-force
reference path, runtime invariants armed.  Exhibit ``run()`` callables
construct their :class:`~repro.net.deployment.Deployment` objects
internally, so the instrumentation cannot be threaded through arguments
without touching every figure module.  Instead a :class:`CheckSession`
is installed as an ambient context; ``Deployment.__init__`` consults
:func:`active_session` and, when one is active,

- attaches an enabled :class:`~repro.sim.trace.Trace` (when the caller
  did not supply one) and registers it on the session,
- forces ``Medium(link_cache=False, reference_accumulators=True)``
  when the session runs the reference path, and
- arms the session's :class:`~repro.check.invariants.InvariantChecker`
  on the simulator.

Sessions do not nest and are process-local (the campaign executor's
worker processes never inherit one), so a plain module global is
sufficient — no thread-local machinery.
"""

from __future__ import annotations

from typing import Any, List, Optional

__all__ = ["CheckSession", "active_session"]

_ACTIVE: Optional["CheckSession"] = None


class CheckSession:
    """One instrumented run: trace capture + path selection + checks.

    Parameters
    ----------
    reference:
        When ``True`` deployments built inside the session use the
        brute-force reference path (``Medium(link_cache=False)`` plus
        per-probe mask re-evaluation in the radio power sums) instead
        of the PR-2 fast path.
    capture_traces:
        Attach an enabled trace to every deployment built inside the
        session and collect them (in construction order) on
        :attr:`traces`.
    checker:
        Optional :class:`~repro.check.invariants.InvariantChecker`
        armed on every simulator built inside the session.
    band_sharding:
        When ``True`` (and the session is not a reference session)
        deployments built inside it enable the medium's band-sharded
        fan-out, so ``check diff`` can gate the sharded configuration
        against the scalar reference leg.
    """

    def __init__(
        self,
        reference: bool = False,
        capture_traces: bool = True,
        checker: Any = None,
        band_sharding: bool = False,
    ) -> None:
        self.reference = bool(reference)
        self.capture_traces = bool(capture_traces)
        self.checker = checker
        self.band_sharding = bool(band_sharding)
        #: Traces of the deployments created inside the session, in
        #: construction order (one exhibit may build several rigs).
        self.traces: List[Any] = []

    # ------------------------------------------------------------------
    def attach_trace(self, trace: Any) -> None:
        """Record one deployment's trace (called by ``Deployment``)."""
        self.traces.append(trace)

    # ------------------------------------------------------------------
    def __enter__(self) -> "CheckSession":
        global _ACTIVE
        if _ACTIVE is not None:
            raise RuntimeError("check sessions do not nest")
        _ACTIVE = self
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        global _ACTIVE
        _ACTIVE = None


def active_session() -> Optional[CheckSession]:
    """The currently installed session, or ``None``."""
    return _ACTIVE
