"""Test-only fault injection for proving the invariant layer works.

A correctness layer that has never caught anything is indistinguishable
from one that cannot.  These helpers deliberately corrupt kernel state
the way a real regression would (drifting accumulator, sign error,
mis-stamped event) so tests — and the CI ``check`` job's unit suite —
can assert that :class:`~repro.check.invariants.InvariantChecker`
raises with a useful first-divergence report.

**Never call these outside tests.**  They reach into private state by
design.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "corrupt_sense_accumulator",
    "negate_sense_accumulator",
    "corrupt_bit_counter",
]


def corrupt_sense_accumulator(radio: Any, extra_mw: float) -> None:
    """Inject drift into the radio's incremental sensing-path sum.

    Mimics the class of bug the resample invariant exists for: an
    incremental update applied twice / with the wrong gain, leaving the
    running sum out of step with the active-signal list.
    """
    radio._sense_sum_mw += extra_mw


def negate_sense_accumulator(radio: Any) -> None:
    """Flip the accumulator's sign (caught by the non-negativity check
    as soon as the sum is non-zero)."""
    radio._sense_sum_mw = -abs(radio._sense_sum_mw)


def corrupt_bit_counter(reception: Any, extra_bits: int) -> None:
    """Skew a live reception's sampled-bit counter.

    Mimics a segment-accounting regression (the pre-PR-2 per-segment
    rounding drift); caught by the bit-conservation invariant when the
    frame finalises.
    """
    reception.sampled_bits += extra_bits
