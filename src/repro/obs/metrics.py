"""Metric primitives and the labelled registry.

Four metric kinds cover everything the telemetry layer records:

- :class:`Counter` — monotonically increasing totals (frames sent,
  airtime seconds per channel);
- :class:`Gauge` — a zero-argument callback read on demand (live queue
  depth, current CCA threshold); gauges are *sampled* into a paired
  :class:`TimeSeries` by the recorder's periodic sim process;
- :class:`Histogram` — value distributions with nearest-rank quantiles
  (backoff durations, per-reception RSSI);
- :class:`TimeSeries` — bounded ``(sim_time, value)`` trajectories, fed
  either by the sampler or event-driven (the adjustor's threshold steps).

Metrics are keyed by ``(name, labels)`` in a :class:`MetricsRegistry`; the
idiomatic labels here are ``node=`` and ``channel=``.  All of this is pure
bookkeeping — no metric draws randomness or schedules events, so enabling
observability can never change simulation results.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "TimeSeries",
    "MetricsRegistry",
    "LabelKey",
    "metric_key",
    "registry_snapshot",
]

#: Canonical hashable form of a label set: sorted ``(key, value)`` pairs.
LabelKey = Tuple[Tuple[str, str], ...]


def _freeze_labels(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def metric_key(name: str, labels: Any) -> str:
    """Stable flat key for snapshots: ``name{k=v,...}`` or bare name."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing total (float so airtime can accumulate)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease")
        self.value += amount


class Gauge:
    """A live value read through a zero-argument callback.

    Gauges are pull-based: registering one costs nothing per event; the
    recorder's periodic sampler calls :meth:`read` and appends the result
    to the time series of the same ``(name, labels)``.
    """

    __slots__ = ("name", "labels", "fn")

    def __init__(self, name: str, labels: LabelKey, fn: Callable[[], float]) -> None:
        self.name = name
        self.labels = labels
        self.fn = fn

    def read(self) -> float:
        return float(self.fn())


class Histogram:
    """Value distribution with nearest-rank quantiles.

    Retains up to ``max_samples`` observations (further observations are
    counted but not stored, so ``count`` stays exact while quantiles are
    computed over the stored prefix — deterministic, no reservoir RNG).
    """

    __slots__ = ("name", "labels", "max_samples", "count", "total",
                 "_min", "_max", "_samples")

    def __init__(self, name: str, labels: LabelKey,
                 max_samples: int = 100_000) -> None:
        self.name = name
        self.labels = labels
        self.max_samples = max_samples
        self.count = 0
        self.total = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None
        self._samples: List[float] = []

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if self._min is None or value < self._min:
            self._min = value
        if self._max is None or value > self._max:
            self._max = value
        if len(self._samples) < self.max_samples:
            self._samples.append(value)

    @property
    def min(self) -> Optional[float]:
        return self._min

    @property
    def max(self) -> Optional[float]:
        return self._max

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> Optional[float]:
        """Nearest-rank quantile over the stored samples (``0 < q <= 1``)."""
        if not 0.0 < q <= 1.0:
            raise ValueError(f"quantile {q!r} outside (0, 1]")
        if not self._samples:
            return None
        ordered = sorted(self._samples)
        # Nearest-rank: the smallest stored value whose cumulative share
        # of the distribution is >= q (1-based rank ceil(q*n)).
        rank = -int(-q * len(ordered) // 1)  # ceil without importing math
        return ordered[min(len(ordered), max(1, rank)) - 1]

    @property
    def p50(self) -> Optional[float]:
        return self.quantile(0.50)

    @property
    def p95(self) -> Optional[float]:
        return self.quantile(0.95)

    @property
    def p99(self) -> Optional[float]:
        return self.quantile(0.99)


class TimeSeries:
    """Bounded ``(sim_time, value)`` trajectory (drops the oldest on
    overflow so long runs keep the most recent window)."""

    __slots__ = ("name", "labels", "points")

    def __init__(self, name: str, labels: LabelKey,
                 max_points: int = 65_536) -> None:
        self.name = name
        self.labels = labels
        self.points: Deque[Tuple[float, float]] = deque(maxlen=max_points)

    def append(self, time: float, value: float) -> None:
        self.points.append((time, value))

    def __len__(self) -> int:
        return len(self.points)

    def last(self) -> Optional[Tuple[float, float]]:
        return self.points[-1] if self.points else None


class MetricsRegistry:
    """Get-or-create store of labelled metrics.

    One registry belongs to one :class:`~repro.obs.recorder.Observability`
    (i.e. one simulator); the getters are idempotent, so call sites never
    need to cache handles for correctness — though hot paths may.
    """

    def __init__(self, max_points: int = 65_536,
                 max_hist_samples: int = 100_000) -> None:
        self.max_points = max_points
        self.max_hist_samples = max_hist_samples
        self._metrics: Dict[Tuple[str, str, LabelKey], Any] = {}
        self._gauges: List[Gauge] = []

    # ------------------------------------------------------------------
    def _get(self, kind: str, name: str, labels: Dict[str, Any],
             factory: Callable[[str, LabelKey], Any]) -> Any:
        key = (kind, name, _freeze_labels(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = factory(name, key[2])
            self._metrics[key] = metric
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        return self._get("counter", name, labels, Counter)

    def histogram(self, name: str, **labels: Any) -> Histogram:
        return self._get(
            "histogram", name, labels,
            lambda n, l: Histogram(n, l, self.max_hist_samples),
        )

    def timeseries(self, name: str, **labels: Any) -> TimeSeries:
        return self._get(
            "timeseries", name, labels,
            lambda n, l: TimeSeries(n, l, self.max_points),
        )

    def gauge(self, name: str, fn: Callable[[], float],
              **labels: Any) -> Gauge:
        key = (("gauge", name, _freeze_labels(labels)))
        gauge = self._metrics.get(key)
        if gauge is None:
            gauge = Gauge(name, key[2], fn)
            self._metrics[key] = gauge
            self._gauges.append(gauge)
        return gauge

    # ------------------------------------------------------------------
    def sample_gauges(self, now: float) -> List[Tuple[TimeSeries, float]]:
        """Read every gauge and append to its paired time series.

        Returns the ``(series, value)`` pairs sampled, so a streaming sink
        can mirror them.
        """
        sampled: List[Tuple[TimeSeries, float]] = []
        for gauge in self._gauges:
            value = gauge.read()
            series = self.timeseries(gauge.name, **dict(gauge.labels))
            series.append(now, value)
            sampled.append((series, value))
        return sampled

    # ------------------------------------------------------------------
    def of_kind(self, kind: str, name: Optional[str] = None) -> Iterator[Any]:
        """All metrics of ``kind`` (``counter``/``gauge``/...), optionally
        restricted to one name, in insertion order."""
        for (k, n, _labels), metric in self._metrics.items():
            if k == kind and (name is None or n == name):
                yield metric

    def counters(self, name: Optional[str] = None) -> Iterator[Counter]:
        return self.of_kind("counter", name)

    def histograms(self, name: Optional[str] = None) -> Iterator[Histogram]:
        return self.of_kind("histogram", name)

    def series(self, name: Optional[str] = None) -> Iterator[TimeSeries]:
        return self.of_kind("timeseries", name)

    def __len__(self) -> int:
        return len(self._metrics)


def registry_snapshot(registry: MetricsRegistry) -> Dict[str, Any]:
    """One registry serialised to a JSON-safe dict.

    Unlike :meth:`repro.obs.runtime.ObsSession.snapshot` — which pools
    metrics *across* per-simulator recorders — this reads a single
    standalone registry, which is what process-level services (the
    campaign server's cache and queue counters) keep.  Gauges are read
    live at snapshot time.
    """
    counters = {
        metric_key(c.name, c.labels): c.value for c in registry.counters()
    }
    histograms: Dict[str, Dict[str, Any]] = {}
    for hist in registry.histograms():
        histograms[metric_key(hist.name, hist.labels)] = {
            "count": hist.count,
            "total": hist.total,
            "mean": hist.mean,
            "min": hist.min,
            "max": hist.max,
            "p50": hist.p50,
            "p95": hist.p95,
            "p99": hist.p99,
        }
    gauges = {
        metric_key(g.name, g.labels): g.read()
        for g in registry.of_kind("gauge")
    }
    series = {
        metric_key(s.name, s.labels): {"points": len(s), "last": s.last()}
        for s in registry.series()
    }
    snap: Dict[str, Any] = {"counters": counters}
    if histograms:
        snap["histograms"] = histograms
    if gauges:
        snap["gauges"] = gauges
    if series:
        snap["series"] = series
    return snap
