"""Human-readable metric summaries: per-node and per-channel tables.

The ``repro obs summary`` CLI renders one node table and one channel
table per recorder (one recorder per deployment the exhibit built) using
the same :class:`~repro.experiments.results.ResultTable` shape as the
paper exhibits, so output stays diff-friendly and plotting-free.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from ..experiments.results import ResultTable
from .recorder import Observability

__all__ = ["node_table", "channel_table", "routing_table", "summary_tables",
           "events_summary"]


def _by_label(metrics, label: str) -> Dict[str, object]:
    """Index an iterable of labelled metrics by one label's value."""
    indexed: Dict[str, object] = {}
    for metric in metrics:
        value = dict(metric.labels).get(label)
        if value is not None:
            indexed[value] = metric
    return indexed


def _fmt_threshold(value: Optional[float]) -> Optional[float]:
    if value is None or not math.isfinite(value):
        return None
    return value


def node_table(recorder: Observability, title: str = "per-node metrics") -> ResultTable:
    """One row per registered MAC: traffic, medium access, adaptation."""
    table = ResultTable(title=title)
    backoffs = _by_label(recorder.registry.histograms("mac.backoff_s"), "node")
    airtimes = _by_label(recorder.registry.counters("node.tx.airtime_s"), "node")
    thresholds = _by_label(
        recorder.registry.series("adjustor.threshold_dbm"), "node"
    )
    duration = recorder.duration_s
    for mac in recorder.macs:
        name = mac.name
        stats = mac.stats
        backoff = backoffs.get(name)
        airtime = airtimes.get(name)
        airtime_s = airtime.value if airtime is not None else 0.0
        series = thresholds.get(name)
        threshold = None
        if series is not None and series.last() is not None:
            threshold = series.last()[1]
        else:
            threshold = mac.cca_policy.threshold_dbm()
        table.add_row(
            node=name,
            ch=recorder.node_channels.get(name),
            sent=stats.sent,
            delivered=stats.delivered,
            crc_fail=stats.crc_failures,
            cca_busy_pct=100.0 * stats.cca_busy_ratio,
            backoff_p50_ms=(backoff.p50 * 1e3
                            if backoff is not None and backoff.p50 is not None
                            else None),
            backoff_p95_ms=(backoff.p95 * 1e3
                            if backoff is not None and backoff.p95 is not None
                            else None),
            airtime_pct=(100.0 * airtime_s / duration if duration > 0 else 0.0),
            thresh_dbm=_fmt_threshold(threshold),
        )
    if recorder.spans.dropped:
        table.add_note(f"{recorder.spans.dropped} oldest spans dropped "
                       f"(log bounded at {recorder.spans.max_spans})")
    return table


def channel_table(recorder: Observability,
                  title: str = "per-channel metrics") -> ResultTable:
    """One row per centre frequency: frame count, airtime, utilization."""
    table = ResultTable(title=title)
    frames = _by_label(recorder.registry.counters("tx.frames"), "channel")
    airtimes = _by_label(recorder.registry.counters("tx.airtime_s"), "channel")
    duration = recorder.duration_s
    channels: List[Tuple[float, str]] = sorted(
        (float(key), key) for key in set(frames) | set(airtimes)
    )
    for _sort_key, key in channels:
        frame_counter = frames.get(key)
        airtime_counter = airtimes.get(key)
        airtime_s = airtime_counter.value if airtime_counter is not None else 0.0
        table.add_row(
            channel_mhz=float(key),
            frames=int(frame_counter.value) if frame_counter is not None else 0,
            airtime_s=airtime_s,
            utilization_pct=(100.0 * airtime_s / duration
                             if duration > 0 else 0.0),
        )
    nodes = sorted(
        name for name, _ in _iter_channel_nodes(recorder)
    )
    if nodes:
        table.add_note(f"window: {duration:.3f} s sim time, "
                       f"{len(nodes)} radios")
    return table


def _iter_channel_nodes(recorder: Observability):
    return recorder.node_channels.items()


def routing_table(recorder: Observability,
                  title: str = "routing metrics") -> Optional[ResultTable]:
    """One row per node that touched the routing layer.

    Returns ``None`` when the run recorded no routing metrics at all
    (non-routing exhibits keep their two-table summary unchanged).
    """
    created = _by_label(recorder.registry.counters("route.created"), "node")
    forwarded = _by_label(
        recorder.registry.counters("route.forwarded"), "node")
    delivered = _by_label(
        recorder.registry.counters("route.delivered"), "node")
    delays = _by_label(recorder.registry.histograms("route.delay_s"), "node")
    hops = _by_label(recorder.registry.histograms("route.hops"), "node")
    joins = _by_label(
        recorder.registry.counters("route.join_time_s"), "node")
    dropped: Dict[str, float] = {}
    for counter in recorder.registry.counters("route.dropped"):
        node = dict(counter.labels).get("node")
        if node is not None:
            dropped[node] = dropped.get(node, 0.0) + counter.value
    nodes = sorted(
        set(created) | set(forwarded) | set(delivered) | set(joins)
        | set(dropped)
    )
    if not nodes:
        return None
    table = ResultTable(title=title)
    for name in nodes:
        delay = delays.get(name)
        hop = hops.get(name)
        join = joins.get(name)
        table.add_row(
            node=name,
            created=int(created[name].value) if name in created else 0,
            fwd=int(forwarded[name].value) if name in forwarded else 0,
            delivered=int(delivered[name].value) if name in delivered else 0,
            dropped=int(dropped.get(name, 0)),
            delay_p50_ms=(delay.p50 * 1e3
                          if delay is not None and delay.p50 is not None
                          else None),
            delay_p95_ms=(delay.p95 * 1e3
                          if delay is not None and delay.p95 is not None
                          else None),
            hops_mean=(hop.mean if hop is not None and hop.count else None),
            join_s=(join.value if join is not None else None),
        )
    overall = next(
        (h for h in recorder.registry.histograms("route.join_time_s")
         if not h.labels), None)
    if overall is not None and overall.count:
        table.add_note(
            f"join time: mean {overall.mean:.3f} s, "
            f"max {overall.max:.3f} s over {overall.count} nodes"
        )
    return table


def events_summary(records: List[Dict[str, object]],
                   title: str = "server events summary") -> ResultTable:
    """Per-exhibit roll-up of a campaign server's events JSONL.

    ``records`` are the dicts the server's rotating ``/events`` sink
    writes (``kind == "event"``; job records carry ``event == "job"``).
    One row per exhibit: job count, successes, cache hits, and latency
    quantiles over the *executed* (non-cache) jobs — which makes
    ``repro obs summary <state_dir>/events.jsonl`` the post-hoc
    counterpart of the live ``repro obs top`` view.
    """
    per: Dict[str, Dict[str, List[float]]] = {}
    campaigns: set = set()
    for record in records:
        if record.get("kind") not in (None, "event"):
            continue
        if record.get("campaign") is not None:
            campaigns.add(record["campaign"])
        if record.get("event") != "job":
            continue
        exhibit = str(record.get("exhibit_id", "?"))
        bucket = per.setdefault(
            exhibit, {"ok": [], "cache": [], "elapsed": []})
        bucket["ok"].append(1.0 if record.get("ok") else 0.0)
        cached = bool(record.get("from_cache"))
        bucket["cache"].append(1.0 if cached else 0.0)
        if not cached:
            bucket["elapsed"].append(float(record.get("elapsed_s", 0.0)))
    table = ResultTable(title=title)
    for exhibit in sorted(per):
        bucket = per[exhibit]
        executed = sorted(bucket["elapsed"])

        def quantile(q: float) -> Optional[float]:
            if not executed:
                return None
            rank = -int(-q * len(executed) // 1)
            return executed[min(len(executed), max(1, rank)) - 1]

        table.add_row(
            exhibit=exhibit,
            jobs=len(bucket["ok"]),
            ok=int(sum(bucket["ok"])),
            cache_hits=int(sum(bucket["cache"])),
            executed=len(executed),
            p50_s=quantile(0.50),
            p95_s=quantile(0.95),
        )
    table.add_note(f"{len(records)} records, "
                   f"{len(campaigns)} campaign(s)")
    return table


def summary_tables(recorders: List[Observability],
                   exhibit: Optional[str] = None) -> List[ResultTable]:
    """Node + channel tables for every recorder of a session."""
    tables: List[ResultTable] = []
    multiple = len(recorders) > 1
    for recorder in recorders:
        suffix = f" — run {recorder.run_id}" if multiple else ""
        prefix = f"{exhibit}: " if exhibit else ""
        tables.append(node_table(
            recorder, title=f"{prefix}per-node metrics{suffix}"))
        tables.append(channel_table(
            recorder, title=f"{prefix}per-channel metrics{suffix}"))
        routing = routing_table(
            recorder, title=f"{prefix}routing metrics{suffix}")
        if routing is not None:
            tables.append(routing)
    return tables
