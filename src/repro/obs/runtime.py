"""Ambient observability sessions.

Exhibit ``run()`` callables build their
:class:`~repro.net.deployment.Deployment` objects internally, so — exactly
as with :class:`~repro.check.runtime.CheckSession` — telemetry cannot be
threaded through arguments without editing every figure module.  An
:class:`ObsSession` is installed as an ambient context instead;
``Deployment.__init__`` consults :func:`active_obs_session` and, when one
is active and no explicit ``obs=`` recorder was passed, asks the session
for a fresh :class:`~repro.obs.recorder.Observability` (one per
deployment — a single exhibit may build several rigs, e.g. one per CFD
point).

Sessions do not nest and are process-local (campaign worker processes
install their own), so a module global suffices.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .metrics import metric_key as _metric_key
from .recorder import Observability
from .sinks import SCHEMA_VERSION, Sink

__all__ = ["ObsSession", "active_obs_session"]

_ACTIVE: Optional["ObsSession"] = None


def _quantile(ordered: List[float], q: float) -> float:
    rank = -int(-q * len(ordered) // 1)
    return ordered[min(len(ordered), max(1, rank)) - 1]


class ObsSession:
    """One observed run: a recorder per deployment plus aggregation.

    Parameters
    ----------
    sample_interval_s:
        Gauge-sampler period handed to each recorder; ``None`` keeps only
        event-driven telemetry (the cheap profile campaign jobs use).
    sink:
        Optional shared :class:`~repro.obs.sinks.Sink`; recorders stream
        into it with distinct ``run`` ids, in construction order.
    max_spans / max_points / max_hist_samples:
        Per-recorder store bounds (see :class:`Observability`).
    """

    def __init__(
        self,
        sample_interval_s: Optional[float] = 0.01,
        sink: Optional[Sink] = None,
        max_spans: int = 200_000,
        max_points: int = 65_536,
        max_hist_samples: int = 100_000,
    ) -> None:
        self.sample_interval_s = sample_interval_s
        self.sink = sink
        self.max_spans = max_spans
        self.max_points = max_points
        self.max_hist_samples = max_hist_samples
        #: Recorders of the deployments created inside the session, in
        #: construction order.
        self.recorders: List[Observability] = []

    # ------------------------------------------------------------------
    def make_observability(self) -> Observability:
        """Build and register the recorder for one deployment."""
        recorder = Observability(
            sample_interval_s=self.sample_interval_s,
            max_spans=self.max_spans,
            max_points=self.max_points,
            max_hist_samples=self.max_hist_samples,
            sink=self.sink,
            run_id=len(self.recorders),
        )
        self.recorders.append(recorder)
        return recorder

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Aggregate the session's metrics into one JSON-safe dict.

        Counters sum across recorders; histogram samples are pooled so
        quantiles stay exact over the stored observations.  This is the
        shape the campaign executor rolls into the result cache.
        """
        counters: Dict[str, float] = {}
        pooled: Dict[str, List[float]] = {}
        stats: Dict[str, Dict[str, float]] = {}
        spans = 0
        sim_time = 0.0
        for recorder in self.recorders:
            spans += len(recorder.spans)
            sim_time += recorder.duration_s
            for counter in recorder.registry.counters():
                key = _metric_key(counter.name, counter.labels)
                counters[key] = counters.get(key, 0.0) + counter.value
            for hist in recorder.registry.histograms():
                key = _metric_key(hist.name, hist.labels)
                agg = stats.setdefault(
                    key, {"count": 0, "total": 0.0,
                          "min": float("inf"), "max": float("-inf")}
                )
                agg["count"] += hist.count
                agg["total"] += hist.total
                if hist.min is not None:
                    agg["min"] = min(agg["min"], hist.min)
                if hist.max is not None:
                    agg["max"] = max(agg["max"], hist.max)
                # Pool the stored samples across recorders: nearest-rank
                # quantiles cannot be merged from per-recorder quantiles.
                pooled.setdefault(key, []).extend(hist._samples)
        histograms: Dict[str, Dict[str, float]] = {}
        for key, agg in stats.items():
            count = agg["count"]
            summary: Dict[str, Any] = {
                "count": count,
                "mean": agg["total"] / count if count else 0.0,
                "min": agg["min"] if count else None,
                "max": agg["max"] if count else None,
            }
            samples = sorted(pooled.get(key, ()))
            if samples:
                summary["p50"] = _quantile(samples, 0.50)
                summary["p95"] = _quantile(samples, 0.95)
                summary["p99"] = _quantile(samples, 0.99)
            histograms[key] = summary
        return {
            "schema": SCHEMA_VERSION,
            "runs": len(self.recorders),
            "sim_time_s": sim_time,
            "spans": spans,
            "counters": counters,
            "histograms": histograms,
        }

    # ------------------------------------------------------------------
    def __enter__(self) -> "ObsSession":
        global _ACTIVE
        if _ACTIVE is not None:
            raise RuntimeError("obs sessions do not nest")
        _ACTIVE = self
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        global _ACTIVE
        _ACTIVE = None
        for recorder in self.recorders:
            recorder.finalize()


def active_obs_session() -> Optional[ObsSession]:
    """The currently installed session, or ``None``."""
    return _ACTIVE
