"""Span records: named time intervals on a per-node timeline.

The instrumented layers record four span kinds:

- ``tx`` — radio transmit, start of TX to end-of-airtime;
- ``rx`` — locked reception, preamble lock to finalisation (``crc`` arg)
  or to abandonment (``aborted`` arg, half-duplex TX pre-emption);
- ``backoff`` — one CSMA random backoff delay;
- ``cca`` — the CCA measurement window that follows a backoff
  (``busy`` arg carries the verdict).

Spans are recorded *retrospectively* — at the moment the interval is known
to have completed — so a cancelled transaction never leaves a phantom
span.  The log is bounded: when full, the oldest spans are dropped and
counted, so fig-scale runs with observability enabled cannot exhaust
memory.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Iterator, List, Optional

__all__ = ["Span", "SpanLog"]


class Span:
    """One completed interval on a node's timeline."""

    __slots__ = ("kind", "node", "start", "end", "args")

    def __init__(self, kind: str, node: str, start: float, end: float,
                 args: Optional[Dict[str, Any]] = None) -> None:
        self.kind = kind
        self.node = node
        self.start = start
        self.end = end
        self.args = args if args is not None else {}

    @property
    def duration(self) -> float:
        return self.end - self.start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Span {self.kind} {self.node} "
                f"[{self.start:.6f}, {self.end:.6f}]>")


class SpanLog:
    """Bounded, append-only store of completed spans."""

    def __init__(self, max_spans: int = 200_000) -> None:
        self.max_spans = max_spans
        self._spans: Deque[Span] = deque(maxlen=max_spans)
        #: Spans evicted because the log was full (oldest-first drop).
        self.dropped = 0

    def record(self, span: Span) -> None:
        if len(self._spans) == self.max_spans:
            self.dropped += 1
        self._spans.append(span)

    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self._spans)

    def of_kind(self, kind: str) -> List[Span]:
        return [s for s in self._spans if s.kind == kind]

    def for_node(self, node: str) -> List[Span]:
        return [s for s in self._spans if s.node == node]

    def nodes(self) -> List[str]:
        """Distinct node names, sorted (stable timeline thread order)."""
        return sorted({s.node for s in self._spans})
