"""Prometheus text-format exposition of a :class:`MetricsRegistry`.

The campaign server's ``GET /metrics`` endpoint renders its
server-lifetime registry through :func:`render_prometheus`, producing the
`Prometheus text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_
(version ``0.0.4``) so any off-the-shelf scraper — or the bundled
``repro obs top`` dashboard — can consume it:

- :class:`~repro.obs.metrics.Counter` → ``counter`` samples;
- :class:`~repro.obs.metrics.Gauge` → ``gauge`` samples (read live);
- :class:`~repro.obs.metrics.Histogram` → ``summary`` families
  (``{quantile="0.5|0.95|0.99"}`` plus ``_sum``/``_count``);
- :class:`~repro.obs.metrics.TimeSeries` → a ``gauge`` carrying the most
  recent point (skipped when a real gauge already owns the name).

Metric names keep their dotted registry spelling internally
(``server.jobs.completed``) and are sanitised to the Prometheus grammar
(``server_jobs_completed``) only at render time.

The module also carries the inverse direction:
:func:`parse_prometheus` (used by the dashboard and by the validator
test) and :func:`merge_worker_snapshot`, which folds a worker process's
:func:`~repro.obs.metrics.registry_snapshot` /
:meth:`~repro.obs.runtime.ObsSession.snapshot` dict into a parent
registry under ``worker.*`` names — counters add exactly; histogram
summaries (whose raw samples never cross the process boundary) become
``worker.<name>.sum`` / ``worker.<name>.count`` counter pairs, the shape
Prometheus histograms use anyway.
"""

from __future__ import annotations

import math
import re
from typing import Any, Dict, Iterable, List, Mapping, Tuple

from .metrics import MetricsRegistry

__all__ = [
    "render_prometheus",
    "parse_prometheus",
    "validate_prometheus",
    "parse_metric_key",
    "merge_worker_snapshot",
    "sanitize_metric_name",
]

#: Quantiles exported for every histogram (the summary convention).
_QUANTILES = (0.50, 0.95, 0.99)

_NAME_OK = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_OK = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>-?(?:[0-9]*\.?[0-9]+(?:[eE][+-]?[0-9]+)?|Inf)|NaN|[+-]Inf)"
    r"(?: (?P<ts>-?[0-9]+))?$"
)
_LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def sanitize_metric_name(name: str) -> str:
    """Map a dotted registry name onto the Prometheus name grammar.

    Dots (the registry convention) and any other illegal characters
    become underscores; a leading digit gains an underscore prefix.
    """
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return cleaned or "_"


def _escape_label_value(value: str) -> str:
    return (value.replace("\\", r"\\")
            .replace("\n", r"\n")
            .replace('"', r'\"'))


def _unescape_label_value(value: str) -> str:
    return (value.replace(r'\"', '"')
            .replace(r"\n", "\n")
            .replace(r"\\", "\\"))


def _fmt_value(value: float) -> str:
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return f"{value:.10g}"


def _sample_line(name: str, labels: Iterable[Tuple[str, str]],
                 value: float) -> str:
    pairs = [
        f'{sanitize_metric_name(key)}="{_escape_label_value(str(val))}"'
        for key, val in labels
    ]
    body = "{" + ",".join(pairs) + "}" if pairs else ""
    return f"{name}{body} {_fmt_value(value)}"


def render_prometheus(registry: MetricsRegistry) -> str:
    """Render one registry as Prometheus ``text/plain; version=0.0.4``.

    Families are emitted in registry insertion order (counters, then
    gauges, then histograms-as-summaries, then time-series last values),
    each preceded by its ``# TYPE`` line.  Gauges are read live at render
    time; nothing here mutates the registry, so rendering is safe at any
    point in the server's life.
    """
    lines: List[str] = []
    emitted: set = set()

    def family(kind_iter, prom_type: str, sample_fn) -> None:
        grouped: Dict[str, List[Any]] = {}
        for metric in kind_iter:
            grouped.setdefault(metric.name, []).append(metric)
        for name, metrics in grouped.items():
            sname = sanitize_metric_name(name)
            if sname in emitted:
                continue
            emitted.add(sname)
            lines.append(f"# TYPE {sname} {prom_type}")
            for metric in metrics:
                sample_fn(sname, metric)

    def counter_sample(sname, counter) -> None:
        lines.append(_sample_line(sname, counter.labels, counter.value))

    def gauge_sample(sname, gauge) -> None:
        lines.append(_sample_line(sname, gauge.labels, gauge.read()))

    family(registry.counters(), "counter", counter_sample)
    family(registry.of_kind("gauge"), "gauge", gauge_sample)

    # Histograms render as summaries: quantile samples + _sum/_count.
    grouped: Dict[str, List[Any]] = {}
    for hist in registry.histograms():
        grouped.setdefault(hist.name, []).append(hist)
    for name, hists in grouped.items():
        sname = sanitize_metric_name(name)
        if sname in emitted:
            continue
        emitted.add(sname)
        emitted.update((f"{sname}_sum", f"{sname}_count"))
        lines.append(f"# TYPE {sname} summary")
        for hist in hists:
            for quantile in _QUANTILES:
                value = hist.quantile(quantile)
                if value is None:
                    continue
                labels = list(hist.labels) + [("quantile", f"{quantile:g}")]
                lines.append(_sample_line(sname, labels, value))
            lines.append(_sample_line(f"{sname}_sum", hist.labels, hist.total))
            lines.append(_sample_line(f"{sname}_count", hist.labels,
                                      float(hist.count)))

    # Time series: most recent point as a gauge, unless a live gauge of
    # the same name was already rendered (the sampler pairs them).
    def series_sample(sname, series) -> None:
        last = series.last()
        if last is not None and math.isfinite(last[1]):
            lines.append(_sample_line(sname, series.labels, last[1]))

    family(registry.series(), "gauge", series_sample)
    return "\n".join(lines) + "\n" if lines else ""


# ----------------------------------------------------------------------
# Parsing (the dashboard's and the validator test's direction).


def parse_prometheus(text: str) -> List[Tuple[str, Dict[str, str], float]]:
    """Parse exposition text into ``(name, labels, value)`` samples.

    Comment/``# TYPE`` lines are skipped; malformed sample lines raise
    ``ValueError`` (this doubles as the format validator — see
    :func:`validate_prometheus`).
    """
    samples: List[Tuple[str, Dict[str, str], float]] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: not a valid sample: {raw!r}")
        labels: Dict[str, str] = {}
        body = match.group("labels")
        if body:
            consumed = 0
            for pair in _LABEL_PAIR.finditer(body):
                labels[pair.group(1)] = _unescape_label_value(pair.group(2))
                consumed = pair.end()
            rest = body[consumed:].strip().strip(",")
            if rest:
                raise ValueError(
                    f"line {lineno}: bad label syntax near {rest!r}"
                )
        value_text = match.group("value")
        if value_text == "NaN":
            value = float("nan")
        elif value_text.endswith("Inf"):
            value = float("-inf") if value_text.startswith("-") else float("inf")
        else:
            value = float(value_text)
        samples.append((match.group("name"), labels, value))
    return samples


def validate_prometheus(text: str) -> int:
    """Validate exposition text; returns the sample count.

    Beyond per-line grammar (delegated to :func:`parse_prometheus`) this
    checks the family discipline: every sample's base name must be
    covered by a preceding ``# TYPE`` line, label names must be legal,
    and a ``# TYPE`` must not repeat.
    """
    typed: Dict[str, str] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line.startswith("# TYPE "):
            continue
        parts = line.split()
        if len(parts) != 4 or parts[3] not in (
            "counter", "gauge", "histogram", "summary", "untyped"
        ):
            raise ValueError(f"line {lineno}: bad TYPE line: {raw!r}")
        name = parts[2]
        if not _NAME_OK.match(name):
            raise ValueError(f"line {lineno}: bad metric name {name!r}")
        if name in typed:
            raise ValueError(f"line {lineno}: duplicate TYPE for {name!r}")
        typed[name] = parts[3]
    samples = parse_prometheus(text)
    for name, labels, _value in samples:
        base = name
        for suffix in ("_sum", "_count", "_bucket"):
            if name.endswith(suffix) and name[: -len(suffix)] in typed:
                base = name[: -len(suffix)]
                break
        if base not in typed:
            raise ValueError(f"sample {name!r} has no # TYPE family")
        for label in labels:
            if not _LABEL_NAME_OK.match(label):
                raise ValueError(f"bad label name {label!r} on {name!r}")
    return len(samples)


# ----------------------------------------------------------------------
# Worker snapshot merging (the server-side half of trans-process
# telemetry: workers ship registry_snapshot()/ObsSession.snapshot()
# dicts home on JobOutcome.metrics).


def parse_metric_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Invert :func:`repro.obs.metrics.metric_key`.

    ``"name{k=v,k2=v2}"`` → ``("name", {"k": "v", "k2": "v2"})``; a bare
    name maps to empty labels.  Label *values* in snapshot keys are the
    ``str()`` of the original values and contain no braces by
    construction.
    """
    if not key.endswith("}") or "{" not in key:
        return key, {}
    name, _, body = key.partition("{")
    labels: Dict[str, str] = {}
    for pair in body[:-1].split(","):
        if not pair:
            continue
        label, _, value = pair.partition("=")
        labels[label] = value
    return name, labels


def merge_worker_snapshot(registry: MetricsRegistry,
                          snapshot: Mapping[str, Any],
                          prefix: str = "worker.") -> None:
    """Fold one worker metrics snapshot into ``registry`` under ``prefix``.

    Counters accumulate exactly (each snapshot is one job's delta, so
    summing across jobs yields server-lifetime totals).  Histogram
    summaries cannot be merged sample-exactly across processes, so they
    land as ``<prefix><name>.sum`` / ``<prefix><name>.count`` counter
    pairs; ``total`` is reconstructed from ``mean * count`` when a
    session snapshot omitted it.
    """
    for key, value in (snapshot.get("counters") or {}).items():
        name, labels = parse_metric_key(key)
        registry.counter(prefix + name, **labels).inc(float(value))
    for key, summary in (snapshot.get("histograms") or {}).items():
        name, labels = parse_metric_key(key)
        count = float(summary.get("count", 0) or 0)
        total = summary.get("total")
        if total is None:
            total = float(summary.get("mean", 0.0) or 0.0) * count
        registry.counter(prefix + name + ".count", **labels).inc(count)
        # Direct value add, not inc(): summary sums of negative-valued
        # observations (rx.rssi_dbm is measured in dBm) go down, which a
        # strict counter rejects — exactly like a Prometheus summary
        # _sum, which is also allowed to decrease.
        registry.counter(prefix + name + ".sum", **labels).value += float(total)
