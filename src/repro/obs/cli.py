"""``python -m repro obs`` subcommands.

::

    repro obs summary fig04 --fast          # per-node/per-channel tables
    repro obs timeline fig04 -o out.json    # Chrome trace_event export
    repro obs export fig04 -o run.jsonl     # streaming JSONL record dump
    repro obs tail run.jsonl [-n 20] [--kind span]

``summary``/``timeline``/``export`` re-run the named exhibit under an
ambient :class:`~repro.obs.runtime.ObsSession` (exhibits construct their
deployments internally, so this is the only hook point that needs no
figure-module changes).  ``tail`` is offline: it inspects a JSONL file a
previous ``export`` produced — including one still being written.
"""

from __future__ import annotations

import json
import sys
from typing import Optional, Tuple

from .runtime import ObsSession
from .sinks import JsonlSink, Sink, read_jsonl, run_manifest
from .timeline import write_trace

__all__ = ["observe_exhibit", "cmd_summary", "cmd_timeline", "cmd_export",
           "cmd_tail"]


def observe_exhibit(
    experiment_id: str,
    seed: int = 1,
    fast: bool = True,
    sample_interval_s: Optional[float] = 0.01,
    sink: Optional[Sink] = None,
) -> Tuple[ObsSession, object]:
    """Run one registered exhibit under an ambient obs session.

    Returns ``(session, result_table)``; the session's recorders are
    finalised (observation windows frozen, counters flushed to the sink).
    """
    from ..experiments.registry import get

    experiment = get(experiment_id)
    with ObsSession(sample_interval_s=sample_interval_s, sink=sink) as session:
        table = experiment.run(seed=seed, fast=fast)
    return session, table


def cmd_summary(args) -> int:
    from .summary import summary_tables

    try:
        session, _table = observe_exhibit(
            args.experiment, seed=args.seed, fast=args.fast,
            sample_interval_s=args.sample_interval,
        )
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    if not session.recorders:
        print(f"{args.experiment} built no deployments; nothing to summarise",
              file=sys.stderr)
        return 1
    for table in summary_tables(session.recorders, exhibit=args.experiment):
        print(table.to_text("{:.4g}"))
        print()
    snap = session.snapshot()
    print(f"{args.experiment}: {snap['runs']} run(s), "
          f"{snap['spans']} spans, {snap['sim_time_s']:.3f} s sim time")
    return 0


def cmd_timeline(args) -> int:
    try:
        session, _table = observe_exhibit(
            args.experiment, seed=args.seed, fast=args.fast,
            sample_interval_s=args.sample_interval,
        )
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    if not session.recorders:
        print(f"{args.experiment} built no deployments; nothing to export",
              file=sys.stderr)
        return 1
    manifest = run_manifest(exhibit=args.experiment, seed=args.seed,
                            profile="fast" if args.fast else "full")
    count = write_trace(args.out, session.recorders, metadata=manifest)
    print(f"wrote {count} trace events for {len(session.recorders)} run(s) "
          f"to {args.out} (open at https://ui.perfetto.dev)")
    return 0


def cmd_export(args) -> int:
    with JsonlSink(args.out) as sink:
        sink.emit(run_manifest(exhibit=args.experiment, seed=args.seed,
                               profile="fast" if args.fast else "full"))
        try:
            session, _table = observe_exhibit(
                args.experiment, seed=args.seed, fast=args.fast,
                sample_interval_s=args.sample_interval, sink=sink,
            )
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        emitted = sink.emitted
    print(f"wrote {emitted} records for {len(session.recorders)} run(s) "
          f"to {args.out}")
    return 0


def cmd_tail(args) -> int:
    if args.lines < 1:
        print(f"-n must be >= 1, got {args.lines}", file=sys.stderr)
        return 2
    try:
        records = read_jsonl(args.path, last=args.lines, kind=args.kind)
    except OSError as exc:
        print(f"cannot read {args.path}: {exc}", file=sys.stderr)
        return 2
    for record in records:
        print(json.dumps(record, sort_keys=True, separators=(",", ":")))
    return 0
