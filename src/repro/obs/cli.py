"""``python -m repro obs`` subcommands.

::

    repro obs summary fig04 --fast          # per-node/per-channel tables
    repro obs summary server/events.jsonl   # post-hoc server-run roll-up
    repro obs timeline fig04 -o out.json    # Chrome trace_event export
    repro obs timeline --campaign c0001-… --url http://…  # merged
                                            # server+worker campaign trace
    repro obs export fig04 -o run.jsonl     # streaming JSONL record dump
    repro obs tail run.jsonl [-n 20] [--kind span]
    repro obs top --url http://127.0.0.1:8642   # live server dashboard

``summary``/``timeline``/``export`` re-run the named exhibit under an
ambient :class:`~repro.obs.runtime.ObsSession` (exhibits construct their
deployments internally, so this is the only hook point that needs no
figure-module changes).  ``tail`` is offline: it inspects a JSONL file a
previous ``export`` produced — including one still being written.
``summary`` of a ``.jsonl`` path is likewise offline: it rolls up the
campaign server's rotating events sink instead of running anything.
"""

from __future__ import annotations

import json
import sys
from typing import Optional, Tuple

from .runtime import ObsSession
from .sinks import JsonlSink, Sink, read_jsonl, run_manifest
from .timeline import write_trace

__all__ = ["observe_exhibit", "cmd_summary", "cmd_timeline", "cmd_export",
           "cmd_tail", "cmd_top"]


def observe_exhibit(
    experiment_id: str,
    seed: int = 1,
    fast: bool = True,
    sample_interval_s: Optional[float] = 0.01,
    sink: Optional[Sink] = None,
) -> Tuple[ObsSession, object]:
    """Run one registered exhibit under an ambient obs session.

    Returns ``(session, result_table)``; the session's recorders are
    finalised (observation windows frozen, counters flushed to the sink).
    """
    from ..experiments.registry import get

    experiment = get(experiment_id)
    with ObsSession(sample_interval_s=sample_interval_s, sink=sink) as session:
        table = experiment.run(seed=seed, fast=fast)
    return session, table


def cmd_summary(args) -> int:
    from .summary import summary_tables

    if args.experiment.endswith(".jsonl"):
        # Offline mode: roll up a server events export instead of
        # running an exhibit (the argument is a path, not an id).
        from .summary import events_summary

        try:
            records = read_jsonl(args.experiment)
        except OSError as exc:
            print(f"cannot read {args.experiment}: {exc}", file=sys.stderr)
            return 2
        if not records:
            print(f"{args.experiment}: no records", file=sys.stderr)
            return 1
        print(events_summary(
            records, title=f"{args.experiment}: server events summary"
        ).to_text("{:.4g}"))
        return 0
    try:
        session, _table = observe_exhibit(
            args.experiment, seed=args.seed, fast=args.fast,
            sample_interval_s=args.sample_interval,
        )
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    if not session.recorders:
        print(f"{args.experiment} built no deployments; nothing to summarise",
              file=sys.stderr)
        return 1
    for table in summary_tables(session.recorders, exhibit=args.experiment):
        print(table.to_text("{:.4g}"))
        print()
    snap = session.snapshot()
    print(f"{args.experiment}: {snap['runs']} run(s), "
          f"{snap['spans']} spans, {snap['sim_time_s']:.3f} s sim time")
    return 0


def cmd_timeline(args) -> int:
    if getattr(args, "campaign", None):
        # Server mode: fetch the merged campaign trace (server spans +
        # per-job worker/sim tracks) instead of running anything locally.
        from .top import fetch_json

        url = args.url.rstrip("/")
        try:
            doc = fetch_json(f"{url}/campaigns/{args.campaign}/trace")
        except OSError as exc:
            print(f"cannot fetch campaign trace from {url}: {exc}",
                  file=sys.stderr)
            return 2
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(doc, handle)
            handle.write("\n")
        print(f"wrote {len(doc.get('traceEvents', []))} trace events for "
              f"campaign {args.campaign} to {args.out} "
              f"(open at https://ui.perfetto.dev)")
        return 0
    if args.experiment is None:
        print("give an exhibit id, or --campaign with --url", file=sys.stderr)
        return 2
    try:
        session, _table = observe_exhibit(
            args.experiment, seed=args.seed, fast=args.fast,
            sample_interval_s=args.sample_interval,
        )
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    if not session.recorders:
        print(f"{args.experiment} built no deployments; nothing to export",
              file=sys.stderr)
        return 1
    manifest = run_manifest(exhibit=args.experiment, seed=args.seed,
                            profile="fast" if args.fast else "full")
    count = write_trace(args.out, session.recorders, metadata=manifest)
    print(f"wrote {count} trace events for {len(session.recorders)} run(s) "
          f"to {args.out} (open at https://ui.perfetto.dev)")
    return 0


def cmd_export(args) -> int:
    with JsonlSink(args.out) as sink:
        sink.emit(run_manifest(exhibit=args.experiment, seed=args.seed,
                               profile="fast" if args.fast else "full"))
        try:
            session, _table = observe_exhibit(
                args.experiment, seed=args.seed, fast=args.fast,
                sample_interval_s=args.sample_interval, sink=sink,
            )
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        emitted = sink.emitted
    print(f"wrote {emitted} records for {len(session.recorders)} run(s) "
          f"to {args.out}")
    return 0


def cmd_top(args) -> int:
    from .top import run_top

    return run_top(args.url, interval_s=args.interval, once=args.once,
                   width=args.width)


def cmd_tail(args) -> int:
    if args.lines < 1:
        print(f"-n must be >= 1, got {args.lines}", file=sys.stderr)
        return 2
    try:
        records = read_jsonl(args.path, last=args.lines, kind=args.kind)
    except OSError as exc:
        print(f"cannot read {args.path}: {exc}", file=sys.stderr)
        return 2
    for record in records:
        print(json.dumps(record, sort_keys=True, separators=(",", ":")))
    return 0
