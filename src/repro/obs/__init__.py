"""``repro.obs`` — the observability subsystem.

Everything the other PR-era subsystems (campaign, perf, check) report
about *outcomes*, this package reports about *behaviour over time*:

- :mod:`repro.obs.metrics` — ``Counter``/``Gauge``/``Histogram``/
  ``TimeSeries`` in a labelled :class:`MetricsRegistry`;
- :mod:`repro.obs.spans` — completed tx/rx/backoff/CCA intervals;
- :mod:`repro.obs.recorder` — :class:`Observability`, the per-simulator
  recorder the model layers feed through ``sim.obs`` hooks;
- :mod:`repro.obs.sinks` — bounded memory buffer and streaming JSONL
  writer under a versioned schema, plus the run manifest;
- :mod:`repro.obs.runtime` — the ambient :class:`ObsSession` that lets
  ``repro obs ...`` instrument unmodified exhibits;
- :mod:`repro.obs.timeline` — Chrome ``trace_event`` export (Perfetto);
- :mod:`repro.obs.summary` — per-node/per-channel metric tables;
- :mod:`repro.obs.exposition` — Prometheus text-format rendering of a
  registry (the campaign server's ``GET /metrics``) and worker-snapshot
  merging;
- :mod:`repro.obs.tracectx` — cross-process trace propagation
  (campaign → job → span) and the merged per-campaign Chrome trace;
- :mod:`repro.obs.top` — the live ANSI dashboard (``repro obs top``)
  over a running campaign server.

Enable per run with ``Deployment(obs=Observability())`` or ambiently::

    with ObsSession() as session:
        fig04.run(seed=1, fast=True)
    print(session.snapshot())

Disabled (the default) the instrumentation costs one ``is None`` test per
hook site, and enabling it never changes fixed-seed results.
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TimeSeries,
    metric_key,
    registry_snapshot,
)
from .exposition import (
    merge_worker_snapshot,
    parse_prometheus,
    render_prometheus,
    validate_prometheus,
)
from .recorder import Observability
from .runtime import ObsSession, active_obs_session
from .sinks import (
    SCHEMA_VERSION,
    JsonlSink,
    MemorySink,
    RotatingJsonlSink,
    Sink,
    read_jsonl,
    run_manifest,
)
from .spans import Span, SpanLog
from .summary import channel_table, node_table, summary_tables
from .timeline import trace_events, write_trace
from .tracectx import SpanRecorder, TraceContext, campaign_trace

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "TimeSeries",
    "MetricsRegistry",
    "metric_key",
    "registry_snapshot",
    "Span",
    "SpanLog",
    "Observability",
    "ObsSession",
    "active_obs_session",
    "SCHEMA_VERSION",
    "Sink",
    "MemorySink",
    "JsonlSink",
    "RotatingJsonlSink",
    "run_manifest",
    "read_jsonl",
    "trace_events",
    "write_trace",
    "node_table",
    "channel_table",
    "summary_tables",
    "render_prometheus",
    "parse_prometheus",
    "validate_prometheus",
    "merge_worker_snapshot",
    "TraceContext",
    "SpanRecorder",
    "campaign_trace",
]
