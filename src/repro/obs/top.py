"""Live ANSI dashboard over a running campaign server (``repro obs top``).

Polls ``GET /metrics`` (parsed with
:func:`~repro.obs.exposition.parse_prometheus`) and the campaign list,
then repaints a single-screen text frame: jobs in flight, queue depth,
throughput, cache hit rate, per-exhibit latency quantiles, and the tail
of the newest campaign's event stream.  Everything is stdlib — plain
ANSI clear-and-home escapes, no curses — so it works over ssh and in CI
logs alike.

The rendering core (:func:`render_dashboard`) is a pure function of the
parsed samples, which is what the tests drive; :func:`run_top` is the
thin polling loop around it.

This module deliberately does **not** import :mod:`repro.campaign`
(campaign already imports :mod:`repro.obs`; the dashboard speaks plain
HTTP via :mod:`urllib` instead), so it can watch any server that exposes
the same endpoints.
"""

from __future__ import annotations

import json
import sys
import time
import urllib.error
import urllib.request
from typing import Any, Dict, List, Mapping, Optional, Sequence, TextIO, Tuple

from .exposition import parse_prometheus

__all__ = ["MetricView", "render_dashboard", "run_top",
           "fetch_text", "fetch_json", "fetch_events"]

#: ANSI: clear screen, cursor home.  Emitted between frames by run_top.
CLEAR = "\x1b[2J\x1b[H"

Sample = Tuple[str, Dict[str, str], float]


def fetch_text(url: str, timeout_s: float = 10.0) -> str:
    """GET a URL and return its body as text (raises ``OSError`` kin)."""
    with urllib.request.urlopen(url, timeout=timeout_s) as response:
        return response.read().decode("utf-8")


def fetch_json(url: str, timeout_s: float = 10.0) -> Any:
    """GET a URL and decode its JSON body."""
    return json.loads(fetch_text(url, timeout_s=timeout_s))


def fetch_events(url: str, timeout_s: float = 1.0,
                 max_lines: int = 500) -> List[Dict[str, Any]]:
    """Read an NDJSON event stream, best-effort.

    ``/campaigns/<id>/events`` replays history and then *follows* a
    running campaign, so a plain read would block until the campaign
    finishes.  The short socket timeout bounds the wait: when the stream
    stalls (no new event within ``timeout_s``) we keep whatever already
    arrived — exactly what a dashboard tail wants.
    """
    records: List[Dict[str, Any]] = []
    try:
        with urllib.request.urlopen(url, timeout=timeout_s) as response:
            for line in response:
                try:
                    record = json.loads(line.decode("utf-8"))
                except ValueError:
                    continue
                records.append(record)
                if len(records) >= max_lines:
                    break
                if record.get("event") == "done":
                    break
    except (OSError, urllib.error.URLError):
        pass  # stalled stream / unreachable: render what we have
    return records


class MetricView:
    """Indexed access over parsed exposition samples.

    Wraps the ``(name, labels, value)`` triples from
    :func:`parse_prometheus` with the three lookups a dashboard needs:
    a single value, a sum over label sets, and a per-label-value
    breakdown (for the per-exhibit latency table).
    """

    def __init__(self, samples: Sequence[Sample]) -> None:
        self.samples = list(samples)
        self._by_name: Dict[str, List[Tuple[Dict[str, str], float]]] = {}
        for name, labels, value in self.samples:
            self._by_name.setdefault(name, []).append((labels, value))

    def _matching(self, name: str,
                  **labels: str) -> List[Tuple[Dict[str, str], float]]:
        rows = self._by_name.get(name, [])
        if not labels:
            return rows
        return [(l, v) for l, v in rows
                if all(l.get(k) == v2 for k, v2 in labels.items())]

    def value(self, name: str, default: Optional[float] = None,
              **labels: str) -> Optional[float]:
        """The first sample matching ``name`` (and label subset), if any."""
        rows = self._matching(name, **labels)
        return rows[0][1] if rows else default

    def total(self, name: str, **labels: str) -> float:
        """Sum of every sample matching ``name`` (and label subset)."""
        return sum(v for _l, v in self._matching(name, **labels))

    def by_label(self, name: str, label: str,
                 **labels: str) -> Dict[str, float]:
        """``label``-value → sample value, for per-exhibit breakdowns."""
        out: Dict[str, float] = {}
        for sample_labels, value in self._matching(name, **labels):
            key = sample_labels.get(label)
            if key is not None:
                out[key] = value
        return out


# ----------------------------------------------------------------------
# Formatting helpers.


def _fmt_duration(seconds: Optional[float]) -> str:
    if seconds is None:
        return "-"
    seconds = float(seconds)
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.1f}ms"
    if seconds < 120.0:
        return f"{seconds:.1f}s"
    if seconds < 7200.0:
        return f"{seconds / 60.0:.1f}m"
    return f"{seconds / 3600.0:.1f}h"


def _fmt_bytes(count: Optional[float]) -> str:
    if count is None:
        return "-"
    count = float(count)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if count < 1024.0 or unit == "GiB":
            return f"{count:.0f}{unit}" if unit == "B" else f"{count:.1f}{unit}"
        count /= 1024.0
    return f"{count:.1f}GiB"


def _bar(fraction: float, width: int) -> str:
    fraction = min(1.0, max(0.0, fraction))
    filled = int(round(fraction * width))
    return "#" * filled + "." * (width - filled)


def _int(value: Optional[float]) -> str:
    return "-" if value is None else str(int(value))


# ----------------------------------------------------------------------
# The frame.


def render_dashboard(
    url: str,
    view: MetricView,
    prev: Optional[MetricView] = None,
    interval_s: float = 2.0,
    width: int = 78,
    events: Sequence[Mapping[str, Any]] = (),
    campaigns: Sequence[Mapping[str, Any]] = (),
) -> str:
    """Render one dashboard frame as a plain multi-line string.

    ``prev`` is the previous poll's view; when present, throughput is the
    delta of the completed-jobs counter over ``interval_s``.  Pure: no
    I/O, no clock reads — callers own both, which keeps this testable.
    """
    width = max(40, width)
    rule = "-" * width
    lines: List[str] = []

    def kv(label: str, value: str) -> str:
        return f"  {label:<22}{value}"

    uptime = view.value("server_uptime_s")
    lines.append(f"repro obs top — {url}"[:width])
    lines.append(rule)
    lines.append(kv("uptime", _fmt_duration(uptime)))
    lines.append(kv("campaigns running", _int(view.value(
        "server_campaigns_running"))))
    lines.append(kv("jobs in flight", _int(view.value(
        "server_jobs_in_flight"))))
    lines.append(kv("queue depth", _int(view.value("server_queue_depth"))))

    completed = view.total("server_jobs_completed")
    failed = view.total("server_jobs_failed")
    retried = view.total("server_jobs_retried")
    coalesced = view.total("server_jobs_coalesced")
    if prev is not None and interval_s > 0:
        rate = (completed - prev.total("server_jobs_completed")) / interval_s
        throughput = f"{rate:.2f} jobs/s"
    else:
        throughput = "warming up"
    lines.append(kv("jobs done/failed", f"{completed:.0f} / {failed:.0f}"
                    f"   (retried {retried:.0f},"
                    f" coalesced {coalesced:.0f})"))
    lines.append(kv("throughput", throughput))

    hits = view.total("campaign_cache_hits")
    misses = view.total("campaign_cache_misses")
    lookups = hits + misses
    ratio = hits / lookups if lookups else 0.0
    bar_width = max(10, width - 46)
    lines.append(rule)
    lines.append(kv("cache hit rate",
                    f"[{_bar(ratio, bar_width)}] {100.0 * ratio:5.1f}%"
                    f"  ({hits:.0f}/{lookups:.0f})"))
    lines.append(kv("cache evictions", _int(view.total(
        "campaign_cache_evictions"))))
    size = view.value("server_cache_bytes")
    if size is not None:
        lines.append(kv("cache size", _fmt_bytes(size)))

    # Per-exhibit latency: the server_job_elapsed_s summary family.
    counts = view.by_label("server_job_elapsed_s_count", "exhibit")
    if counts:
        lines.append(rule)
        lines.append(f"  {'exhibit':<16}{'jobs':>6}{'mean':>10}"
                     f"{'p50':>10}{'p95':>10}")
        sums = view.by_label("server_job_elapsed_s_sum", "exhibit")
        p50 = view.by_label("server_job_elapsed_s", "exhibit",
                            quantile="0.5")
        p95 = view.by_label("server_job_elapsed_s", "exhibit",
                            quantile="0.95")
        for exhibit in sorted(counts):
            n = counts[exhibit]
            mean = sums.get(exhibit, 0.0) / n if n else None
            lines.append(
                f"  {exhibit:<16}{n:>6.0f}"
                f"{_fmt_duration(mean):>10}"
                f"{_fmt_duration(p50.get(exhibit)):>10}"
                f"{_fmt_duration(p95.get(exhibit)):>10}"
            )

    if campaigns:
        lines.append(rule)
        for record in list(campaigns)[-4:]:
            lines.append(
                f"  campaign {str(record.get('id', '?'))[:14]:<16}"
                f"{record.get('state', '?'):<10}"
                f"done {record.get('done', 0)}/{record.get('total', 0)}"
                f"  ok {record.get('completed', 0)}"
                f"  failed {record.get('failed', 0)}"
            )

    if events:
        lines.append(rule)
        for event in list(events)[-5:]:
            kind = event.get("event", event.get("kind", "?"))
            if "exhibit_id" in event:
                detail = f"{event['exhibit_id']}@s{event.get('seed', '?')}"
            else:
                detail = str(event.get("id", ""))[:14]
            extra = ""
            if "elapsed_s" in event:
                extra = f"  {_fmt_duration(event['elapsed_s'])}"
            if event.get("from_cache"):
                extra += "  [cache]"
            lines.append(f"  {kind:<10}{detail}{extra}"[:width])

    lines.append(rule)
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# The polling loop.


def run_top(url: str, interval_s: float = 2.0, once: bool = False,
            width: int = 78, stream: Optional[TextIO] = None,
            max_frames: Optional[int] = None) -> int:
    """Poll ``url`` and repaint the dashboard until interrupted.

    Returns a process exit code (0 on clean exit / Ctrl-C, 2 when the
    first poll cannot reach the server).  ``once`` renders a single frame
    without the ANSI clear — the scriptable mode CI uses.
    """
    out = stream if stream is not None else sys.stdout
    base = url.rstrip("/")
    prev: Optional[MetricView] = None
    frames = 0
    while True:
        try:
            view = MetricView(parse_prometheus(
                fetch_text(base + "/metrics")))
            campaigns = fetch_json(base + "/campaigns").get("campaigns", [])
        except (OSError, urllib.error.URLError, ValueError) as exc:
            if prev is None:
                out.write(f"repro obs top: cannot reach {base}: {exc}\n")
                return 2
            view, campaigns = prev, []
        events: List[Dict[str, Any]] = []
        active = [c for c in campaigns if c.get("state") != "done"]
        newest = (active or campaigns)[-1] if campaigns else None
        if newest is not None and newest.get("id"):
            events = fetch_events(base + f"/campaigns/{newest['id']}/events")
        frame = render_dashboard(base, view, prev=prev,
                                 interval_s=interval_s, width=width,
                                 events=events, campaigns=campaigns)
        if once:
            out.write(frame)
            return 0
        out.write(CLEAR + frame)
        out.flush()
        prev = view
        frames += 1
        if max_frames is not None and frames >= max_frames:
            return 0
        try:
            time.sleep(interval_s)
        except KeyboardInterrupt:
            return 0
