"""The per-simulator telemetry recorder.

One :class:`Observability` instance serves one :class:`~repro.sim.
simulator.Simulator` (pass it as ``Simulator(obs=...)`` or
``Deployment(obs=...)``).  It owns

- a :class:`~repro.obs.metrics.MetricsRegistry` (counters, gauges,
  histograms, time series),
- a bounded :class:`~repro.obs.spans.SpanLog`, and
- an optional streaming :class:`~repro.obs.sinks.Sink`.

Model layers call the ``on_*`` hooks guarded by ``if sim.obs is not
None:`` — the disabled path costs one attribute load and an ``is None``
test per hook site, the same discipline as ``trace.enabled`` (verified by
``benchmarks/bench_obs.py`` and the ``obs_off_mini_run`` kernel bench).
Nothing here draws randomness or perturbs event ordering beyond appending
sampler events to the queue, so enabling observability leaves fixed-seed
results byte-identical.

Gauge sampling runs as a periodic sim event (``sample_interval_s``); the
sampler re-arms itself only while other events remain pending, so
``run_until_idle`` still terminates.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, List, Optional

from .metrics import MetricsRegistry
from .sinks import Sink
from .spans import Span, SpanLog

if TYPE_CHECKING:  # pragma: no cover
    from ..mac.mac import Mac
    from ..phy.radio import Radio
    from ..sim.simulator import Simulator

__all__ = ["Observability"]


class Observability:
    """Telemetry recorder for one simulator.

    Parameters
    ----------
    sample_interval_s:
        Period of the gauge sampler (sim seconds).  ``None`` disables
        periodic sampling — event-driven metrics and spans still record,
        which is the cheap profile campaign snapshots use.
    max_spans / max_points / max_hist_samples:
        Bounds of the in-memory stores (oldest entries dropped).
    sink:
        Optional streaming sink receiving every span/point as a record.
    run_id:
        Index of this recorder within an ambient session (one exhibit may
        build several deployments); becomes the ``pid`` of the exported
        timeline and the ``run`` field of sink records.
    """

    def __init__(
        self,
        sample_interval_s: Optional[float] = 0.01,
        max_spans: int = 200_000,
        max_points: int = 65_536,
        max_hist_samples: int = 100_000,
        sink: Optional[Sink] = None,
        run_id: int = 0,
    ) -> None:
        if sample_interval_s is not None and sample_interval_s <= 0:
            raise ValueError("sample_interval_s must be > 0 (or None)")
        self.sample_interval_s = sample_interval_s
        self.registry = MetricsRegistry(
            max_points=max_points, max_hist_samples=max_hist_samples
        )
        self.spans = SpanLog(max_spans=max_spans)
        self.sink = sink
        self.run_id = run_id
        self.sim: Optional["Simulator"] = None
        self.start_time = 0.0
        self.end_time: Optional[float] = None
        self.macs: List["Mac"] = []
        #: node name -> centre frequency (MHz), from radio registration.
        self.node_channels: Dict[str, float] = {}
        self.samples_taken = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def bind(self, sim: "Simulator") -> None:
        """Attach to a simulator (called by ``Simulator.__init__``)."""
        if self.sim is not None:
            raise ValueError(
                "an Observability instance serves exactly one simulator; "
                "create one per run (ObsSession does this automatically)"
            )
        self.sim = sim
        self.start_time = sim.now
        # Scheduler health gauges: live (non-cancelled) events across the
        # main heap plus all band shards, and the cumulative compaction
        # count.  Both read EventQueue bookkeeping that is maintained
        # whether or not band sharding is active.
        queue = sim.event_queue
        self.registry.gauge("event_queue.live",
                            lambda q=queue: float(q.live))
        self.registry.gauge("event_queue.compactions",
                            lambda q=queue: float(q.compactions))
        if self.sample_interval_s is not None:
            sim.schedule(self.sample_interval_s, self._tick, tag="obs.sample")

    def _tick(self) -> None:
        sim = self.sim
        assert sim is not None
        for series, value in self.registry.sample_gauges(sim.now):
            if self.sink is not None:
                self._emit_point(series.name, dict(series.labels),
                                 sim.now, value)
        self.samples_taken += 1
        # Re-arm only while the model still has work: a sampler that kept
        # itself alive unconditionally would make run_until_idle spin
        # forever.
        if sim.pending_events:
            sim.schedule(self.sample_interval_s, self._tick, tag="obs.sample")

    def finalize(self) -> None:
        """Freeze the observation window and flush counters to the sink."""
        if self.sim is not None:
            self.end_time = self.sim.now
        if self.sink is not None:
            for counter in self.registry.counters():
                self.sink.emit({
                    "kind": "counter",
                    "run": self.run_id,
                    "name": counter.name,
                    "labels": dict(counter.labels),
                    "v": counter.value,
                })

    @property
    def duration_s(self) -> float:
        """Observed sim-time window (bind to finalize, or to now)."""
        if self.end_time is not None:
            return self.end_time - self.start_time
        if self.sim is not None:
            return self.sim.now - self.start_time
        return 0.0

    # ------------------------------------------------------------------
    # Registration (model construction time — never hot)
    # ------------------------------------------------------------------
    def register_mac(self, mac: "Mac") -> None:
        self.macs.append(mac)
        self.registry.gauge(
            "queue_depth", lambda m=mac: float(m.queue_length), node=mac.name
        )
        self.registry.gauge(
            "cca_threshold_dbm",
            lambda m=mac: m.cca_policy.threshold_dbm(),
            node=mac.name,
        )

    def register_radio(self, radio: "Radio") -> None:
        self.node_channels[radio.name] = radio.channel_mhz

    # ------------------------------------------------------------------
    # Event-driven hooks (hot when enabled; call sites guard on None)
    # ------------------------------------------------------------------
    def span(self, kind: str, node: str, start: float, end: float,
             **args: Any) -> None:
        self.spans.record(Span(kind, node, start, end, args or None))
        if self.sink is not None:
            record = {"kind": "span", "run": self.run_id, "span": kind,
                      "node": node, "t0": start, "t1": end}
            if args:
                record["args"] = args
            self.sink.emit(record)

    def on_transmission(self, source: str, channel_mhz: float,
                        airtime_s: float) -> None:
        """Medium fan-out hook: per-channel and per-node airtime fill."""
        registry = self.registry
        registry.counter("tx.frames", channel=channel_mhz).inc()
        registry.counter("tx.airtime_s", channel=channel_mhz).inc(airtime_s)
        registry.counter("node.tx.frames", node=source).inc()
        registry.counter("node.tx.airtime_s", node=source).inc(airtime_s)

    def on_cca(self, node: str, backoff_start: float, backoff_s: float,
               cca_s: float, busy: bool) -> None:
        """CSMA hook: one completed backoff + CCA measurement window."""
        cca_start = backoff_start + backoff_s
        self.span("backoff", node, backoff_start, cca_start)
        self.span("cca", node, cca_start, cca_start + cca_s, busy=busy)
        self.registry.histogram("mac.backoff_s", node=node).observe(backoff_s)
        self.registry.counter(
            "mac.cca_busy" if busy else "mac.cca_idle", node=node
        ).inc()

    def on_tx(self, node: str, start: float, end: float,
              frame_id: int) -> None:
        self.span("tx", node, start, end, frame=frame_id)

    def on_rx(self, node: str, start: float, end: float, frame_id: int,
              crc_ok: bool, rssi_dbm: float) -> None:
        self.span("rx", node, start, end, frame=frame_id, crc=crc_ok)
        self.registry.histogram("rx.rssi_dbm", node=node).observe(rssi_dbm)

    def on_rx_abort(self, node: str, start: float, end: float) -> None:
        self.span("rx", node, start, end, aborted=True)

    def on_threshold(self, node: str, value_dbm: float) -> None:
        """Adjustor hook: exact CCA-threshold trajectory (event-driven,
        distinct from the sampled ``cca_threshold_dbm`` gauge series)."""
        now = self.sim.now if self.sim is not None else 0.0
        self.registry.timeseries(
            "adjustor.threshold_dbm", node=node
        ).append(now, value_dbm)
        if self.sink is not None:
            self._emit_point("adjustor.threshold_dbm", {"node": node},
                             now, value_dbm)

    # ------------------------------------------------------------------
    # Routing hooks (repro.net.routing; same guard discipline)
    # ------------------------------------------------------------------
    def on_route_created(self, node: str) -> None:
        self.registry.counter("route.created", node=node).inc()

    def on_route_forwarded(self, node: str) -> None:
        self.registry.counter("route.forwarded", node=node).inc()

    def on_route_dropped(self, node: str, reason: str) -> None:
        self.registry.counter("route.dropped", node=node, reason=reason).inc()

    def on_route_delivered(self, origin: str, sink: str, created_s: float,
                           now: float, hops: int) -> None:
        """One report arrived at its final destination: a ``route`` span
        covering the whole creation-to-delivery interval, plus delay and
        hop-count distributions keyed by the delivering sink."""
        registry = self.registry
        registry.counter("route.delivered", node=sink).inc()
        registry.histogram("route.delay_s", node=sink).observe(now - created_s)
        registry.histogram("route.hops", node=sink).observe(float(hops))
        self.span("route", sink, created_s, now, origin=origin, hops=hops)

    def on_route_joined(self, node: str, join_time_s: float, parent: str,
                        hop_count: int) -> None:
        """First successful tree join of ``node``: a ``join`` span from
        the observation start to the join instant (the join-time metric),
        plus the network-wide join-time distribution."""
        self.registry.counter("route.join_time_s", node=node).inc(join_time_s)
        self.registry.histogram("route.join_time_s").observe(join_time_s)
        self.span("join", node, self.start_time, join_time_s,
                  parent=parent, hop=hop_count)

    # ------------------------------------------------------------------
    def _emit_point(self, name: str, labels: Dict[str, str], time: float,
                    value: float) -> None:
        assert self.sink is not None
        self.sink.emit({"kind": "point", "run": self.run_id, "name": name,
                        "labels": labels, "t": time, "v": value})
