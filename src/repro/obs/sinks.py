"""Telemetry sinks: bounded in-memory buffer and streaming JSONL writer.

Records are plain dicts under a **versioned schema** (``SCHEMA_VERSION``);
every JSONL stream starts with a ``manifest`` record naming the schema, the
``repro`` version, the run parameters and the environment, so a file can be
interpreted long after the code moved on.  Record kinds:

- ``manifest`` — run metadata (first line of every export);
- ``span``     — one completed interval (see :mod:`repro.obs.spans`);
- ``point``    — one time-series sample (gauge sample or event-driven);
- ``counter``  — final counter totals, emitted when a recorder finalises.

Non-finite floats (a disabled CCA policy reports an infinite threshold)
are serialised as ``None`` — JSON has no ``Infinity`` and downstream
tooling should not have to guess.
"""

from __future__ import annotations

import json
import math
import subprocess
import time
from collections import deque
from pathlib import Path
from typing import IO, Any, Deque, Dict, List, Optional

__all__ = [
    "SCHEMA_VERSION",
    "Sink",
    "MemorySink",
    "JsonlSink",
    "RotatingJsonlSink",
    "run_manifest",
    "read_jsonl",
]

#: Version of the exported record schema.  Bump when record shapes change;
#: consumers (``repro obs tail``, external tooling) key on it.
SCHEMA_VERSION = 1


def _sanitize(value: Any) -> Any:
    """Make a record JSON-safe: non-finite floats become ``None``."""
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    if isinstance(value, dict):
        return {k: _sanitize(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_sanitize(v) for v in value]
    return value


class Sink:
    """Interface: receives one record dict per telemetry event."""

    def emit(self, record: Dict[str, Any]) -> None:
        raise NotImplementedError

    def close(self) -> None:
        """Release resources (idempotent)."""


class MemorySink(Sink):
    """Bounded in-memory buffer (oldest records dropped when full)."""

    def __init__(self, max_records: int = 100_000) -> None:
        self.max_records = max_records
        self.records: Deque[Dict[str, Any]] = deque(maxlen=max_records)
        self.dropped = 0

    def emit(self, record: Dict[str, Any]) -> None:
        if len(self.records) == self.max_records:
            self.dropped += 1
        self.records.append(_sanitize(record))

    def of_kind(self, kind: str) -> List[Dict[str, Any]]:
        return [r for r in self.records if r.get("kind") == kind]


class JsonlSink(Sink):
    """Streaming JSONL writer: one record per line, flushed per emit.

    Streaming (rather than buffering until the end of the run) is what
    makes ``repro obs tail`` useful on a run that is still executing —
    and what keeps memory flat on fig-scale exports.
    """

    def __init__(self, path: str | Path, stream: Optional[IO[str]] = None) -> None:
        self.path = Path(path)
        self._owns_stream = stream is None
        self._stream: Optional[IO[str]] = (
            stream if stream is not None else open(self.path, "w", encoding="utf-8")
        )
        self.emitted = 0

    def emit(self, record: Dict[str, Any]) -> None:
        if self._stream is None:
            raise ValueError(f"sink for {self.path} is closed")
        json.dump(_sanitize(record), self._stream,
                  separators=(",", ":"), sort_keys=True)
        self._stream.write("\n")
        self._stream.flush()
        self.emitted += 1

    def close(self) -> None:
        if self._stream is not None and self._owns_stream:
            self._stream.close()
        self._stream = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class RotatingJsonlSink(Sink):
    """A :class:`JsonlSink` with size-based rotation, for long-lived
    services.

    The campaign server fans every ``/events`` record into one of these
    for the whole process lifetime; without rotation that file grows
    without bound.  When the active file would exceed ``max_bytes`` the
    chain shifts (``events.jsonl`` → ``events.jsonl.1`` → ... →
    ``.jsonl.<backups>``, oldest dropped) and a fresh file begins —
    opening with a new ``manifest`` record so every file in the chain is
    independently interpretable by :func:`read_jsonl` /
    ``repro obs summary``.

    Opens in append mode: a restarted server continues the same active
    file, which is the crash-recovery behaviour the journal layer set the
    precedent for.
    """

    def __init__(self, path: str | Path, max_bytes: int = 4 * 2 ** 20,
                 backups: int = 4,
                 manifest: Optional[Dict[str, Any]] = None) -> None:
        self.path = Path(path)
        self.max_bytes = max(1, int(max_bytes))
        self.backups = max(0, int(backups))
        self.manifest = manifest
        self.emitted = 0
        self.rotations = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._stream: Optional[IO[str]] = open(self.path, "a",
                                               encoding="utf-8")
        if self._stream.tell() == 0 and manifest is not None:
            self._write(manifest)

    def _write(self, record: Dict[str, Any]) -> None:
        assert self._stream is not None
        json.dump(_sanitize(record), self._stream,
                  separators=(",", ":"), sort_keys=True)
        self._stream.write("\n")
        self._stream.flush()

    def _rotate(self) -> None:
        assert self._stream is not None
        self._stream.close()
        if self.backups == 0:
            self.path.unlink(missing_ok=True)
        else:
            oldest = self.path.with_name(f"{self.path.name}.{self.backups}")
            oldest.unlink(missing_ok=True)
            for index in range(self.backups - 1, 0, -1):
                source = self.path.with_name(f"{self.path.name}.{index}")
                if source.exists():
                    source.rename(
                        self.path.with_name(f"{self.path.name}.{index + 1}"))
            self.path.rename(self.path.with_name(f"{self.path.name}.1"))
        self._stream = open(self.path, "w", encoding="utf-8")
        self.rotations += 1
        if self.manifest is not None:
            self._write(self.manifest)

    def emit(self, record: Dict[str, Any]) -> None:
        if self._stream is None:
            raise ValueError(f"sink for {self.path} is closed")
        if self._stream.tell() >= self.max_bytes:
            self._rotate()
        self._write(record)
        self.emitted += 1

    def close(self) -> None:
        if self._stream is not None:
            self._stream.close()
        self._stream = None

    def __enter__(self) -> "RotatingJsonlSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def _git_describe() -> Optional[str]:
    """Best-effort ``git describe`` for the manifest, or ``None``.

    Manifests are written from wherever the process happens to run — a
    pip-installed checkout with no ``.git``, a container without a git
    binary, a CWD that vanished (``FileNotFoundError`` from the *cwd*,
    not the binary).  None of those may break telemetry, so any failure
    at all degrades to ``None`` rather than propagating.
    """
    try:
        out = subprocess.run(
            ["git", "describe", "--always", "--dirty"],
            capture_output=True, text=True, timeout=5, check=False,
        )
        if out.returncode != 0:
            return None
        describe = out.stdout.strip()
    except Exception:
        return None
    return describe or None


def run_manifest(exhibit: Optional[str] = None, seed: Optional[int] = None,
                 profile: Optional[str] = None,
                 **extra: Any) -> Dict[str, Any]:
    """The ``manifest`` record: everything needed to interpret an export.

    Wall-clock time and git state are metadata only — they never feed back
    into the simulation, so fixed-seed determinism is untouched.
    """
    from .. import __version__

    manifest: Dict[str, Any] = {
        "kind": "manifest",
        "schema": SCHEMA_VERSION,
        "repro_version": __version__,
        "git": _git_describe(),
        "wall_time": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
    }
    if exhibit is not None:
        manifest["exhibit"] = exhibit
    if seed is not None:
        manifest["seed"] = seed
    if profile is not None:
        manifest["profile"] = profile
    manifest.update(extra)
    return manifest


def read_jsonl(path: str | Path, last: Optional[int] = None,
               kind: Optional[str] = None) -> List[Dict[str, Any]]:
    """Parse a JSONL export; optionally keep only the trailing ``last``
    records and/or one record ``kind``.  Malformed lines are skipped (a
    live file may end mid-line)."""
    records: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if kind is not None and record.get("kind") != kind:
                continue
            records.append(record)
    if last is not None:
        # Guard the -0 slice wart: records[-0:] is the whole list.
        records = records[-last:] if last > 0 else []
    return records
