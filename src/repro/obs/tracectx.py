"""Cross-process trace propagation: campaign → job → span.

A campaign executed through the server spans three layers: the asyncio
loop that admits and schedules it, the worker process that computes each
job, and the simulator inside that worker.  This module carries one
identity — :class:`TraceContext` ``(campaign_id, job_id)`` — across all
three, so their spans can be merged back into a single Chrome
``trace_event`` document (:func:`campaign_trace`) that Perfetto renders
with a **server track** (submit, cache-probe, queue-wait, execute per
job) above one **worker track per job** (the sim's tx/rx/backoff/cca
spans).

Timebases
---------
Server and worker *wall* spans are wall-clock epoch seconds, directly
comparable across processes on one host.  Worker *sim* spans are
simulated seconds; the merge maps each job's sim origin onto the wall
instant its ``execute`` span started, so a job's radio activity renders
inside its server-side execute slot.  Sim time is not wall time — the
worker tracks show *structure* (what the kernel did, in order), while
the server track shows *cost* (where the wall-clock went); the document
metadata records the convention.

Nothing here touches the simulator: recording wall spans around a job
cannot perturb fixed-seed physics, and sim spans are read from the
existing :class:`~repro.obs.spans.SpanLog` after the run completes.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence

__all__ = ["TraceContext", "SpanRecorder", "campaign_trace",
           "export_sim_spans"]

_US = 1e6  # trace_event timestamps are microseconds


@dataclass(frozen=True)
class TraceContext:
    """The identity a span belongs to: which campaign, which job.

    Serialised into the worker payload dict (``payload["trace"]``) so a
    pool process — spawn-context, sharing nothing — can stamp its spans
    with the same identity the server uses, and the merge needs no
    guesswork.
    """

    campaign_id: str
    job_id: str = ""

    def child(self, job_id: str) -> "TraceContext":
        """The per-job context derived from a campaign-level one."""
        return TraceContext(self.campaign_id, job_id)

    def to_dict(self) -> Dict[str, str]:
        return {"campaign": self.campaign_id, "job": self.job_id}

    @classmethod
    def from_dict(cls, payload: Mapping[str, str]) -> "TraceContext":
        return cls(payload.get("campaign", ""), payload.get("job", ""))


class SpanRecorder:
    """Append-only store of completed wall-clock spans.

    Spans are plain dicts (``name``, ``job``, ``t0``, ``t1`` epoch
    seconds, optional ``args``) so they serialise over HTTP/pickle
    without adapters.  Bounded: when full, further spans are counted but
    dropped — a server that lives for weeks must not leak one list node
    per job.
    """

    def __init__(self, max_spans: int = 100_000) -> None:
        self.max_spans = max_spans
        self.spans: List[Dict[str, Any]] = []
        self.dropped = 0

    def add(self, name: str, t0: float, t1: float, *, job: str = "",
            **args: Any) -> None:
        if len(self.spans) >= self.max_spans:
            self.dropped += 1
            return
        span: Dict[str, Any] = {"name": name, "job": job,
                                "t0": t0, "t1": t1}
        if args:
            span["args"] = args
        self.spans.append(span)

    @contextmanager
    def span(self, name: str, *, job: str = "",
             **args: Any) -> Iterator[None]:
        """Record the wrapped block as one completed span."""
        t0 = time.time()
        try:
            yield
        finally:
            self.add(name, t0, time.time(), job=job, **args)

    def for_job(self, job: str) -> List[Dict[str, Any]]:
        return [s for s in self.spans if s["job"] == job]

    def __len__(self) -> int:
        return len(self.spans)


def export_sim_spans(recorders: Sequence[Any],
                     max_spans: int = 4000) -> Dict[str, Any]:
    """Dump a session's sim spans as JSON/pickle-safe dicts, bounded.

    ``recorders`` are :class:`~repro.obs.recorder.Observability`
    instances; the newest spans win when the budget is exceeded (the
    tail of a run is usually the interesting part, and the oldest spans
    are what the bounded ``SpanLog`` drops first anyway).
    """
    spans: List[Dict[str, Any]] = []
    for recorder in recorders:
        for span in recorder.spans:
            record: Dict[str, Any] = {
                "kind": span.kind, "node": span.node, "run": recorder.run_id,
                "t0": span.start, "t1": span.end,
            }
            if span.args:
                record["args"] = dict(span.args)
            spans.append(record)
    dropped = max(0, len(spans) - max_spans)
    if dropped:
        spans = spans[-max_spans:]
    return {"sim": spans, "sim_dropped": dropped}


# ----------------------------------------------------------------------
# The merge: one Chrome trace_event document per campaign.


def _meta(name: str, pid: int, tid: int, what: str) -> Dict[str, Any]:
    return {"name": what, "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": name}}


def campaign_trace(
    campaign_id: str,
    server_spans: Sequence[Mapping[str, Any]],
    job_traces: Mapping[str, Mapping[str, Any]],
    metadata: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Merge server and worker spans into one Chrome trace document.

    Parameters
    ----------
    campaign_id:
        Names the server process track.
    server_spans:
        :class:`SpanRecorder`-shaped dicts (wall-clock) recorded on the
        server: ``submit``, ``cache_probe``, ``queue_wait``, ``execute``
        — one thread lane per job, in first-seen order.
    job_traces:
        Per-job worker exports (``job label`` → the worker result's
        ``trace`` dict): ``wall`` spans (epoch seconds) join the job's
        server lane timebase directly; ``sim`` spans render in a
        dedicated process per job, offset so sim ``t=0`` sits at the
        job's wall ``execute`` start.

    The document loads in Perfetto / ``chrome://tracing``: pid 0 is the
    server, pid ``1+i`` the i-th job's simulator view.
    """
    wall_starts = [s["t0"] for s in server_spans]
    for trace in job_traces.values():
        wall_starts.extend(s["t0"] for s in trace.get("wall", ()))
    origin = min(wall_starts) if wall_starts else 0.0

    events: List[Dict[str, Any]] = []
    events.append(_meta(f"server: campaign {campaign_id}", 0, 0,
                        "process_name"))

    # Server lanes: one tid per job label, in first-seen order; spans
    # with no job (campaign-level, e.g. submit) go to lane 0.
    tids: Dict[str, int] = {}
    for span in server_spans:
        job = span.get("job") or ""
        if job and job not in tids:
            tids[job] = len(tids) + 1
            events.append(_meta(job, 0, tids[job], "thread_name"))
    events.append(_meta("campaign", 0, 0, "thread_name"))
    for span in server_spans:
        job = span.get("job") or ""
        event: Dict[str, Any] = {
            "name": span["name"], "cat": "server", "ph": "X",
            "pid": 0, "tid": tids.get(job, 0),
            "ts": (span["t0"] - origin) * _US,
            "dur": max(0.0, span["t1"] - span["t0"]) * _US,
        }
        if span.get("args"):
            event["args"] = dict(span["args"])
        events.append(event)

    # Worker processes: one pid per job that shipped a trace home.
    for index, job in enumerate(sorted(job_traces)):
        trace = job_traces[job]
        pid = 1 + index
        events.append(_meta(f"worker: {job}", pid, 0, "process_name"))
        wall_spans = list(trace.get("wall", ()))
        events.append(_meta("wall", pid, 0, "thread_name"))
        for span in wall_spans:
            events.append({
                "name": span["name"], "cat": "worker", "ph": "X",
                "pid": pid, "tid": 0,
                "ts": (span["t0"] - origin) * _US,
                "dur": max(0.0, span["t1"] - span["t0"]) * _US,
            })
        sim_spans = trace.get("sim") or ()
        if not sim_spans:
            continue
        # Sim t=0 lands on the wall start of the job's execute span.
        exec_start = min((s["t0"] for s in wall_spans), default=origin)
        node_tids: Dict[str, int] = {}
        for span in sim_spans:
            node = f"run{span.get('run', 0)}:{span['node']}"
            tid = node_tids.get(node)
            if tid is None:
                tid = node_tids[node] = len(node_tids) + 1
                events.append(_meta(node, pid, tid, "thread_name"))
            event = {
                "name": span["kind"], "cat": "sim", "ph": "X",
                "pid": pid, "tid": tid,
                "ts": (exec_start - origin + span["t0"]) * _US,
                "dur": max(0.0, span["t1"] - span["t0"]) * _US,
            }
            if span.get("args"):
                event["args"] = dict(span["args"])
            events.append(event)

    document: Dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "metadata": {
            "campaign": campaign_id,
            "timebase": ("server/worker wall spans: epoch-relative "
                         "wall-clock; sim spans: sim seconds offset to "
                         "the job's execute start"),
        },
    }
    if metadata:
        document["metadata"].update(metadata)
    return document
