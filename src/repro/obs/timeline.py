"""Chrome ``trace_event`` export: open any run in Perfetto.

The exported document follows the Trace Event Format (the JSON object
form understood by ``chrome://tracing`` and https://ui.perfetto.dev):

- one **process** (``pid``) per recorder — an exhibit that builds several
  deployments (e.g. one per CFD point) exports each as its own process;
- one **thread** (``tid``) per node, named via ``M`` metadata events so
  the timeline shows ``N0``, ``N1``, ... lanes;
- one ``X`` (complete duration) event per span, with sim time mapped to
  microseconds (``ts``/``dur``);
- one ``C`` (counter) track per time series and node — queue depth, CCA
  threshold trajectory — so the adaptation the paper argues about is
  visible directly above the packet timeline.

Export is deterministic for a fixed-seed run: events are emitted in
recorder order, then span-log order / series insertion order, with sorted
JSON keys.  Non-finite counter values (a disabled CCA policy's infinite
threshold) are skipped rather than emitted as ``null``.
"""

from __future__ import annotations

import json
import math
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence

from .recorder import Observability

__all__ = ["trace_events", "write_trace"]

_US = 1e6  # trace_event timestamps are microseconds


def _span_events(recorder: Observability, pid: int,
                 tids: Dict[str, int]) -> List[Dict[str, Any]]:
    events: List[Dict[str, Any]] = []
    for span in recorder.spans:
        event: Dict[str, Any] = {
            "name": span.kind,
            "cat": span.kind,
            "ph": "X",
            "pid": pid,
            "tid": tids[span.node],
            "ts": span.start * _US,
            "dur": span.duration * _US,
        }
        if span.args:
            event["args"] = dict(span.args)
        events.append(event)
    return events


def _counter_events(recorder: Observability, pid: int) -> List[Dict[str, Any]]:
    events: List[Dict[str, Any]] = []
    for series in recorder.registry.series():
        labels = dict(series.labels)
        node = labels.pop("node", None)
        track = f"{series.name} {node}" if node else series.name
        for time, value in series.points:
            if not math.isfinite(value):
                continue
            events.append({
                "name": track,
                "ph": "C",
                "pid": pid,
                "tid": 0,
                "ts": time * _US,
                "args": {"value": value},
            })
    return events


def trace_events(
    recorders: Sequence[Observability],
    metadata: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Build the trace document for one or more recorders.

    ``metadata`` (typically a :func:`~repro.obs.sinks.run_manifest`) is
    attached under the document's ``metadata`` key; omit it when byte
    stability matters (golden-file tests) since manifests carry wall time.
    """
    events: List[Dict[str, Any]] = []
    for pid, recorder in enumerate(recorders):
        # Thread ids: every node the recorder knows about, whether or not
        # it produced spans, in sorted order for a stable lane layout.
        names = sorted(set(recorder.node_channels) | set(recorder.spans.nodes()))
        tids = {name: index + 1 for index, name in enumerate(names)}
        events.append({
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": f"run {recorder.run_id}"},
        })
        for name, tid in tids.items():
            label = name
            channel = recorder.node_channels.get(name)
            if channel is not None:
                label = f"{name} @ {channel:g} MHz"
            events.append({
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": label},
            })
        events.extend(_span_events(recorder, pid, tids))
        events.extend(_counter_events(recorder, pid))
    document: Dict[str, Any] = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
    }
    if metadata is not None:
        document["metadata"] = metadata
    return document


def write_trace(
    path: str | Path,
    recorders: Sequence[Observability],
    metadata: Optional[Dict[str, Any]] = None,
) -> int:
    """Write the trace document to ``path``; returns the event count."""
    document = trace_events(recorders, metadata=metadata)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return len(document["traceEvents"])
