"""Deployment diagnostics: why does a configuration behave as it does?

These helpers answer the questions that come up when planning a
non-orthogonal deployment or debugging a disappointing one:

- :func:`link_budget_report` — per-link mean RSS / SNR / expected clean-air
  PER (is the link healthy at all?).
- :func:`blocking_report` — for each sender, which transmitters (own- or
  cross-channel) currently trip its CCA at mean RSS (who is silencing
  whom?).
- :func:`threshold_report` — every node's current CCA threshold and, for
  DCN nodes, its adjustment history length (has the adjustor settled?).
- :func:`interference_margin_report` — per link, the SINR margin over the
  decode cliff against each potential cross-channel interferer (who can
  corrupt whom?).

All are static analyses over mean path loss (fading excluded), cheap
enough to run before committing to a long simulation.
"""

from __future__ import annotations

from ..net.deployment import Deployment
from ..phy.modulation import oqpsk_ber, packet_error_rate
from .results import ResultTable

__all__ = [
    "link_budget_report",
    "blocking_report",
    "threshold_report",
    "interference_margin_report",
]

#: In-band SINR below which a ~60-byte frame is effectively lost.
DECODE_CLIFF_DB = 5.5


def _mean_rss(deployment: Deployment, tx_node, rx_node) -> float:
    return deployment.path_loss.received_power_dbm(
        tx_node.tx_power_dbm, tx_node.position, rx_node.position
    )


def link_budget_report(deployment: Deployment) -> ResultTable:
    """Mean RSS, SNR over the noise floor and clean-air PER per link."""
    table = ResultTable("Link budgets")
    for network in deployment.networks:
        for link in network.spec.links:
            sender = deployment.node(link.sender)
            receiver = deployment.node(link.receiver)
            rss = _mean_rss(deployment, sender, receiver)
            noise = receiver.radio.config.noise_floor_dbm
            snr = rss - noise
            bits = 8 * (60 + 19)  # representative frame
            per = packet_error_rate(oqpsk_ber(snr), bits)
            table.add_row(
                network=network.label,
                link=f"{link.sender}->{link.receiver}",
                rss_dbm=rss,
                snr_db=snr,
                clean_air_per=per,
            )
    return table


def blocking_report(deployment: Deployment) -> ResultTable:
    """Which transmitters trip each sender's CCA at mean RSS?

    For every (sender, other-transmitter) pair, computes the sensed power
    of the other's transmission through the sender's CCA mask and compares
    it with the sender's *current* threshold.
    """
    table = ResultTable("CCA blocking pairs (mean RSS)")
    senders = [
        deployment.node(link.sender)
        for network in deployment.networks
        for link in network.spec.links
    ]
    for victim in senders:
        threshold = victim.mac.cca_policy.threshold_dbm()
        blockers_same = []
        blockers_cross = []
        for other in senders:
            if other is victim:
                continue
            rss = _mean_rss(deployment, other, victim)
            offset = other.channel_mhz - victim.channel_mhz
            sensed = rss - victim.radio.cca_mask.leakage_db(offset)
            if sensed > threshold:
                if abs(offset) <= victim.radio.config.co_channel_tolerance_mhz:
                    blockers_same.append(other.name)
                else:
                    blockers_cross.append(other.name)
        table.add_row(
            sender=victim.name,
            threshold_dbm=threshold,
            co_channel_blockers=len(blockers_same),
            cross_channel_blockers=len(blockers_cross),
            cross_names=",".join(blockers_cross) if blockers_cross else "-",
        )
    table.add_note(
        "cross_channel_blockers > 0 means inter-channel leakage silences "
        "this sender — the concurrency DCN is designed to reclaim"
    )
    return table


def threshold_report(deployment: Deployment) -> ResultTable:
    """Current CCA threshold per node (and DCN adjustment count)."""
    table = ResultTable("CCA thresholds")
    for name, node in deployment.nodes.items():
        policy = node.mac.cca_policy
        history = policy.history()
        threshold = policy.threshold_dbm()
        table.add_row(
            node=name,
            policy=policy.describe(),
            threshold_dbm=threshold
            if threshold not in (float("inf"), float("-inf"))
            else str(threshold),
            adjustments=max(0, len(history) - 1),
        )
    return table


def interference_margin_report(deployment: Deployment) -> ResultTable:
    """SINR margin of every link against its worst cross-channel interferer.

    A negative margin means a single overlapping transmission from that
    interferer corrupts the link's packets (at mean RSS).
    """
    table = ResultTable("Interference margins (worst single interferer)")
    transmitters = [
        deployment.node(link.sender)
        for network in deployment.networks
        for link in network.spec.links
    ]
    for network in deployment.networks:
        for link in network.spec.links:
            sender = deployment.node(link.sender)
            receiver = deployment.node(link.receiver)
            signal = _mean_rss(deployment, sender, receiver)
            worst_name = "-"
            worst_margin = float("inf")
            for interferer in transmitters:
                if interferer.name in (link.sender, link.receiver):
                    continue
                offset = interferer.channel_mhz - receiver.channel_mhz
                if abs(offset) <= receiver.radio.config.co_channel_tolerance_mhz:
                    continue  # co-channel handled by CSMA, not this report
                rss = _mean_rss(deployment, interferer, receiver)
                inband = rss - receiver.radio.mask.leakage_db(offset)
                margin = (signal - inband) - DECODE_CLIFF_DB
                if margin < worst_margin:
                    worst_margin = margin
                    worst_name = interferer.name
            table.add_row(
                link=f"{link.sender}->{link.receiver}",
                worst_interferer=worst_name,
                margin_db=worst_margin if worst_margin != float("inf") else None,
            )
    table.add_note(
        "margin < 0: that interferer alone corrupts this link on overlap"
    )
    return table
