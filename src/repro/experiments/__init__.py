"""Experiment harness: scenarios, runner, metrics and the exhibit registry."""

from . import analysis, metrics, registry, runner, scenarios, stats, timeline
from .results import ResultTable

__all__ = [
    "analysis",
    "metrics",
    "registry",
    "runner",
    "scenarios",
    "stats",
    "timeline",
    "ResultTable",
]
