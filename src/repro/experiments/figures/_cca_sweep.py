"""Shared machinery for the Section IV CCA-threshold sweeps (Figs. 6-10).

Each sweep point builds the Fig. 5 rig (probe link + four neighbouring-
channel interferer networks, optionally + co-channel competitors), fixes
the probe sender's CCA threshold and measures sent/received packet rates
on the probe link plus the overall throughput across all networks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ...mac.cca import FixedCcaThreshold
from ..metrics import snapshot_deployment
from ..scenarios import section_iv_rig

__all__ = ["SweepPoint", "sweep_cca", "DEFAULT_THRESHOLDS_DBM"]

#: The paper sweeps the CC2420 CCA register across its usable range.
DEFAULT_THRESHOLDS_DBM: Tuple[float, ...] = (
    -120.0, -110.0, -100.0, -90.0, -85.0, -77.0, -70.0, -65.0, -60.0,
    -55.0, -50.0, -45.0, -40.0, -30.0, -20.0,
)


@dataclass(frozen=True)
class SweepPoint:
    """Measurements at one CCA threshold."""

    threshold_dbm: float
    sent_pps: float
    received_pps: float
    overall_pps: float

    @property
    def prr(self) -> float:
        if self.sent_pps <= 0:
            return 0.0
        return self.received_pps / self.sent_pps


def sweep_cca(
    thresholds_dbm: Sequence[float],
    seed: int,
    duration_s: float,
    link_power_dbm: float = 0.0,
    n_co_channel_links: int = 0,
    warmup_s: float = 1.0,
    cfd_mhz: float = 3.0,
) -> list:
    """Run the rig once per threshold and collect :class:`SweepPoint`s."""
    points = []
    for threshold in thresholds_dbm:
        deployment = section_iv_rig(
            seed=seed,
            link_cca_policy=FixedCcaThreshold(threshold),
            link_power_dbm=link_power_dbm,
            n_co_channel_links=n_co_channel_links,
            cfd_mhz=cfd_mhz,
        )
        deployment.start_traffic()
        sim = deployment.sim
        sim.run(warmup_s)
        baseline = snapshot_deployment(deployment)
        sim.run(sim.now + duration_s)

        sent = (
            deployment.node("probe.s0").mac.stats.since(baseline["probe.s0"]).sent
            / duration_s
        )
        received = (
            deployment.node("probe.r0")
            .mac.stats.since(baseline["probe.r0"])
            .delivered
            / duration_s
        )
        overall = 0.0
        for network in deployment.networks:
            for link in network.spec.links:
                overall += (
                    deployment.node(link.receiver)
                    .mac.stats.since(baseline[link.receiver])
                    .delivered
                    / duration_s
                )
        points.append(
            SweepPoint(
                threshold_dbm=threshold,
                sent_pps=sent,
                received_pps=received,
                overall_pps=overall,
            )
        )
    return points
