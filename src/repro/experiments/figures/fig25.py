"""Fig. 25 — Case I: all networks in one interfering region.

The dense deployment (Fig. 22): every node interferes strongly with every
other, powers random in [-22, 0] dBm.  Strong inter-channel leakage means
plain CFD = 3 MHz (w/o DCN) is held back by the fixed CCA, so DCN's
relaxing gain is the *largest* of the three cases (paper: +14.7 % over
w/o DCN, +55.7 % over ZigBee; 983 / 1326 / 1521 pkt/s).
"""

from __future__ import annotations

from ..results import ResultTable
from ..scenarios import case_one
from ._cases import three_way

__all__ = ["run"]


def run(seed: int = 1, fast: bool = False) -> ResultTable:
    seeds = (seed,) if fast else (seed, seed + 5, seed + 10)
    duration_s = 3.0 if fast else 6.0
    return three_way(
        "Fig. 25: Case I (one interfering region)",
        case_one,
        seeds,
        duration_s,
        "paper: 983 / 1326 / 1521 pkt/s — DCN +14.7% over w/o, +55.7% over ZigBee",
    )
