"""Fig. 9 — Link throughput vs CCA threshold at different transmit powers.

The Fig. 8 rig (with co-channel competitors at 0 dBm), probe link power in
{-8, -11, -15, -22, -33} dBm.  Relaxing the threshold helps at every
power; the absolute level scales with the link's SINR headroom.
"""

from __future__ import annotations

from ..results import ResultTable
from ._cca_sweep import sweep_cca

__all__ = ["run", "POWERS_DBM", "THRESHOLDS_DBM"]

POWERS_DBM = (-8.0, -11.0, -15.0, -22.0, -33.0)
THRESHOLDS_DBM = (-120.0, -90.0, -77.0, -70.0, -60.0, -50.0)


def run(seed: int = 1, fast: bool = False) -> ResultTable:
    duration_s = 2.0 if fast else 6.0
    thresholds = (-120.0, -77.0, -60.0) if fast else THRESHOLDS_DBM
    powers = POWERS_DBM[:2] + POWERS_DBM[-1:] if fast else POWERS_DBM
    table = ResultTable("Fig. 9: link throughput vs CCA threshold per tx power")
    for power in powers:
        points = sweep_cca(
            thresholds,
            seed=seed,
            duration_s=duration_s,
            link_power_dbm=power,
            n_co_channel_links=3,
        )
        for point in points:
            table.add_row(
                power_dbm=power,
                threshold_dbm=point.threshold_dbm,
                sent_pps=point.sent_pps,
                received_pps=point.received_pps,
            )
    table.add_note(
        "paper: relaxing the threshold improves throughput at every power; "
        "gain magnitude grows with power"
    )
    return table
