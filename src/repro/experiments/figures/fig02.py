"""Fig. 2 — The uniqueness of 802.15.4 networks (vs 802.11b).

Two links; one fixed, the other swept across channel separations.  The
802.11b receiver false-locks on partially-overlapped-channel packets, so
normalized throughput stays depressed until the channels are far apart;
the 802.15.4 receiver cannot decode even 1 channel (5 MHz) away, so one
channel of separation already yields full concurrency.
"""

from __future__ import annotations

from ...dot11.link import run_dot15_separation, run_separation
from ..results import ResultTable

__all__ = ["run", "SEPARATIONS"]

SEPARATIONS = (0, 1, 2, 3, 4, 5, 6)


def run(seed: int = 1, fast: bool = False) -> ResultTable:
    duration_s = 2.0 if fast else 6.0
    table = ResultTable("Fig. 2: normalized two-link throughput vs channel separation")
    dot11_results = run_separation(list(SEPARATIONS), seed=seed, duration_s=duration_s)
    dot15_results = run_dot15_separation(
        list(SEPARATIONS), seed=seed, duration_s=duration_s
    )
    for r11, r15 in zip(dot11_results, dot15_results):
        table.add_row(
            separation=r11.separation_channels,
            dot11b_normalized=r11.normalized_throughput,
            dot15_4_normalized=r15.normalized_throughput,
        )
    table.add_note(
        "paper (after Mishra et al.): 802.11b depressed until ~5 channels "
        "apart; 802.15.4 ~1.0 from 1 channel apart"
    )
    return table
