"""Fig. 16 — Per-network throughput at CFD = 2 MHz, DCN on all networks.

Every network improves when all five adopt DCN — the relaxation is
collaborative, not adversarial — but the 2 MHz spacing leaves visible
corruption, keeping per-network levels below the CFD = 3 MHz case.
"""

from __future__ import annotations

from ..results import ResultTable
from ._five_networks import averaged, mean_network_tput

__all__ = ["run", "CFD_MHZ"]

CFD_MHZ = 2.0
LABELS = ("N0", "N1", "N2", "N3", "N4")


def run(seed: int = 1, fast: bool = False) -> ResultTable:
    seeds = (seed,) if fast else (seed, seed + 1, seed + 2)
    duration_s = 3.0 if fast else 6.0
    without = averaged(CFD_MHZ, "fixed", seeds, duration_s)
    with_dcn = averaged(CFD_MHZ, "dcn_all", seeds, duration_s)
    table = ResultTable("Fig. 16: per-network throughput (CFD=2 MHz, DCN on all)")
    for label in LABELS:
        w = mean_network_tput(without, label)
        d = mean_network_tput(with_dcn, label)
        table.add_row(
            network=label,
            without_pps=w,
            with_dcn_pps=d,
            gain_pct=100.0 * (d / w - 1.0) if w else 0.0,
        )
    table.add_note("paper: every network improves under collective DCN")
    return table
