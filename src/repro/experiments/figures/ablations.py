"""Ablations beyond the paper's exhibits.

These probe the design choices DESIGN.md calls out:

- ``margin``   — safety margin below the derived threshold (paper: none).
- ``tu``       — the updating window T_U (paper fixes 3 s).
- ``ti``       — the initializing-phase duration T_I (paper fixes 1 s).
- ``oracle``   — Section VII-C's idealised co-channel differentiation,
  the upper bound on what any threshold rule can achieve.
- ``mode2``    — Section VII-C realised with standard hardware: CCA mode 2
  defers only to demodulable co-channel signals.

All run on the Section VI-A five-network rig (CFD = 3 MHz), where the
fixed threshold genuinely blocks inter-channel concurrency — the regime in
which the choice of CCA scheme matters.
"""

from __future__ import annotations

from ...core.adjustor import AdjustorConfig
from ...core.carrier_sense import CarrierSenseCcaPolicy
from ...core.oracle import OracleCcaPolicy
from ..results import ResultTable
from ..runner import run_deployment
from ..scenarios import (
    dcn_policy_factory,
    five_network_plan,
    standard_testbed,
)

__all__ = [
    "run_margin",
    "run_tu",
    "run_ti",
    "run_oracle",
    "run_mode2",
    "run_energy",
    "run_orthogonal",
]

MARGINS_DB = (0.0, 1.0, 2.0, 4.0, 6.0)
TU_VALUES_S = (0.5, 1.0, 3.0, 6.0, 12.0)
TI_VALUES_S = (0.0, 0.25, 1.0, 2.0)


def _overall(policy_factory, seed: int, duration_s: float) -> float:
    deployment = standard_testbed(
        five_network_plan(3.0), seed=seed, policy_factory=policy_factory
    )
    return run_deployment(deployment, duration_s).overall_throughput_pps


def run_margin(seed: int = 1, fast: bool = False) -> ResultTable:
    """Throughput vs safety margin: larger margins forfeit concurrency."""
    duration_s = 3.0 if fast else 8.0
    table = ResultTable("Ablation: DCN threshold safety margin")
    for margin in MARGINS_DB:
        config = AdjustorConfig(margin_db=margin)
        overall = _overall(dcn_policy_factory(config), seed, duration_s)
        table.add_row(margin_db=margin, overall_pps=overall)
    table.add_note(
        "expected: flat or mildly decreasing — margin trades concurrency "
        "for co-channel safety headroom"
    )
    return table


def run_tu(seed: int = 1, fast: bool = False) -> ResultTable:
    """Throughput vs updating window T_U (the paper fixes 3 s)."""
    duration_s = 3.0 if fast else 8.0
    table = ResultTable("Ablation: DCN updating window T_U")
    for tu in TU_VALUES_S:
        config = AdjustorConfig(t_update_s=tu)
        overall = _overall(dcn_policy_factory(config), seed, duration_s)
        table.add_row(t_update_s=tu, overall_pps=overall)
    table.add_note(
        "short windows track recent minima (aggressive), long windows pin "
        "the threshold at old minima (conservative)"
    )
    return table


def run_ti(seed: int = 1, fast: bool = False) -> ResultTable:
    """Throughput vs initializing-phase duration T_I (paper: 1 s)."""
    duration_s = 3.0 if fast else 8.0
    table = ResultTable("Ablation: DCN initializing phase T_I")
    for ti in TI_VALUES_S:
        config = AdjustorConfig(t_init_s=ti)
        overall = _overall(dcn_policy_factory(config), seed, duration_s)
        table.add_row(t_init_s=ti, overall_pps=overall)
    table.add_note(
        "T_I=0 skips Eq. 2 entirely (threshold starts at the default and "
        "only Case I/II updates apply)"
    )
    return table


def run_oracle(seed: int = 1, fast: bool = False) -> ResultTable:
    """DCN vs the Section VII-C oracle (perfect interference differentiation)."""
    duration_s = 3.0 if fast else 8.0
    table = ResultTable("Ablation: DCN vs oracle CCA (Section VII-C upper bound)")
    fixed = _overall(None, seed, duration_s)
    dcn = _overall(dcn_policy_factory(), seed, duration_s)
    oracle = _overall(lambda _l, _n: OracleCcaPolicy(), seed, duration_s)
    table.add_row(scheme="fixed (-77 dBm)", overall_pps=fixed)
    table.add_row(scheme="DCN", overall_pps=dcn)
    table.add_row(scheme="oracle", overall_pps=oracle)
    if dcn:
        table.add_note(
            f"oracle headroom over DCN: {100.0 * (oracle / dcn - 1.0):+.1f}%"
        )
    return table


def run_orthogonal(seed: int = 1, fast: bool = False) -> ResultTable:
    """Channel-plan ladder on 15 MHz: fully orthogonal -> ZigBee -> DCN.

    The related-work position (TMCP, MMSN, ... assume orthogonal channels):
    a strictly orthogonal design at 9 MHz spacing fits only 2 channels in
    the evaluation band, the ZigBee default 4, and the non-orthogonal DCN
    design 6 — the ladder quantifies what orthogonality costs.
    """
    from ...phy.spectrum import EVALUATION_BAND, ChannelPlan

    duration_s = 3.0 if fast else 8.0
    table = ResultTable("Ablation: orthogonal vs ZigBee vs DCN channel plans")
    rungs = (
        ("orthogonal (9 MHz, fixed CCA)", 9.0, None),
        ("ZigBee (5 MHz, fixed CCA)", 5.0, None),
        ("non-orthogonal (3 MHz, fixed CCA)", 3.0, None),
        ("non-orthogonal (3 MHz, DCN)", 3.0, dcn_policy_factory()),
    )
    for label, cfd, factory in rungs:
        plan = ChannelPlan.inclusive(EVALUATION_BAND, cfd)
        deployment = standard_testbed(plan, seed=seed, policy_factory=factory)
        result = run_deployment(deployment, duration_s)
        table.add_row(
            design=label,
            channels=plan.num_channels,
            overall_pps=result.overall_throughput_pps,
        )
    table.add_note(
        "orthogonality costs channels: 2 vs 4 vs 6 in the same 15 MHz"
    )
    return table


def run_energy(seed: int = 1, fast: bool = False) -> ResultTable:
    """Energy cost of DCN (CC2420 current-draw model).

    The paper's cost argument for the two-phase design: continuous
    in-channel sensing is affordable only briefly.  This ablation measures
    total node energy and energy per delivered packet, with the sensing
    share broken out, for the fixed design vs DCN — quantifying that the
    initializing phase's sampling is negligible next to the listen/TX
    budget, while the throughput gain lowers energy *per packet*.
    """
    duration_s = 3.0 if fast else 8.0
    table = ResultTable("Ablation: energy cost of DCN (CC2420 model)")
    for scheme, factory in (("fixed (-77 dBm)", None), ("DCN", dcn_policy_factory())):
        deployment = standard_testbed(
            five_network_plan(3.0), seed=seed, policy_factory=factory
        )
        result = run_deployment(deployment, duration_s)
        now = deployment.sim.now
        total_j = 0.0
        sensing_j = 0.0
        for node in deployment.nodes.values():
            breakdown = node.radio.energy.breakdown_j(now)
            total_j += sum(breakdown.values())
            sensing_j += breakdown["sensing"]
        delivered = result.overall_throughput_pps * duration_s
        table.add_row(
            scheme=scheme,
            throughput_pps=result.overall_throughput_pps,
            total_energy_j=total_j,
            sensing_energy_mj=sensing_j * 1e3,
            mj_per_packet=1e3 * total_j / delivered if delivered else 0.0,
        )
    table.add_note(
        "DCN's sensing cost is bounded by the 1 s initializing phase; the "
        "throughput gain reduces energy per delivered packet"
    )
    return table


def run_mode2(seed: int = 1, fast: bool = False) -> ResultTable:
    """DCN vs CCA mode 2 (realisable interference differentiation).

    Mode 2 defers only to demodulable co-channel signals — the hardware
    hook the paper's Section VII-C future work asks for.  Comparing it to
    DCN and the oracle locates how much of the oracle's headroom a real
    radio could reach, and what the residual risk (undetectable weak
    co-channel transmitters) costs.
    """
    duration_s = 3.0 if fast else 8.0
    table = ResultTable("Ablation: DCN vs CCA mode 2 carrier sense (Sec. VII-C)")
    fixed = _overall(None, seed, duration_s)
    dcn = _overall(dcn_policy_factory(), seed, duration_s)
    mode2 = _overall(lambda _l, _n: CarrierSenseCcaPolicy(), seed, duration_s)
    oracle = _overall(lambda _l, _n: OracleCcaPolicy(), seed, duration_s)
    table.add_row(scheme="fixed (-77 dBm)", overall_pps=fixed)
    table.add_row(scheme="DCN", overall_pps=dcn)
    table.add_row(scheme="mode2 carrier sense", overall_pps=mode2)
    table.add_row(scheme="oracle", overall_pps=oracle)
    if dcn:
        table.add_note(
            f"mode2 over DCN: {100.0 * (mode2 / dcn - 1.0):+.1f}%; "
            f"oracle over DCN: {100.0 * (oracle / dcn - 1.0):+.1f}%"
        )
    return table
