"""Shared runs for the Section VI-A five-network figures (Figs. 14-18).

Figs. 14-18 all draw on the same grid of conditions — CFD in {2, 3} MHz ×
CCA scheme in {fixed everywhere, DCN only on N0, DCN on all} — so the runs
are memoised per (cfd, scheme, seed, duration) within the process.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Literal

from ..runner import RunResult, run_deployment
from ..scenarios import (
    dcn_only_on,
    dcn_policy_factory,
    five_network_plan,
    standard_testbed,
)

__all__ = ["run_condition", "Scheme"]

Scheme = Literal["fixed", "dcn_n0", "dcn_all"]

_FACTORIES = {
    "fixed": lambda: None,
    "dcn_n0": lambda: dcn_only_on(["N0"]),
    "dcn_all": dcn_policy_factory,
}


@lru_cache(maxsize=64)
def run_condition(
    cfd_mhz: float, scheme: Scheme, seed: int, duration_s: float
) -> RunResult:
    """One measured run of the five-network testbed."""
    factory = _FACTORIES[scheme]()
    deployment = standard_testbed(
        five_network_plan(cfd_mhz), seed=seed, policy_factory=factory
    )
    return run_deployment(deployment, duration_s)


def averaged(cfd_mhz: float, scheme: Scheme, seeds, duration_s: float):
    """RunResults for several seeds (memoised individually)."""
    return [run_condition(cfd_mhz, scheme, s, duration_s) for s in seeds]


def mean_network_tput(results, label: str) -> float:
    return sum(r.network(label).throughput_pps for r in results) / len(results)


def mean_overall(results) -> float:
    return sum(r.overall_throughput_pps for r in results) / len(results)


def mean_others(results, excluded: str) -> float:
    return sum(
        sum(m.throughput_pps for m in r.except_network(excluded)) for r in results
    ) / len(results)
