"""Fig. 1 — Bandwidth throughput versus channel frequency distance.

A 12 MHz band is packed with channels at CFD in {9, 5, 4, 3, 2} MHz
(slot allocation: 1/2/3/4/6 channels), four saturated senders per channel,
0 dBm, default fixed CCA.  The paper's observations:

- orthogonal spacing (9 MHz, one channel) wastes the band;
- the ZigBee default (5 MHz) is conservative;
- the maximum sits at CFD = 3 MHz (> 40 % over the 5 MHz default);
- CFD = 2 MHz stops helping — inter-channel interference corrupts packets
  and couples neighbouring channels' carrier sensing.
"""

from __future__ import annotations

from ..results import ResultTable
from ..runner import run_deployment
from ..scenarios import motivation_plan, standard_testbed

__all__ = ["run", "CFD_VALUES_MHZ"]

CFD_VALUES_MHZ = (9.0, 5.0, 4.0, 3.0, 2.0)

#: Calibrated Fig. 1 rig: a dense desk deployment, four saturated links
#: per channel (the paper's "4 MicaZ nodes ... all sending").
REGION_RADIUS_M = 3.0
LINK_DISTANCE_M = 2.5
LINKS_PER_NETWORK = 4


def run(seed: int = 1, fast: bool = False) -> ResultTable:
    seeds = (seed,) if fast else (seed, seed + 1, seed + 2)
    duration_s = 3.0 if fast else 6.0
    table = ResultTable("Fig. 1: bandwidth throughput vs CFD (12 MHz band)")
    for cfd in CFD_VALUES_MHZ:
        plan = motivation_plan(cfd)
        totals = []
        for s in seeds:
            deployment = standard_testbed(
                plan,
                seed=s,
                region_radius_m=REGION_RADIUS_M,
                link_distance_m=LINK_DISTANCE_M,
                links_per_network=LINKS_PER_NETWORK,
            )
            result = run_deployment(deployment, duration_s, warmup_s=1.0)
            totals.append(result.overall_throughput_pps)
        table.add_row(
            cfd_mhz=cfd,
            channels=plan.num_channels,
            throughput_pps=sum(totals) / len(totals),
        )
    table.add_note(
        "paper: maximum at CFD=3 MHz; >40% over the 5 MHz ZigBee default; "
        "2 MHz no longer helps"
    )
    return table
