"""Fig. 29 — Error-bit CDF of CRC-failed packets.

Same severe-interference configuration as Fig. 28 (link at -22 dBm, relaxed
threshold).  Most CRC-failed packets carry only a small share of errored
bits — the paper highlights the point (0.1, 0.87): 87 % of failures have
at most 10 % error bits, which is what makes PPR-style recovery worthwhile.
"""

from __future__ import annotations

from ...mac.cca import FixedCcaThreshold
from ...phy.errors import ErrorStats
from ..results import ResultTable
from ..scenarios import section_iv_rig

__all__ = ["run", "THRESHOLDS"]

LINK_POWER_DBM = -22.0
RELAXED_THRESHOLD_DBM = -50.0
THRESHOLDS = (0.02, 0.05, 0.10, 0.20, 0.30, 0.50, 0.75, 1.0)


def run(seed: int = 1, fast: bool = False) -> ResultTable:
    duration_s = 5.0 if fast else 20.0
    deployment = section_iv_rig(
        seed=seed,
        link_cca_policy=FixedCcaThreshold(RELAXED_THRESHOLD_DBM),
        link_power_dbm=LINK_POWER_DBM,
    )
    stats = ErrorStats()
    receiver = deployment.node("probe.r0")

    def observe(reception):
        if reception.frame.source == "probe.s0":
            stats.record(reception)

    receiver.radio.add_frame_listener(observe)
    deployment.start_traffic()
    deployment.sim.run(1.0 + duration_s)

    table = ResultTable("Fig. 29: error-bit CDF of CRC-failed packets")
    for fraction, cdf in stats.cdf(THRESHOLDS):
        table.add_row(error_bit_fraction=fraction, cumulative=cdf)
    table.add_note(f"CRC-failed packets observed: {stats.count}")
    table.add_note("paper anchor: CDF(0.10) ~ 0.87")
    return table
