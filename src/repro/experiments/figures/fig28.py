"""Fig. 28 — Packet recovery under severe inter-channel interference.

The Section IV rig with the probe link at -22 dBm against 0 dBm
neighbouring-channel interferers.  Sweeping the probe's CCA threshold
shows a persistent gap between packets sent and packets received (CRC
failures caused by inter-channel interference).  A PPR-style recovery
scheme (Section VII-A) closes most of that gap: the "recoverable" series
counts CRC-failed packets whose error-bit fraction is small enough to
reconstruct.
"""

from __future__ import annotations

from ...core.recovery import PacketRecovery, RecoveryConfig
from ...mac.cca import FixedCcaThreshold
from ..metrics import snapshot_deployment
from ..results import ResultTable
from ..scenarios import section_iv_rig

__all__ = ["run", "LINK_POWER_DBM", "THRESHOLDS_DBM"]

LINK_POWER_DBM = -22.0
THRESHOLDS_DBM = (-120.0, -100.0, -90.0, -77.0, -70.0, -60.0, -50.0, -40.0)


def run(seed: int = 1, fast: bool = False) -> ResultTable:
    duration_s = 3.0 if fast else 10.0
    thresholds = (-120.0, -77.0, -60.0) if fast else THRESHOLDS_DBM
    table = ResultTable("Fig. 28: packet recovery under severe interference")
    for threshold in thresholds:
        sent, received, recoverable = _run_point(threshold, seed, duration_s)
        table.add_row(
            threshold_dbm=threshold,
            sent_pps=sent,
            received_pps=received,
            recoverable_pps=recoverable,
        )
    table.add_note(
        "paper: visible sent-received gap at -22 dBm vs 0 dBm interferers; "
        "the 'recoverable' series approaches the sent line"
    )
    return table


def _run_point(threshold_dbm: float, seed: int, duration_s: float):
    deployment = section_iv_rig(
        seed=seed,
        link_cca_policy=FixedCcaThreshold(threshold_dbm),
        link_power_dbm=LINK_POWER_DBM,
    )
    recovery = PacketRecovery(RecoveryConfig(max_error_fraction=0.10))
    receiver = deployment.node("probe.r0")
    measuring = {"on": False}

    def observe(reception):
        if measuring["on"] and reception.frame.source == "probe.s0":
            recovery.record(reception)

    receiver.radio.add_frame_listener(observe)
    deployment.start_traffic()
    sim = deployment.sim
    sim.run(1.0)
    baseline = snapshot_deployment(deployment)
    measuring["on"] = True
    sim.run(sim.now + duration_s)

    sent = (
        deployment.node("probe.s0").mac.stats.since(baseline["probe.s0"]).sent
        / duration_s
    )
    received = recovery.stats.crc_ok / duration_s
    recoverable = recovery.stats.delivered_with_recovery / duration_s
    return sent, received, recoverable
