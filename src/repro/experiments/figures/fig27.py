"""Fig. 27 — Case III: random topology over a large region.

Nodes scattered at random (Fig. 24), powers random in [-22, 0] dBm.  A
network's links can land far apart, so nodes overhear co-channel packets
at very low RSSI — and DCN's safety rule (stay below the weakest
co-channel record) pins the threshold low, forfeiting concurrency.  The
relaxing gain is the *smallest* of the three cases — the weakness the
paper calls out (paper: +6.2 % over w/o DCN, +38.4 % over ZigBee;
983 / 1282 / 1361 pkt/s).
"""

from __future__ import annotations

from ..results import ResultTable
from ..scenarios import case_three
from ._cases import three_way

__all__ = ["run"]


def run(seed: int = 1, fast: bool = False) -> ResultTable:
    seeds = (seed,) if fast else (seed, seed + 5, seed + 10)
    duration_s = 3.0 if fast else 6.0
    return three_way(
        "Fig. 27: Case III (random topology)",
        case_three,
        seeds,
        duration_s,
        "paper: 983 / 1282 / 1361 pkt/s — DCN only +6.2% over w/o "
        "(weak co-channel records pin the threshold)",
    )
