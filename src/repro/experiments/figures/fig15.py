"""Fig. 15 — Throughput of the *other* networks when DCN runs only on N0.

Companion to Fig. 14: N0's unilateral relaxation costs its neighbours a
little (the paper reports ~5 % aggregate degradation of N1-N4) because N0
now transmits over their leakage instead of deferring to it.
"""

from __future__ import annotations

from ..results import ResultTable
from ._five_networks import averaged, mean_others

__all__ = ["run", "CFD_VALUES_MHZ"]

CFD_VALUES_MHZ = (2.0, 3.0)


def run(seed: int = 1, fast: bool = False) -> ResultTable:
    seeds = (seed,) if fast else (seed, seed + 1, seed + 2)
    duration_s = 3.0 if fast else 6.0
    table = ResultTable("Fig. 15: other networks' throughput, DCN only on N0")
    for cfd in CFD_VALUES_MHZ:
        without = mean_others(averaged(cfd, "fixed", seeds, duration_s), "N0")
        with_dcn = mean_others(averaged(cfd, "dcn_n0", seeds, duration_s), "N0")
        table.add_row(
            cfd_mhz=cfd,
            others_without_pps=without,
            others_with_dcn_pps=with_dcn,
            change_pct=100.0 * (with_dcn / without - 1.0) if without else 0.0,
        )
    table.add_note("paper: ~5% degradation of networks N1-N4")
    return table
