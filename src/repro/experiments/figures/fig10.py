"""Fig. 10 — Link PRR vs CCA threshold at different transmit powers.

Companion to Fig. 9: packet receive rate of the probe link in the safe
relaxation region.  The paper's anchors: PRR ~100 % for powers >= -15 dBm,
> 80 % even at -22 dBm against 0 dBm interferers, and poor at -33 dBm.
"""

from __future__ import annotations

from ..results import ResultTable
from ._cca_sweep import sweep_cca

__all__ = ["run", "POWERS_DBM"]

POWERS_DBM = (-8.0, -11.0, -15.0, -22.0, -33.0)
#: PRR is evaluated in the protective-but-relaxed region (Fig. 8's sweet
#: spot) where the paper reads its headline percentages.
SAFE_THRESHOLD_DBM = -60.0


def run(seed: int = 1, fast: bool = False) -> ResultTable:
    duration_s = 3.0 if fast else 10.0
    table = ResultTable("Fig. 10: link PRR vs tx power (relaxed threshold)")
    for power in POWERS_DBM:
        points = sweep_cca(
            (SAFE_THRESHOLD_DBM,),
            seed=seed,
            duration_s=duration_s,
            link_power_dbm=power,
            n_co_channel_links=3,
        )
        point = points[0]
        table.add_row(
            power_dbm=power,
            prr=point.prr,
            sent_pps=point.sent_pps,
            received_pps=point.received_pps,
        )
    table.add_note(
        "paper: PRR ~100% for >= -15 dBm; > 80% at -22 dBm; poor at -33 dBm"
    )
    return table
