"""Fig. 26 — Case II: networks separated into per-channel clusters.

Each network forms its own cluster ("one office room per network",
Fig. 23), powers random in [-22, 0] dBm.  Inter-channel interference is
weaker than Case I, so w/o-DCN already does better and DCN's additional
gain shrinks (paper: +10.4 % over w/o DCN; 980 / 1382 / 1526 pkt/s).
"""

from __future__ import annotations

from ..results import ResultTable
from ..scenarios import case_two
from ._cases import three_way

__all__ = ["run"]


def run(seed: int = 1, fast: bool = False) -> ResultTable:
    seeds = (seed,) if fast else (seed, seed + 5, seed + 10)
    duration_s = 3.0 if fast else 6.0
    return three_way(
        "Fig. 26: Case II (separated clusters)",
        case_two,
        seeds,
        duration_s,
        "paper: 980 / 1382 / 1526 pkt/s — DCN +10.4% over w/o (less than Case I)",
    )
