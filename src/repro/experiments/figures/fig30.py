"""Fig. 30 — Throughput gain on a wider band (18 MHz, 7 channels).

Section VII-B: with 18 MHz of spectrum the CFD = 3 MHz plan fits 7
channels.  The paper reports the DCN gain growing from ~10 % (12 MHz,
5 channels) to ~13 % (18 MHz, 7 channels), with the middle channels —
which face the most neighbouring-channel interference — gaining the most.

We reproduce the per-network gains on the wider band and the 12-vs-18 MHz
overall comparison (fixed transmission power, as in the paper's VII-B
re-run).  In our substrate the relative gain holds on the wider band but
stays roughly constant rather than growing — the per-channel blocking at
our calibrated leakage levels saturates by five channels.
"""

from __future__ import annotations

from ..results import ResultTable
from ..runner import run_deployment
from ..scenarios import (
    dcn_policy_factory,
    five_network_plan,
    standard_testbed,
    wideband_plan,
)

__all__ = ["run"]


def run(seed: int = 1, fast: bool = False) -> ResultTable:
    duration_s = 3.0 if fast else 8.0
    plan = wideband_plan()
    without = run_deployment(standard_testbed(plan, seed=seed), duration_s)
    with_dcn = run_deployment(
        standard_testbed(plan, seed=seed, policy_factory=dcn_policy_factory()),
        duration_s,
    )
    table = ResultTable("Fig. 30: per-network gain on an 18 MHz band (7 channels)")
    for w, d in zip(without.networks, with_dcn.networks):
        table.add_row(
            network=w.label,
            without_pps=w.throughput_pps,
            with_dcn_pps=d.throughput_pps,
            gain_pct=100.0 * (d.throughput_pps / w.throughput_pps - 1.0)
            if w.throughput_pps
            else 0.0,
        )
    wide_gain = (
        100.0
        * (with_dcn.overall_throughput_pps / without.overall_throughput_pps - 1.0)
        if without.overall_throughput_pps
        else 0.0
    )
    # The 12 MHz reference for the paper's "10% -> 13%" comparison.
    narrow_plan = five_network_plan(3.0)
    narrow_without = run_deployment(
        standard_testbed(narrow_plan, seed=seed), duration_s
    )
    narrow_with = run_deployment(
        standard_testbed(
            narrow_plan, seed=seed, policy_factory=dcn_policy_factory()
        ),
        duration_s,
    )
    narrow_gain = (
        100.0
        * (
            narrow_with.overall_throughput_pps
            / narrow_without.overall_throughput_pps
            - 1.0
        )
        if narrow_without.overall_throughput_pps
        else 0.0
    )
    table.add_note(
        f"overall DCN gain: 18 MHz +{wide_gain:.1f}% vs 12 MHz "
        f"+{narrow_gain:.1f}% (paper: ~13% vs ~10%)"
    )
    return table
