"""Table I — Fairness across the six DCN networks.

The 6-network CFD = 3 MHz DCN deployment on the 15 MHz band.  Although N0
(middle frequency) faces more inter-channel interference than N4/N5 (band
edges), DCN equalises: the paper's per-network throughputs span only
259.3-273.4 pkt/s (~4-5 % spread).
"""

from __future__ import annotations

from ..metrics import jain_fairness
from ..results import ResultTable
from ..runner import run_deployment
from ..scenarios import dcn_policy_factory, evaluation_plan, evaluation_testbed

__all__ = ["run"]


def run(seed: int = 1, fast: bool = False) -> ResultTable:
    duration_s = 4.0 if fast else 10.0
    deployment = evaluation_testbed(
        evaluation_plan(3.0), seed=seed, policy_factory=dcn_policy_factory()
    )
    result = run_deployment(deployment, duration_s)
    table = ResultTable("Table I: fairness across the six DCN networks")
    for measurement in result.networks:
        table.add_row(
            network=measurement.label,
            channel_mhz=measurement.channel_mhz,
            throughput_pps=measurement.throughput_pps,
        )
    values = [m.throughput_pps for m in result.networks]
    spread = 100.0 * (max(values) / min(values) - 1.0) if min(values) else 0.0
    table.add_note(f"spread {spread:.1f}% (paper: ~4-5%)")
    table.add_note(f"Jain fairness index {jain_fairness(values):.4f}")
    return table
