"""Fig. 19 — Overall throughput: default ZigBee design vs DCN design.

The headline comparison on the 15 MHz band (2458-2473 MHz):

- **ZigBee design**: 4 channels at CFD = 5 MHz, fixed -77 dBm CCA;
- **our design**: 6 channels at CFD = 3 MHz, DCN on every node.

The paper reports ~58 % overall improvement (two extra channels plus a
~5 % per-network gain).
"""

from __future__ import annotations

from ..results import ResultTable
from ..runner import run_deployment
from ..scenarios import dcn_policy_factory, evaluation_plan, evaluation_testbed

__all__ = ["run"]


def run(seed: int = 1, fast: bool = False) -> ResultTable:
    seeds = (seed,) if fast else (seed, seed + 1, seed + 2)
    duration_s = 3.0 if fast else 6.0
    zig_totals = []
    dcn_totals = []
    zig_networks = None
    dcn_networks = None
    for s in seeds:
        zig = run_deployment(
            evaluation_testbed(evaluation_plan(5.0), seed=s), duration_s
        )
        dcn = run_deployment(
            evaluation_testbed(
                evaluation_plan(3.0), seed=s, policy_factory=dcn_policy_factory()
            ),
            duration_s,
        )
        zig_totals.append(zig.overall_throughput_pps)
        dcn_totals.append(dcn.overall_throughput_pps)
        zig_networks = zig.networks
        dcn_networks = dcn.networks

    zig_mean = sum(zig_totals) / len(zig_totals)
    dcn_mean = sum(dcn_totals) / len(dcn_totals)
    table = ResultTable("Fig. 19: ZigBee design vs DCN design (15 MHz band)")
    table.add_row(
        design="ZigBee (4ch @5MHz, fixed CCA)",
        channels=len(zig_networks),
        overall_pps=zig_mean,
        per_network_pps=zig_mean / len(zig_networks),
    )
    table.add_row(
        design="DCN (6ch @3MHz, dynamic CCA)",
        channels=len(dcn_networks),
        overall_pps=dcn_mean,
        per_network_pps=dcn_mean / len(dcn_networks),
    )
    gain = 100.0 * (dcn_mean / zig_mean - 1.0) if zig_mean else 0.0
    table.add_note(f"DCN vs ZigBee overall: +{gain:.1f}% (paper: ~58%)")
    return table
