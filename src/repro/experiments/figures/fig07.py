"""Fig. 7 — Overall throughput vs CCA threshold (no co-channel case).

Same runs as Fig. 6, but summing throughput across the probe link *and*
the four neighbouring-channel networks: the probe's gain is not stolen
from the neighbours — inter-channel concurrency is genuinely additive.
"""

from __future__ import annotations

from ..results import ResultTable
from ._cca_sweep import DEFAULT_THRESHOLDS_DBM, sweep_cca

__all__ = ["run"]


def run(seed: int = 1, fast: bool = False) -> ResultTable:
    duration_s = 2.0 if fast else 8.0
    thresholds = (
        (-120.0, -90.0, -77.0, -60.0, -40.0) if fast else DEFAULT_THRESHOLDS_DBM
    )
    points = sweep_cca(
        thresholds, seed=seed, duration_s=duration_s, n_co_channel_links=0
    )
    table = ResultTable("Fig. 7: overall throughput vs CCA threshold (no co-channel)")
    for point in points:
        table.add_row(
            threshold_dbm=point.threshold_dbm,
            overall_pps=point.overall_pps,
        )
    table.add_note(
        "paper: overall throughput grows as the probe's threshold relaxes — "
        "the concurrency is additive, not zero-sum"
    )
    return table
