"""Fig. 17 — Per-network throughput at CFD = 3 MHz, DCN on all networks.

Every network improves; the middle channel N0 (most neighbouring-channel
interference, hence most blocked without DCN and most concurrency to
reclaim) gains the most, the boundary channels (N3/N4) the least — the
paper quotes +16.5 % for N0 versus +4.6 % for N4.
"""

from __future__ import annotations

from ..results import ResultTable
from ._five_networks import averaged, mean_network_tput

__all__ = ["run", "CFD_MHZ"]

CFD_MHZ = 3.0
LABELS = ("N0", "N1", "N2", "N3", "N4")


def run(seed: int = 1, fast: bool = False) -> ResultTable:
    seeds = (seed,) if fast else (seed, seed + 1, seed + 2)
    duration_s = 3.0 if fast else 6.0
    without = averaged(CFD_MHZ, "fixed", seeds, duration_s)
    with_dcn = averaged(CFD_MHZ, "dcn_all", seeds, duration_s)
    table = ResultTable("Fig. 17: per-network throughput (CFD=3 MHz, DCN on all)")
    for label in LABELS:
        w = mean_network_tput(without, label)
        d = mean_network_tput(with_dcn, label)
        table.add_row(
            network=label,
            without_pps=w,
            with_dcn_pps=d,
            gain_pct=100.0 * (d / w - 1.0) if w else 0.0,
        )
    table.add_note(
        "paper: all networks improve; middle channel (N0) gains most, "
        "boundary channels least"
    )
    return table
