"""Fig. 6 — Link throughput vs CCA threshold (no co-channel interference).

The Fig. 5 rig: one probe link, four neighbouring-channel interferer
networks (±3, ±6 MHz), everything at 0 dBm.  As the probe sender's CCA
threshold relaxes from -120 toward -20 dBm, it stops deferring to
inter-channel leakage: sent *and* received packets rise together (the
leakage is tolerable, PRR stays ~100 %), exposing how conservative the
-77 dBm default is.
"""

from __future__ import annotations

from ..results import ResultTable
from ._cca_sweep import DEFAULT_THRESHOLDS_DBM, sweep_cca

__all__ = ["run"]


def run(seed: int = 1, fast: bool = False) -> ResultTable:
    duration_s = 2.0 if fast else 8.0
    thresholds = (
        (-120.0, -90.0, -77.0, -60.0, -40.0) if fast else DEFAULT_THRESHOLDS_DBM
    )
    points = sweep_cca(
        thresholds, seed=seed, duration_s=duration_s, n_co_channel_links=0
    )
    table = ResultTable("Fig. 6: link throughput vs CCA threshold (no co-channel)")
    for point in points:
        table.add_row(
            threshold_dbm=point.threshold_dbm,
            sent_pps=point.sent_pps,
            received_pps=point.received_pps,
            prr=point.prr,
        )
    table.add_note(
        "paper: sent==received rise together as the threshold relaxes; "
        "PRR ~100% throughout; -77 dBm default sits mid-slope"
    )
    return table
