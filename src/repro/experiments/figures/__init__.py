"""One module per paper exhibit (figure/table) plus ablations.

Every module exposes ``run(seed=..., fast=...) -> ResultTable`` and is
registered in :mod:`repro.experiments.registry`.
"""
