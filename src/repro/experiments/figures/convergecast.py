"""Convergecast — multi-hop routing metrics under the three channel designs.

(beyond paper) The paper evaluates DCN on single-hop star networks with
strong intra-network RSS.  This exhibit asks what its design trade-off
looks like on the workload sensor networks actually run: *multi-hop
convergecast* over a cluster tree, where the co-channel signal a node
must defer to is a weak far-away next hop and the adjacent-channel
leakage comes from an interleaved foreign network a metre away — the
exact inversion of the paper's testbed RSS ordering.

Setup (:func:`~repro.experiments.scenarios.convergecast_testbed`): two
interleaved N×N grids (30 m pitch) on channels CFD apart, each running
HELLO discovery, cluster-tree join and convergecast reports toward its
own sink.  Designs: ``orthogonal`` (CFD = 5 MHz, fixed -77 dBm CCA),
``zigbee`` (CFD = 3 MHz, fixed), ``dcn`` (CFD = 3 MHz, adaptive).  Two
grid sizes give two tree depths.

Reported per (grid, design): end-to-end delivery ratio, mean / p95
creation-to-delivery delay, hop-count distribution of delivered
reports, mean time to join the tree, and the joined fraction.

Measured shape (see the table notes): the light routing duty cycle makes
adjacent-channel *blocking* a second-order effect — ``zigbee`` and
``orthogonal`` track each other — while DCN's threshold, pinned
conservative by near-sensitivity co-channel snoops (the paper's Case III
caveat), turns into a collision-avoidance win: highest delivery ratio at
the deepest tree, paid for in per-hop deferral delay.  The paper's
single-hop headline (DCN reclaims concurrency) does not transfer to
multi-hop convergecast; its safety property (never block a usable
co-channel link) is what survives.
"""

from __future__ import annotations

from ..results import ResultTable
from ..scenarios import CONVERGECAST_DESIGNS, convergecast_testbed

__all__ = ["run", "GRIDS_FAST", "GRIDS_FULL", "run_point"]

#: (rows, cols) per tree depth; fast keeps two depths (the acceptance
#: floor), the full profile adds a third ring.
GRIDS_FAST = ((3, 3), (4, 4))
GRIDS_FULL = ((3, 3), (4, 4), (5, 5))

#: Traffic/timing profile: reports start once the tree has had time to
#: form (join times are ~1-3 s at the 0.5 s HELLO interval).
WARMUP_S = 5.0
REPORT_INTERVAL_S = 0.5


def run(seed: int = 1, fast: bool = False) -> ResultTable:
    grids = GRIDS_FAST if fast else GRIDS_FULL
    duration_s = 15.0 if fast else 45.0
    table = ResultTable(
        "Convergecast: multi-hop delay / delivery across channel designs"
    )
    for rows, cols in grids:
        for design in CONVERGECAST_DESIGNS:
            summary = run_point(design, seed, rows, cols, duration_s)
            table.add_row(
                grid=f"{rows}x{cols}",
                design=design,
                delivery_pct=100.0 * summary["delivery_ratio"],
                delay_ms=1e3 * summary["delay_mean_s"],
                delay_p95_ms=1e3 * summary["delay_p95_s"],
                hops_mean=summary["hops_mean"],
                hops_max=int(summary["hops_max"]),
                join_s=summary["join_time_mean_s"],
                joined_pct=100.0 * summary["joined_fraction"],
            )
    table.add_note(
        "two interleaved grids per run; delay is creation->sink delivery "
        f"over {duration_s:g} s of reports after a {WARMUP_S:g} s join "
        "warm-up"
    )
    table.add_note(
        "multi-hop inverts the paper's RSS ordering: weak co-channel "
        "signals pin DCN's min-tracking threshold conservative (Case "
        "III), which here buys delivery (fewer forwarding collisions) "
        "at a delay cost; the 3 vs 5 MHz plans barely differ on the "
        "fixed threshold"
    )
    return table


def run_point(design: str, seed: int, rows: int, cols: int,
              duration_s: float) -> dict:
    """One (design, grid) cell: build, join, run traffic, summarize."""
    deployment, fabric = convergecast_testbed(
        design, seed=seed, rows=rows, cols=cols
    )
    fabric.start()
    fabric.attach_convergecast(
        interval_s=REPORT_INTERVAL_S, start_delay_s=WARMUP_S
    )
    fabric.start_sources()
    deployment.sim.run(WARMUP_S + duration_s)
    fabric.stop()
    # Bounded drain so in-flight frames and MAC retries land and count.
    # Not run_until_idle(): DCN's Case-II timer re-arms forever, so a
    # DCN deployment never goes idle.
    deployment.sim.run(deployment.sim.now + 2.0)
    return fabric.summary()
