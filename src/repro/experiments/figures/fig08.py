"""Fig. 8 — Link throughput vs CCA threshold *with* co-channel interference.

Fig. 6's rig plus three co-channel competitor links.  Relaxing still helps
— until the threshold crosses the weakest co-channel RSS ("Min RSS" line):
beyond it the probe transmits over ongoing co-channel packets, sent keeps
climbing but received diverges (collisions), the paper's "disaster".
"""

from __future__ import annotations

from ..results import ResultTable
from ._cca_sweep import DEFAULT_THRESHOLDS_DBM, sweep_cca

__all__ = ["run", "N_CO_CHANNEL_LINKS"]

N_CO_CHANNEL_LINKS = 3


def run(seed: int = 1, fast: bool = False) -> ResultTable:
    duration_s = 2.0 if fast else 8.0
    thresholds = (
        (-120.0, -77.0, -60.0, -45.0, -20.0) if fast else DEFAULT_THRESHOLDS_DBM
    )
    points = sweep_cca(
        thresholds,
        seed=seed,
        duration_s=duration_s,
        n_co_channel_links=N_CO_CHANNEL_LINKS,
    )
    table = ResultTable("Fig. 8: link throughput vs CCA threshold (with co-channel)")
    for point in points:
        table.add_row(
            threshold_dbm=point.threshold_dbm,
            sent_pps=point.sent_pps,
            received_pps=point.received_pps,
            prr=point.prr,
        )
    table.add_note(
        "paper: received tracks sent only below the min co-channel RSS; "
        "beyond it sent keeps rising but PRR collapses"
    )
    return table
