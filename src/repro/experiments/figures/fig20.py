"""Fig. 20 — Throughput of network N0 versus its transmit power.

The 6-network DCN deployment with N0's power swept from -33 to 0 dBm
(everyone else fixed near 0 dBm).  Two regimes (split near -15 dBm in the
paper): below, PRR-limited — more power means better SINR at N0's
receivers; above, PRR saturates at ~100 % and extra power instead raises
N0's co-channel RSS, which relaxes DCN's derived threshold and buys more
inter-channel concurrency.
"""

from __future__ import annotations

from ..results import ResultTable
from ..runner import run_deployment
from ..scenarios import dcn_policy_factory, evaluation_plan, evaluation_testbed

__all__ = ["run", "N0_POWERS_DBM"]

N0_POWERS_DBM = (-33.0, -15.0, -6.0, -3.0, -0.6)


def run(seed: int = 1, fast: bool = False) -> ResultTable:
    duration_s = 3.0 if fast else 8.0
    powers = (-33.0, -15.0, -0.6) if fast else N0_POWERS_DBM
    table = ResultTable("Fig. 20: N0 throughput vs its transmit power (DCN on all)")
    for power in powers:
        deployment = evaluation_testbed(
            evaluation_plan(3.0),
            seed=seed,
            policy_factory=dcn_policy_factory(),
            power_overrides={"N0": power},
        )
        result = run_deployment(deployment, duration_s)
        n0 = result.network("N0")
        table.add_row(
            n0_power_dbm=power,
            n0_throughput_pps=n0.throughput_pps,
            n0_prr=n0.prr,
        )
    table.add_note(
        "paper: throughput rises with power; PRR-limited regime below "
        "~-15 dBm, CCA-relaxation regime above"
    )
    return table
