"""Fig. 21 — Throughput of the networks *other than* N0 vs N0's power.

Companion to Fig. 20: raising N0's co-channel power does not hurt the
neighbouring channels, because CFD = 3 MHz leakage stays tolerable — their
aggregate throughput is flat across N0's whole power range.
"""

from __future__ import annotations

from ..results import ResultTable
from ..runner import run_deployment
from ..scenarios import dcn_policy_factory, evaluation_plan, evaluation_testbed

__all__ = ["run", "N0_POWERS_DBM"]

N0_POWERS_DBM = (-33.0, -22.0, -15.0, -11.0, -6.0, -5.0, -3.0, -2.0, -0.6, 0.0)


def run(seed: int = 1, fast: bool = False) -> ResultTable:
    duration_s = 3.0 if fast else 6.0
    powers = (-33.0, -15.0, 0.0) if fast else N0_POWERS_DBM
    table = ResultTable("Fig. 21: other networks' throughput vs N0 power (DCN on all)")
    for power in powers:
        deployment = evaluation_testbed(
            evaluation_plan(3.0),
            seed=seed,
            policy_factory=dcn_policy_factory(),
            power_overrides={"N0": power},
        )
        result = run_deployment(deployment, duration_s)
        others = sum(m.throughput_pps for m in result.except_network("N0"))
        table.add_row(n0_power_dbm=power, others_pps=others)
    table.add_note(
        "paper: flat — high co-channel power does not trouble neighbouring "
        "channels at CFD=3 MHz"
    )
    return table
