"""Fig. 4 — Collided Packet Receive Rate vs channel frequency distance.

Setup (paper Section III-B / Fig. 3): two links on channels CFD MHz apart,
carrier sensing disabled on both.  The attacker link blasts one packet
every 3 ms, so effectively every packet of the normal sender collides with
attacker traffic.  CPRR is the fraction of *collided* packets that still
decode — for both the normal sender and the attacker.

Paper anchors: CFD >= 4 MHz -> 100 % for both; 3 MHz -> ~97 %;
2 MHz -> ~70 %; 1 MHz -> < 20 %.
"""

from __future__ import annotations

from ...net.traffic import AttackerSource, SaturatedSource
from ...sim.units import MILLISECOND
from ..metrics import snapshot_deployment
from ..results import ResultTable
from ..scenarios import cprr_rig

__all__ = ["run", "CFD_VALUES_MHZ"]

CFD_VALUES_MHZ = (5.0, 4.0, 3.0, 2.0, 1.0)


def run(seed: int = 1, fast: bool = False) -> ResultTable:
    duration_s = 4.0 if fast else 20.0
    table = ResultTable("Fig. 4: CPRR vs channel frequency distance")
    for cfd in CFD_VALUES_MHZ:
        normal_cprr, attacker_cprr = _run_point(cfd, seed, duration_s)
        table.add_row(
            cfd_mhz=cfd,
            normal_cprr=normal_cprr,
            attacker_cprr=attacker_cprr,
        )
    table.add_note(
        "paper: >=4 MHz -> 1.00 both; 3 MHz -> ~0.97; 2 MHz -> ~0.70; "
        "1 MHz -> <0.20"
    )
    return table


def _run_point(cfd_mhz: float, seed: int, duration_s: float):
    deployment = cprr_rig(cfd_mhz, seed=seed)
    normal_source = SaturatedSource(
        deployment.node("normal.s0"), "normal.r0"
    )
    # Payload chosen so the attacker's airtime slightly exceeds its 3 ms
    # injection interval: the channel stays occupied back-to-back and every
    # normal-sender packet is a collided packet, as the paper intends.
    attacker_source = AttackerSource(
        deployment.node("attacker.s0"), "attacker.r0",
        interval_s=3.0 * MILLISECOND,
        payload_bytes=75,
    )
    normal_source.start()
    attacker_source.start()
    sim = deployment.sim
    sim.run(0.5)  # let both flows reach steady state
    baseline = snapshot_deployment(deployment)
    sim.run(sim.now + duration_s)

    def _cprr(sender: str, receiver: str) -> float:
        sent = deployment.node(sender).mac.stats.since(baseline[sender]).sent
        got = deployment.node(receiver).mac.stats.since(baseline[receiver]).delivered
        if sent == 0:
            return 0.0
        return got / sent

    return _cprr("normal.s0", "normal.r0"), _cprr("attacker.s0", "attacker.r0")
