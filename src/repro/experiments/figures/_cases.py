"""Shared three-way comparison for the Cases I-III figures (Figs. 25-27).

Each case compares, averaged over seeds:

- **ZigBee**: 4 channels @ 5 MHz, fixed CCA;
- **w/o DCN**: 6 channels @ 3 MHz, fixed CCA;
- **with DCN**: 6 channels @ 3 MHz, DCN everywhere.

Per the paper, node powers are uniform in [-22, 0] dBm in all cases.
"""

from __future__ import annotations

from typing import Callable, Sequence

from ...net.deployment import Deployment
from ..results import ResultTable
from ..runner import run_deployment
from ..scenarios import dcn_policy_factory, evaluation_plan

__all__ = ["three_way"]

CaseBuilder = Callable[..., Deployment]


def three_way(
    title: str,
    case_builder: CaseBuilder,
    seeds: Sequence[int],
    duration_s: float,
    paper_note: str,
) -> ResultTable:
    """Run the ZigBee / w/o DCN / with DCN triple and tabulate."""
    sums = {"zigbee": 0.0, "without_dcn": 0.0, "with_dcn": 0.0}
    for seed in seeds:
        zig = run_deployment(
            case_builder(evaluation_plan(5.0), seed=seed), duration_s
        )
        without = run_deployment(
            case_builder(evaluation_plan(3.0), seed=seed), duration_s
        )
        with_dcn = run_deployment(
            case_builder(
                evaluation_plan(3.0), seed=seed,
                policy_factory=dcn_policy_factory(),
            ),
            duration_s,
        )
        sums["zigbee"] += zig.overall_throughput_pps
        sums["without_dcn"] += without.overall_throughput_pps
        sums["with_dcn"] += with_dcn.overall_throughput_pps
    n = len(seeds)
    zigbee = sums["zigbee"] / n
    without = sums["without_dcn"] / n
    with_dcn = sums["with_dcn"] / n

    table = ResultTable(title)
    table.add_row(design="ZigBee (4ch @5MHz)", overall_pps=zigbee)
    table.add_row(design="w/o DCN (6ch @3MHz)", overall_pps=without)
    table.add_row(design="with DCN (6ch @3MHz)", overall_pps=with_dcn)
    if without:
        table.add_note(
            f"DCN over w/o-DCN: +{100.0 * (with_dcn / without - 1.0):.1f}%"
        )
    if zigbee:
        table.add_note(
            f"DCN over ZigBee: +{100.0 * (with_dcn / zigbee - 1.0):.1f}%"
        )
    table.add_note(paper_note)
    return table
