"""Fig. 14 — Throughput of network N0, DCN applied *only* on N0.

Five networks at CFD in {2, 3} MHz; only the median-frequency network N0
runs DCN, everyone else keeps the fixed -77 dBm threshold.  The paper
reports ~27 % N0 throughput improvement at both CFDs, with CFD = 3 MHz
reaching the orthogonal single-channel level (~250 pkt/s).
"""

from __future__ import annotations

from ..results import ResultTable
from ._five_networks import averaged, mean_network_tput

__all__ = ["run", "CFD_VALUES_MHZ"]

CFD_VALUES_MHZ = (2.0, 3.0)


def run(seed: int = 1, fast: bool = False) -> ResultTable:
    seeds = (seed,) if fast else (seed, seed + 1, seed + 2)
    duration_s = 3.0 if fast else 6.0
    table = ResultTable("Fig. 14: N0 throughput, DCN only on N0")
    for cfd in CFD_VALUES_MHZ:
        without = mean_network_tput(averaged(cfd, "fixed", seeds, duration_s), "N0")
        with_dcn = mean_network_tput(averaged(cfd, "dcn_n0", seeds, duration_s), "N0")
        table.add_row(
            cfd_mhz=cfd,
            n0_without_pps=without,
            n0_with_dcn_pps=with_dcn,
            gain_pct=100.0 * (with_dcn / without - 1.0) if without else 0.0,
        )
    table.add_note(
        "paper: ~27% N0 gain at both CFDs; CFD=3 MHz reaches ~250 pkt/s "
        "(the orthogonal single-channel level)"
    )
    return table
