"""Fig. 18 — Overall throughput, CFD 2 vs 3 MHz, DCN on all networks.

The CFD-selection result: with DCN everywhere, 3 MHz spacing beats 2 MHz
(the paper quotes ~1.37x and ~10 % DCN gain at 3 MHz), which is why the
final non-orthogonal design uses CFD = 3 MHz.
"""

from __future__ import annotations

from ..results import ResultTable
from ._five_networks import averaged, mean_overall

__all__ = ["run", "CFD_VALUES_MHZ"]

CFD_VALUES_MHZ = (2.0, 3.0)


def run(seed: int = 1, fast: bool = False) -> ResultTable:
    seeds = (seed,) if fast else (seed, seed + 1, seed + 2)
    duration_s = 3.0 if fast else 6.0
    table = ResultTable("Fig. 18: overall throughput vs CFD (DCN on all)")
    overall_by_cfd = {}
    for cfd in CFD_VALUES_MHZ:
        without = mean_overall(averaged(cfd, "fixed", seeds, duration_s))
        with_dcn = mean_overall(averaged(cfd, "dcn_all", seeds, duration_s))
        overall_by_cfd[cfd] = with_dcn
        table.add_row(
            cfd_mhz=cfd,
            without_pps=without,
            with_dcn_pps=with_dcn,
            dcn_gain_pct=100.0 * (with_dcn / without - 1.0) if without else 0.0,
        )
    ratio = overall_by_cfd[3.0] / overall_by_cfd[2.0] if overall_by_cfd[2.0] else 0.0
    table.add_note(f"CFD3/CFD2 with DCN = {ratio:.2f} (paper: ~1.37)")
    table.add_note("paper: ~10% DCN gain at CFD=3 MHz, ~1300 pkt/s overall")
    return table
