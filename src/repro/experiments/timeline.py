"""Channel-activity timelines extracted from simulation traces.

Turn a traced run into per-channel busy intervals and concurrency
statistics — the ground truth behind every throughput number.  The key
quantity for this paper is **cross-channel concurrency**: the fraction of
air time during which two or more *different* channels carry transmissions
simultaneously.  The fixed CCA design suppresses it; DCN's entire gain is
restoring it.

Usage::

    trace = Trace()
    deployment = standard_testbed(..., trace=trace)
    run_deployment(deployment, 5.0)
    tl = Timeline.from_trace(trace)
    tl.concurrency_fraction(2)   # share of busy time with >= 2 channels
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..sim.trace import Trace

__all__ = ["Interval", "Timeline"]


@dataclass(frozen=True)
class Interval:
    """One transmission on one channel."""

    start: float
    end: float
    channel_mhz: float
    source: str

    @property
    def duration(self) -> float:
        return self.end - self.start


class Timeline:
    """Per-channel busy intervals reconstructed from trace records."""

    def __init__(self, intervals: List[Interval]) -> None:
        self.intervals = sorted(intervals, key=lambda iv: iv.start)

    @classmethod
    def from_trace(cls, trace: Trace) -> "Timeline":
        """Build from ``tx_start`` records (airtime from the frame table).

        The medium emits one ``tx_start`` per transmission; the matching
        end is reconstructed from the next ``tx_start``/``rx_done`` pair —
        we instead record airtime directly at emission time via the
        ``airtime`` field when present, falling back to pairing heuristics.
        """
        intervals: List[Interval] = []
        for record in trace.of_kind("tx_start"):
            airtime = record.fields.get("airtime")
            if airtime is None:
                continue
            intervals.append(
                Interval(
                    start=record.time,
                    end=record.time + airtime,
                    channel_mhz=record.fields["channel"],
                    source=record.fields["source"],
                )
            )
        return cls(intervals)

    # ------------------------------------------------------------------
    def channels(self) -> List[float]:
        return sorted({iv.channel_mhz for iv in self.intervals})

    def busy_time(self, channel_mhz: float) -> float:
        """Union length of this channel's transmission intervals."""
        spans = sorted(
            (iv.start, iv.end)
            for iv in self.intervals
            if iv.channel_mhz == channel_mhz
        )
        total = 0.0
        current_start = current_end = None
        for start, end in spans:
            if current_end is None or start > current_end:
                if current_end is not None:
                    total += current_end - current_start
                current_start, current_end = start, end
            else:
                current_end = max(current_end, end)
        if current_end is not None:
            total += current_end - current_start
        return total

    def concurrency_profile(self) -> Dict[int, float]:
        """Time spent with exactly k distinct channels transmitting.

        Returns ``{k: seconds}`` for k >= 1 (k = 0 idle time is not
        reported because the observation window is not tracked here).
        """
        events: List[Tuple[float, int, float]] = []
        for iv in self.intervals:
            events.append((iv.start, +1, iv.channel_mhz))
            events.append((iv.end, -1, iv.channel_mhz))
        events.sort(key=lambda e: (e[0], -e[1]))
        active: Dict[float, int] = {}
        profile: Dict[int, float] = {}
        last_time = None
        for time, delta, channel in events:
            if last_time is not None and time > last_time:
                k = sum(1 for count in active.values() if count > 0)
                if k >= 1:
                    profile[k] = profile.get(k, 0.0) + (time - last_time)
            active[channel] = active.get(channel, 0) + delta
            last_time = time
        return profile

    def concurrency_fraction(self, at_least: int = 2) -> float:
        """Share of non-idle air time with >= ``at_least`` channels active."""
        profile = self.concurrency_profile()
        busy = sum(profile.values())
        if busy <= 0:
            return 0.0
        concurrent = sum(
            seconds for k, seconds in profile.items() if k >= at_least
        )
        return concurrent / busy
