"""Experiment registry: exhibit id -> runnable.

Every paper exhibit (and each ablation) is addressable by a short id, so
benches, EXPERIMENTS.md generation and the command line can enumerate them:

>>> from repro.experiments.registry import get, all_ids
>>> table = get("fig04").run(seed=1, fast=True)
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from ..experiments.results import ResultTable
from .figures import (
    ablations,
    convergecast,
    fig01,
    fig02,
    fig04,
    fig06,
    fig07,
    fig08,
    fig09,
    fig10,
    fig14,
    fig15,
    fig16,
    fig17,
    fig18,
    fig19,
    fig20,
    fig21,
    fig25,
    fig26,
    fig27,
    fig28,
    fig29,
    fig30,
    table1,
)

__all__ = ["Experiment", "get", "all_ids", "run_all", "REGISTRY"]

Runner = Callable[..., ResultTable]


@dataclass(frozen=True)
class Experiment:
    """A registered exhibit reproduction."""

    id: str
    paper_exhibit: str
    description: str
    run: Runner


REGISTRY: Dict[str, Experiment] = {}


def _register(id: str, paper_exhibit: str, description: str, run: Runner) -> None:
    if id in REGISTRY:
        raise ValueError(f"duplicate experiment id {id!r}")
    REGISTRY[id] = Experiment(id, paper_exhibit, description, run)


_register("fig01", "Fig. 1", "Bandwidth throughput vs CFD (12 MHz band)", fig01.run)
_register("fig02", "Fig. 2", "802.11b vs 802.15.4 channel-separation contrast", fig02.run)
_register("fig04", "Fig. 4", "Collided-packet receive rate vs CFD", fig04.run)
_register("fig06", "Fig. 6", "Link throughput vs CCA threshold (no co-channel)", fig06.run)
_register("fig07", "Fig. 7", "Overall throughput vs CCA threshold (no co-channel)", fig07.run)
_register("fig08", "Fig. 8", "Link throughput vs CCA threshold (with co-channel)", fig08.run)
_register("fig09", "Fig. 9", "Link throughput vs CCA threshold per tx power", fig09.run)
_register("fig10", "Fig. 10", "Link PRR vs tx power under relaxed CCA", fig10.run)
_register("fig14", "Fig. 14", "N0 throughput, DCN only on N0", fig14.run)
_register("fig15", "Fig. 15", "Other networks' throughput, DCN only on N0", fig15.run)
_register("fig16", "Fig. 16", "Per-network throughput, CFD=2 MHz, DCN on all", fig16.run)
_register("fig17", "Fig. 17", "Per-network throughput, CFD=3 MHz, DCN on all", fig17.run)
_register("fig18", "Fig. 18", "Overall throughput, CFD 2 vs 3, DCN on all", fig18.run)
_register("fig19", "Fig. 19", "ZigBee design vs DCN design (15 MHz band)", fig19.run)
_register("fig20", "Fig. 20", "N0 throughput vs its transmit power", fig20.run)
_register("fig21", "Fig. 21", "Other networks vs N0 transmit power", fig21.run)
_register("table1", "Table I", "Fairness across the six DCN networks", table1.run)
_register("fig25", "Fig. 25", "Case I: one interfering region", fig25.run)
_register("fig26", "Fig. 26", "Case II: separated clusters", fig26.run)
_register("fig27", "Fig. 27", "Case III: random topology", fig27.run)
_register("fig28", "Fig. 28", "Packet recovery under severe interference", fig28.run)
_register("fig29", "Fig. 29", "Error-bit CDF of CRC-failed packets", fig29.run)
_register("fig30", "Fig. 30", "Wider band (18 MHz, 7 channels)", fig30.run)
_register("ablation_margin", "(beyond paper)", "DCN threshold safety-margin sweep", ablations.run_margin)
_register("ablation_tu", "(beyond paper)", "DCN updating-window T_U sweep", ablations.run_tu)
_register("ablation_ti", "(beyond paper)", "DCN initializing-phase T_I sweep", ablations.run_ti)
_register("ablation_oracle", "Sec. VII-C", "DCN vs oracle CCA upper bound", ablations.run_oracle)
_register("ablation_mode2", "Sec. VII-C", "DCN vs CCA mode-2 carrier sense", ablations.run_mode2)
_register("ablation_energy", "(beyond paper)", "Energy cost of DCN (CC2420 model)", ablations.run_energy)
_register("ablation_orthogonal", "(beyond paper)", "Orthogonal vs ZigBee vs DCN channel plans", ablations.run_orthogonal)
_register("convergecast", "(beyond paper)", "Multi-hop convergecast delay/delivery across channel designs", convergecast.run)


def get(experiment_id: str) -> Experiment:
    """Look up an experiment by id."""
    try:
        return REGISTRY[experiment_id]
    except KeyError:
        raise KeyError(
            f"unknown experiment {experiment_id!r}; known: {sorted(REGISTRY)}"
        ) from None


def all_ids() -> List[str]:
    return list(REGISTRY)


def run_all(
    seed: int = 1,
    fast: bool = True,
    ids: Optional[Sequence[str]] = None,
    *,
    jobs: Optional[int] = None,
    use_cache: bool = False,
) -> Dict[str, ResultTable]:
    """Run registered experiments (all, or the ``ids`` subset) -> id: table.

    .. deprecated:: 0.1
        Calling ``run_all`` without ``jobs=`` keeps the historical
        one-process sequential behaviour but now warns: batch execution
        lives in :mod:`repro.campaign` (parallelism, per-job timeouts,
        retries, result caching).  Pass ``jobs=N`` here to opt in, or use
        :func:`repro.campaign.run_campaign` directly for multi-seed
        sweeps and failure reporting.
    """
    from ..campaign import expand_jobs, run_campaign

    if jobs is None:
        warnings.warn(
            "run_all() without jobs= is deprecated; pass jobs=N or use "
            "repro.campaign.run_campaign for parallel, cached execution",
            DeprecationWarning,
            stacklevel=2,
        )
        jobs = 1

    specs = expand_jobs(ids, [seed], fast, all_ids())
    result = run_campaign(specs, jobs=jobs, cache=None if use_cache else False)
    failures = result.failures()
    if failures:
        first = failures[0]
        raise RuntimeError(
            f"{len(failures)} of {len(specs)} experiments failed; first: "
            f"{first.spec} after {first.attempts} attempts:\n{first.error}"
        )
    return {
        eid: result.outcome(eid, seed).table for eid in result.exhibit_ids()
    }
