"""Metrics computed from deployment runs.

The paper reports: per-network and overall throughput (packets/s delivered
to intended receivers), packet receive rate (PRR), collided-packet receive
rate (CPRR), fairness across networks, and the error-bit CDF of CRC-failed
packets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

from ..mac.stats import MacStats
from ..net.deployment import Deployment, Network

__all__ = [
    "NetworkMeasurement",
    "jain_fairness",
    "measure_networks",
    "throughput_pps",
]


@dataclass(frozen=True)
class NetworkMeasurement:
    """Windowed counters for one network."""

    label: str
    channel_mhz: float
    duration_s: float
    sent: int
    delivered: int
    crc_failures: int
    access_failures: int
    cca_attempts: int
    cca_busy: int

    @property
    def throughput_pps(self) -> float:
        return self.delivered / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def offered_pps(self) -> float:
        return self.sent / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def prr(self) -> float:
        """Delivered over sent: the paper's packet receive rate."""
        if self.sent == 0:
            return 0.0
        return self.delivered / self.sent

    @property
    def cca_busy_ratio(self) -> float:
        if self.cca_attempts == 0:
            return 0.0
        return self.cca_busy / self.cca_attempts


def throughput_pps(measurements: Sequence[NetworkMeasurement]) -> float:
    """Aggregate throughput over a set of network measurements."""
    return sum(m.throughput_pps for m in measurements)


def jain_fairness(values: Sequence[float]) -> float:
    """Jain's fairness index: 1.0 = perfectly equal, 1/n = maximally unfair."""
    if not values:
        raise ValueError("jain_fairness needs at least one value")
    total = sum(values)
    squares = sum(v * v for v in values)
    if squares == 0.0:
        return 1.0
    return (total * total) / (len(values) * squares)


def snapshot_deployment(deployment: Deployment) -> Dict[str, MacStats]:
    """Per-node stat snapshots keyed by node name."""
    return {name: node.mac.stats.snapshot() for name, node in deployment.nodes.items()}


def measure_networks(
    deployment: Deployment,
    baseline: Mapping[str, MacStats],
    duration_s: float,
) -> List[NetworkMeasurement]:
    """Windowed per-network counters: current stats minus ``baseline``.

    ``sent`` aggregates over the network's link senders; ``delivered`` over
    its link receivers — matching how the paper instruments throughput (the
    receiver side of each flow).
    """
    measurements = []
    for network in deployment.networks:
        sent = 0
        delivered = 0
        crc_failures = 0
        access_failures = 0
        cca_attempts = 0
        cca_busy = 0
        sender_names = set(network.spec.senders)
        receiver_names = set(network.spec.receivers)
        for node in network.nodes:
            delta = node.mac.stats.since(baseline[node.name])
            if node.name in sender_names:
                sent += delta.sent
                access_failures += delta.access_failures
                cca_attempts += delta.cca_attempts
                cca_busy += delta.cca_busy
            if node.name in receiver_names:
                delivered += delta.delivered
                crc_failures += delta.crc_failures
        measurements.append(
            NetworkMeasurement(
                label=network.label,
                channel_mhz=network.channel_mhz,
                duration_s=duration_s,
                sent=sent,
                delivered=delivered,
                crc_failures=crc_failures,
                access_failures=access_failures,
                cca_attempts=cca_attempts,
                cca_busy=cca_busy,
            )
        )
    return measurements
