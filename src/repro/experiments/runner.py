"""Run deployments and collect windowed measurements.

Every experiment follows the same measurement discipline:

1. start traffic,
2. run a *warm-up* long enough to cover DCN's initializing phase plus a
   Case-II window (so thresholds have settled),
3. snapshot all counters,
4. run the *measurement window*,
5. report counter deltas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..net.deployment import Deployment
from .metrics import (
    NetworkMeasurement,
    jain_fairness,
    measure_networks,
    snapshot_deployment,
    throughput_pps,
)

__all__ = ["RunResult", "run_deployment", "DEFAULT_WARMUP_S"]

#: Covers DCN's T_I (1 s) + one T_U window (3 s) with margin.
DEFAULT_WARMUP_S = 4.5


@dataclass
class RunResult:
    """Outcome of one measured deployment run."""

    networks: List[NetworkMeasurement]
    warmup_s: float
    duration_s: float

    @property
    def overall_throughput_pps(self) -> float:
        return throughput_pps(self.networks)

    @property
    def fairness(self) -> float:
        return jain_fairness([m.throughput_pps for m in self.networks])

    def network(self, label: str) -> NetworkMeasurement:
        for measurement in self.networks:
            if measurement.label == label:
                return measurement
        raise KeyError(f"no measurement for network {label!r}")

    def except_network(self, label: str) -> List[NetworkMeasurement]:
        return [m for m in self.networks if m.label != label]


def run_deployment(
    deployment: Deployment,
    duration_s: float,
    warmup_s: Optional[float] = None,
) -> RunResult:
    """Warm up, then measure ``duration_s`` seconds of the deployment."""
    if duration_s <= 0:
        raise ValueError("duration_s must be > 0")
    warmup = DEFAULT_WARMUP_S if warmup_s is None else warmup_s
    deployment.start_traffic()
    if warmup > 0:
        deployment.sim.run(deployment.sim.now + warmup)
    baseline = snapshot_deployment(deployment)
    deployment.sim.run(deployment.sim.now + duration_s)
    measurements = measure_networks(deployment, baseline, duration_s)
    return RunResult(networks=measurements, warmup_s=warmup, duration_s=duration_s)
