"""Generate EXPERIMENTS.md: paper-vs-measured for every exhibit.

Usage::

    python -m repro.experiments.report [--fast] [--seeds 1,2,3] [--jobs N]

Runs every registered experiment through the campaign engine
(:mod:`repro.campaign` — parallel workers, result cache, retries),
aggregates multi-seed runs into mean ± 95 % CI tables, and renders a
Markdown report pairing each exhibit's paper claim with the measured
table.  A run-summary footer records per-exhibit wall time and cache
status; re-generation is incremental thanks to the on-disk cache.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, Optional, Sequence

from .registry import REGISTRY
from .results import ResultTable

__all__ = ["PAPER_CLAIMS", "render_report", "obs_summary_cell", "main"]

#: What the paper reports for each exhibit — the comparison column.
PAPER_CLAIMS: Dict[str, str] = {
    "fig01": "Throughput peaks at CFD=3 MHz; >40% over the 5 MHz ZigBee "
             "default; 9 MHz (orthogonal, 1 channel) is worst; 2 MHz stops "
             "helping.",
    "fig02": "802.11b: normalized throughput depressed (~0.5-0.7) until "
             "channels are far apart (receiver false-locks on overlapped-"
             "channel packets). 802.15.4: ~1.0 from one channel apart "
             "(receiver cannot decode off-channel packets at all).",
    "fig04": "CPRR >= 4 MHz: 100% for attacker and normal sender; 3 MHz: "
             "~97%; 2 MHz: ~70%; 1 MHz: <20%.",
    "fig06": "Sent and received rise together as the threshold relaxes; "
             "PRR stays ~100%; the -77 dBm default sits mid-slope "
             "(conservative).",
    "fig07": "Overall throughput across all five channels also grows — "
             "the reclaimed concurrency is additive.",
    "fig08": "Received tracks sent only while the threshold stays below "
             "the minimum co-channel RSS; beyond it, sent keeps rising but "
             "collisions break the link ('disaster').",
    "fig09": "Relaxing the threshold improves throughput at every link "
             "power; the absolute gain grows with power.",
    "fig10": "PRR ~100% for link power >= -15 dBm; >80% at -22 dBm vs "
             "0 dBm interferers; poor at -33 dBm.",
    "fig14": "DCN only on N0: ~27% N0 throughput gain at CFD 2 and 3 MHz; "
             "at 3 MHz N0 reaches ~250 pkt/s (the orthogonal single-channel "
             "level).",
    "fig15": "The other networks (fixed CCA) lose ~5% to N0's unilateral "
             "relaxation.",
    "fig16": "CFD=2 MHz, DCN on all: every network improves.",
    "fig17": "CFD=3 MHz, DCN on all: every network improves; N0 (middle) "
             "+16.5%, N4 (edge) +4.6%.",
    "fig18": "Overall with DCN: CFD=3 MHz ~1300 pkt/s = 1.37x CFD=2 MHz; "
             "~10% DCN gain at 3 MHz.",
    "fig19": "ZigBee 4ch@5MHz vs DCN 6ch@3MHz on 15 MHz: ~58% overall "
             "improvement; ~5.4% per-network gain.",
    "fig20": "N0 throughput rises with its power; PRR-limited regime below "
             "~-15 dBm, CCA-relaxation regime above.",
    "fig21": "Other networks' throughput is flat across N0's power range — "
             "high co-channel power does not hurt neighbours at 3 MHz.",
    "table1": "Per-network throughput 259.3-273.4 pkt/s — ~4% spread "
              "despite unequal interference positions.",
    "fig25": "Case I (one region): 983 / 1326 / 1521 pkt/s — DCN +14.7% "
             "over w/o-DCN, +55.7% over ZigBee.",
    "fig26": "Case II (clusters): 980 / 1382 / 1526 pkt/s — DCN +10.4% "
             "over w/o-DCN.",
    "fig27": "Case III (random): 983 / 1282 / 1361 pkt/s — DCN only +6.2% "
             "over w/o-DCN (weak co-channel records pin the threshold), "
             "+38.4% over ZigBee.",
    "fig28": "-22 dBm link vs 0 dBm interferers: clear sent-received gap; "
             "a PPR-style 'recoverable' series closes most of it.",
    "fig29": "87% of CRC-failed packets have <= 10% error bits (the "
             "(0.1, 0.87) point).",
    "fig30": "18 MHz / 7 channels: ~13% DCN gain (vs ~10% at 12 MHz); "
             "middle channels gain most.",
    "ablation_margin": "(beyond paper) margin trades concurrency for "
                       "co-channel safety headroom.",
    "ablation_tu": "(beyond paper) T_U controls how fast the threshold "
                   "re-relaxes after weak traffic disappears.",
    "ablation_ti": "(beyond paper) the initializing phase mostly matters "
                   "for safety at boot, not steady-state throughput.",
    "ablation_oracle": "Sec. VII-C: perfect co-/inter-channel "
                       "differentiation is the upper bound on threshold "
                       "rules.",
    "ablation_mode2": "Sec. VII-C realised with standard hardware: CCA "
                      "mode 2 defers only to demodulable co-channel "
                      "signals — how close does it get to the oracle?",
    "ablation_energy": "(beyond paper) the paper's cost argument for the "
                       "two-phase design, quantified: DCN's sensing energy "
                       "is negligible and its throughput gain lowers "
                       "energy per delivered packet.",
    "ablation_orthogonal": "(beyond paper) the related-work ladder: a "
                           "strictly orthogonal design (9 MHz) fits 2 "
                           "channels in 15 MHz, ZigBee 4, DCN 6.",
    "convergecast": "(beyond paper) the paper's CCA designs replayed on a "
                    "multi-hop cluster-tree convergecast workload: weak "
                    "co-channel RSS pins DCN conservative (Case III), which "
                    "trades end-to-end delay for delivery ratio; channel "
                    "spacing alone (3 vs 5 MHz) barely moves the fixed "
                    "designs at routing duty cycles.",
}


def render_report(tables: Dict[str, ResultTable], elapsed_s: Dict[str, float],
                  profile: str, seed: int,
                  seeds: Optional[Sequence[int]] = None,
                  cache_status: Optional[Dict[str, str]] = None,
                  obs_status: Optional[Dict[str, str]] = None) -> str:
    if seeds is not None and len(seeds) > 1:
        seed_note = f"seeds: {','.join(str(s) for s in seeds)}"
    else:
        seed_note = f"seed: {seeds[0] if seeds else seed}"
    lines = [
        "# EXPERIMENTS — paper vs. measured",
        "",
        "Reproduction of every table and figure in *Design of Non-orthogonal",
        "Multi-channel Sensor Networks* (ICDCS 2010).  Absolute packet rates",
        "are not expected to match the authors' MicaZ testbed (our substrate",
        "is a calibrated simulator; see DESIGN.md §2); the reproduced",
        "quantity is the **shape** — who wins, by roughly what factor, and",
        "where the crossovers fall.",
        "",
        "Multi-seed tables report mean ± 95 % confidence half-width computed",
        "with Student's t distribution at n − 1 degrees of freedom (not the",
        "normal 1.96: at the typical 5 seeds the t critical value is 2.776,",
        "so normal-based intervals would be ~30 % too narrow).",
        "",
        f"Generated with `python -m repro.experiments.report` "
        f"(profile: {profile}, {seed_note}).",
        "",
    ]
    for eid, experiment in REGISTRY.items():
        if eid not in tables:
            continue
        table = tables[eid]
        lines.append(f"## {experiment.paper_exhibit} — {experiment.description}")
        lines.append("")
        lines.append(f"*Experiment id*: `{eid}` — regenerate with "
                     f"`pytest benchmarks/bench_{eid.split('_')[0] if eid.startswith('ablation') else eid}.py --benchmark-only`"
                     if not eid.startswith("ablation")
                     else f"*Experiment id*: `{eid}` — regenerate with "
                          f"`pytest benchmarks/bench_ablations.py --benchmark-only`")
        lines.append("")
        lines.append(f"**Paper**: {PAPER_CLAIMS.get(eid, '(n/a)')}")
        lines.append("")
        lines.append("**Measured**:")
        lines.append("")
        lines.append("```")
        lines.append(table.to_text("{:.4g}"))
        lines.append("```")
        lines.append("")
        lines.append(f"*(run time: {elapsed_s[eid]:.1f} s)*")
        lines.append("")
    if cache_status is not None:
        lines.append("## Run summary")
        lines.append("")
        lines.append("Per-exhibit wall time and result-cache status "
                     "(campaign engine; see `python -m repro campaign`).")
        lines.append("")
        if obs_status is not None:
            lines.append("| exhibit | wall time (s) | cache | telemetry |")
            lines.append("|---|---:|---|---|")
            for eid in tables:
                lines.append(
                    f"| `{eid}` | {elapsed_s.get(eid, 0.0):.2f} | "
                    f"{cache_status.get(eid, 'n/a')} | "
                    f"{obs_status.get(eid, 'n/a')} |"
                )
            total = sum(elapsed_s.get(eid, 0.0) for eid in tables)
            lines.append(f"| **total** | **{total:.2f}** | | |")
        else:
            lines.append("| exhibit | wall time (s) | cache |")
            lines.append("|---|---:|---|")
            for eid in tables:
                lines.append(
                    f"| `{eid}` | {elapsed_s.get(eid, 0.0):.2f} | "
                    f"{cache_status.get(eid, 'n/a')} |"
                )
            total = sum(elapsed_s.get(eid, 0.0) for eid in tables)
            lines.append(f"| **total** | **{total:.2f}** | |")
        lines.append("")
    return "\n".join(lines)


def obs_summary_cell(outcomes) -> str:
    """Compress job obs snapshots into one footer cell (frames / spans).

    ``outcomes`` are the per-seed :class:`~repro.campaign.executor.
    JobOutcome` objects of one exhibit; jobs run without telemetry (or
    restored from pre-obs cache entries) contribute nothing.
    """
    snapshots = [o.metrics for o in outcomes if getattr(o, "metrics", None)]
    if not snapshots:
        return "n/a"
    frames = 0.0
    spans = 0
    for snap in snapshots:
        spans += int(snap.get("spans", 0))
        for key, value in snap.get("counters", {}).items():
            if key.startswith("tx.frames{"):
                frames += value
    return f"{int(frames)} frames, {spans} spans"


def parse_seeds(text: str) -> list:
    """Parse a ``--seeds`` value: comma list (``1,2,3``) or range (``1-5``)."""
    seeds = []
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        if "-" in chunk[1:]:
            lo, hi = chunk.split("-", 1)
            seeds.extend(range(int(lo), int(hi) + 1))
        else:
            seeds.append(int(chunk))
    if not seeds:
        raise argparse.ArgumentTypeError(f"no seeds in {text!r}")
    return seeds


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true",
                        help="use the fast profile (shorter runs)")
    parser.add_argument("--seed", type=int, default=1,
                        help="single seed (back-compat; see --seeds)")
    parser.add_argument("--seeds", type=parse_seeds, default=None,
                        help="comma list or range of seeds, e.g. 1,2,3 or "
                             "1-5; tables become mean ± 95%% CI")
    parser.add_argument("--jobs", type=int, default=1,
                        help="parallel worker processes (campaign engine)")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the on-disk result cache")
    parser.add_argument("--cache-dir", default=None,
                        help="result-cache directory (default .repro-cache)")
    parser.add_argument("--out", default="EXPERIMENTS.md")
    parser.add_argument("--only", nargs="*", default=None,
                        help="restrict to these experiment ids")
    parser.add_argument("--obs", action="store_true",
                        help="capture per-job telemetry snapshots and add "
                             "a telemetry column to the run-summary footer")
    args = parser.parse_args(argv)

    from ..campaign import (
        ProgressPrinter,
        ResultCache,
        expand_jobs,
        run_campaign,
    )

    seeds = args.seeds if args.seeds else [args.seed]
    ids = args.only if args.only else list(REGISTRY)
    specs = expand_jobs(ids, seeds, args.fast, list(REGISTRY))
    if args.no_cache:
        cache = False
    elif args.cache_dir:
        cache = ResultCache(args.cache_dir)
    else:
        cache = None  # campaign default
    result = run_campaign(
        specs,
        jobs=args.jobs,
        cache=cache,
        progress=ProgressPrinter(),
        obs=args.obs,
    )

    tables = result.aggregated()
    elapsed: Dict[str, float] = {}
    cache_status: Dict[str, str] = {}
    obs_status: Optional[Dict[str, str]] = {} if args.obs else None
    for eid in tables:
        outcomes = [result.outcome(eid, s) for s in seeds
                    if (eid, s) in result.outcomes]
        elapsed[eid] = sum(o.elapsed_s for o in outcomes)
        hits = sum(o.from_cache for o in outcomes)
        cache_status[eid] = (
            "hit" if hits == len(outcomes)
            else "miss" if hits == 0
            else f"partial ({hits}/{len(outcomes)})"
        )
        if obs_status is not None:
            obs_status[eid] = obs_summary_cell(outcomes)

    for eid, table in tables.items():
        print(f"[{eid}] {REGISTRY[eid].description} "
              f"({elapsed[eid]:.1f} s, cache {cache_status[eid]})")
        print(table.to_text("{:.4g}"), flush=True)

    for failure in result.failures():
        print(f"FAILED {failure.spec} after {failure.attempts} attempts:\n"
              f"{failure.error}", file=sys.stderr)

    if not args.only:
        profile = "fast" if args.fast else "paper"
        report = render_report(tables, elapsed, profile, seeds[0],
                               seeds=seeds, cache_status=cache_status,
                               obs_status=obs_status)
        with open(args.out, "w") as handle:
            handle.write(report)
        print(f"wrote {args.out}")
    return 1 if result.failures() else 0


if __name__ == "__main__":
    sys.exit(main())
