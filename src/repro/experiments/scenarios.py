"""Paper-configuration builders shared by the figure experiments.

Geometry
--------
The paper's testbed is 35 MicaZ motes in an indoor lab.  We reproduce three
placement regimes (all tunable per call):

- **standard testbed** (Figs. 1, 13-21, 30, Table I): each network (channel)
  forms a small cluster of 2 links; clusters sit a few metres apart in one
  room.  Intra-network RSS is strong (~-45 dBm), inter-network leakage at
  CFD = 3 MHz lands in the -60..-75 dBm range — above the -77 dBm default
  CCA threshold (so the fixed design defers to it) but below the co-channel
  RSS DCN derives its threshold from (so DCN clears it).
- **Section III/IV link rigs** (Figs. 3-10, 28, 29): purpose-built
  single-link configurations with explicitly placed interferers.
- **Cases I-III** (Figs. 22-27): the paper's three network configurations
  with per-node random power in [-22, 0] dBm.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from ..core.dcn import DcnCcaPolicy
from ..core.adjustor import AdjustorConfig
from ..mac.cca import CcaPolicy, DisabledCca, FixedCcaThreshold
from ..mac.params import MacParams
from ..net.deployment import Deployment, PolicyFactory
from ..net.routing import RoutingConfig, RoutingFabric
from ..net.topology import (
    LinkSpec,
    NetworkSpec,
    NodeSpec,
    fixed_power,
    grid_topology,
    one_region_topology,
    random_power,
    random_topology,
    scale_topology,
    separated_clusters_topology,
)
from ..phy.spectrum import EVALUATION_BAND, MOTIVATION_BAND, Band, ChannelPlan
from ..sim.rng import RngStreams

__all__ = [
    "STANDARD_REGION_RADIUS_M",
    "STANDARD_LINK_DISTANCE_M",
    "dcn_policy_factory",
    "dcn_only_on",
    "fixed_policy_factory",
    "five_network_plan",
    "evaluation_plan",
    "motivation_plan",
    "wideband_plan",
    "standard_testbed",
    "evaluation_testbed",
    "scene_plan",
    "large_scene",
    "cprr_rig",
    "section_iv_rig",
    "case_one",
    "case_two",
    "case_three",
    "CONVERGECAST_DESIGNS",
    "convergecast_testbed",
]

# Geometry of the standard testbed (calibrated against Figs. 14/15/17/18):
# all networks share one region — links scattered in a 3.5 m-radius room —
# so that at CFD = 3 MHz the inter-channel leakage at senders straddles the
# -77 dBm default CCA threshold (partial blocking without DCN) and at
# CFD = 2 MHz nearby cross-channel nodes corrupt a visible share of packets.
STANDARD_REGION_RADIUS_M = 3.5
STANDARD_LINK_DISTANCE_M = 1.5


# ---------------------------------------------------------------------------
# Policy factories
# ---------------------------------------------------------------------------
def fixed_policy_factory(threshold_dbm: float = -77.0) -> PolicyFactory:
    """Every node: fixed CCA threshold (the ZigBee design)."""

    def _factory(_label: str, _node: str) -> CcaPolicy:
        return FixedCcaThreshold(threshold_dbm)

    return _factory


def dcn_policy_factory(config: Optional[AdjustorConfig] = None) -> PolicyFactory:
    """Every node: DCN."""

    def _factory(_label: str, _node: str) -> CcaPolicy:
        return DcnCcaPolicy(config)

    return _factory


def dcn_only_on(
    labels: Sequence[str],
    config: Optional[AdjustorConfig] = None,
    fixed_threshold_dbm: float = -77.0,
) -> PolicyFactory:
    """DCN on the named networks, fixed threshold elsewhere (Fig. 14/15)."""
    label_set = set(labels)

    def _factory(label: str, _node: str) -> CcaPolicy:
        if label in label_set:
            return DcnCcaPolicy(config)
        return FixedCcaThreshold(fixed_threshold_dbm)

    return _factory


# ---------------------------------------------------------------------------
# Channel plans
# ---------------------------------------------------------------------------
def motivation_plan(cfd_mhz: float) -> ChannelPlan:
    """Fig. 1: slot allocation over the 12 MHz motivation band."""
    return ChannelPlan.slot(MOTIVATION_BAND, cfd_mhz)


def five_network_plan(cfd_mhz: float) -> ChannelPlan:
    """Fig. 13: five networks around a common centre; N0 in the middle,
    N1/N2 adjacent, N3/N4 at the boundary frequencies."""
    mid = 2465.0
    centers = [
        mid,
        mid - cfd_mhz,
        mid + cfd_mhz,
        mid - 2 * cfd_mhz,
        mid + 2 * cfd_mhz,
    ]
    return ChannelPlan.explicit(centers, cfd_mhz)


def evaluation_plan(cfd_mhz: float = 3.0) -> ChannelPlan:
    """Section VI-B: inclusive allocation over 2458-2473 MHz."""
    return ChannelPlan.inclusive(EVALUATION_BAND, cfd_mhz)


def wideband_plan(cfd_mhz: float = 3.0, width_mhz: float = 18.0) -> ChannelPlan:
    """Section VII-B: a wider band (18 MHz -> 7 channels at 3 MHz)."""
    band = Band(2455.0, 2455.0 + width_mhz)
    return ChannelPlan.inclusive(band, cfd_mhz)


def scene_plan() -> ChannelPlan:
    """The scale-scene channel plan: the full 2.4 GHz band at 5 MHz
    spacing (16 channels, 2405-2480 MHz) — wide enough that band
    sharding has genuinely non-interacting frequency groups."""
    return ChannelPlan.inclusive(Band(2405.0, 2480.0), 5.0)


def large_scene(
    n_motes: int = 1000,
    seed: int = 1,
    active_links_per_network: int = 1,
    area_m2_per_mote: float = 20.0,
    vectorized: Optional[bool] = None,
    band_sharding: bool = False,
    sharded_scheduler: Optional[bool] = None,
) -> Deployment:
    """A synthetic dense deployment for benchmarking and profiling.

    ``n_motes`` motes spread over :func:`scene_plan`'s 16 channels at
    constant spatial density (see
    :func:`~repro.net.topology.scale_topology`); one saturated link per
    channel by default, everyone else idle but audible.  Not a paper
    configuration — this is the ``perf profile --scene N`` /
    ``fanout_1k`` / ``mini_run_5k`` workload.
    """
    rng = RngStreams(seed).stream("topology")
    specs = scale_topology(
        scene_plan(),
        rng,
        n_motes,
        active_links_per_network=active_links_per_network,
        area_m2_per_mote=area_m2_per_mote,
    )
    return Deployment(
        specs,
        seed=seed,
        vectorized=vectorized,
        band_sharding=band_sharding,
        sharded_scheduler=sharded_scheduler,
    )


# ---------------------------------------------------------------------------
# Standard testbed
# ---------------------------------------------------------------------------
def standard_testbed(
    plan: ChannelPlan,
    seed: int,
    policy_factory: Optional[PolicyFactory] = None,
    power_dbm: float = 0.0,
    links_per_network: int = 2,
    region_radius_m: float = STANDARD_REGION_RADIUS_M,
    link_distance_m: float = STANDARD_LINK_DISTANCE_M,
    power_overrides: Optional[dict] = None,
    **deployment_kwargs,
) -> Deployment:
    """The Figs. 13-21 rig: all networks' links scattered in one room.

    ``power_overrides`` maps network labels to a transmit power (dBm) that
    replaces ``power_dbm`` for every node of that network (used by Fig. 20's
    N0 power sweep).
    """
    rng = RngStreams(seed).stream("topology")
    specs = one_region_topology(
        plan,
        rng,
        links_per_network=links_per_network,
        region_radius_m=region_radius_m,
        link_distance_m=link_distance_m,
        power=fixed_power(power_dbm),
    )
    if power_overrides:
        specs = [_override_power(s, power_overrides) for s in specs]
    return Deployment(
        specs,
        seed=seed,
        policy_factory=policy_factory,
        **deployment_kwargs,
    )


def evaluation_testbed(
    plan: ChannelPlan,
    seed: int,
    policy_factory: Optional[PolicyFactory] = None,
    power_dbm: float = 0.0,
    links_per_network: int = 2,
    cluster_spacing_m: float = 3.5,
    cluster_radius_m: float = 0.8,
    link_distance_m: float = 1.2,
    power_overrides: Optional[dict] = None,
    **deployment_kwargs,
) -> Deployment:
    """The Section VI-B rig (Figs. 19-21, Table I, Fig. 30).

    Networks are deployed as groups on a symmetric ring — every network
    experiences a comparable interference environment, which is what makes
    the paper's Table I fairness numbers so tight.  Intra-network RSS is
    strong, so DCN's derived threshold clears all CFD = 3 MHz leakage and
    each channel runs at its full single-channel rate.
    """
    rng = RngStreams(seed).stream("topology")
    specs = separated_clusters_topology(
        plan,
        rng,
        links_per_network=links_per_network,
        cluster_spacing_m=cluster_spacing_m,
        cluster_radius_m=cluster_radius_m,
        link_distance_m=link_distance_m,
        power=fixed_power(power_dbm),
    )
    if power_overrides:
        specs = [_override_power(s, power_overrides) for s in specs]
    return Deployment(
        specs,
        seed=seed,
        policy_factory=policy_factory,
        **deployment_kwargs,
    )


def _override_power(spec: NetworkSpec, overrides: dict) -> NetworkSpec:
    if spec.label not in overrides:
        return spec
    power = overrides[spec.label]
    nodes = tuple(
        NodeSpec(n.name, n.position, power) for n in spec.nodes
    )
    return NetworkSpec(spec.label, spec.channel_mhz, nodes, spec.links)


# ---------------------------------------------------------------------------
# Section III: the CPRR (attacker) rig — Figs. 3 and 4
# ---------------------------------------------------------------------------
def cprr_rig(
    cfd_mhz: float,
    seed: int,
    power_dbm: float = 0.0,
    link_distance_m: float = 1.5,
    attacker_gap_m: float = 1.2,
    **deployment_kwargs,
) -> Deployment:
    """Two links on channels ``cfd_mhz`` apart, carrier sensing disabled.

    Geometry follows Fig. 3: the normal link S->R, and the attacker link
    A->RA with A sitting ``attacker_gap_m`` from R (slightly hotter at R
    than S itself — the worst case for the normal link).  Both senders run
    without CSMA; the traffic sources are attached by the fig04 experiment
    (the attacker blasts 1 packet / 3 ms).
    """
    base = 2460.0
    normal = NetworkSpec(
        label="normal",
        channel_mhz=base,
        nodes=(
            NodeSpec("normal.s0", (0.0, 0.0), power_dbm),
            NodeSpec("normal.r0", (link_distance_m, 0.0), power_dbm),
        ),
        links=(LinkSpec("normal.s0", "normal.r0"),),
    )
    # Symmetric cross layout: each receiver sits attacker_gap_m from the
    # *other* link's sender, so both links suffer comparable interference
    # (the paper's Fig. 4 reports both CPRR curves falling together).
    attacker = NetworkSpec(
        label="attacker",
        channel_mhz=base + cfd_mhz,
        nodes=(
            NodeSpec("attacker.s0", (link_distance_m, attacker_gap_m), power_dbm),
            NodeSpec("attacker.r0", (0.0, attacker_gap_m), power_dbm),
        ),
        links=(LinkSpec("attacker.s0", "attacker.r0"),),
    )
    return Deployment(
        [normal, attacker],
        seed=seed,
        policy_factory=lambda _l, _n: DisabledCca(),
        mac_params=MacParams(csma_enabled=False),
        saturate_senders=False,
        **deployment_kwargs,
    )


# ---------------------------------------------------------------------------
# Section IV: the CCA-threshold link rig — Figs. 5-10, 28, 29
# ---------------------------------------------------------------------------
def section_iv_rig(
    seed: int,
    link_cca_policy: CcaPolicy,
    link_power_dbm: float = 0.0,
    n_co_channel_links: int = 0,
    cfd_mhz: float = 3.0,
    interferer_power_dbm: float = 0.0,
    interferer_distance_m: float = 1.5,
    link_distance_m: float = 0.5,
    co_channel_ring_m: float = 1.5,
    **deployment_kwargs,
) -> Deployment:
    """The Fig. 5 configuration, optionally with co-channel competitors.

    One probe link S->R at the centre channel.  Four interfering networks
    at ±cfd and ±2·cfd MHz (one saturated link each, fixed -77 dBm CCA)
    placed ``interferer_distance_m`` from the probe.  Optionally
    ``n_co_channel_links`` additional same-channel links on a ring of
    radius ``co_channel_ring_m`` (Fig. 8's "3 additional links").

    Only the probe link's CCA policy varies; everything else keeps the
    ZigBee default, exactly as in the paper's Section IV experiments.
    """
    base = 2465.0
    specs: List[NetworkSpec] = []

    mid_x = link_distance_m / 2.0
    probe_nodes = [
        NodeSpec("probe.s0", (0.0, 0.0), link_power_dbm),
        NodeSpec("probe.r0", (link_distance_m, 0.0), link_power_dbm),
    ]
    probe_links = [LinkSpec("probe.s0", "probe.r0")]
    # Co-channel competitors on a ring centred at the link midpoint: every
    # competitor is comparably audible at both S (min-RSS line of Fig. 8)
    # and R (collision damage when the threshold is over-relaxed).
    for index in range(n_co_channel_links):
        angle = 2.0 * math.pi * (index + 0.25) / max(n_co_channel_links, 1)
        cx = mid_x + co_channel_ring_m * math.cos(angle)
        cy = co_channel_ring_m * math.sin(angle)
        sender = f"probe.s{index + 1}"
        receiver = f"probe.r{index + 1}"
        probe_nodes.append(NodeSpec(sender, (cx, cy), interferer_power_dbm))
        probe_nodes.append(
            NodeSpec(receiver, (cx + link_distance_m, cy), interferer_power_dbm)
        )
        probe_links.append(LinkSpec(sender, receiver))
    specs.append(
        NetworkSpec("probe", base, tuple(probe_nodes), tuple(probe_links))
    )

    offsets = (-2 * cfd_mhz, -cfd_mhz, cfd_mhz, 2 * cfd_mhz)
    for index, offset in enumerate(offsets):
        angle = 2.0 * math.pi * index / len(offsets) + math.pi / 4.0
        cx = mid_x + interferer_distance_m * math.cos(angle)
        cy = interferer_distance_m * math.sin(angle)
        label = f"I{index}"
        specs.append(
            NetworkSpec(
                label=label,
                channel_mhz=base + offset,
                nodes=(
                    NodeSpec(f"{label}.s0", (cx, cy), interferer_power_dbm),
                    NodeSpec(
                        f"{label}.r0", (cx + link_distance_m, cy),
                        interferer_power_dbm,
                    ),
                ),
                links=(LinkSpec(f"{label}.s0", f"{label}.r0"),),
            )
        )

    def _policy(label: str, node: str) -> CcaPolicy:
        if node == "probe.s0":
            return link_cca_policy
        return FixedCcaThreshold(-77.0)

    return Deployment(specs, seed=seed, policy_factory=_policy, **deployment_kwargs)


# ---------------------------------------------------------------------------
# Convergecast testbed (multi-hop routing over repro.net.routing)
# ---------------------------------------------------------------------------
#: design name -> (channel distance MHz, use DCN CCA).  "orthogonal" is the
#: conservative 5 MHz plan; "zigbee" packs channels at 3 MHz but keeps the
#: fixed -77 dBm threshold (adjacent-channel leakage from the co-deployed
#: network lands above it -> false blocking); "dcn" runs the same 3 MHz plan
#: with the adaptive threshold.
CONVERGECAST_DESIGNS = {
    "orthogonal": (5.0, False),
    "zigbee": (3.0, False),
    "dcn": (3.0, True),
}


def convergecast_testbed(
    design: str,
    seed: int,
    rows: int = 3,
    cols: int = 3,
    pitch_m: float = 30.0,
    interleave_m: float = 1.0,
    base_mhz: float = 2460.0,
    routing_config: Optional["RoutingConfig"] = None,
    **deployment_kwargs,
):
    """Two interleaved multi-hop grids on adjacent channels.

    Grid A sits at the origin, grid B is offset by ``interleave_m`` on
    both axes, so every node has a *foreign-network* node a metre or two
    away while its own next hop is a full ``pitch_m`` (default 30 m)
    out.  That reverses the single-hop testbeds' RSS ordering — here the
    adjacent-channel leakage (strong, from the interleaved neighbour) is
    *louder* than the co-channel signal (weak, from a distant next hop),
    which is exactly the regime where the fixed CCA threshold false-
    blocks on a 3 MHz plan and the orthogonal 5 MHz plan or DCN's
    adaptive threshold wins back the channel.

    Returns ``(deployment, fabric)`` — the fabric is constructed but not
    started, so exhibits control warm-up and traffic timing.  ACKs are
    enabled: multi-hop forwarding without per-hop retransmission loses
    too many frames to measure anything but the MAC.
    """
    try:
        cfd_mhz, use_dcn = CONVERGECAST_DESIGNS[design]
    except KeyError:
        raise ValueError(
            f"unknown design {design!r}; "
            f"known: {sorted(CONVERGECAST_DESIGNS)}"
        ) from None
    specs = [
        grid_topology(
            rows, cols, pitch_m, base_mhz, label="A",
        ),
        grid_topology(
            rows, cols, pitch_m, base_mhz + cfd_mhz, label="B",
            origin=(interleave_m, interleave_m),
        ),
    ]
    deployment_kwargs.setdefault("mac_params", MacParams(ack_enabled=True))
    deployment = Deployment(
        specs,
        seed=seed,
        policy_factory=(
            dcn_policy_factory() if use_dcn else fixed_policy_factory()
        ),
        saturate_senders=False,
        **deployment_kwargs,
    )
    fabric = RoutingFabric(deployment, config=routing_config)
    return deployment, fabric


# ---------------------------------------------------------------------------
# Cases I-III (Figs. 22-27)
# ---------------------------------------------------------------------------
def case_one(
    plan: ChannelPlan,
    seed: int,
    policy_factory: Optional[PolicyFactory] = None,
    **deployment_kwargs,
) -> Deployment:
    """Case I: all networks in one interfering region, random powers."""
    rng = RngStreams(seed).stream("topology")
    specs = one_region_topology(
        plan,
        rng,
        region_radius_m=1.5,
        link_distance_m=0.8,
        power=random_power(-22.0, 0.0),
    )
    return Deployment(
        specs, seed=seed, policy_factory=policy_factory, **deployment_kwargs
    )


def case_two(
    plan: ChannelPlan,
    seed: int,
    policy_factory: Optional[PolicyFactory] = None,
    **deployment_kwargs,
) -> Deployment:
    """Case II: networks clustered per channel ("office rooms")."""
    rng = RngStreams(seed).stream("topology")
    specs = separated_clusters_topology(
        plan,
        rng,
        cluster_spacing_m=1.5,
        cluster_radius_m=0.8,
        link_distance_m=1.0,
        power=random_power(-22.0, 0.0),
    )
    return Deployment(
        specs, seed=seed, policy_factory=policy_factory, **deployment_kwargs
    )


def case_three(
    plan: ChannelPlan,
    seed: int,
    policy_factory: Optional[PolicyFactory] = None,
    **deployment_kwargs,
) -> Deployment:
    """Case III: all nodes random over a large region, random powers."""
    rng = RngStreams(seed).stream("topology")
    specs = random_topology(
        plan,
        rng,
        region_size_m=4.5,
        power=random_power(-22.0, 0.0),
    )
    return Deployment(
        specs, seed=seed, policy_factory=policy_factory, **deployment_kwargs
    )
