"""Result containers: tables that render like the paper's exhibits.

Every figure/table module produces a :class:`ResultTable` — ordered rows of
named values — so benches and EXPERIMENTS.md can print consistent,
diff-friendly output without any plotting dependency.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List

__all__ = ["ResultTable"]


@dataclass
class ResultTable:
    """An ordered table with a title and free-form metadata.

    Rows are dictionaries; the column order is the insertion order of the
    first row (columns appearing later are appended).
    """

    title: str
    rows: List[Dict[str, Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, **values: Any) -> None:
        self.rows.append(values)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    # ------------------------------------------------------------------
    def columns(self) -> List[str]:
        cols: List[str] = []
        for row in self.rows:
            for key in row:
                if key not in cols:
                    cols.append(key)
        return cols

    def column(self, name: str) -> List[Any]:
        """All values of one column (missing cells become ``None``)."""
        return [row.get(name) for row in self.rows]

    def row_by(self, key: str, value: Any) -> Dict[str, Any]:
        """First row whose ``key`` column equals ``value``."""
        for row in self.rows:
            if row.get(key) == value:
                return row
        raise KeyError(f"no row with {key}={value!r} in table {self.title!r}")

    def sum(self, name: str) -> float:
        return float(sum(v for v in self.column(name) if v is not None))

    # ------------------------------------------------------------------
    def to_text(self, float_format: str = "{:.1f}") -> str:
        """Monospace rendering, paper-table style."""
        cols = self.columns()
        rendered: List[List[str]] = [cols]
        for row in self.rows:
            cells = []
            for col in cols:
                value = row.get(col)
                if value is None:
                    cells.append("-")
                elif isinstance(value, float):
                    cells.append(float_format.format(value))
                else:
                    cells.append(str(value))
            rendered.append(cells)
        widths = [
            max(len(line[i]) for line in rendered) for i in range(len(cols))
        ]
        out = [f"== {self.title} =="]
        header, *body = rendered
        out.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        out.append("  ".join("-" * w for w in widths))
        for line in body:
            out.append("  ".join(c.ljust(w) for c, w in zip(line, widths)))
        for note in self.notes:
            out.append(f"note: {note}")
        return "\n".join(out)

    def to_bar_chart(
        self,
        label_column: str,
        value_column: str,
        width: int = 50,
        char: str = "#",
    ) -> str:
        """Render one numeric column as a horizontal ASCII bar chart.

        Handy for eyeballing an exhibit in a terminal::

            == Fig. 19 ... ==
            ZigBee ... |######################           1023.3
            DCN    ... |################################ 1524.3
        """
        pairs = [
            (str(row.get(label_column)), row.get(value_column))
            for row in self.rows
            if isinstance(row.get(value_column), (int, float))
        ]
        if not pairs:
            return f"== {self.title} == (no numeric data in {value_column!r})"
        peak = max(value for _, value in pairs)
        label_width = max(len(label) for label, _ in pairs)
        lines = [f"== {self.title} =="]
        for label, value in pairs:
            bar_length = 0 if peak <= 0 else int(round(width * value / peak))
            lines.append(
                f"{label.ljust(label_width)} |{char * bar_length:<{width}} "
                f"{value:.1f}"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-data form (title, rows, notes) for JSON serialization."""
        return {
            "title": self.title,
            "rows": [dict(row) for row in self.rows],
            "notes": list(self.notes),
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "ResultTable":
        """Inverse of :meth:`to_dict`; validates the payload shape."""
        try:
            title = payload["title"]
        except (TypeError, KeyError):
            raise ValueError("ResultTable payload needs a 'title' key") from None
        if not isinstance(title, str):
            raise ValueError(f"ResultTable title must be str, got {title!r}")
        rows = payload.get("rows", [])
        notes = payload.get("notes", [])
        if not isinstance(rows, list) or not all(isinstance(r, dict) for r in rows):
            raise ValueError("ResultTable rows must be a list of dicts")
        if not isinstance(notes, list) or not all(isinstance(n, str) for n in notes):
            raise ValueError("ResultTable notes must be a list of strings")
        return cls(
            title=title,
            rows=[dict(row) for row in rows],
            notes=list(notes),
        )

    def to_json(self, indent: int | None = None) -> str:
        """Serialize to JSON (round-trips through :meth:`from_json`).

        Cell values must be JSON scalars (str / int / float / bool /
        ``None``) — which every exhibit already satisfies.  Key order and
        row order are preserved, so two tables with identical content
        produce byte-identical JSON (the property the campaign result
        cache keys on).
        """
        return json.dumps(self.to_dict(), indent=indent, sort_keys=False)

    @classmethod
    def from_json(cls, text: str) -> "ResultTable":
        """Parse a table previously produced by :meth:`to_json`."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ValueError(f"invalid ResultTable JSON: {exc}") from None
        return cls.from_dict(payload)

    def to_csv(self) -> str:
        cols = self.columns()
        lines = [",".join(cols)]
        for row in self.rows:
            lines.append(
                ",".join(str(row.get(col, "")) for col in cols)
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.to_text()
