"""Small statistics helpers for multi-seed experiment sweeps.

Simulation experiments are stochastic in topology draws, fading and
backoff; any number worth reporting should come with its spread.  These
helpers keep that lightweight: run a deployment factory across seeds and
summarise any scalar extractor with mean / standard deviation / a normal
95 % confidence half-width.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, List, Sequence

from ..net.deployment import Deployment
from .runner import RunResult, run_deployment

__all__ = ["Summary", "summarize", "seed_sweep"]


@dataclass(frozen=True)
class Summary:
    """Mean and spread of a scalar across repetitions."""

    values: tuple
    mean: float
    std: float
    ci95: float

    @property
    def n(self) -> int:
        return len(self.values)

    def __str__(self) -> str:
        return f"{self.mean:.1f} ± {self.ci95:.1f} (n={self.n})"


def summarize(values: Iterable[float]) -> Summary:
    """Mean, sample standard deviation and normal 95 % CI half-width."""
    data = tuple(float(v) for v in values)
    if not data:
        raise ValueError("summarize needs at least one value")
    mean = sum(data) / len(data)
    if len(data) == 1:
        return Summary(data, mean, 0.0, 0.0)
    variance = sum((v - mean) ** 2 for v in data) / (len(data) - 1)
    std = math.sqrt(variance)
    ci95 = 1.96 * std / math.sqrt(len(data))
    return Summary(data, mean, std, ci95)


def seed_sweep(
    deployment_factory: Callable[[int], Deployment],
    seeds: Sequence[int],
    duration_s: float,
    extract: Callable[[RunResult], float] = lambda r: r.overall_throughput_pps,
    warmup_s: float | None = None,
) -> Summary:
    """Run ``deployment_factory(seed)`` per seed and summarise ``extract``.

    Example — Fig. 19's headline with a confidence interval::

        summary = seed_sweep(
            lambda s: evaluation_testbed(evaluation_plan(3.0), seed=s,
                                         policy_factory=dcn_policy_factory()),
            seeds=range(5), duration_s=5.0)
    """
    values: List[float] = []
    for seed in seeds:
        deployment = deployment_factory(seed)
        result = run_deployment(deployment, duration_s, warmup_s=warmup_s)
        values.append(extract(result))
    return summarize(values)
