"""Small statistics helpers for multi-seed experiment sweeps.

Simulation experiments are stochastic in topology draws, fading and
backoff; any number worth reporting should come with its spread.  These
helpers keep that lightweight: run a deployment factory across seeds and
summarise any scalar extractor with mean / standard deviation / a
Student-t 95 % confidence half-width.

The t-distribution matters here because sweeps are small.  With the
typical 5 seeds (4 degrees of freedom) the correct 95 % critical value
is 2.776; the normal approximation's 1.96 understates the half-width by
~30 %, silently overstating the confidence of every reported interval.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, List, Sequence

from ..net.deployment import Deployment
from .runner import RunResult, run_deployment

__all__ = ["Summary", "summarize", "seed_sweep", "t_critical_95"]

#: Two-sided 95 % critical values of Student's t by degrees of freedom.
#: Exact table for df <= 30; beyond that interpolate in 1/df between the
#: classical anchor rows (40, 60, 120, infinity) — the standard textbook
#: scheme, accurate to ~1e-3 over the whole range.
_T95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
    6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228,
    11: 2.201, 12: 2.179, 13: 2.160, 14: 2.145, 15: 2.131,
    16: 2.120, 17: 2.110, 18: 2.101, 19: 2.093, 20: 2.086,
    21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064, 25: 2.060,
    26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042,
}

#: Interpolation anchors above df = 30: (df, t).  The last entry is the
#: normal limit (df -> infinity, 1/df -> 0).
_T95_ANCHORS = [(30, 2.042), (40, 2.021), (60, 2.000), (120, 1.980)]
_T95_INF = 1.960


def t_critical_95(df: int) -> float:
    """Two-sided 95 % Student-t critical value for ``df`` degrees of freedom."""
    if df < 1:
        raise ValueError("t_critical_95 needs df >= 1")
    exact = _T95.get(df)
    if exact is not None:
        return exact
    # Linear interpolation in 1/df between anchors (t is nearly linear in
    # 1/df in this regime); above the last anchor interpolate to the
    # normal limit at 1/df = 0.
    x = 1.0 / df
    lo_df, lo_t = _T95_ANCHORS[-1]
    hi_t = _T95_INF
    lo_x, hi_x = 1.0 / lo_df, 0.0
    for (a_df, a_t), (b_df, b_t) in zip(_T95_ANCHORS, _T95_ANCHORS[1:]):
        if x >= 1.0 / b_df:
            lo_x, lo_t = 1.0 / a_df, a_t
            hi_x, hi_t = 1.0 / b_df, b_t
            break
    frac = (x - lo_x) / (hi_x - lo_x)
    return lo_t + frac * (hi_t - lo_t)


@dataclass(frozen=True)
class Summary:
    """Mean and spread of a scalar across repetitions."""

    values: tuple
    mean: float
    std: float
    ci95: float

    @property
    def n(self) -> int:
        return len(self.values)

    def __str__(self) -> str:
        return f"{self.mean:.1f} ± {self.ci95:.1f} (n={self.n})"


def summarize(values: Iterable[float]) -> Summary:
    """Mean, sample standard deviation and Student-t 95 % CI half-width.

    The ``ci95`` field keeps its name but is computed with the t
    critical value for ``n - 1`` degrees of freedom rather than the
    normal 1.96 — for the small n typical of seed sweeps the normal
    approximation materially understates the interval (n = 5:
    t = 2.776 vs 1.96, i.e. ~30 % too narrow).
    """
    data = tuple(float(v) for v in values)
    if not data:
        raise ValueError("summarize needs at least one value")
    mean = sum(data) / len(data)
    if len(data) == 1:
        return Summary(data, mean, 0.0, 0.0)
    variance = sum((v - mean) ** 2 for v in data) / (len(data) - 1)
    std = math.sqrt(variance)
    ci95 = t_critical_95(len(data) - 1) * std / math.sqrt(len(data))
    return Summary(data, mean, std, ci95)


def seed_sweep(
    deployment_factory: Callable[[int], Deployment],
    seeds: Sequence[int],
    duration_s: float,
    extract: Callable[[RunResult], float] = lambda r: r.overall_throughput_pps,
    warmup_s: float | None = None,
) -> Summary:
    """Run ``deployment_factory(seed)`` per seed and summarise ``extract``.

    Example — Fig. 19's headline with a confidence interval::

        summary = seed_sweep(
            lambda s: evaluation_testbed(evaluation_plan(3.0), seed=s,
                                         policy_factory=dcn_policy_factory()),
            seeds=range(5), duration_s=5.0)
    """
    values: List[float] = []
    for seed in seeds:
        deployment = deployment_factory(seed)
        result = run_deployment(deployment, duration_s, warmup_s=warmup_s)
        values.append(extract(result))
    return summarize(values)
