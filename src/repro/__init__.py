"""repro — reproduction of *Design of Non-orthogonal Multi-channel Sensor
Networks* (Xu, Luo, Zhang — ICDCS 2010).

The package implements, from scratch:

- a discrete-event simulation kernel (:mod:`repro.sim`),
- a CC2420-parameterised 802.15.4 PHY with calibrated spectral-leakage /
  SINR / BER models (:mod:`repro.phy`),
- an unslotted CSMA/CA MAC with pluggable CCA policies (:mod:`repro.mac`),
- the paper's contribution — **DCN**, the dynamic CCA-threshold scheme for
  non-orthogonal transmission (:mod:`repro.core`),
- network/node/topology/deployment layers plus multi-hop cluster-tree +
  mesh routing with convergecast workloads (:mod:`repro.net`),
- a simplified 802.11b contrast substrate (:mod:`repro.dot11`),
- an experiment harness reproducing every table and figure of the paper's
  evaluation (:mod:`repro.experiments`),
- a parallel experiment-campaign engine with result caching, retries and
  per-seed aggregation (:mod:`repro.campaign`),
- kernel profiling / benchmark-regression tooling (:mod:`repro.perf`),
- a correctness layer: runtime invariants, a fast-vs-reference
  differential oracle, and a determinism checker (:mod:`repro.check`), and
- an observability layer: metrics registry, span timelines, JSONL export
  and Perfetto-compatible trace output (:mod:`repro.obs`).
"""

from . import check, core, dot11, experiments, mac, net, obs, phy, sim

# 0.8.0: unified service telemetry — /metrics Prometheus exposition,
# cross-process trace propagation (campaign → job → span) and the live
# obs dashboard.  Exhibit physics are untouched, but worker results now
# carry trace exports next to their metrics snapshots; the bump keeps
# pre-telemetry cache entries from replaying without them.
__version__ = "0.8.0"

from . import campaign, perf  # noqa: E402  (the cache keys on __version__)

__all__ = [
    "campaign",
    "check",
    "core",
    "dot11",
    "experiments",
    "mac",
    "net",
    "obs",
    "perf",
    "phy",
    "sim",
    "__version__",
]
