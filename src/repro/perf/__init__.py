"""repro.perf — kernel profiling and performance-regression tooling.

Two entry points, surfaced on the command line as ``python -m repro perf``:

- :mod:`repro.perf.profiler` — ``repro perf profile <exhibit>``: run one
  registered exhibit under :mod:`cProfile` and print the top-N hotspots,
  so "where does the time go" is one command away;
- :class:`repro.perf.profiler.FlightRecorder` — periodic low-overhead
  process snapshots (CPU, RSS, GC, caller gauges) for long-lived
  services; the campaign server runs one and serves its ring at
  ``GET /debug/profile``;
- :mod:`repro.perf.bench` — ``repro perf bench``: a fixed suite of kernel
  micro-benchmarks (event-queue throughput, cancellation churn, medium
  fan-out, CCA probing incremental vs. brute-force, and an end-to-end
  exhibit) whose results are written to ``BENCH_kernel.json``.  The same
  command can *check* a fresh run against the committed baseline
  (``--check``), failing on wall-time regressions beyond a tolerance —
  that is the CI guard keeping the speedup trajectory monotone.

Benchmark comparisons across machines are normalised by a pure-Python
calibration loop timed alongside every run (see
:func:`repro.perf.bench.calibrate`), so the CI gate measures *relative*
kernel cost rather than absolute runner speed.
"""

from .bench import run_bench_suite, check_against_baseline, load_baseline
from .profiler import FlightRecorder, profile_exhibit, profile_scene

__all__ = [
    "run_bench_suite",
    "check_against_baseline",
    "load_baseline",
    "FlightRecorder",
    "profile_exhibit",
    "profile_scene",
]
