"""``repro perf profile`` — run one exhibit under cProfile.

Keeps the "where does the time go" loop to a single command::

    python -m repro perf profile fig19 --fast --top 20
    python -m repro perf profile fig04 --sort cumtime --out fig04.pstats
    python -m repro perf profile --scene 5000 --sim-s 0.02

The profile is printed as the top-N hotspots by ``tottime`` (default) or
``cumtime``; ``--out`` additionally dumps the raw stats for ``snakeviz``
or ``pstats`` post-processing, and ``--json`` writes a structured
snapshot (sorted by the same key, one record per function) so profiles
can be diffed across PRs with plain text tools.  ``--scene N`` profiles
a synthetic ``N``-mote dense deployment (:func:`repro.experiments.
scenarios.large_scene`) instead of a registered exhibit, so profiling
the fan-out path at scale doesn't require hand-writing a world.
"""

from __future__ import annotations

import cProfile
import gc
import io
import json
import os
import pstats
import threading
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, Optional

__all__ = ["profile_exhibit", "profile_scene", "FlightRecorder"]

_SORT_KEYS = {"tottime", "cumtime", "ncalls"}


def profile_exhibit(
    exhibit_id: str,
    seed: int = 1,
    fast: bool = True,
    top: int = 20,
    sort: str = "tottime",
    out: Optional[str] = None,
    json_out: Optional[str] = None,
) -> str:
    """Run ``exhibit_id`` under cProfile, return the formatted hotspot table.

    Raises ``KeyError`` for unknown exhibits (same contract as
    ``repro run``).
    """
    from ..experiments.registry import get

    experiment = get(exhibit_id)
    return _profile(
        lambda: experiment.run(seed=seed, fast=fast),
        top=top, sort=sort, out=out, json_out=json_out,
    )


def profile_scene(
    n_motes: int,
    sim_s: float = 0.02,
    seed: int = 1,
    top: int = 20,
    sort: str = "tottime",
    out: Optional[str] = None,
    json_out: Optional[str] = None,
) -> str:
    """Profile ``sim_s`` seconds of a synthetic ``n_motes``-mote scene.

    Builds :func:`~repro.experiments.scenarios.large_scene` (one saturated
    link per channel, everyone else an idle listener) *outside* the
    profile window, then profiles only the run — so the hotspot table
    shows the steady-state fan-out/dispatch cost, not world construction.
    """
    from ..experiments.scenarios import large_scene

    deployment = large_scene(n_motes, seed=seed)
    deployment.start_traffic()
    return _profile(
        lambda: deployment.sim.run(sim_s),
        top=top, sort=sort, out=out, json_out=json_out,
    )


class FlightRecorder:
    """Periodic low-overhead process snapshots for a long-lived service.

    cProfile answers "where did *this run's* time go"; a service needs the
    other question — "what has the process been doing for the last N
    minutes".  The recorder keeps a bounded ring of cheap snapshots
    (wall clock, cumulative user/system CPU from :func:`os.times`, GC
    collection counts, peak RSS where :mod:`resource` exists, plus any
    caller-supplied gauges via ``sample_fn``), sampled by a daemon thread
    every ``interval_s``.  The campaign server exposes the ring at
    ``GET /debug/profile``.

    Total cost per sample is a handful of syscalls — far below the noise
    floor of a single job — and the thread never touches simulator state,
    so fixed-seed physics are unaffected.
    """

    def __init__(self, interval_s: float = 5.0, max_snapshots: int = 720,
                 sample_fn: Optional[Callable[[], Dict[str, Any]]] = None,
                 ) -> None:
        self.interval_s = max(0.1, float(interval_s))
        self.sample_fn = sample_fn
        self.snapshots: Deque[Dict[str, Any]] = deque(maxlen=max_snapshots)
        self.sample_errors = 0
        self._started_at = time.time()
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def snapshot_now(self) -> Dict[str, Any]:
        """Take (and retain) one snapshot immediately."""
        times = os.times()
        snap: Dict[str, Any] = {
            "wall_time": time.time(),
            "uptime_s": round(time.time() - self._started_at, 3),
            "cpu_user_s": round(times.user, 3),
            "cpu_system_s": round(times.system, 3),
            "gc_counts": list(gc.get_count()),
            "threads": threading.active_count(),
        }
        try:
            import resource
            usage = resource.getrusage(resource.RUSAGE_SELF)
            snap["max_rss_kb"] = usage.ru_maxrss
        except ImportError:  # non-POSIX: RSS is a nicety, not a contract
            pass
        if self.sample_fn is not None:
            try:
                snap.update(self.sample_fn())
            except Exception:
                # Extras must never kill the sampling thread; the error
                # count surfaces the breakage in the /debug/profile body.
                self.sample_errors += 1
        with self._lock:
            self.snapshots.append(snap)
        return snap

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.snapshot_now()

    # ------------------------------------------------------------------
    def start(self) -> "FlightRecorder":
        """Start the sampling thread (idempotent); returns ``self``."""
        if self._thread is None or not self._thread.is_alive():
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="repro-flight-recorder", daemon=True)
            self._thread.start()
        return self

    def stop(self) -> None:
        """Stop sampling (idempotent; joins the thread briefly)."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    def report(self) -> Dict[str, Any]:
        """The ``/debug/profile`` payload: config + the snapshot ring.

        Always takes one fresh snapshot first, so the report is never
        empty and its tail is never staler than the request.
        """
        self.snapshot_now()
        with self._lock:
            snapshots = list(self.snapshots)
        return {
            "interval_s": self.interval_s,
            "max_snapshots": self.snapshots.maxlen,
            "count": len(snapshots),
            "sample_errors": self.sample_errors,
            "snapshots": snapshots,
        }

    def __enter__(self) -> "FlightRecorder":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()


def _json_snapshot(stats: pstats.Stats, sort: str, top: int) -> dict:
    """Structured top-``top`` hotspot records from collected stats.

    Functions are identified by ``file:line(name)`` strings and costs are
    rounded to the microsecond, so two snapshots of the same workload
    diff cleanly even across absolute-path or timing noise.
    """
    sort_index = {"ncalls": 1, "tottime": 2, "cumtime": 3}[sort]
    rows = []
    for func, (cc, nc, tt, ct, _callers) in stats.stats.items():
        rows.append((func, nc, tt, ct))
    rows.sort(key=lambda row: row[sort_index], reverse=True)
    records = []
    for func, nc, tt, ct in rows[:top]:
        filename, line, name = func
        records.append(
            {
                "function": f"{filename}:{line}({name})",
                "ncalls": nc,
                "tottime_s": round(tt, 6),
                "cumtime_s": round(ct, 6),
            }
        )
    return {
        "schema": 1,
        "sort": sort,
        "top": top,
        "total_time_s": round(stats.total_tt, 6),
        "total_calls": stats.total_calls,
        "functions": records,
    }


def _profile(
    workload: Callable[[], object],
    top: int,
    sort: str,
    out: Optional[str],
    json_out: Optional[str] = None,
) -> str:
    if sort not in _SORT_KEYS:
        raise ValueError(f"sort must be one of {sorted(_SORT_KEYS)}, got {sort!r}")
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        workload()
    finally:
        profiler.disable()
    if out:
        profiler.dump_stats(out)
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    if json_out:
        with open(json_out, "w", encoding="utf-8") as handle:
            json.dump(_json_snapshot(stats, sort, top), handle, indent=2)
            handle.write("\n")
    stats.sort_stats(sort).print_stats(top)
    return buffer.getvalue()
