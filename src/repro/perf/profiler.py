"""``repro perf profile`` — run one exhibit under cProfile.

Keeps the "where does the time go" loop to a single command::

    python -m repro perf profile fig19 --fast --top 20
    python -m repro perf profile fig04 --sort cumtime --out fig04.pstats

The profile is printed as the top-N hotspots by ``tottime`` (default) or
``cumtime``; ``--out`` additionally dumps the raw stats for ``snakeviz``
or ``pstats`` post-processing.
"""

from __future__ import annotations

import cProfile
import io
import pstats
from typing import Optional

__all__ = ["profile_exhibit"]

_SORT_KEYS = {"tottime", "cumtime", "ncalls"}


def profile_exhibit(
    exhibit_id: str,
    seed: int = 1,
    fast: bool = True,
    top: int = 20,
    sort: str = "tottime",
    out: Optional[str] = None,
) -> str:
    """Run ``exhibit_id`` under cProfile, return the formatted hotspot table.

    Raises ``KeyError`` for unknown exhibits (same contract as
    ``repro run``).
    """
    from ..experiments.registry import get

    if sort not in _SORT_KEYS:
        raise ValueError(f"sort must be one of {sorted(_SORT_KEYS)}, got {sort!r}")
    experiment = get(exhibit_id)
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        experiment.run(seed=seed, fast=fast)
    finally:
        profiler.disable()
    if out:
        profiler.dump_stats(out)
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats(sort).print_stats(top)
    return buffer.getvalue()
