"""``repro perf profile`` — run one exhibit under cProfile.

Keeps the "where does the time go" loop to a single command::

    python -m repro perf profile fig19 --fast --top 20
    python -m repro perf profile fig04 --sort cumtime --out fig04.pstats
    python -m repro perf profile --scene 5000 --sim-s 0.02

The profile is printed as the top-N hotspots by ``tottime`` (default) or
``cumtime``; ``--out`` additionally dumps the raw stats for ``snakeviz``
or ``pstats`` post-processing, and ``--json`` writes a structured
snapshot (sorted by the same key, one record per function) so profiles
can be diffed across PRs with plain text tools.  ``--scene N`` profiles
a synthetic ``N``-mote dense deployment (:func:`repro.experiments.
scenarios.large_scene`) instead of a registered exhibit, so profiling
the fan-out path at scale doesn't require hand-writing a world.
"""

from __future__ import annotations

import cProfile
import io
import json
import pstats
from typing import Callable, Optional

__all__ = ["profile_exhibit", "profile_scene"]

_SORT_KEYS = {"tottime", "cumtime", "ncalls"}


def profile_exhibit(
    exhibit_id: str,
    seed: int = 1,
    fast: bool = True,
    top: int = 20,
    sort: str = "tottime",
    out: Optional[str] = None,
    json_out: Optional[str] = None,
) -> str:
    """Run ``exhibit_id`` under cProfile, return the formatted hotspot table.

    Raises ``KeyError`` for unknown exhibits (same contract as
    ``repro run``).
    """
    from ..experiments.registry import get

    experiment = get(exhibit_id)
    return _profile(
        lambda: experiment.run(seed=seed, fast=fast),
        top=top, sort=sort, out=out, json_out=json_out,
    )


def profile_scene(
    n_motes: int,
    sim_s: float = 0.02,
    seed: int = 1,
    top: int = 20,
    sort: str = "tottime",
    out: Optional[str] = None,
    json_out: Optional[str] = None,
) -> str:
    """Profile ``sim_s`` seconds of a synthetic ``n_motes``-mote scene.

    Builds :func:`~repro.experiments.scenarios.large_scene` (one saturated
    link per channel, everyone else an idle listener) *outside* the
    profile window, then profiles only the run — so the hotspot table
    shows the steady-state fan-out/dispatch cost, not world construction.
    """
    from ..experiments.scenarios import large_scene

    deployment = large_scene(n_motes, seed=seed)
    deployment.start_traffic()
    return _profile(
        lambda: deployment.sim.run(sim_s),
        top=top, sort=sort, out=out, json_out=json_out,
    )


def _json_snapshot(stats: pstats.Stats, sort: str, top: int) -> dict:
    """Structured top-``top`` hotspot records from collected stats.

    Functions are identified by ``file:line(name)`` strings and costs are
    rounded to the microsecond, so two snapshots of the same workload
    diff cleanly even across absolute-path or timing noise.
    """
    sort_index = {"ncalls": 1, "tottime": 2, "cumtime": 3}[sort]
    rows = []
    for func, (cc, nc, tt, ct, _callers) in stats.stats.items():
        rows.append((func, nc, tt, ct))
    rows.sort(key=lambda row: row[sort_index], reverse=True)
    records = []
    for func, nc, tt, ct in rows[:top]:
        filename, line, name = func
        records.append(
            {
                "function": f"{filename}:{line}({name})",
                "ncalls": nc,
                "tottime_s": round(tt, 6),
                "cumtime_s": round(ct, 6),
            }
        )
    return {
        "schema": 1,
        "sort": sort,
        "top": top,
        "total_time_s": round(stats.total_tt, 6),
        "total_calls": stats.total_calls,
        "functions": records,
    }


def _profile(
    workload: Callable[[], object],
    top: int,
    sort: str,
    out: Optional[str],
    json_out: Optional[str] = None,
) -> str:
    if sort not in _SORT_KEYS:
        raise ValueError(f"sort must be one of {sorted(_SORT_KEYS)}, got {sort!r}")
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        workload()
    finally:
        profiler.disable()
    if out:
        profiler.dump_stats(out)
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    if json_out:
        with open(json_out, "w", encoding="utf-8") as handle:
            json.dump(_json_snapshot(stats, sort, top), handle, indent=2)
            handle.write("\n")
    stats.sort_stats(sort).print_stats(top)
    return buffer.getvalue()
