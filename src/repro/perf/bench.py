"""Kernel micro-benchmark suite and the ``BENCH_kernel.json`` baseline.

The suite times the hot paths the PR-2 performance layer optimised:

- ``event_queue``       — self-rescheduling event throughput (push/pop);
- ``event_cancel_churn``— heavy cancellation (exercises heap compaction);
- ``medium_fanout``     — one transmitter fanning frames to 30 receivers
  through the :class:`~repro.phy.medium.LinkGainCache`;
- ``fanout_1k``         — the same rig at 1000 receivers: the regime the
  struct-of-arrays :mod:`repro.phy.vectorized` path is built for;
- ``cca_probe``         — the O(1) incremental sensing-path probe;
- ``cca_probe_brute``   — the pre-optimisation O(n·mask) re-summation,
  kept as the honest "before" reference (also used by the accumulator
  exactness tests);
- ``obs_off_mini_run``  — a 2-node saturated run with telemetry *off*:
  the guard-only cost every ordinary run pays (gated so obs-disabled
  overhead regressions fail CI);
- ``obs_on_mini_run``   — the same run fully instrumented (spans +
  gauge sampling), recording the opt-in cost per frame;
- ``routing_mini_run``  — a 3×3 grid running the full routing stack
  (HELLO discovery, tree join, convergecast forwarding), costed per
  delivered end-to-end report;
- ``mini_run_5k``       — a 5000-mote synthetic scene (16 channels, one
  saturated link each) run for 20 ms of sim time, costed per sent
  frame; the scale tier the vectorized fan-out targets (skipped in
  ``--quick`` mode);
- ``mini_run_50k``      — the same scene at 50 000 motes: the sharded-
  scheduler + batched-accumulator regime (DESIGN.md §15; skipped in
  ``--quick`` mode);
- ``mini_run_50k_smoke``— the 50k scene at 5 ms of sim time, sized for
  the CI ``scale`` job (selected there via ``--only``); part of the
  full suite so the committed baseline carries a number the scale job
  can gate against;
- ``fig19_fast``        — an end-to-end representative exhibit (skipped
  in ``--quick`` mode).

Results are machine-normalised via :func:`calibrate` — a fixed pure-Python
loop timed alongside every run — so a committed baseline from one machine
can gate CI runs on another: what is compared is the benchmark's cost
*relative to that machine's Python speed*, not absolute seconds.

Rolling per-bench baselines: :func:`write_baseline` folds the previous
document's measurement into each bench's ``baseline`` field (with its
``measured_at`` stamp and calibration), so ``BENCH_kernel.json`` always
records the *previous* regeneration next to the current one and
``repro perf bench --compare`` can print honest per-bench deltas.  The
module-level :data:`BEFORE_OPTIMISATION` constants are frozen seed-commit
history, not a live baseline.
"""

from __future__ import annotations

import gc
import json
import os
import time
from typing import Any, Dict, List, Optional, Sequence

__all__ = [
    "BEFORE_OPTIMISATION",
    "brute_force_sensed_power_mw",
    "brute_force_in_channel_power_mw",
    "calibrate",
    "run_bench_suite",
    "load_baseline",
    "check_against_baseline",
    "compare_against_baseline",
    "write_baseline",
]

SCHEMA_VERSION = 1

#: Pre-optimisation numbers, measured at the seed commit (ede54dc) on the
#: same machine that produced the committed ``BENCH_kernel.json`` —
#: interleaved with the optimised build in back-to-back fresh processes to
#: cancel machine-speed drift, and pinned at the *fastest* observed
#: pre-optimisation run (11.37-12.02 s range) so the recorded speedups are
#: conservative.  Kept here (not re-measured) because the brute-force
#: medium fan-out paths no longer exist; the CCA brute-force path *is*
#: still measured live as ``cca_probe_brute``.  These are frozen
#: *historical* references (the fig19 figure predates PR 2) — delta
#: tracking between regenerations lives in the per-bench ``baseline``
#: fields that :func:`write_baseline` maintains, not here.
BEFORE_OPTIMISATION: Dict[str, float] = {
    "fig19_fast_wall_s": 11.37,
    "cca_probe_us": 10.97,  # 20 active signals, per probe
}

#: Provenance note serialised alongside the ``before`` block so readers
#: of ``BENCH_kernel.json`` don't mistake it for a rolling baseline.
BEFORE_NOTE = (
    "frozen seed-commit (pre-PR-2) measurements; per-regeneration deltas "
    "are tracked in each bench's 'baseline' field"
)


# ----------------------------------------------------------------------
# Brute-force reference implementations (pre-optimisation algorithms)
# ----------------------------------------------------------------------
def brute_force_sensed_power_mw(radio) -> float:
    """Sensing-path power by full re-summation (the pre-PR-2 algorithm).

    Walks every active signal, re-evaluates the CCA mask and converts the
    leakage to a linear gain per probe.  Kept as the reference the
    incremental accumulator is benchmarked and property-tested against.
    """
    total = radio._noise_mw
    for signal in radio.active_signals:
        leakage_db = radio.cca_mask.leakage_db(
            signal.channel_mhz - radio.channel_mhz
        )
        total += signal.rx_power_mw * (10.0 ** (-leakage_db / 10.0))
    return total


def brute_force_in_channel_power_mw(radio, exclude=None) -> float:
    """Decode-path power by full re-summation (the pre-PR-2 algorithm)."""
    total = radio._noise_mw
    for signal in radio.active_signals:
        if signal is exclude:
            continue
        leakage_db = radio.mask.leakage_db(signal.channel_mhz - radio.channel_mhz)
        total += signal.rx_power_mw * (10.0 ** (-leakage_db / 10.0))
    return total


# ----------------------------------------------------------------------
# Machine calibration
# ----------------------------------------------------------------------
def calibrate(rounds: int = 3) -> float:
    """Time a fixed pure-Python workload; the per-machine speed unit.

    Returns the best-of-``rounds`` wall time of a deterministic
    arithmetic loop.  Baseline comparisons scale by the ratio of
    calibration times, cancelling out raw machine speed.
    """
    best = float("inf")
    for _ in range(rounds):
        t0 = time.perf_counter()
        acc = 0
        for i in range(500_000):
            acc += i ^ (i >> 3)
        best = min(best, time.perf_counter() - t0)
    return best


# ----------------------------------------------------------------------
# Individual benchmarks
# ----------------------------------------------------------------------
def _bench_event_queue(n: int) -> Dict[str, Any]:
    from ..sim.simulator import Simulator

    sim = Simulator()
    count = [0]

    def tick() -> None:
        count[0] += 1
        if count[0] < n:
            sim.schedule(1e-5, tick)

    sim.schedule(0.0, tick)
    t0 = time.perf_counter()
    sim.run_until_idle()
    wall = time.perf_counter() - t0
    assert count[0] == n
    return {"wall_s": wall, "n": n, "per_op_us": wall / n * 1e6}


def _bench_event_cancel_churn(n: int) -> Dict[str, Any]:
    from ..sim.events import EventQueue

    queue = EventQueue()
    t0 = time.perf_counter()
    # Repeatedly push a batch and cancel 90% of it: the lazy-cancellation
    # heap must compact rather than grow monotonically.
    for batch in range(n // 100):
        events = [queue.push(batch + i * 1e-6, lambda: None) for i in range(100)]
        for event in events[10:]:
            queue.cancel(event)
    while queue:
        queue.pop()
    wall = time.perf_counter() - t0
    return {"wall_s": wall, "n": n, "per_op_us": wall / n * 1e6}


def _fanout_rig(n_receivers: int = 30):
    from ..phy.fading import NoFading
    from ..phy.medium import Medium
    from ..phy.propagation import FixedRssMatrix
    from ..phy.radio import Radio
    from ..sim.rng import RngStreams
    from ..sim.simulator import Simulator

    sim = Simulator()
    rng = RngStreams(1)
    medium = Medium(
        sim, FixedRssMatrix(default_loss_db=50.0), fading=NoFading(), rng=rng
    )
    tx = Radio(sim, medium, "tx", (0, 0), 2460.0, 0.0, rng=rng)
    for i in range(n_receivers):
        Radio(sim, medium, f"rx{i}", (1 + i, 0), 2460.0, 0.0, rng=rng)
    return sim, tx


def _bench_medium_fanout(frames: int, n_receivers: int = 30) -> Dict[str, Any]:
    from ..phy.frame import Frame

    sim, tx = _fanout_rig(n_receivers)
    t0 = time.perf_counter()
    for _ in range(frames):
        frame = Frame("tx", None, 60)
        tx.transmit(frame, lambda t: None)
        sim.run(sim.now + frame.airtime_s + 1e-6)
    wall = time.perf_counter() - t0
    return {"wall_s": wall, "n": frames, "per_op_us": wall / frames * 1e6}


def _bench_mini_run(n_motes: int, sim_s: float = 0.02) -> Dict[str, Any]:
    """An ``n_motes``-mote scene for ``sim_s`` of simulated time, per frame.

    The spatial density (400 m² per mote) keeps audible sets bounded by
    radio range (~1500 radios at 5k, saturating near ~4800 at 50k), as in
    a real city-scale deployment — so the cost scales with audible-set
    size, not with the global mote count.  World construction stays
    outside the timed window (the 5k convention); the lazy link-cache and
    fading-stream builds still land inside it, on the first transmission
    of each source.

    The pre-window ``gc.collect()`` is measurement hygiene, not a speed
    hack: scene construction churns millions of container objects, and
    without it the collector pays that debt *inside* the timed window —
    at 50k motes a full collection scanning the live scene can double the
    measured per-frame cost depending on what ran earlier in the process.
    """
    from ..experiments.scenarios import large_scene

    deployment = large_scene(n_motes, seed=1, area_m2_per_mote=400.0)
    deployment.start_traffic()
    gc.collect()
    t0 = time.perf_counter()
    deployment.sim.run(sim_s)
    wall = time.perf_counter() - t0
    frames = sum(node.mac.stats.sent for node in deployment.nodes.values())
    assert frames > 0
    return {
        "wall_s": wall,
        "n": frames,
        "per_op_us": wall / frames * 1e6,
        "n_motes": n_motes,
        "sim_s": sim_s,
    }


def _cca_rig(n_signals: int = 20):
    from ..phy.frame import Frame
    from ..phy.medium import Medium, Signal, Transmission
    from ..phy.propagation import FixedRssMatrix
    from ..phy.radio import Radio
    from ..sim.rng import RngStreams
    from ..sim.simulator import Simulator

    sim = Simulator()
    rng = RngStreams(1)
    medium = Medium(sim, FixedRssMatrix(default_loss_db=50.0), rng=rng)
    rx = Radio(sim, medium, "rx", (0, 0), 2460.0, 0.0, rng=rng)
    for i in range(n_signals):
        transmission = Transmission(
            source=rx,
            frame=Frame("s", None, 60),
            channel_mhz=2460.0 + (i % 7),
            tx_power_dbm=0.0,
            start_time=0.0,
            end_time=1.0,
        )
        rx._add_signal(Signal(transmission, -60.0 - i))
    return rx


def _bench_cca_probe(n: int, brute: bool) -> Dict[str, Any]:
    rx = _cca_rig()
    acc = 0.0
    t0 = time.perf_counter()
    if brute:
        for _ in range(n):
            acc += brute_force_sensed_power_mw(rx)
    else:
        for _ in range(n):
            acc += rx.sensed_power_mw()
    wall = time.perf_counter() - t0
    assert acc > 0.0
    return {"wall_s": wall, "n": n, "per_op_us": wall / n * 1e6}


def _obs_mini_rig(obs=None):
    """A 2-node saturated link — the smallest world exercising every
    obs hook site (medium, CSMA, radio, adjustor guards)."""
    from ..net.deployment import Deployment
    from ..net.topology import LinkSpec, NetworkSpec, NodeSpec

    spec = NetworkSpec(
        label="N0",
        channel_mhz=2460.0,
        nodes=(
            NodeSpec("N0.s0", (0.0, 0.0), 0.0),
            NodeSpec("N0.r0", (1.5, 0.0), 0.0),
        ),
        links=(LinkSpec("N0.s0", "N0.r0"),),
    )
    deployment = Deployment([spec], seed=1, obs=obs)
    deployment.start_traffic()
    return deployment


def _bench_obs_mini_run(enabled: bool, sim_s: float = 0.5) -> Dict[str, Any]:
    """Wall time of a mini run with telemetry off (the guard-only path
    every ordinary run pays) or fully on (spans + gauge sampling)."""
    obs = None
    if enabled:
        from ..obs.recorder import Observability

        obs = Observability(sample_interval_s=0.01)
    deployment = _obs_mini_rig(obs)
    t0 = time.perf_counter()
    deployment.sim.run(sim_s)
    wall = time.perf_counter() - t0
    frames = deployment.node("N0.s0").mac.stats.sent
    assert frames > 0
    return {"wall_s": wall, "n": frames, "per_op_us": wall / frames * 1e6}


def _bench_routing_mini_run(sim_s: float = 8.0) -> Dict[str, Any]:
    """Routing-layer overhead: one 3×3 grid running HELLO discovery,
    tree join and convergecast, costed per *delivered* report — the
    full stack (router dispatch, table folds, forwarding queue) on top
    of the MAC/PHY the other benches isolate."""
    from ..mac.params import MacParams
    from ..net.deployment import Deployment
    from ..net.routing import RoutingFabric
    from ..net.topology import grid_topology

    deployment = Deployment(
        [grid_topology(3, 3, 30.0, 2460.0)],
        seed=1,
        saturate_senders=False,
        mac_params=MacParams(ack_enabled=True),
    )
    fabric = RoutingFabric(deployment)
    fabric.start()
    fabric.attach_convergecast(interval_s=0.25, start_delay_s=2.0)
    fabric.start_sources()
    t0 = time.perf_counter()
    deployment.sim.run(sim_s)
    wall = time.perf_counter() - t0
    delivered = sum(len(s.stats.delays_s) for s in fabric.sink_routers())
    assert delivered > 0
    return {"wall_s": wall, "n": delivered, "per_op_us": wall / delivered * 1e6}


def _bench_fig19_fast() -> Dict[str, Any]:
    from ..experiments.figures import fig19

    t0 = time.perf_counter()
    fig19.run(seed=1, fast=True)
    wall = time.perf_counter() - t0
    return {"wall_s": wall, "n": 1, "per_op_us": wall * 1e6}


# ----------------------------------------------------------------------
# Suite driver
# ----------------------------------------------------------------------
#: Repetitions per micro-benchmark; the *fastest* round is recorded.
#: Best-of-N is the standard jitter filter: scheduling hiccups and cache
#: misses only ever make a round slower, so the minimum is the most
#: repeatable estimate of the true cost — which is what a 25% CI gate
#: needs on benches whose per-op time is fractions of a microsecond.
BENCH_ROUNDS = 3


def _best_of(fn, rounds: int = BENCH_ROUNDS) -> Dict[str, Any]:
    best: Optional[Dict[str, Any]] = None
    for _ in range(rounds):
        result = fn()
        if best is None or result["wall_s"] < best["wall_s"]:
            best = result
    return best


def run_bench_suite(
    quick: bool = False,
    verbose: bool = True,
    only: Optional[Sequence[str]] = None,
) -> Dict[str, Any]:
    """Run the benchmark suite and return the serialisable result document.

    ``quick`` skips only the multi-second benches (the mini_run tiers and
    the end-to-end exhibit); the micro-benchmarks keep identical iteration
    counts in both modes so quick-mode CI numbers are directly comparable
    to a full-mode baseline.  ``only`` restricts the run to the named
    benches — a selected bench runs regardless of the quick gating (the
    CI ``scale`` job uses ``--only mini_run_50k_smoke``); unknown names
    raise ``KeyError``.
    """
    from .. import __version__

    micro = [
        ("event_queue", lambda: _bench_event_queue(200_000)),
        ("event_cancel_churn", lambda: _bench_event_cancel_churn(100_000)),
        ("medium_fanout", lambda: _bench_medium_fanout(400)),
        # The scale regime: same rig, 1000 receivers per frame.
        ("fanout_1k", lambda: _bench_medium_fanout(40, n_receivers=1000)),
        ("cca_probe_brute", lambda: _bench_cca_probe(100_000, brute=True)),
        ("cca_probe", lambda: _bench_cca_probe(200_000, brute=False)),
        # Telemetry guard cost: obs_off is what every ordinary run pays
        # (the baseline gate fails CI when the disabled path regresses
        # >25%); obs_on records the full-instrumentation cost per frame.
        ("obs_off_mini_run", lambda: _bench_obs_mini_run(False)),
        ("obs_on_mini_run", lambda: _bench_obs_mini_run(True)),
        # Routing stack cost per delivered convergecast report.
        ("routing_mini_run", lambda: _bench_routing_mini_run()),
    ]
    # Multi-second benches: one round each (per-op jitter averages out
    # over the run itself).  The third column flags benches excluded from
    # the *default* full suite (they only run when named via ``only``).
    # The mini_run tiers run best-of-2 with the first round doubling as a
    # warm-up: a tier run in a fresh process (the CI scale job's ``--only
    # mini_run_50k_smoke``) pays the process's first big page-fault wave
    # inside the timed window — the lazy stream/batch builds are the first
    # large allocations — at up to ~3x the warm cost a full-suite run
    # (already allocator-warm from the previous tier) records.  Best-of-2
    # makes the standalone and in-suite numbers agree and roughly halves
    # run-to-run jitter on contended machines.
    heavy = [
        ("mini_run_5k",
         lambda: _best_of(lambda: _bench_mini_run(5000), rounds=2), False),
        ("mini_run_50k",
         lambda: _best_of(lambda: _bench_mini_run(50_000), rounds=2), False),
        ("mini_run_50k_smoke",
         lambda: _best_of(lambda: _bench_mini_run(50_000, 0.005), rounds=2),
         False),
        ("fig19_fast", _bench_fig19_fast, False),
    ]

    plan = [(name, lambda fn=fn: _best_of(fn)) for name, fn in micro]
    if not quick:
        plan.extend((name, fn) for name, fn, opt_in in heavy if not opt_in)
    if only is not None:
        available = dict(plan)
        available.update((name, fn) for name, fn, _ in heavy)
        unknown = [name for name in only if name not in available]
        if unknown:
            raise KeyError(
                f"unknown bench(es) {unknown}; known: {sorted(available)}"
            )
        plan = [(name, available[name]) for name in only]

    doc: Dict[str, Any] = {
        "schema": SCHEMA_VERSION,
        "version": __version__,
        "quick": quick,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "calibration_s": calibrate(),
        "benches": {},
        "before": dict(BEFORE_OPTIMISATION),
        "before_note": BEFORE_NOTE,
    }
    for name, fn in plan:
        # Level the field between benches: collect the previous bench's
        # garbage now so its teardown is not billed to whichever timed
        # window the next full collection happens to land in (the same
        # hygiene pyperf applies between runs).
        gc.collect()
        result = fn()
        doc["benches"][name] = result
        if verbose:
            print(
                f"  {name:<20} {result['wall_s']*1e3:9.2f} ms total   "
                f"{result['per_op_us']:9.3f} us/op"
            )

    derived: Dict[str, float] = {}
    benches = doc["benches"]
    # Every derived metric is guarded on bench presence so --quick and
    # --only selections produce well-formed documents.
    if "cca_probe_brute" in benches and "cca_probe" in benches:
        derived["cca_probe_speedup"] = (
            benches["cca_probe_brute"]["per_op_us"]
            / benches["cca_probe"]["per_op_us"]
        )
    if "obs_on_mini_run" in benches and "obs_off_mini_run" in benches:
        derived["obs_enabled_overhead_ratio"] = (
            benches["obs_on_mini_run"]["per_op_us"]
            / benches["obs_off_mini_run"]["per_op_us"]
        )
    if "fig19_fast" in benches:
        derived["fig19_speedup_vs_seed"] = (
            BEFORE_OPTIMISATION["fig19_fast_wall_s"]
            / benches["fig19_fast"]["wall_s"]
        )
    # Per-mote throughput: wall time normalised by simulated time and
    # scene size — the unit the 50k scale target is stated in
    # (µs of wall per sent frame, per mote).
    for name in ("mini_run_5k", "mini_run_50k", "mini_run_50k_smoke"):
        bench = benches.get(name)
        if bench is not None and "n_motes" in bench:
            derived[f"{name}_per_mote_us"] = (
                bench["per_op_us"] / bench["n_motes"]
            )
    if "mini_run_5k_per_mote_us" in derived and "mini_run_50k_per_mote_us" in derived:
        derived["scale_per_mote_gain_50k_vs_5k"] = (
            derived["mini_run_5k_per_mote_us"]
            / derived["mini_run_50k_per_mote_us"]
        )
    doc["derived"] = derived
    if verbose:
        for key, value in derived.items():
            print(f"  {key:<28} {value:8.3f}")
    return doc


# ----------------------------------------------------------------------
# Baseline comparison (the CI gate)
# ----------------------------------------------------------------------
def load_baseline(path: str) -> Dict[str, Any]:
    """Load a benchmark document previously written by :func:`write_baseline`."""
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def check_against_baseline(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    tolerance: float = 0.25,
    verbose: bool = True,
) -> bool:
    """Compare a fresh suite run against a committed baseline.

    Each benchmark's wall time is first normalised by the calibration
    ratio (how fast this machine runs plain Python relative to the
    machine that produced the baseline), then compared per-op; a
    regression beyond ``tolerance`` (default +25 %) fails the check.
    Benchmarks absent from either document are skipped.
    """
    base_cal = baseline.get("calibration_s") or 1.0
    cur_cal = current.get("calibration_s") or 1.0
    machine_ratio = base_cal / cur_cal  # >1: this machine is faster
    ok = True
    lines: List[str] = []
    for name, base in sorted(baseline.get("benches", {}).items()):
        cur = current.get("benches", {}).get(name)
        if cur is None:
            continue
        normalised = cur["per_op_us"] * machine_ratio
        limit = base["per_op_us"] * (1.0 + tolerance)
        regressed = normalised > limit
        ok = ok and not regressed
        lines.append(
            f"  {name:<20} baseline {base['per_op_us']:9.3f} us/op   "
            f"now {normalised:9.3f} us/op (normalised)   "
            f"{'REGRESSED' if regressed else 'ok'}"
        )
    if verbose:
        print(f"machine calibration ratio: {machine_ratio:.3f}")
        for line in lines:
            print(line)
    return ok


def compare_against_baseline(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    verbose: bool = True,
) -> Dict[str, float]:
    """Per-bench normalised deltas against a baseline document (no gate).

    Returns ``{bench: delta}`` where ``delta`` is the fractional change of
    the machine-normalised per-op cost (+0.10 = 10 % slower than the
    baseline, -0.25 = 25 % faster).  Benches absent from either document
    are skipped; derived metrics present in both are printed for context.
    """
    base_cal = baseline.get("calibration_s") or 1.0
    cur_cal = current.get("calibration_s") or 1.0
    machine_ratio = base_cal / cur_cal
    deltas: Dict[str, float] = {}
    if verbose:
        print(f"machine calibration ratio: {machine_ratio:.3f}")
        base_when = baseline.get("generated_at", "unknown date")
        print(f"baseline generated: {base_when}")
    for name, base in sorted(baseline.get("benches", {}).items()):
        cur = current.get("benches", {}).get(name)
        if cur is None:
            continue
        normalised = cur["per_op_us"] * machine_ratio
        delta = normalised / base["per_op_us"] - 1.0
        deltas[name] = delta
        if verbose:
            print(
                f"  {name:<20} baseline {base['per_op_us']:11.3f} us/op   "
                f"now {normalised:11.3f} us/op   {delta:+7.1%}"
            )
    if verbose:
        base_derived = baseline.get("derived", {})
        for key, value in sorted(current.get("derived", {}).items()):
            if key in base_derived:
                print(
                    f"  {key:<28} baseline {base_derived[key]:8.3f}   "
                    f"now {value:8.3f}"
                )
    return deltas


def write_baseline(doc: Dict[str, Any], path: str) -> None:
    """Serialise a suite document as sorted, indented, newline-terminated
    JSON (the committed-baseline format).

    When ``path`` already holds a baseline, each bench of the new
    document gains a ``baseline`` field recording the *previous*
    measurement (per-op cost, its ``measured_at`` stamp and the machine
    calibration it was taken under), and every bench is stamped with the
    document's ``generated_at`` as its ``measured_at`` — so the committed
    file always carries one regeneration of history per bench.
    """
    previous: Optional[Dict[str, Any]] = None
    if os.path.exists(path):
        try:
            previous = load_baseline(path)
        except (OSError, ValueError):
            previous = None
    measured_at = doc.get("generated_at")
    for name, bench in doc.get("benches", {}).items():
        if measured_at is not None:
            bench["measured_at"] = measured_at
        if previous is not None:
            old = previous.get("benches", {}).get(name)
            if old is not None:
                bench["baseline"] = {
                    "per_op_us": old["per_op_us"],
                    "measured_at": old.get(
                        "measured_at", previous.get("generated_at")
                    ),
                    "calibration_s": previous.get("calibration_s"),
                }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
