"""Command-line interface.

::

    python -m repro list                       # all reproducible exhibits
    python -m repro run fig19 --fast --seed 2  # run one exhibit
    python -m repro report [--fast]            # regenerate EXPERIMENTS.md
"""

from __future__ import annotations

import argparse
import sys

from .experiments import report as report_module
from .experiments.registry import REGISTRY, get


def _cmd_list(_args) -> int:
    width = max(len(eid) for eid in REGISTRY)
    for eid, experiment in REGISTRY.items():
        print(f"{eid:<{width}}  {experiment.paper_exhibit:<14} {experiment.description}")
    return 0


def _cmd_run(args) -> int:
    try:
        experiment = get(args.experiment)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    table = experiment.run(seed=args.seed, fast=args.fast)
    print(table.to_text("{:.4g}"))
    if args.csv:
        print()
        print(table.to_csv())
    if args.chart:
        columns = table.columns()
        numeric = [
            c for c in columns
            if any(isinstance(row.get(c), (int, float)) for row in table.rows)
        ]
        if numeric:
            # Chart the dominant numeric column (largest magnitude): for
            # throughput exhibits that is the packets/s series.
            def peak(column):
                return max(
                    (abs(row[column]) for row in table.rows
                     if isinstance(row.get(column), (int, float))),
                    default=0.0,
                )

            best = max(numeric, key=peak)
            print()
            print(table.to_bar_chart(columns[0], best))
    return 0


def _cmd_report(args) -> int:
    argv = []
    if args.fast:
        argv.append("--fast")
    argv.extend(["--seed", str(args.seed), "--out", args.out])
    return report_module.main(argv)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Design of Non-orthogonal Multi-channel "
        "Sensor Networks' (ICDCS 2010)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list reproducible exhibits").set_defaults(
        func=_cmd_list
    )

    run_parser = sub.add_parser("run", help="run one exhibit")
    run_parser.add_argument("experiment", help="exhibit id, e.g. fig19")
    run_parser.add_argument("--seed", type=int, default=1)
    run_parser.add_argument("--fast", action="store_true")
    run_parser.add_argument("--csv", action="store_true", help="also print CSV")
    run_parser.add_argument(
        "--chart", action="store_true", help="also print an ASCII bar chart"
    )
    run_parser.set_defaults(func=_cmd_run)

    report_parser = sub.add_parser("report", help="regenerate EXPERIMENTS.md")
    report_parser.add_argument("--seed", type=int, default=1)
    report_parser.add_argument("--fast", action="store_true")
    report_parser.add_argument("--out", default="EXPERIMENTS.md")
    report_parser.set_defaults(func=_cmd_report)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
