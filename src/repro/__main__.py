"""Command-line interface.

::

    python -m repro list                       # all reproducible exhibits
    python -m repro run fig19 --fast --seed 2  # run one exhibit
    python -m repro report [--fast] [--seeds 1,2 --jobs 4]
                                               # regenerate EXPERIMENTS.md
    python -m repro campaign run --fast --seeds 1,2,3 --jobs 4
                                               # batch-run exhibits x seeds
    python -m repro campaign status            # result-cache inventory
    python -m repro campaign clean             # drop the result cache
    python -m repro serve --port 8642 --jobs 4 # long-running campaign
                                               # server (HTTP/JSON, shared
                                               # crash-safe result cache)
    python -m repro submit --ids fig04 --seeds 1,2 --stream
                                               # submit a campaign to a
                                               # running server and stream
                                               # NDJSON progress events
    python -m repro perf profile fig19 --fast  # cProfile top-N hotspots
    python -m repro perf bench                 # kernel micro-benchmarks
                                               # (writes BENCH_kernel.json)
    python -m repro perf bench --quick --check BENCH_kernel.json
                                               # CI regression gate
    python -m repro check diff fig04 --fast    # fast path vs reference
                                               # path, trace-diffed
    python -m repro check determinism fig04 --fast --jobs 2
                                               # same-seed replay + serial
                                               # vs parallel campaign
    python -m repro obs summary fig04 --fast   # per-node/per-channel metrics
    python -m repro obs timeline fig04 -o out.json
                                               # Chrome trace_event export
                                               # (open at ui.perfetto.dev)
    python -m repro obs export fig04 -o run.jsonl
                                               # streaming JSONL telemetry
    python -m repro obs tail run.jsonl -n 20   # inspect an export
    python -m repro obs top --url http://127.0.0.1:8642
                                               # live dashboard over a
                                               # running campaign server
                                               # (polls /metrics + events)
    python -m repro obs timeline --campaign c0001-... --url http://...
                                               # merged server+worker
                                               # Chrome trace of a campaign
    python -m repro obs summary .repro-server/events.jsonl
                                               # post-hoc roll-up of a
                                               # server's events sink
"""

from __future__ import annotations

import argparse
import json
import sys

from .experiments import report as report_module
from .experiments.registry import REGISTRY, get
from .experiments.report import parse_seeds


def _cmd_list(_args) -> int:
    width = max(len(eid) for eid in REGISTRY)
    for eid, experiment in REGISTRY.items():
        print(f"{eid:<{width}}  {experiment.paper_exhibit:<14} {experiment.description}")
    return 0


def _cmd_run(args) -> int:
    try:
        experiment = get(args.experiment)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    table = experiment.run(seed=args.seed, fast=args.fast)
    print(table.to_text("{:.4g}"))
    if args.csv:
        print()
        print(table.to_csv())
    if args.chart:
        columns = table.columns()
        numeric = [
            c for c in columns
            if any(isinstance(row.get(c), (int, float)) for row in table.rows)
        ]
        if numeric:
            # Chart the dominant numeric column (largest magnitude): for
            # throughput exhibits that is the packets/s series.
            def peak(column):
                return max(
                    (abs(row[column]) for row in table.rows
                     if isinstance(row.get(column), (int, float))),
                    default=0.0,
                )

            best = max(numeric, key=peak)
            print()
            print(table.to_bar_chart(columns[0], best))
    return 0


def _cmd_report(args) -> int:
    argv = []
    if args.fast:
        argv.append("--fast")
    argv.extend(["--seed", str(args.seed), "--out", args.out])
    if args.seeds:
        argv.extend(["--seeds", ",".join(str(s) for s in args.seeds)])
    argv.extend(["--jobs", str(args.jobs)])
    if args.no_cache:
        argv.append("--no-cache")
    if args.cache_dir:
        argv.extend(["--cache-dir", args.cache_dir])
    if args.obs:
        argv.append("--obs")
    return report_module.main(argv)


def _campaign_cache(args):
    from .campaign import DEFAULT_CACHE_DIR, ResultCache

    return ResultCache(args.cache_dir or DEFAULT_CACHE_DIR)


def _cmd_campaign_run(args) -> int:
    from .campaign import ProgressPrinter, expand_jobs, run_campaign

    try:
        specs = expand_jobs(args.ids or None, args.seeds, args.fast,
                            list(REGISTRY))
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    result = run_campaign(
        specs,
        jobs=args.jobs,
        cache=False if args.no_cache else _campaign_cache(args),
        timeout_s=args.timeout,
        retries=args.retries,
        progress=ProgressPrinter(enabled=not args.quiet),
        obs=args.obs,
    )
    if args.aggregate:
        for eid, table in result.aggregated().items():
            print(table.to_text("{:.4g}"))
            print()
    # The final summary line is emitted by ProgressPrinter.finish()
    # (unconditionally, even under --quiet), so it is not repeated here.
    for failure in result.failures():
        print(f"FAILED {failure.spec} after {failure.attempts} attempts:\n"
              f"{failure.error}", file=sys.stderr)
    return 0 if result.ok else 1


def _cmd_campaign_status(args) -> int:
    status = _campaign_cache(args).status()
    print(f"cache root        : {status['root']}")
    print(f"repro version     : {status['version']}")
    print(f"entries           : {status['entries']} "
          f"({status['current_version_entries']} at current version)")
    print(f"size              : {status['bytes'] / 1024:.1f} KiB")
    if status["by_exhibit"]:
        width = max(len(eid) for eid in status["by_exhibit"])
        for eid, count in status["by_exhibit"].items():
            print(f"  {eid:<{width}}  {count} seed(s)")
    return 0


def _cmd_campaign_clean(args) -> int:
    removed = _campaign_cache(args).clear()
    print(f"removed {removed} cache entr{'y' if removed == 1 else 'ies'}")
    return 0


def _cmd_serve(args) -> int:
    from .campaign.server import CampaignServer, ServerConfig

    config = ServerConfig(
        host=args.host,
        port=args.port,
        state_dir=args.state_dir,
        cache_dir=args.cache_dir,
        jobs=args.jobs,
        retries=args.retries,
        timeout_s=args.timeout,
        cache_max_bytes=(int(args.cache_max_mb * 2 ** 20)
                         if args.cache_max_mb else None),
        queue_shards=args.queue_shards,
        events_max_bytes=int(args.events_max_mb * 2 ** 20),
        profile_interval_s=args.profile_interval,
    )
    server = CampaignServer(config)

    def announce(bound: CampaignServer) -> None:
        print(
            f"repro campaign server on http://{config.host}:{bound.port} "
            f"(jobs={config.jobs}, state={config.state_dir}, "
            f"cache={config.cache_dir or 'default'})",
            file=sys.stderr, flush=True,
        )

    server.announce = announce
    server.run()
    print("repro campaign server: drained and stopped", file=sys.stderr)
    return 0


def _parse_params(pairs):
    params = {}
    for pair in pairs or []:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"--param needs key=value, got {pair!r}")
        try:
            import json as _json

            params[key] = _json.loads(raw)
        except ValueError:
            params[key] = raw  # bare string value
    return params


def _cmd_submit(args) -> int:
    from .campaign.client import CampaignClient, ServerError
    from .experiments.results import ResultTable

    client = CampaignClient(args.url, timeout_s=args.http_timeout)
    try:
        doc = client.submit(
            ids=args.ids or None,
            seeds=args.seeds,
            fast=args.fast,
            params=_parse_params(args.param),
            obs=args.obs,
        )
        campaign_id = doc["id"]
        print(f"submitted {campaign_id}: {doc['total']} job(s)")
        if args.no_wait:
            return 0
        if args.stream:
            for event in client.stream_events(campaign_id):
                print(json.dumps(event, sort_keys=True))
            doc = client.campaign(campaign_id)
        else:
            doc = client.wait(campaign_id, timeout_s=args.wait_timeout)
    except ServerError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    except (ConnectionError, OSError) as exc:
        print(f"cannot reach {args.url}: {exc}", file=sys.stderr)
        return 2
    result = doc.get("result") or {}
    print(
        f"campaign {doc['id']}: {doc['completed']}/{doc['total']} ok, "
        f"{doc['failed']} failed, cache {doc['cache_hits']} hit / "
        f"{doc['cache_misses']} miss, {doc['elapsed_s']:.1f}s"
    )
    if args.aggregate:
        for eid in sorted(result.get("aggregated", {})):
            print()
            print(ResultTable.from_json(
                result["aggregated"][eid]).to_text("{:.4g}"))
    for failure in result.get("failures", []):
        print(f"FAILED {failure['spec']} after {failure['attempts']} "
              f"attempts:\n{failure['error']}", file=sys.stderr)
    return 0 if doc["failed"] == 0 else 1


def _cmd_perf_profile(args) -> int:
    from .perf import profile_exhibit, profile_scene

    if (args.experiment is None) == (args.scene is None):
        print("give either an exhibit id or --scene N", file=sys.stderr)
        return 2
    try:
        if args.scene is not None:
            report = profile_scene(
                args.scene,
                sim_s=args.sim_s,
                seed=args.seed,
                top=args.top,
                sort=args.sort,
                out=args.out,
                json_out=args.json,
            )
        else:
            report = profile_exhibit(
                args.experiment,
                seed=args.seed,
                fast=args.fast,
                top=args.top,
                sort=args.sort,
                out=args.out,
                json_out=args.json,
            )
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    print(report, end="")
    return 0


def _cmd_perf_bench(args) -> int:
    from .perf import check_against_baseline, load_baseline, run_bench_suite
    from .perf.bench import compare_against_baseline, write_baseline

    baseline = None
    if args.check:
        # Load before running the suite: a missing baseline should fail in
        # milliseconds, not after a multi-second benchmark run.
        try:
            baseline = load_baseline(args.check)
        except FileNotFoundError:
            print(f"baseline {args.check!r} not found", file=sys.stderr)
            return 2
    compare_to = None
    if args.compare:
        try:
            compare_to = load_baseline(args.compare)
        except FileNotFoundError:
            print(f"baseline {args.compare!r} not found", file=sys.stderr)
            return 2
    print(f"kernel benchmark suite ({'quick' if args.quick else 'full'} profile)")
    try:
        doc = run_bench_suite(quick=args.quick, only=args.only)
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    if compare_to is not None:
        print(f"per-bench deltas vs {args.compare}:")
        compare_against_baseline(doc, compare_to)
    if baseline is not None:
        ok = check_against_baseline(doc, baseline, tolerance=args.tolerance)
        if not ok:
            print(
                f"FAIL: kernel benchmark regressed beyond "
                f"{args.tolerance:.0%} of {args.check}",
                file=sys.stderr,
            )
            return 1
        print("benchmarks within tolerance of baseline")
        if not args.out:
            return 0
    out_path = args.out or "BENCH_kernel.json"
    write_baseline(doc, out_path)
    print(f"wrote {out_path}")
    return 0


def _cmd_check_diff(args) -> int:
    from .check.oracle import diff_exhibit

    try:
        report = diff_exhibit(
            args.experiment,
            seed=args.seed,
            fast=args.fast,
            invariants=not args.no_invariants,
            band_sharding=args.band_sharding,
        )
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    print(report.describe())
    return 0 if report.ok else 1


def _cmd_check_determinism(args) -> int:
    from .check.determinism import check_determinism

    try:
        report = check_determinism(
            args.experiment,
            seed=args.seed,
            fast=args.fast,
            jobs=args.jobs,
        )
    except KeyError as exc:
        print(exc.args[0], file=sys.stderr)
        return 2
    print(report.describe())
    return 0 if report.ok else 1


def _cmd_obs_summary(args) -> int:
    from .obs.cli import cmd_summary

    return cmd_summary(args)


def _cmd_obs_timeline(args) -> int:
    from .obs.cli import cmd_timeline

    return cmd_timeline(args)


def _cmd_obs_export(args) -> int:
    from .obs.cli import cmd_export

    return cmd_export(args)


def _cmd_obs_tail(args) -> int:
    from .obs.cli import cmd_tail

    return cmd_tail(args)


def _cmd_obs_top(args) -> int:
    from .obs.cli import cmd_top

    return cmd_top(args)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Design of Non-orthogonal Multi-channel "
        "Sensor Networks' (ICDCS 2010)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list reproducible exhibits").set_defaults(
        func=_cmd_list
    )

    run_parser = sub.add_parser("run", help="run one exhibit")
    run_parser.add_argument("experiment", help="exhibit id, e.g. fig19")
    run_parser.add_argument("--seed", type=int, default=1)
    run_parser.add_argument("--fast", action="store_true")
    run_parser.add_argument("--csv", action="store_true", help="also print CSV")
    run_parser.add_argument(
        "--chart", action="store_true", help="also print an ASCII bar chart"
    )
    run_parser.set_defaults(func=_cmd_run)

    report_parser = sub.add_parser("report", help="regenerate EXPERIMENTS.md")
    report_parser.add_argument("--seed", type=int, default=1)
    report_parser.add_argument("--seeds", type=parse_seeds, default=None,
                               help="multi-seed report: comma list (1,2,3) "
                                    "or range (1-5); tables become "
                                    "mean ± 95%% CI")
    report_parser.add_argument("--jobs", type=int, default=1,
                               help="parallel worker processes")
    report_parser.add_argument("--fast", action="store_true")
    report_parser.add_argument("--no-cache", action="store_true",
                               help="bypass the result cache")
    report_parser.add_argument("--cache-dir", default=None)
    report_parser.add_argument("--out", default="EXPERIMENTS.md")
    report_parser.add_argument("--obs", action="store_true",
                               help="capture per-job telemetry snapshots "
                                    "(adds a footer column)")
    report_parser.set_defaults(func=_cmd_report)

    campaign_parser = sub.add_parser(
        "campaign", help="batch-run exhibits x seeds (parallel, cached)"
    )
    campaign_sub = campaign_parser.add_subparsers(
        dest="campaign_command", required=True
    )

    c_run = campaign_sub.add_parser("run", help="run a campaign")
    c_run.add_argument("--ids", nargs="*", default=None,
                       help="exhibit ids (default: all registered)")
    c_run.add_argument("--seeds", type=parse_seeds, default=[1],
                       help="comma list (1,2,3) or range (1-5); default 1")
    c_run.add_argument("--jobs", type=int, default=1,
                       help="parallel worker processes")
    c_run.add_argument("--fast", action="store_true")
    c_run.add_argument("--timeout", type=float, default=None,
                       help="per-job wall-clock budget in seconds")
    c_run.add_argument("--retries", type=int, default=2,
                       help="retry attempts per failed job (default 2)")
    c_run.add_argument("--no-cache", action="store_true")
    c_run.add_argument("--cache-dir", default=None)
    c_run.add_argument("--aggregate", action="store_true",
                       help="print per-exhibit mean ± CI tables")
    c_run.add_argument("--quiet", action="store_true",
                       help="suppress the live progress line")
    c_run.add_argument("--obs", action="store_true",
                       help="capture per-job telemetry snapshots into the "
                            "result cache")
    c_run.set_defaults(func=_cmd_campaign_run)

    c_status = campaign_sub.add_parser("status", help="result-cache inventory")
    c_status.add_argument("--cache-dir", default=None)
    c_status.set_defaults(func=_cmd_campaign_status)

    c_clean = campaign_sub.add_parser("clean", help="drop the result cache")
    c_clean.add_argument("--cache-dir", default=None)
    c_clean.set_defaults(func=_cmd_campaign_clean)

    serve_parser = sub.add_parser(
        "serve", help="run the long-running campaign server (HTTP/JSON)"
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument("--port", type=int, default=8642)
    serve_parser.add_argument("--jobs", type=int, default=2,
                              help="worker processes (0 = in-process "
                                   "threads, no per-job timeouts)")
    serve_parser.add_argument("--state-dir", default=".repro-server",
                              help="queue journal directory "
                                   "(default .repro-server)")
    serve_parser.add_argument("--cache-dir", default=None,
                              help="shared result cache (default "
                                   ".repro-cache, shared with one-shot "
                                   "campaign runs)")
    serve_parser.add_argument("--cache-max-mb", type=float, default=None,
                              help="LRU size budget for the shared cache")
    serve_parser.add_argument("--timeout", type=float, default=None,
                              help="per-job wall-clock budget in seconds")
    serve_parser.add_argument("--retries", type=int, default=2)
    serve_parser.add_argument("--queue-shards", type=int, default=4,
                              help="journal shard files (default 4)")
    serve_parser.add_argument("--events-max-mb", type=float, default=4.0,
                              help="rotate the server events JSONL past "
                                   "this size (default 4)")
    serve_parser.add_argument("--profile-interval", type=float, default=5.0,
                              help="flight-recorder sampling period in "
                                   "seconds (/debug/profile; default 5)")
    serve_parser.set_defaults(func=_cmd_serve)

    submit_parser = sub.add_parser(
        "submit", help="submit a campaign to a running server"
    )
    submit_parser.add_argument("--url", default="http://127.0.0.1:8642")
    submit_parser.add_argument("--ids", nargs="*", default=None,
                               help="exhibit ids (default: all registered)")
    submit_parser.add_argument("--seeds", type=parse_seeds, default=[1],
                               help="comma list (1,2,3) or range (1-5)")
    submit_parser.add_argument("--fast", action="store_true")
    submit_parser.add_argument("--param", action="append", default=None,
                               metavar="KEY=VALUE",
                               help="extra exhibit parameter (repeatable; "
                                    "value parsed as JSON, else string)")
    submit_parser.add_argument("--obs", action="store_true",
                               help="run jobs under worker observability "
                                    "(metrics + sim spans ship back into "
                                    "the server's /metrics and trace)")
    submit_parser.add_argument("--stream", action="store_true",
                               help="stream NDJSON progress events")
    submit_parser.add_argument("--no-wait", action="store_true",
                               help="submit and exit without waiting")
    submit_parser.add_argument("--aggregate", action="store_true",
                               help="print per-exhibit mean ± CI tables")
    submit_parser.add_argument("--wait-timeout", type=float, default=None,
                               help="give up polling after this many seconds")
    submit_parser.add_argument("--http-timeout", type=float, default=600.0,
                               help="per-request socket timeout "
                                    "(default 600)")
    submit_parser.set_defaults(func=_cmd_submit)

    perf_parser = sub.add_parser(
        "perf", help="profiling and kernel benchmarks"
    )
    perf_sub = perf_parser.add_subparsers(dest="perf_command", required=True)

    p_profile = perf_sub.add_parser(
        "profile",
        help="run one exhibit (or a synthetic --scene) under cProfile",
    )
    p_profile.add_argument("experiment", nargs="?", default=None,
                           help="exhibit id, e.g. fig19 (omit with --scene)")
    p_profile.add_argument("--scene", type=int, default=None, metavar="N",
                           help="profile a synthetic N-mote dense scene "
                                "instead of an exhibit")
    p_profile.add_argument("--sim-s", type=float, default=0.02,
                           help="simulated seconds for --scene "
                                "(default 0.02)")
    p_profile.add_argument("--seed", type=int, default=1)
    p_profile.add_argument("--fast", action="store_true")
    p_profile.add_argument("--top", type=int, default=20,
                           help="number of hotspots to print (default 20)")
    p_profile.add_argument("--sort", choices=("tottime", "cumtime", "ncalls"),
                           default="tottime")
    p_profile.add_argument("--out", default=None,
                           help="also dump raw pstats to this path")
    p_profile.add_argument("--json", default=None, metavar="PATH",
                           help="also write a structured top-N snapshot "
                                "(diffable across PRs) to this path")
    p_profile.set_defaults(func=_cmd_perf_profile)

    p_bench = perf_sub.add_parser(
        "bench", help="kernel micro-benchmarks (writes BENCH_kernel.json)"
    )
    p_bench.add_argument("--quick", action="store_true",
                         help="smaller iteration counts (CI profile)")
    p_bench.add_argument("--out", default=None,
                         help="output JSON path (default BENCH_kernel.json)")
    p_bench.add_argument("--check", default=None,
                         help="compare against a committed baseline JSON "
                              "instead of writing; non-zero exit on "
                              "regression")
    p_bench.add_argument("--tolerance", type=float, default=0.25,
                         help="allowed fractional wall-time regression "
                              "(default 0.25)")
    p_bench.add_argument("--only", nargs="+", default=None, metavar="BENCH",
                         help="run only the named benches (overrides the "
                              "quick gating; e.g. --only mini_run_50k_smoke)")
    p_bench.add_argument("--compare", default=None, metavar="PATH",
                         help="print per-bench normalised deltas against "
                              "this baseline JSON (informational, no gate)")
    p_bench.set_defaults(func=_cmd_perf_bench)

    check_parser = sub.add_parser(
        "check", help="correctness oracles (diff, determinism)"
    )
    check_sub = check_parser.add_subparsers(dest="check_command", required=True)

    k_diff = check_sub.add_parser(
        "diff",
        help="run one exhibit on the fast path and on the brute-force "
             "reference path, then diff the traces event by event",
    )
    k_diff.add_argument("experiment", help="exhibit id, e.g. fig04")
    k_diff.add_argument("--seed", type=int, default=1)
    k_diff.add_argument("--fast", action="store_true")
    k_diff.add_argument("--no-invariants", action="store_true",
                        help="skip runtime invariant checking during the "
                             "two runs")
    k_diff.add_argument("--band-sharding", action="store_true",
                        help="enable band-sharded fan-out on the fast leg "
                             "(gates the sharded configuration against "
                             "the scalar reference)")
    k_diff.set_defaults(func=_cmd_check_diff)

    k_det = check_sub.add_parser(
        "determinism",
        help="replay one exhibit twice with the same seed, and run it "
             "serial vs parallel through the campaign engine; all result "
             "JSON must be byte-identical",
    )
    k_det.add_argument("experiment", help="exhibit id, e.g. fig04")
    k_det.add_argument("--seed", type=int, default=1)
    k_det.add_argument("--fast", action="store_true")
    k_det.add_argument("--jobs", type=int, default=2,
                       help="parallel worker count for the campaign leg "
                            "(default 2)")
    k_det.set_defaults(func=_cmd_check_determinism)

    obs_parser = sub.add_parser(
        "obs", help="run telemetry: metric summaries, timelines, exports"
    )
    obs_sub = obs_parser.add_subparsers(dest="obs_command", required=True)

    def _obs_run_args(p) -> None:
        p.add_argument("experiment", help="exhibit id, e.g. fig04")
        p.add_argument("--seed", type=int, default=1)
        p.add_argument("--fast", action="store_true")
        p.add_argument("--sample-interval", type=float, default=0.01,
                       help="gauge sampling period in sim seconds "
                            "(default 0.01)")

    o_summary = obs_sub.add_parser(
        "summary", help="run one exhibit and print per-node/per-channel "
                        "metric tables — or, given a *.jsonl path, roll "
                        "up a campaign server's events export offline"
    )
    _obs_run_args(o_summary)
    o_summary.set_defaults(func=_cmd_obs_summary)

    o_timeline = obs_sub.add_parser(
        "timeline", help="run one exhibit and export a Chrome trace_event "
                         "timeline (open at ui.perfetto.dev); with "
                         "--campaign, fetch the merged server+worker trace "
                         "of a server campaign instead"
    )
    o_timeline.add_argument("experiment", nargs="?", default=None,
                            help="exhibit id, e.g. fig04 (omit with "
                                 "--campaign)")
    o_timeline.add_argument("--seed", type=int, default=1)
    o_timeline.add_argument("--fast", action="store_true")
    o_timeline.add_argument("--sample-interval", type=float, default=0.01,
                            help="gauge sampling period in sim seconds "
                                 "(default 0.01)")
    o_timeline.add_argument("--campaign", default=None, metavar="ID",
                            help="fetch this campaign's merged trace from "
                                 "a running server (--url)")
    o_timeline.add_argument("--url", default="http://127.0.0.1:8642",
                            help="campaign server base URL "
                                 "(with --campaign)")
    o_timeline.add_argument("-o", "--out", default="timeline.json")
    o_timeline.set_defaults(func=_cmd_obs_timeline)

    o_export = obs_sub.add_parser(
        "export", help="run one exhibit and stream telemetry records to a "
                       "JSONL file (manifest first)"
    )
    _obs_run_args(o_export)
    o_export.add_argument("-o", "--out", default="obs.jsonl")
    o_export.set_defaults(func=_cmd_obs_export)

    o_tail = obs_sub.add_parser(
        "tail", help="print the trailing records of a JSONL export"
    )
    o_tail.add_argument("path", help="JSONL file written by 'obs export'")
    o_tail.add_argument("-n", "--lines", type=int, default=10)
    o_tail.add_argument("--kind", default=None,
                        help="only records of this kind "
                             "(manifest/span/point/counter)")
    o_tail.set_defaults(func=_cmd_obs_tail)

    o_top = obs_sub.add_parser(
        "top", help="live ANSI dashboard over a running campaign server "
                    "(polls /metrics and the newest campaign's events)"
    )
    o_top.add_argument("--url", default="http://127.0.0.1:8642",
                       help="campaign server base URL")
    o_top.add_argument("--interval", type=float, default=2.0,
                       help="poll period in seconds (default 2)")
    o_top.add_argument("--once", action="store_true",
                       help="render a single frame and exit (no ANSI "
                            "clear; scriptable)")
    o_top.add_argument("--width", type=int, default=78,
                       help="frame width in columns (default 78)")
    o_top.set_defaults(func=_cmd_obs_top)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
