"""The paper's contribution: DCN and its companions.

- :class:`~repro.core.adjustor.CcaAdjustor` — the two-phase threshold logic
  (Eqs. 2-4).
- :class:`~repro.core.dcn.DcnCcaPolicy` — DCN as a drop-in CCA policy.
- :class:`~repro.core.recovery.PacketRecovery` — Section VII-A packet
  recovery model.
- :class:`~repro.core.oracle.OracleCcaPolicy` — Section VII-C idealised
  upper bound (ablation only).
"""

from .adjustor import AdjustorConfig, CcaAdjustor
from .carrier_sense import CarrierSenseCcaPolicy
from .dcn import DcnCcaPolicy
from .oracle import OracleCcaPolicy
from .recovery import (
    OnlineRecoveryController,
    PacketRecovery,
    RecoveryConfig,
    RecoveryStats,
)

__all__ = [
    "AdjustorConfig",
    "CcaAdjustor",
    "CarrierSenseCcaPolicy",
    "DcnCcaPolicy",
    "OnlineRecoveryController",
    "OracleCcaPolicy",
    "PacketRecovery",
    "RecoveryConfig",
    "RecoveryStats",
]
