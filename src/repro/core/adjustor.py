"""The CCA-Adjustor: the heart of DCN (paper Section V-B).

The adjustor maintains the CCA threshold in two phases:

**Initializing phase** (duration ``T_I``, paper: 1 s).  The node has just
booted; an aggressive threshold could cause co-channel collisions, so the
node gathers evidence while carrier-sensing with the conservative default
threshold.  It records

- ``S_i`` — the RSSI of every co-channel packet it overhears, and
- ``P_j`` — the in-channel sensing power, sampled every millisecond
  (this includes inter-channel leakage).

At the end of the phase the threshold is set per Eq. 2:

    ``CCA_I = min( min_i S_i , max_j P_j )``

i.e. the smaller of (weakest co-channel packet) and (strongest observed
in-channel energy).  Whichever is smaller, the threshold stays below every
co-channel packet while sitting as high as the evidence allows — filling the
gap between the inter-channel and co-channel interference clusters of the
paper's Fig. 12.

**Updating phase.**  Continuous in-channel sensing costs CPU, so the node
now only looks at the RSSI of overheard co-channel packets (free: the radio
stamps RSSI on every received frame).

- *Case I* (Eq. 3): a packet arrives with RSSI below the current threshold →
  lower the threshold to that RSSI immediately.
- *Case II* (Eq. 4): no Case-I update for ``T_U`` seconds (paper: 3 s) →
  set the threshold to the minimum RSSI recorded over the last ``T_U``
  seconds.  This is what lets the threshold *relax upward* again after a
  weak co-channel transmitter goes quiet or moves.

A configurable safety margin (dB) is subtracted from every derived
threshold; the paper uses none (margin 0).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple

from ..phy.constants import DEFAULT_CCA_THRESHOLD_DBM
from ..sim.simulator import Simulator
from ..sim.units import MILLISECOND

__all__ = ["AdjustorConfig", "CcaAdjustor"]


@dataclass(frozen=True)
class AdjustorConfig:
    """Tunables of the CCA-Adjustor (defaults follow the paper)."""

    #: Initializing-phase duration T_I.
    t_init_s: float = 1.0
    #: Updating-phase window T_U.
    t_update_s: float = 3.0
    #: In-channel power sampling period during the initializing phase.
    sense_interval_s: float = 1.0 * MILLISECOND
    #: Threshold used while initializing (the conservative ZigBee default).
    initial_threshold_dbm: float = DEFAULT_CCA_THRESHOLD_DBM
    #: Safety margin subtracted from every derived threshold.
    margin_db: float = 0.0

    def __post_init__(self) -> None:
        if self.t_init_s < 0:
            raise ValueError("t_init_s must be >= 0")
        if self.t_update_s <= 0:
            raise ValueError("t_update_s must be > 0")
        if self.sense_interval_s <= 0:
            raise ValueError("sense_interval_s must be > 0")


class CcaAdjustor:
    """Phase machine computing the dynamic CCA threshold.

    The adjustor is deliberately independent of the MAC: it consumes
    ``observe_rssi(time, rssi)`` and (during init) ``observe_sense(power)``
    events and exposes :meth:`threshold_dbm`.  :class:`repro.core.dcn.
    DcnCcaPolicy` wires it to a live radio/MAC.
    """

    def __init__(self, sim: Simulator, config: Optional[AdjustorConfig] = None,
                 owner: str = "") -> None:
        self.sim = sim
        self.config = config if config is not None else AdjustorConfig()
        #: Node name for telemetry labelling (empty for bare adjustors).
        self.owner = owner
        self._threshold_dbm = self.config.initial_threshold_dbm
        self._initializing = True
        self._init_min_rssi: Optional[float] = None
        self._init_max_sense: Optional[float] = None
        #: (time, rssi) co-channel observations made during the
        #: initializing phase; they seed the Case-II window at the
        #: phase boundary (see :meth:`finish_initialization`).
        self._init_observations: List[Tuple[float, float]] = []
        #: (time, rssi) records within the updating window.
        self._window: Deque[Tuple[float, float]] = deque()
        # A node can boot mid-simulation (late joiner): both the
        # Case-II reference time and the threshold trajectory must
        # anchor at the *construction* time, not at t = 0, or
        # ``history()`` shows a phantom pre-boot threshold and the
        # first quiet-window measurement spans time the node never
        # observed.
        self._last_case1_time = sim.now
        self._history: List[Tuple[float, float]] = [(sim.now, self._threshold_dbm)]
        if sim.obs is not None:
            sim.obs.on_threshold(self.owner or "adjustor", self._threshold_dbm)

    # ------------------------------------------------------------------
    # Outputs
    # ------------------------------------------------------------------
    def threshold_dbm(self) -> float:
        return self._threshold_dbm

    @property
    def initializing(self) -> bool:
        return self._initializing

    def history(self) -> List[Tuple[float, float]]:
        """Threshold trajectory: ``(time, threshold)`` at each change."""
        return list(self._history)

    # ------------------------------------------------------------------
    # Inputs
    # ------------------------------------------------------------------
    def observe_rssi(self, rssi_dbm: float) -> None:
        """A co-channel packet was overheard with this RSSI."""
        now = self.sim.now
        checks = self.sim.checks
        if checks is not None:
            checks.on_adjustor_rssi(self, rssi_dbm)
        if self._initializing:
            if self._init_min_rssi is None or rssi_dbm < self._init_min_rssi:
                self._init_min_rssi = rssi_dbm
            # Keep the timestamped observation: it seeds the Case-II
            # window at the phase boundary (finish_initialization), so
            # evidence gathered while initializing is not thrown away.
            self._init_observations.append((now, rssi_dbm))
            return
        self._window.append((now, rssi_dbm))
        self._expire_window(now)
        margin = self.config.margin_db
        if rssi_dbm - margin < self._threshold_dbm:
            # Case I (Eq. 3): immediate lowering.
            self._set_threshold(rssi_dbm - margin)
            self._last_case1_time = now

    def observe_sense(self, power_dbm: float) -> None:
        """An in-channel power sample (initializing phase only)."""
        if not self._initializing:
            return
        if self._init_max_sense is None or power_dbm > self._init_max_sense:
            self._init_max_sense = power_dbm

    def finish_initialization(self) -> None:
        """End of the initializing phase: apply Eq. 2."""
        if not self._initializing:
            return
        self._initializing = False
        candidates = [
            value
            for value in (self._init_min_rssi, self._init_max_sense)
            if value is not None
        ]
        if candidates:
            self._set_threshold(min(candidates) - self.config.margin_db)
        # else: no evidence at all — keep the conservative default.
        now = self.sim.now
        self._last_case1_time = now
        # Seed the Case-II window with the co-channel packets overheard
        # while initializing.  Without this, a weak neighbour that was
        # *only* heard during the initializing phase contributes nothing
        # to the first quiet-window minimum, and the very first Case-II
        # update can relax the threshold *above* that neighbour's RSSI —
        # re-introducing the starvation the adjustor exists to prevent.
        #
        # Entries are re-stamped at the phase-boundary time: with their
        # original timestamps every init observation would sit at or
        # before ``now``, so the first effective periodic_update (at
        # ``now + T_U``, horizon ``now``) would expire all of them before
        # the minimum is taken (expiry is strict ``< horizon``, so
        # entries stamped exactly at ``now`` survive that first window
        # and no longer).  Only observations from the trailing ``T_U``
        # of the initializing phase are carried over — older ones would
        # have expired already had the updating phase been running.
        horizon = now - self.config.t_update_s
        for obs_time, rssi in self._init_observations:
            if obs_time >= horizon:
                self._window.append((now, rssi))
        self._init_observations.clear()

    def periodic_update(self) -> None:
        """Case II (Eq. 4), to be invoked every ``T_U`` seconds."""
        if self._initializing:
            return
        now = self.sim.now
        if now - self._last_case1_time < self.config.t_update_s - 1e-9:
            return
        self._expire_window(now)
        if not self._window:
            return
        window_min = min(rssi for _, rssi in self._window)
        self._set_threshold(window_min - self.config.margin_db)

    # ------------------------------------------------------------------
    def _expire_window(self, now: float) -> None:
        horizon = now - self.config.t_update_s
        while self._window and self._window[0][0] < horizon:
            self._window.popleft()

    def _set_threshold(self, value_dbm: float) -> None:
        if value_dbm == self._threshold_dbm:
            return
        self._threshold_dbm = value_dbm
        self._history.append((self.sim.now, value_dbm))
        self.sim.trace.emit("cca_threshold", value=round(value_dbm, 2))
        obs = self.sim.obs
        if obs is not None:
            obs.on_threshold(self.owner or "adjustor", value_dbm)
        checks = self.sim.checks
        if checks is not None:
            checks.on_adjustor_threshold(self, value_dbm)
