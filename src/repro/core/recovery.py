"""Packet recovery for slightly-corrupted packets (paper Section VII-A).

The paper observes that under severe inter-channel interference most
CRC-failed packets carry only a small fraction of error bits (Fig. 29: 87 %
of failures have <= 10 % errored bits) and that a PPR-style partial packet
recovery scheme could therefore rescue them (Fig. 28's "Recoverable" line).

:class:`PacketRecovery` models that scheme at the level the paper evaluates
it: a CRC-failed reception is *recoverable* when its error-bit fraction is
at or below a threshold (default 10 %, the Fig. 29 operating point).  The
model also charges the PPR feedback/retransmit overhead as an airtime
fraction so that ablations can weigh the recovery gain against its cost —
the paper's argument for an *online, per-link* recovery decision.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..phy.errors import FrameReception

__all__ = ["RecoveryConfig", "RecoveryStats", "PacketRecovery", "OnlineRecoveryController"]


@dataclass(frozen=True)
class RecoveryConfig:
    """Parameters of the PPR-like recovery model.

    Attributes
    ----------
    max_error_fraction:
        CRC-failed packets with at most this fraction of errored bits can
        be reconstructed (paper Fig. 29 highlights the 10 % point).
    overhead_fraction:
        Extra airtime/energy charged per recovered packet, as a fraction of
        the original frame (PPR feedback + chunk retransmission).
    """

    max_error_fraction: float = 0.10
    overhead_fraction: float = 0.15

    def __post_init__(self) -> None:
        if not 0.0 <= self.max_error_fraction <= 1.0:
            raise ValueError("max_error_fraction must be within [0, 1]")
        if self.overhead_fraction < 0.0:
            raise ValueError("overhead_fraction must be >= 0")


@dataclass
class RecoveryStats:
    """Outcome counters of a recovery pass."""

    crc_ok: int = 0
    recovered: int = 0
    unrecoverable: int = 0
    overhead_airtime_s: float = 0.0

    @property
    def total_failures(self) -> int:
        return self.recovered + self.unrecoverable

    @property
    def delivered_with_recovery(self) -> int:
        """Packets usable by the application: clean plus recovered."""
        return self.crc_ok + self.recovered

    @property
    def recovery_ratio(self) -> float:
        """Share of CRC failures that the scheme rescues."""
        if self.total_failures == 0:
            return 0.0
        return self.recovered / self.total_failures


class OnlineRecoveryController:
    """Per-link online decision: is recovery worth its overhead right now?

    The paper (Section VII-A) notes that PPR-style recovery "is only
    necessary for some special cases" and proposes "an online dynamic
    recovery scheme which could identify the recover-demand for different
    links" as future work.  This controller implements that idea: it
    watches a sliding window of reception outcomes on one link and enables
    recovery only while the expected airtime *saved* (recoverable packets
    that would otherwise be retransmitted in full) exceeds the airtime
    *spent* (per-packet recovery overhead on every failure handled).

    The decision rule per window:

        enable  iff  recoverable_rate * (1 - overhead) > overhead * crc_ok_rate_margin

    simplified to: the recoverable fraction of all traffic must exceed
    ``activation_threshold`` (default derived from the overhead fraction).
    """

    def __init__(
        self,
        config: RecoveryConfig | None = None,
        window: int = 100,
        activation_margin: float = 1.0,
    ) -> None:
        if window < 10:
            raise ValueError("window must be >= 10 receptions")
        if activation_margin <= 0:
            raise ValueError("activation_margin must be > 0")
        self.config = config if config is not None else RecoveryConfig()
        self.window = window
        self.activation_margin = activation_margin
        self._outcomes: list = []  # (crc_ok, recoverable) booleans
        self.enabled = False
        self.decision_changes = 0

    def record(self, reception: FrameReception) -> None:
        recoverable = (not reception.crc_ok) and (
            reception.total_bits > 0
            and reception.error_fraction <= self.config.max_error_fraction
        )
        self._outcomes.append((reception.crc_ok, recoverable))
        if len(self._outcomes) > self.window:
            self._outcomes.pop(0)
        self._decide()

    @property
    def recoverable_fraction(self) -> float:
        """Share of recent traffic that recovery would rescue."""
        if not self._outcomes:
            return 0.0
        return sum(1 for _, r in self._outcomes if r) / len(self._outcomes)

    @property
    def activation_threshold(self) -> float:
        """Recoverable fraction above which recovery pays for itself.

        A recovered packet saves one full retransmission (airtime 1.0) and
        costs ``overhead_fraction``; running the scheme costs overhead on
        the recoverable packets only, so break-even is at
        ``overhead / (1 + overhead)`` of traffic, scaled by the margin.
        """
        overhead = self.config.overhead_fraction
        return self.activation_margin * overhead / (1.0 + overhead)

    def _decide(self) -> None:
        if len(self._outcomes) < self.window // 2:
            return  # not enough evidence yet
        should_enable = self.recoverable_fraction > self.activation_threshold
        if should_enable != self.enabled:
            self.enabled = should_enable
            self.decision_changes += 1


class PacketRecovery:
    """Classifies receptions and accumulates :class:`RecoveryStats`."""

    def __init__(self, config: RecoveryConfig | None = None) -> None:
        self.config = config if config is not None else RecoveryConfig()
        self.stats = RecoveryStats()

    def is_recoverable(self, reception: FrameReception) -> bool:
        """Would PPR reconstruct this CRC-failed reception?"""
        if reception.crc_ok:
            return True
        if reception.total_bits == 0:
            return False
        return reception.error_fraction <= self.config.max_error_fraction

    def record(self, reception: FrameReception) -> None:
        """Feed one finished reception into the statistics."""
        if reception.crc_ok:
            self.stats.crc_ok += 1
            return
        if self.is_recoverable(reception):
            self.stats.recovered += 1
            airtime = reception.end_time - reception.start_time
            self.stats.overhead_airtime_s += airtime * self.config.overhead_fraction
        else:
            self.stats.unrecoverable += 1
