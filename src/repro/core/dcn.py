"""DCN — Dynamic CCA-threshold for Non-orthogonal transmission.

:class:`DcnCcaPolicy` is the deployable form of the paper's scheme: a
:class:`~repro.mac.cca.CcaPolicy` that owns a
:class:`~repro.core.adjustor.CcaAdjustor` and drives it from live MAC/radio
events:

- every snooped co-channel frame's RSSI feeds ``observe_rssi`` (the radio
  buffers co-channel packets anyway, so this costs nothing — paper §V-B2);
- during the initializing phase a 1 ms sampler reads the radio's RSSI
  register into ``observe_sense`` (this *does* cost CPU, which is why the
  paper stops it after T_I);
- a T_U-period timer triggers the Case-II relaxation check.

Swapping ``FixedCcaThreshold`` for ``DcnCcaPolicy`` on a node is the entire
deployment story, mirroring the paper's drop-in CCA-Adjustor component
(Fig. 11).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from ..mac.cca import CcaPolicy
from ..phy.errors import FrameReception
from ..phy.radio import RadioState
from .adjustor import AdjustorConfig, CcaAdjustor

if TYPE_CHECKING:  # pragma: no cover
    from ..mac.mac import Mac

__all__ = ["DcnCcaPolicy"]


class DcnCcaPolicy(CcaPolicy):
    """The paper's DCN scheme as a pluggable CCA policy."""

    def __init__(self, config: Optional[AdjustorConfig] = None) -> None:
        self.config = config if config is not None else AdjustorConfig()
        self._adjustor: Optional[CcaAdjustor] = None
        self._mac: Optional["Mac"] = None
        self._detached = False
        #: Pending self-scheduled events, so :meth:`detach` can cancel
        #: them: the sense sampler, the init-done marker and the Case-II
        #: periodic timer (which otherwise re-arms forever and keeps
        #: ``run_until_idle`` from terminating).
        self._sense_event = None
        self._init_event = None
        self._periodic_event = None

    # ------------------------------------------------------------------
    # CcaPolicy interface
    # ------------------------------------------------------------------
    def attach(self, mac: "Mac") -> None:
        if self._mac is not None:
            raise RuntimeError("a DcnCcaPolicy instance serves exactly one MAC")
        self._mac = mac
        # Late-joiner audit: every schedule() below uses *relative*
        # delays, and the adjustor anchors its history and Case-II
        # reference at ``sim.now`` (not t = 0), so attaching mid-run —
        # a node booting into an already-busy network — behaves exactly
        # like attaching at t = 0 shifted by the boot time.  The
        # initializing phase ends at ``now + T_I`` and the first Case-II
        # check fires at ``now + T_I + T_U``.
        self._adjustor = CcaAdjustor(mac.sim, self.config, owner=mac.name)
        sim = mac.sim
        # All DCN timers are node-local, hence band-local: ride the
        # radio's event shard to keep their churn off the main heap.
        shard = mac.radio.event_shard
        if self.config.t_init_s > 0:
            self._schedule_sense_sample()
            self._init_event = sim.schedule(
                self.config.t_init_s, self._finish_init, tag="dcn.init_done",
                shard=shard,
            )
        else:
            self._adjustor.finish_initialization()
        self._periodic_event = sim.schedule(
            self._first_case2_delay(), self._periodic, tag="dcn.case2",
            shard=shard,
        )

    def detach(self) -> None:
        """Stop all self-scheduled timers so the simulation can drain.

        Idempotent; safe before ``attach``.  The adjustor (and therefore
        ``threshold_dbm``/``history``) stays usable — only the periodic
        drivers stop.  If the initializing phase was still running it is
        finished immediately so the threshold settles at its Case-I
        value rather than staying pinned at the initial one.
        """
        self._detached = True
        if self._mac is None:
            return
        sim = self._mac.sim
        for event in (self._sense_event, self._init_event, self._periodic_event):
            if event is not None:
                sim.cancel(event)
        self._sense_event = self._init_event = self._periodic_event = None
        if self._adjustor is not None and self._adjustor.initializing:
            self._adjustor.finish_initialization()

    def threshold_dbm(self) -> float:
        assert self._adjustor is not None, "policy not attached"
        return self._adjustor.threshold_dbm()

    def on_frame_snooped(self, reception: FrameReception) -> None:
        # The radio only ever locks co-channel frames, so every snooped
        # reception is by construction a co-channel observation.
        assert self._adjustor is not None, "policy not attached"
        self._adjustor.observe_rssi(reception.rssi_dbm)

    def describe(self) -> str:
        return (
            f"DCN(T_I={self.config.t_init_s:g}s, T_U={self.config.t_update_s:g}s, "
            f"margin={self.config.margin_db:g}dB)"
        )

    def history(self) -> List[Tuple[float, float]]:
        if self._adjustor is None:
            return []
        return self._adjustor.history()

    # ------------------------------------------------------------------
    # Internal drivers
    # ------------------------------------------------------------------
    @property
    def adjustor(self) -> CcaAdjustor:
        assert self._adjustor is not None, "policy not attached"
        return self._adjustor

    def _schedule_sense_sample(self) -> None:
        assert self._mac is not None and self._adjustor is not None
        sim = self._mac.sim

        def _sample() -> None:
            assert self._adjustor is not None and self._mac is not None
            if self._detached:
                return
            if self._adjustor.initializing:
                # A transmitting radio cannot sense; skip those samples.
                if self._mac.radio.state is RadioState.IDLE:
                    self._adjustor.observe_sense(self._mac.radio.sense_power_dbm())
                    self._mac.radio.energy.note_sense_sample()
                self._sense_event = sim.schedule(
                    self.config.sense_interval_s, _sample, tag="dcn.sense",
                    shard=shard,
                )

        shard = self._mac.radio.event_shard
        self._sense_event = sim.schedule(
            self.config.sense_interval_s, _sample, tag="dcn.sense", shard=shard
        )

    def _finish_init(self) -> None:
        assert self._adjustor is not None
        self._adjustor.finish_initialization()

    def _first_case2_delay(self) -> float:
        return self.config.t_init_s + self.config.t_update_s

    def _periodic(self) -> None:
        assert self._adjustor is not None and self._mac is not None
        if self._detached:
            return
        self._adjustor.periodic_update()
        self._periodic_event = self._mac.sim.schedule(
            self.config.t_update_s, self._periodic, tag="dcn.case2",
            shard=self._mac.radio.event_shard,
        )
