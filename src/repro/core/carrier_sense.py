"""CCA mode 2 (carrier sense): practical interference differentiation.

Section VII-C of the paper asks for "some approach [that] could
differentiate the current interference (i.e., identify it as co-channel
interference or not)" so that inter-channel concurrency and co-channel
protection stop trading off against each other.  The 802.15.4 standard
already defines the hardware hook: **CCA mode 2** reports busy only upon
detecting a signal *with the 802.15.4 spreading characteristics on the
current channel* — which off-channel leakage, by the paper's own central
observation, can never satisfy.

:class:`CarrierSenseCcaPolicy` implements mode 2 (and mode 3) physically
rather than oracularly: a co-channel transmission is *detected* only if
the radio could actually demodulate its spreading — its received power
must clear the demodulation floor and its instantaneous SINR the capture
threshold.  A weak or badly-interfered co-channel signal therefore escapes
detection (and may be collided with), which is exactly the residual risk a
real mode-2 deployment carries; compare with
:class:`~repro.core.oracle.OracleCcaPolicy`, which never misses.

Mode 3 (carrier sense AND energy detection) combines this with a relaxed
energy threshold as a safety net.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..mac.cca import CcaPolicy
from ..phy.constants import RX_SENSITIVITY_DBM
from ..sim.units import linear_to_db

if TYPE_CHECKING:  # pragma: no cover
    from ..mac.mac import Mac

__all__ = ["CarrierSenseCcaPolicy"]


class CarrierSenseCcaPolicy(CcaPolicy):
    """802.15.4 CCA mode 2/3: defer to *demodulable co-channel* signals.

    Parameters
    ----------
    detection_floor_dbm:
        Minimum received power for the correlator to recognise a
        co-channel spreading sequence (defaults to radio sensitivity).
    detection_sinr_db:
        Minimum instantaneous SINR for the correlator to lock; below this
        the co-channel signal is buried and goes undetected.
    energy_threshold_dbm:
        Mode-3 energy backstop: the channel also reads busy when total
        sensed power exceeds this level regardless of classification.
        ``None`` (default) gives pure mode 2.
    """

    def __init__(
        self,
        detection_floor_dbm: float = RX_SENSITIVITY_DBM,
        detection_sinr_db: float = -1.0,
        energy_threshold_dbm: Optional[float] = None,
    ) -> None:
        self.detection_floor_dbm = detection_floor_dbm
        self.detection_sinr_db = detection_sinr_db
        self.energy_threshold_dbm = energy_threshold_dbm
        self._mac: Optional["Mac"] = None

    def attach(self, mac: "Mac") -> None:
        self._mac = mac

    def threshold_dbm(self) -> float:
        """Effective threshold for the MAC's energy comparison.

        The MAC asks "is sensed power above ``threshold_dbm()``?"; we fold
        the classification into the answer: -inf (always busy) when a
        co-channel signal is detected, the mode-3 energy threshold (or
        +inf) otherwise.
        """
        assert self._mac is not None, "policy not attached"
        if self._co_channel_detected():
            return float("-inf")
        if self.energy_threshold_dbm is not None:
            return self.energy_threshold_dbm
        return float("inf")

    def describe(self) -> str:
        mode = "mode3" if self.energy_threshold_dbm is not None else "mode2"
        return (
            f"carrier-sense({mode}, floor={self.detection_floor_dbm:g} dBm, "
            f"sinr>={self.detection_sinr_db:g} dB)"
        )

    # ------------------------------------------------------------------
    def _co_channel_detected(self) -> bool:
        assert self._mac is not None
        radio = self._mac.radio
        for signal in radio.active_signals:
            offset = abs(signal.channel_mhz - radio.channel_mhz)
            if offset > radio.config.co_channel_tolerance_mhz:
                continue
            if signal.rx_power_dbm < self.detection_floor_dbm:
                continue
            interference_mw = radio.in_channel_power_mw(exclude=signal)
            if interference_mw <= 0.0:
                return True
            sinr_db = linear_to_db(signal.rx_power_mw / interference_mw)
            if sinr_db >= self.detection_sinr_db:
                return True
        return False
