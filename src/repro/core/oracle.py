"""Oracle CCA: the paper's Section VII-C future-work upper bound.

DCN keeps the CCA threshold below the weakest co-channel packet it has
heard, which sacrifices inter-channel concurrency whenever a *weak*
co-channel transmitter exists (the paper's Case III weakness).  Section
VII-C sketches the fix: if the radio could *identify* whether the energy it
senses comes from its own channel, it could defer exactly to co-channel
activity and ignore everything else, with no threshold compromise at all.

:class:`OracleCcaPolicy` implements that idealised scheme by peeking at the
simulator's ground truth: the channel reads busy if and only if some active
signal is co-channel and above a protection floor.  It is **not physically
realisable** — it exists as the upper bound for the ``ablation_oracle``
experiment, quantifying how much headroom DCN leaves on the table.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from ..mac.cca import CcaPolicy
from ..phy.constants import RX_SENSITIVITY_DBM

if TYPE_CHECKING:  # pragma: no cover
    from ..mac.mac import Mac

__all__ = ["OracleCcaPolicy"]


class OracleCcaPolicy(CcaPolicy):
    """Ground-truth interference differentiation (ideal, non-realisable).

    Parameters
    ----------
    protect_floor_dbm:
        Co-channel signals below this level are ignored even by the oracle
        (they could not be decoded by any receiver anyway).  Defaults to
        the radio sensitivity.
    """

    def __init__(self, protect_floor_dbm: float = RX_SENSITIVITY_DBM) -> None:
        self.protect_floor_dbm = protect_floor_dbm
        self._mac: Optional["Mac"] = None

    def attach(self, mac: "Mac") -> None:
        self._mac = mac

    def threshold_dbm(self) -> float:
        """Effective threshold: -inf when a co-channel signal is active.

        The MAC compares sensed power against this value; returning +inf
        when no co-channel signal is audible makes the channel always look
        clear to inter-channel leakage, and returning the floor when one is
        active makes it look busy — i.e. perfect differentiation.
        """
        assert self._mac is not None, "policy not attached"
        radio = self._mac.radio
        for signal in radio.active_signals:
            offset = abs(signal.channel_mhz - radio.channel_mhz)
            if (
                offset <= radio.config.co_channel_tolerance_mhz
                and signal.rx_power_dbm >= self.protect_floor_dbm
            ):
                return float("-inf")
        return float("inf")

    def describe(self) -> str:
        return f"oracle(floor={self.protect_floor_dbm:g} dBm)"
