"""Unslotted CSMA/CA parameters (IEEE 802.15.4 defaults)."""

from __future__ import annotations

from dataclasses import dataclass

from ..phy.constants import (
    CCA_DURATION_S,
    TURNAROUND_TIME_S,
    UNIT_BACKOFF_PERIOD_S,
)

__all__ = ["MacParams"]


@dataclass(frozen=True)
class MacParams:
    """Parameters of the unslotted CSMA/CA algorithm.

    The defaults are the IEEE 802.15.4 MAC PIB defaults, which are also what
    the MicaZ/TinyOS stack in the paper's testbed ships with.

    Attributes
    ----------
    mac_min_be / mac_max_be:
        Backoff-exponent bounds (macMinBE / macMaxBE).
    max_csma_backoffs:
        macMaxCSMABackoffs: CCA failures tolerated before the frame is
        dropped with a channel-access failure.
    unit_backoff_s / cca_duration_s / turnaround_s:
        PHY timing primitives; see :mod:`repro.phy.constants`.
    csma_enabled:
        When False the MAC transmits immediately with no carrier sensing —
        the paper's "disable the carrier sense module" attacker mode
        (Section III-B).
    queue_limit:
        Maximum frames held in the transmit queue.
    ack_enabled:
        When True, unicast data frames request acknowledgements and are
        retransmitted on ACK timeout.  The paper's saturated-throughput
        experiments run without ACKs (the default here).
    max_frame_retries:
        macMaxFrameRetries: retransmissions after the initial attempt.
    ack_wait_s:
        macAckWaitDuration: how long to wait for the acknowledgement
        (default 54 symbols = 864 us: turnaround + ACK airtime + margin).
    """

    mac_min_be: int = 3
    mac_max_be: int = 5
    max_csma_backoffs: int = 4
    unit_backoff_s: float = UNIT_BACKOFF_PERIOD_S
    cca_duration_s: float = CCA_DURATION_S
    turnaround_s: float = TURNAROUND_TIME_S
    csma_enabled: bool = True
    queue_limit: int = 8
    ack_enabled: bool = False
    max_frame_retries: int = 3
    ack_wait_s: float = 54 * 16e-6

    def __post_init__(self) -> None:
        if not 0 <= self.mac_min_be <= self.mac_max_be:
            raise ValueError(
                f"need 0 <= mac_min_be <= mac_max_be, got "
                f"{self.mac_min_be}/{self.mac_max_be}"
            )
        if self.max_csma_backoffs < 0:
            raise ValueError("max_csma_backoffs must be >= 0")
        if self.queue_limit < 1:
            raise ValueError("queue_limit must be >= 1")
        if self.max_frame_retries < 0:
            raise ValueError("max_frame_retries must be >= 0")
        if self.ack_wait_s <= 0:
            raise ValueError("ack_wait_s must be > 0")
