"""The unslotted CSMA/CA channel-access engine (IEEE 802.15.4 §7.5.1.4).

One :class:`CsmaTransaction` drives a single frame through:

    NB = 0, BE = macMinBE
    loop:
        delay for random(0 .. 2^BE - 1) unit backoff periods
        perform CCA (one measurement window)
        if channel idle:  turnaround, transmit, done
        else:             NB += 1, BE = min(BE + 1, macMaxBE)
                          if NB > macMaxCSMABackoffs: channel-access failure

With ``csma_enabled = False`` the transaction degenerates to
turnaround-then-transmit, which is how the paper's attacker and the
Section III concurrency experiments bypass carrier sensing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

import numpy as np

from ..phy.frame import Frame
from ..phy.medium import Transmission
from ..phy.radio import Radio, RadioState
from .cca import CcaPolicy
from .params import MacParams

if TYPE_CHECKING:  # pragma: no cover
    from ..sim.simulator import Simulator
    from .stats import MacStats

__all__ = ["CsmaTransaction"]


class CsmaTransaction:
    """Channel access for one frame.  Fire-and-forget with callbacks."""

    def __init__(
        self,
        sim: "Simulator",
        radio: Radio,
        params: MacParams,
        cca_policy: CcaPolicy,
        stats: "MacStats",
        rng: np.random.Generator,
        frame: Frame,
        on_sent: Callable[[Frame], None],
        on_failure: Callable[[Frame], None],
    ) -> None:
        self.sim = sim
        self.radio = radio
        self.params = params
        self.cca_policy = cca_policy
        self.stats = stats
        self.rng = rng
        self.frame = frame
        self.on_sent = on_sent
        self.on_failure = on_failure
        self._nb = 0
        self._be = params.mac_min_be
        self._cancelled = False
        self._pending = None
        #: (start_time, delay) of the backoff in flight, for telemetry.
        self._obs_backoff = None

    # ------------------------------------------------------------------
    def start(self) -> None:
        if not self.params.csma_enabled:
            self._schedule(self.params.turnaround_s, self._transmit)
            return
        self._backoff()

    def cancel(self) -> None:
        """Abandon the transaction (frame is neither sent nor failed)."""
        self._cancelled = True
        if self._pending is not None:
            self.sim.cancel(self._pending)
            self._pending = None

    # ------------------------------------------------------------------
    def _schedule(self, delay: float, callback) -> None:
        # Backoff/CCA timers are band-local: route them to the radio's
        # band shard so their churn stays out of the main event heap.
        self._pending = self.sim.schedule(
            delay, callback, tag="csma", shard=self.radio.event_shard
        )

    def _backoff(self) -> None:
        slots = int(self.rng.integers(0, 2**self._be))
        delay = slots * self.params.unit_backoff_s
        if self.sim.obs is not None:
            self._obs_backoff = (self.sim.now, delay)
        self._schedule(delay + self.params.cca_duration_s, self._cca_check)

    def _cca_check(self) -> None:
        if self._cancelled:
            return
        self._pending = None
        self.stats.cca_attempts += 1
        threshold = self.cca_policy.threshold_dbm()
        busy = (
            self.radio.state is not RadioState.IDLE
            or self.radio.cca_busy(threshold)
        )
        obs = self.sim.obs
        if obs is not None and self._obs_backoff is not None:
            # Recorded retrospectively, now that the backoff + CCA window
            # is known to have completed (a cancelled transaction leaves
            # no phantom spans).
            start, delay = self._obs_backoff
            self._obs_backoff = None
            obs.on_cca(self.radio.name, start, delay,
                       self.params.cca_duration_s, busy)
        if busy:
            self.stats.cca_busy += 1
            if self.sim.trace.enabled:
                self.sim.trace.emit(
                    "cca_busy",
                    radio=self.radio.name,
                    threshold=round(threshold, 1)
                    if threshold != float("inf")
                    else "inf",
                )
            self._nb += 1
            self._be = min(self._be + 1, self.params.mac_max_be)
            if self._nb > self.params.max_csma_backoffs:
                self.stats.access_failures += 1
                if self.sim.trace.enabled:
                    self.sim.trace.emit("access_failure", radio=self.radio.name)
                self.on_failure(self.frame)
                return
            self._backoff()
            return
        self._schedule(self.params.turnaround_s, self._transmit)

    def _transmit(self) -> None:
        if self._cancelled:
            return
        self._pending = None
        if self.radio.state is not RadioState.IDLE:
            # The radio is mid-transmission (e.g. an acknowledgement fired
            # between our CCA and now).  Retry shortly — equivalent to the
            # hardware rejecting the STXON strobe.
            self._schedule(self.params.turnaround_s, self._transmit)
            return

        def _done(_: Transmission) -> None:
            if self._cancelled:
                return
            self.stats.sent += 1
            self.stats.sent_bytes += self.frame.payload_bytes
            self.on_sent(self.frame)

        self.radio.transmit(self.frame, _done)
