"""Clear-channel-assessment policies.

The MAC consults a :class:`CcaPolicy` for the energy-detection threshold on
every CCA, and feeds it every frame the radio overhears (CRC-good or not,
addressed to anyone) so that adaptive policies — the paper's DCN — can track
co-channel RSSI.  The default ZigBee behaviour is a fixed −77 dBm threshold
(:class:`FixedCcaThreshold`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Tuple

from ..phy.constants import DEFAULT_CCA_THRESHOLD_DBM
from ..phy.errors import FrameReception

if TYPE_CHECKING:  # pragma: no cover
    from .mac import Mac

__all__ = ["CcaPolicy", "FixedCcaThreshold", "DisabledCca"]


class CcaPolicy:
    """Interface the MAC uses to decide "is the channel clear?"."""

    def attach(self, mac: "Mac") -> None:
        """Called once when the policy is bound to a MAC.

        Adaptive policies use this to grab the simulator/radio handles and
        to schedule their own activity (e.g. DCN's initializing phase).
        """

    def detach(self) -> None:
        """Cancel any self-scheduled activity (timers, samplers).

        Called when a deployment quiesces so that policies with periodic
        timers (DCN's Case-II check) stop re-arming and
        ``run_until_idle`` can terminate.  The policy's threshold remains
        queryable afterwards; passive policies need not override this.
        """

    def threshold_dbm(self) -> float:
        """Current energy-detection threshold."""
        raise NotImplementedError

    def on_frame_snooped(self, reception: FrameReception) -> None:
        """Every frame the radio finished receiving (even CRC-failed)."""

    def describe(self) -> str:
        """Human-readable label for result tables."""
        return type(self).__name__

    def history(self) -> List[Tuple[float, float]]:
        """Optional ``(time, threshold)`` trajectory for analysis."""
        return []


class FixedCcaThreshold(CcaPolicy):
    """The default ZigBee design: a constant threshold (−77 dBm)."""

    def __init__(self, threshold_dbm: float = DEFAULT_CCA_THRESHOLD_DBM) -> None:
        self._threshold_dbm = threshold_dbm

    def threshold_dbm(self) -> float:
        return self._threshold_dbm

    def describe(self) -> str:
        return f"fixed({self._threshold_dbm:g} dBm)"


class DisabledCca(CcaPolicy):
    """Carrier sensing effectively off: the channel always looks clear.

    Equivalent to an infinitely relaxed threshold; used by the paper's
    concurrency experiments (Section III-B) together with
    ``MacParams(csma_enabled=False)``.
    """

    def threshold_dbm(self) -> float:
        return float("inf")

    def describe(self) -> str:
        return "disabled"
