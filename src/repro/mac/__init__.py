"""802.15.4 MAC substrate: unslotted CSMA/CA with pluggable CCA policies."""

from .cca import CcaPolicy, DisabledCca, FixedCcaThreshold
from .csma import CsmaTransaction
from .mac import Mac
from .params import MacParams
from .stats import MacStats

__all__ = [
    "CcaPolicy",
    "DisabledCca",
    "FixedCcaThreshold",
    "CsmaTransaction",
    "Mac",
    "MacParams",
    "MacStats",
]
