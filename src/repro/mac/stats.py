"""Per-MAC counters.

These are the raw quantities every experiment metric is computed from:
throughput = delivered / measurement window, PRR = delivered / sent, etc.
Counters can be snapshotted and differenced so a measurement window can
exclude warm-up (e.g. DCN's initializing phase).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

__all__ = ["MacStats"]


@dataclass
class MacStats:
    """Counters for one MAC instance.

    Attributes
    ----------
    enqueued:
        Frames accepted into the transmit queue.
    queue_drops:
        Frames rejected because the queue was full.
    sent:
        Frames whose transmission completed on air.
    cca_attempts / cca_busy:
        Individual CCA measurements and how many read busy.
    access_failures:
        Frames dropped after macMaxCSMABackoffs busy CCAs.
    delivered:
        CRC-good frames received *addressed to this node* (unicast match or
        broadcast).
    crc_failures:
        Locked receptions that failed CRC.
    snooped:
        All finished receptions regardless of CRC/addressing (what the DCN
        adjustor sees).
    """

    enqueued: int = 0
    queue_drops: int = 0
    sent: int = 0
    cca_attempts: int = 0
    cca_busy: int = 0
    access_failures: int = 0
    delivered: int = 0
    crc_failures: int = 0
    snooped: int = 0
    delivered_bytes: int = 0
    sent_bytes: int = 0
    acks_sent: int = 0
    acks_received: int = 0
    ack_timeouts: int = 0
    retransmissions: int = 0
    retry_drops: int = 0

    def snapshot(self) -> "MacStats":
        """A copy of the current counter values."""
        return MacStats(**{f.name: getattr(self, f.name) for f in fields(self)})

    def since(self, earlier: "MacStats") -> "MacStats":
        """Counter deltas relative to an earlier snapshot."""
        return MacStats(
            **{
                f.name: getattr(self, f.name) - getattr(earlier, f.name)
                for f in fields(self)
            }
        )

    @property
    def cca_busy_ratio(self) -> float:
        if self.cca_attempts == 0:
            return 0.0
        return self.cca_busy / self.cca_attempts

    @property
    def prr(self) -> float:
        """Delivered-over-sent is computed across *link* endpoints, not one
        MAC; this property is the receive-side CRC success ratio instead."""
        attempts = self.delivered + self.crc_failures
        if attempts == 0:
            return 0.0
        return self.delivered / attempts
