"""The MAC layer: transmit queue + CSMA/CA + receive filtering + snooping.

One :class:`Mac` owns one :class:`~repro.phy.radio.Radio`.  Upper layers
(:mod:`repro.net.traffic`) push frames with :meth:`Mac.send`; delivered
frames (CRC-good, addressed to this node) are handed to receive listeners.
Every finished reception — including CRC failures and frames addressed to
other nodes — is forwarded to the CCA policy, because the paper's DCN
adjustor feeds on the RSSI of *co-channel interference packets*, not just
on the node's own traffic.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional

import numpy as np

from ..phy.errors import FrameReception
from ..phy.frame import Frame
from ..phy.radio import Radio
from ..sim.simulator import Simulator
from .cca import CcaPolicy, FixedCcaThreshold
from .csma import CsmaTransaction
from .params import MacParams
from .stats import MacStats

__all__ = ["Mac"]

ReceiveListener = Callable[[FrameReception], None]
IdleListener = Callable[[], None]


class Mac:
    """802.15.4-style MAC bound to one radio."""

    def __init__(
        self,
        sim: Simulator,
        radio: Radio,
        rng: np.random.Generator,
        params: Optional[MacParams] = None,
        cca_policy: Optional[CcaPolicy] = None,
    ) -> None:
        self.sim = sim
        self.radio = radio
        self.rng = rng
        self.params = params if params is not None else MacParams()
        self.cca_policy = cca_policy if cca_policy is not None else FixedCcaThreshold()
        self.stats = MacStats()
        self.name = radio.name
        self._queue: Deque[Frame] = deque()
        self._active: Optional[CsmaTransaction] = None
        self._pending_ack = None
        self._retries = 0
        self._sequence = 0
        self._receive_listeners: List[ReceiveListener] = []
        self._idle_listeners: List[IdleListener] = []
        radio.add_frame_listener(self._on_reception)
        self.cca_policy.attach(self)
        if sim.obs is not None:
            sim.obs.register_mac(self)

    # ------------------------------------------------------------------
    # Transmit path
    # ------------------------------------------------------------------
    def send(self, frame: Frame) -> bool:
        """Queue ``frame`` for transmission.

        Returns False (and counts a queue drop) when the queue is full.
        Under an ACK-enabled MAC, unicast data frames automatically request
        acknowledgement.
        """
        if len(self._queue) >= self.params.queue_limit:
            self.stats.queue_drops += 1
            return False
        self._sequence += 1
        frame.sequence = self._sequence
        if self.params.ack_enabled and frame.destination is not None:
            frame.ack_request = True
        self._queue.append(frame)
        self.stats.enqueued += 1
        self._kick()
        return True

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    @property
    def busy(self) -> bool:
        """True while a frame is in channel access / TX / awaiting its ACK."""
        return self._active is not None or self._pending_ack is not None

    def _kick(self) -> None:
        if self._active is not None or self._pending_ack is not None:
            return
        if not self._queue:
            return
        frame = self._queue.popleft()
        self._active = CsmaTransaction(
            sim=self.sim,
            radio=self.radio,
            params=self.params,
            cca_policy=self.cca_policy,
            stats=self.stats,
            rng=self.rng,
            frame=frame,
            on_sent=self._on_sent,
            on_failure=self._on_access_failure,
        )
        self._active.start()

    def _on_sent(self, frame: Frame) -> None:
        self._active = None
        if frame.ack_request:
            self._await_ack(frame)
            return
        self._after_transaction()

    def _on_access_failure(self, frame: Frame) -> None:
        self._active = None
        self.sim.trace.emit("frame_dropped", mac=self.name, frame=frame.frame_id)
        self._after_transaction()

    def _after_transaction(self) -> None:
        if not self._queue:
            for listener in self._idle_listeners:
                listener()
        self._kick()

    # ------------------------------------------------------------------
    # Acknowledgements and retransmission
    # ------------------------------------------------------------------
    def _await_ack(self, frame: Frame) -> None:
        timer = self.sim.schedule(
            self.params.ack_wait_s,
            lambda: self._on_ack_timeout(frame),
            tag=f"{self.name}.ack_wait",
            shard=self.radio.event_shard,
        )
        self._pending_ack = (frame, timer)

    def _on_ack_timeout(self, frame: Frame) -> None:
        self._pending_ack = None
        self.stats.ack_timeouts += 1
        self._retries += 1
        if self._retries > self.params.max_frame_retries:
            self.stats.retry_drops += 1
            self._retries = 0
            self.sim.trace.emit(
                "frame_retry_drop", mac=self.name, frame=frame.frame_id
            )
            self._after_transaction()
            return
        self.stats.retransmissions += 1
        self.sim.trace.emit(
            "frame_retransmit",
            mac=self.name,
            frame=frame.frame_id,
            attempt=self._retries,
        )
        self._active = CsmaTransaction(
            sim=self.sim,
            radio=self.radio,
            params=self.params,
            cca_policy=self.cca_policy,
            stats=self.stats,
            rng=self.rng,
            frame=frame,
            on_sent=self._on_sent,
            on_failure=self._on_access_failure,
        )
        self._active.start()

    def _on_ack_received(self, reception: FrameReception) -> None:
        if self._pending_ack is None:
            return
        frame, timer = self._pending_ack
        if reception.frame.sequence != frame.sequence:
            return
        if reception.frame.source != (frame.destination or ""):
            return
        self.sim.cancel(timer)
        self._pending_ack = None
        self._retries = 0
        self.stats.acks_received += 1
        self._after_transaction()

    def _send_ack(self, reception: FrameReception) -> None:
        """Acknowledge a just-received unicast frame (no CSMA, per spec)."""
        ack = Frame.ack(self.name, reception.frame.source, reception.frame.sequence)

        def _transmit_ack() -> None:
            from ..phy.radio import RadioState

            if self.radio.state is not RadioState.IDLE:
                return  # half-duplex race: the ACK is simply lost
            self.stats.acks_sent += 1
            self.radio.transmit(ack, lambda _tx: None)

        self.sim.schedule(
            self.params.turnaround_s, _transmit_ack, tag=f"{self.name}.ack",
            shard=self.radio.event_shard,
        )

    # ------------------------------------------------------------------
    # Receive path
    # ------------------------------------------------------------------
    def add_receive_listener(self, listener: ReceiveListener) -> None:
        """Subscribe to CRC-good frames addressed to this node."""
        self._receive_listeners.append(listener)

    def add_idle_listener(self, listener: IdleListener) -> None:
        """Subscribe to queue-drained notifications (for saturated sources)."""
        self._idle_listeners.append(listener)

    def _on_reception(self, reception: FrameReception) -> None:
        self.stats.snooped += 1
        self.cca_policy.on_frame_snooped(reception)
        if not reception.crc_ok:
            self.stats.crc_failures += 1
            return
        frame = reception.frame
        if frame.is_ack:
            if frame.destination == self.name:
                self._on_ack_received(reception)
            return
        if frame.destination is not None and frame.destination != self.name:
            return
        self.stats.delivered += 1
        self.stats.delivered_bytes += frame.payload_bytes
        if frame.ack_request and frame.destination == self.name:
            self._send_ack(reception)
        for listener in self._receive_listeners:
            listener(reception)
