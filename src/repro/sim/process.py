"""Lightweight generator-based processes on top of the event kernel.

Traffic sources and other sequential behaviours are most naturally written as
coroutines ("send a packet, sleep, repeat").  A :class:`Process` wraps a
generator that yields either

- a ``float`` — sleep that many simulated seconds, or
- a :class:`Sleep` — same, with an explicit type.

Processes can be stopped; a stopped process's pending wakeup is cancelled and
the generator is closed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Union

from .simulator import Simulator

__all__ = ["Sleep", "Process", "ProcessError"]


class ProcessError(RuntimeError):
    """Raised when a process yields an unsupported value."""


@dataclass(frozen=True)
class Sleep:
    """Explicit sleep request: ``yield Sleep(0.01)``."""

    delay: float


YieldValue = Union[float, int, Sleep]


class Process:
    """Drives a generator against a :class:`Simulator`.

    Parameters
    ----------
    sim:
        The simulator providing the clock.
    generator:
        The coroutine body.  It runs until it returns, raises, or the
        process is stopped.
    name:
        Label used in traces and error messages.
    """

    def __init__(
        self,
        sim: Simulator,
        generator: Generator[YieldValue, None, None],
        name: str = "process",
    ) -> None:
        self.sim = sim
        self.name = name
        self._generator = generator
        self._wakeup = None
        self._alive = True
        self._started = False

    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        """True until the generator finishes or the process is stopped."""
        return self._alive

    def start(self, delay: float = 0.0) -> "Process":
        """Schedule the first step ``delay`` seconds from now."""
        if self._started:
            raise ProcessError(f"process {self.name!r} already started")
        self._started = True
        self._wakeup = self.sim.schedule(delay, self._step, tag=f"{self.name}.start")
        return self

    def stop(self) -> None:
        """Terminate the process, cancelling any pending wakeup."""
        if not self._alive:
            return
        self._alive = False
        if self._wakeup is not None:
            self.sim.cancel(self._wakeup)
            self._wakeup = None
        self._generator.close()

    # ------------------------------------------------------------------
    def _step(self) -> None:
        if not self._alive:
            return
        self._wakeup = None
        try:
            yielded = next(self._generator)
        except StopIteration:
            self._alive = False
            return
        delay = self._coerce_delay(yielded)
        self._wakeup = self.sim.schedule(delay, self._step, tag=f"{self.name}.wake")

    def _coerce_delay(self, yielded: YieldValue) -> float:
        if isinstance(yielded, Sleep):
            delay = yielded.delay
        elif isinstance(yielded, (int, float)):
            delay = float(yielded)
        else:
            raise ProcessError(
                f"process {self.name!r} yielded unsupported value {yielded!r}"
            )
        if delay < 0:
            raise ProcessError(
                f"process {self.name!r} requested negative sleep {delay!r}"
            )
        return delay
