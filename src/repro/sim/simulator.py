"""The discrete-event simulator: a clock plus an event queue.

All model components (radios, MACs, traffic sources) hold a reference to one
:class:`Simulator` and interact with simulated time exclusively through it.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from .events import Event, EventQueue
from .trace import Trace

__all__ = ["Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for kernel-level misuse (e.g. scheduling in the past)."""


def _resolve_checks(checks: Any) -> Any:
    """Normalise the ``checks`` constructor argument to a checker or None.

    The import of :mod:`repro.check.invariants` is deferred to the
    moment checks are actually requested so the kernel module stays
    dependency-free on the default path.
    """
    if checks is None:
        from ..check.invariants import checks_enabled_by_env

        if not checks_enabled_by_env():
            return None
        checks = True
    if checks is False:
        return None
    if checks is True:
        from ..check.invariants import InvariantChecker

        return InvariantChecker()
    return checks


class Simulator:
    """Discrete-event simulation kernel.

    Parameters
    ----------
    trace:
        Optional :class:`~repro.sim.trace.Trace` recording structured events.
        When omitted a disabled trace is created so call sites never branch.
    checks:
        Runtime-invariant hooks (see :mod:`repro.check.invariants`).
        ``None`` (the default) consults the ``REPRO_CHECKS`` environment
        variable; ``True`` arms a fresh default
        :class:`~repro.check.invariants.InvariantChecker`; ``False``
        disables checks regardless of the environment; any other object
        is used as the checker directly.  Model layers reach the active
        checker through the public :attr:`checks` attribute (``None``
        when disabled), so the disabled cost is one attribute load and
        an ``is None`` test per hook site.
    obs:
        Optional :class:`~repro.obs.recorder.Observability` telemetry
        recorder.  Model layers reach it through the public :attr:`obs`
        attribute under the same ``is None`` discipline as ``checks``;
        passing a recorder binds it to this simulator (scheduling its
        periodic gauge sampler, when one is configured).
    queue:
        Optional pre-built :class:`~repro.sim.events.EventQueue`, for
        callers that need non-default compaction tuning
        (``EventQueue(compact_min_size=..., compact_dead_fraction=...)``).
        The default queue uses the standard thresholds.
    """

    def __init__(
        self, trace: Optional[Trace] = None, checks: Any = None,
        obs: Any = None, queue: Optional[EventQueue] = None,
    ) -> None:
        #: Current simulation time in seconds.  A plain attribute rather
        #: than a property: it is read on every event dispatch and inside
        #: every PHY/MAC hot path, where descriptor overhead is measurable.
        #: Only the kernel writes it.
        self.now = 0.0
        self._queue = queue if queue is not None else EventQueue()
        self._running = False
        self.trace = trace if trace is not None else Trace(enabled=False)
        self.checks = _resolve_checks(checks)
        self.obs = obs
        if obs is not None:
            obs.bind(self)

    # ------------------------------------------------------------------
    # Clock and scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[[], Any],
        priority: int = 0,
        tag: Optional[str] = None,
        shard: Optional[int] = None,
    ) -> Event:
        """Schedule ``callback`` to fire ``delay`` seconds from now.

        ``shard`` routes the event into a band sub-heap previously
        registered via :meth:`add_event_shard` (``None``: the main heap).
        Shard placement never affects dispatch order — see
        :class:`~repro.sim.events.EventQueue`.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} s in the past")
        return self._queue.push(self.now + delay, callback, priority, tag, shard)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[], Any],
        priority: int = 0,
        tag: Optional[str] = None,
        shard: Optional[int] = None,
    ) -> Event:
        """Schedule ``callback`` at absolute ``time`` (>= now)."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule at {time} s; clock already at {self.now} s"
            )
        return self._queue.push(time, callback, priority, tag, shard)

    def add_event_shard(self) -> int:
        """Register a band sub-heap on the event queue; returns its index."""
        return self._queue.add_shard()

    @property
    def event_queue(self) -> EventQueue:
        """The underlying queue (read-only access for gauges and audits)."""
        return self._queue

    def cancel(self, event: Event) -> None:
        """Cancel a pending event (no-op if already fired/cancelled)."""
        self._queue.cancel(event)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def run(self, until: float) -> None:
        """Run events in order until the clock reaches ``until`` seconds.

        The clock is left exactly at ``until`` even if the queue drains
        earlier, so back-to-back ``run`` calls compose naturally.
        """
        if until < self.now:
            raise SimulationError(
                f"run until {until} s is in the past (now {self.now} s)"
            )
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        try:
            queue = self._queue
            checks = self.checks
            if checks is None:
                # Hot loop: kept free of per-event instrumentation.
                while True:
                    event = queue.pop_due(until)
                    if event is None:
                        break
                    self.now = event.time
                    event.callback()
            else:
                while True:
                    event = queue.pop_due(until)
                    if event is None:
                        break
                    checks.on_event(event, self.now, queue)
                    self.now = event.time
                    event.callback()
            self.now = until
        finally:
            self._running = False

    def run_until_idle(self, max_time: Optional[float] = None) -> None:
        """Run until the event queue drains (or ``max_time`` is reached)."""
        if self._running:
            raise SimulationError("simulator is not reentrant")
        self._running = True
        try:
            queue = self._queue
            checks = self.checks
            horizon = float("inf") if max_time is None else max_time
            while queue:
                event = queue.pop_due(horizon)
                if event is None:
                    break
                if checks is not None:
                    checks.on_event(event, self.now, queue)
                self.now = event.time
                event.callback()
            if max_time is not None and self.now < max_time and not self._queue:
                self.now = max_time
        finally:
            self._running = False

    @property
    def pending_events(self) -> int:
        """Number of live events still scheduled."""
        return len(self._queue)
